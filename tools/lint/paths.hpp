// Per-function settlement path checker for faaspart-lint (rule E1,
// DESIGN.md §15).
//
// The serving/federation settlement idiom (serve/request.hpp) requires
// every adopted request to be settled EXACTLY once: a ServingEngine
// iteration, a federation admission path or a DFK retry ladder that early-
// returns after adopting a request but before `settle_*` leaks a request
// the SLO monitors will wait on forever; settling twice trips the
// FP_CHECK(!r.settled) invariant at runtime. E1 moves that invariant to
// lint time with a path walk over each function body:
//
//   adoption    — a by-value parameter or local declaration of an owner
//                 type (`e1 owner` in .faaspart-lint; default
//                 ServedRequestPtr and SeqPtr)
//   consumption — a settle call (`e1 settle`; default settle_completed /
//                 settle_shed / settle_failed) naming the variable or one
//                 of its reference aliases, `std::move(var...)` (transfer
//                 back into a queue or another owner), or returning it
//   terminators — return / co_return (leak-checked), throw (trusted: the
//                 federation sheds by throwing ShedError and the catch
//                 site owns settlement), continue / break (leak-checked
//                 against the loop iteration's own adoptions)
//
// Branch merges are pessimistic (consumed on all live arms) but loop exits
// are optimistic (consumed anywhere in the body counts), which is what
// lets retry ladders settle on a mid-loop arm without a false leak.
// Lambdas are separate functions: their bodies are skipped by the
// enclosing walk and analyzed independently.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace faaspart::lint {

/// Rule E1 over one file. `owners` are the by-value adopted smart-pointer
/// type names; `settles` the settlement call names. Appends leak and
/// double-settle findings to `out`.
void check_settlement(const LexResult& lx,
                      const std::vector<std::string>& owners,
                      const std::vector<std::string>& settles,
                      std::vector<RawFinding>& out);

}  // namespace faaspart::lint
