// Shared concrete-syntax helpers for faaspart-lint's passes.
//
// rules.cpp (per-file token rules), symbols.cpp (symbol extraction for S1)
// and paths.cpp (the E1 settlement checker) all pattern-match the same flat
// token stream. These are the structural helpers they share: punctuation
// matching, bracket pairing, preprocessor-line stripping, and the
// open-brace classifier that tells a lambda/function body apart from a
// control block or a plain scope. None of this builds an AST — the
// classifier looks backwards from each `{` exactly the way rule C2 always
// has; it now also reports the function-name token so the newer passes can
// attribute findings to a named function.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace faaspart::lint {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

[[nodiscard]] bool is_punct(const Token& t, std::string_view p);
[[nodiscard]] bool is_ident(const Token& t, std::string_view s);

template <std::size_t N>
[[nodiscard]] bool one_of(std::string_view s,
                          const std::array<std::string_view, N>& set) {
  for (const std::string_view v : set)
    if (v == s) return true;
  return false;
}

/// Index of the `(` matching the `)` at `close`, or kNpos.
[[nodiscard]] std::size_t match_back_paren(const std::vector<Token>& t,
                                           std::size_t close);
/// Index of the `)` matching the `(` at `open`, or kNpos.
[[nodiscard]] std::size_t match_fwd_paren(const std::vector<Token>& t,
                                          std::size_t open);
/// Index of the `[` matching the `]` at `close`, or kNpos.
[[nodiscard]] std::size_t match_back_bracket(const std::vector<Token>& t,
                                             std::size_t close);
/// Index of the `}` matching the `{` at `open`, or kNpos.
[[nodiscard]] std::size_t match_fwd_brace(const std::vector<Token>& t,
                                          std::size_t open);

/// Copy of `t` with every preprocessor directive removed: from a line-
/// initial `#` through the end of the directive, including backslash-
/// continued lines. Structural passes (symbols, paths) run on the stripped
/// stream so a `#define` body's braces can never desynchronize their scope
/// tracking; the per-file token rules keep the full stream (a banned
/// identifier inside a macro is still banned).
[[nodiscard]] std::vector<Token> strip_preprocessor(
    const std::vector<Token>& t);

/// Every `{` classified by looking backwards:
///   `] {` or `](params){` (with optional mutable/noexcept and a trailing
///   return type)                      -> lambda, capturing if [..] non-empty
///   `name(params){`                   -> function definition
///   `if/for/while/switch/catch (..){` -> control block (transparent)
///   anything else                     -> plain block (transparent)
struct BraceScope {
  enum class Kind { kPlain, kLambda, kFunction } kind = Kind::kPlain;
  bool capturing = false;
  int header_line = 0;
  std::size_t name_index = kNpos;  // kFunction: token index of the name
  std::size_t params_begin = 0, params_end = 0;  // token range inside ( )
  bool reported_capture = false;  // rule C2 bookkeeping
  bool reported_params = false;   // rule C2 bookkeeping
};

[[nodiscard]] BraceScope classify_open_brace(const std::vector<Token>& t,
                                             std::size_t brace);

}  // namespace faaspart::lint
