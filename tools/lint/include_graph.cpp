#include "include_graph.hpp"

#include <algorithm>
#include <functional>

namespace faaspart::lint {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// "src/gpu/mig.hpp" -> "src/gpu"; "lint.hpp" -> "".
std::string_view dirname_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : path.substr(0, slash);
}

/// Lexically normalizes "a/b/../c" and "a/./c" so sibling-relative includes
/// resolve against the file-set keys, which are already normalized.
std::string normalize(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string_view part = path.substr(
        pos, slash == std::string_view::npos ? path.size() - pos : slash - pos);
    pos = slash == std::string_view::npos ? path.size() + 1 : slash + 1;
    if (part.empty() || part == ".") continue;
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
      continue;
    }
    parts.push_back(part);
  }
  std::string out;
  for (const std::string_view p : parts) {
    if (!out.empty()) out += '/';
    out.append(p);
  }
  return out;
}

}  // namespace

std::vector<IncludeEdge> IncludeGraph::scan_includes(std::string_view content) {
  std::vector<IncludeEdge> out;
  int line = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    std::string_view l = content.substr(
        pos, eol == std::string_view::npos ? content.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? content.size() + 1 : eol + 1;
    ++line;

    l = trim(l);
    if (l.empty() || l.front() != '#') continue;
    l = trim(l.substr(1));
    if (l.rfind("include", 0) != 0) continue;
    l = trim(l.substr(7));
    if (l.empty() || l.front() != '"') continue;
    const std::size_t close = l.find('"', 1);
    if (close == std::string_view::npos) continue;
    out.push_back({line, std::string(l.substr(1, close - 1)), {}});
  }
  return out;
}

std::string IncludeGraph::module_of(std::string_view path) {
  if (path.rfind("src/", 0) != 0) return {};
  const std::string_view rest = path.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

IncludeGraph IncludeGraph::build(
    const std::map<std::string, std::string>& sources) {
  IncludeGraph g;
  for (const auto& [path, content] : sources) {
    std::vector<IncludeEdge> edges = scan_includes(content);
    const std::string_view dir = dirname_of(path);
    for (IncludeEdge& e : edges) {
      // Sibling-relative first (tools/lint includes "lexer.hpp"), then the
      // repo root, then the src/ include root every target compiles with.
      const std::string sibling =
          normalize(dir.empty() ? e.target : std::string(dir) + "/" + e.target);
      if (sources.count(sibling) != 0) {
        e.resolved = sibling;
      } else if (sources.count(normalize(e.target)) != 0) {
        e.resolved = normalize(e.target);
      } else if (sources.count("src/" + e.target) != 0) {
        e.resolved = "src/" + e.target;
      }
    }
    g.files.emplace(path, std::move(edges));
  }
  return g;
}

std::set<std::string> IncludeGraph::reachable_from(
    std::string_view prefix) const {
  std::set<std::string> seen;
  std::vector<const std::string*> work;
  for (const auto& [path, edges] : files) {
    if (path.compare(0, prefix.size(), prefix) == 0 &&
        seen.insert(path).second) {
      work.push_back(&path);
    }
  }
  while (!work.empty()) {
    const std::string& cur = *work.back();
    work.pop_back();
    const auto it = files.find(cur);
    if (it == files.end()) continue;
    for (const IncludeEdge& e : it->second) {
      if (e.resolved.empty()) continue;
      const auto [ins, fresh] = seen.insert(e.resolved);
      if (fresh) work.push_back(&*ins);
    }
  }
  return seen;
}

std::vector<std::vector<std::string>> IncludeGraph::file_cycles() const {
  // Iterative three-color DFS; each back edge yields the cycle spelled out
  // from the current DFS stack. Cycles are canonicalized (rotated to start
  // at their smallest member) and deduplicated so A->B->A reports once no
  // matter which file the walk entered from.
  enum : unsigned char { kWhite, kGray, kBlack };
  std::map<std::string, unsigned char> color;
  for (const auto& [path, edges] : files) color[path] = kWhite;

  std::set<std::vector<std::string>> canonical;
  std::vector<std::string> stack;

  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = kGray;
        stack.push_back(node);
        const auto it = files.find(node);
        if (it != files.end()) {
          for (const IncludeEdge& e : it->second) {
            if (e.resolved.empty()) continue;
            const auto cit = color.find(e.resolved);
            if (cit == color.end()) continue;
            if (cit->second == kGray) {
              const auto at =
                  std::find(stack.begin(), stack.end(), e.resolved);
              std::vector<std::string> cycle(at, stack.end());
              const auto smallest =
                  std::min_element(cycle.begin(), cycle.end());
              std::rotate(cycle.begin(), smallest, cycle.end());
              canonical.insert(std::move(cycle));
            } else if (cit->second == kWhite) {
              dfs(e.resolved);
            }
          }
        }
        stack.pop_back();
        color[node] = kBlack;
      };

  for (const auto& [path, edges] : files)
    if (color[path] == kWhite) dfs(path);
  return {canonical.begin(), canonical.end()};
}

void IncludeGraph::check_layers(
    const std::vector<std::vector<std::string>>& layers,
    std::map<std::string, std::vector<RawFinding>>& out) const {
  std::map<std::string, std::size_t> rank;
  for (std::size_t r = 0; r < layers.size(); ++r)
    for (const std::string& m : layers[r]) rank[m] = r;

  for (const auto& [path, edges] : files) {
    const std::string from = module_of(path);
    if (from.empty()) continue;  // layering governs src/ only
    const auto from_rank = rank.find(from);
    if (from_rank == rank.end()) {
      out[path].push_back(
          {1, "L1",
           "module '" + from +
               "' is not declared in the layering (`layer ...` in "
               ".faaspart-lint); the layering must stay total or the DAG "
               "gate silently narrows"});
      continue;
    }
    for (const IncludeEdge& e : edges) {
      if (e.resolved.empty()) continue;
      const std::string to = module_of(e.resolved);
      if (to.empty() || to == from) continue;
      const auto to_rank = rank.find(to);
      if (to_rank == rank.end()) {
        out[path].push_back(
            {e.line, "L1",
             "include of undeclared module '" + to +
                 "' (add it to a `layer` line in .faaspart-lint)"});
        continue;
      }
      if (to_rank->second > from_rank->second) {
        out[path].push_back(
            {e.line, "L1",
             "upward include: '" + from + "' (layer " +
                 std::to_string(from_rank->second) + ") must not include '" +
                 e.target + "' from higher layer '" + to + "' (layer " +
                 std::to_string(to_rank->second) +
                 "); move the shared type down or invert the dependency"});
      } else if (to_rank->second == from_rank->second) {
        out[path].push_back(
            {e.line, "L1",
             "same-layer include: '" + from + "' and '" + to +
                 "' share a layer and must stay independent peers; pick an "
                 "order in .faaspart-lint or move the shared type down"});
      }
    }
  }

  for (const std::vector<std::string>& cycle : file_cycles()) {
    std::string path;
    for (const std::string& f : cycle) path += (path.empty() ? "" : " -> ") + f;
    path += " -> " + cycle.front();
    out[cycle.front()].push_back(
        {1, "L1", "include cycle: " + path +
                      "; headers in a cycle cannot be compiled stand-alone "
                      "and defeat the layering DAG"});
  }
}

std::string IncludeGraph::to_dot(
    const std::vector<std::vector<std::string>>& layers) const {
  // module -> module -> #includes (src/ only).
  std::map<std::string, std::map<std::string, int>> edges;
  std::set<std::string> modules;
  for (const auto& [path, file_edges] : files) {
    const std::string from = module_of(path);
    if (from.empty()) continue;
    modules.insert(from);
    for (const IncludeEdge& e : file_edges) {
      if (e.resolved.empty()) continue;
      const std::string to = module_of(e.resolved);
      if (to.empty() || to == from) continue;
      modules.insert(to);
      ++edges[from][to];
    }
  }

  std::string dot;
  dot += "// faaspart src/ module include graph — generated by\n";
  dot += "// `faaspart_lint --emit-dot`; layers read bottom-up.\n";
  dot += "digraph src_layering {\n";
  dot += "  rankdir=BT;\n";
  dot += "  node [shape=box, fontname=\"Helvetica\"];\n";
  std::set<std::string> ranked;
  for (std::size_t r = 0; r < layers.size(); ++r) {
    std::string members;
    for (const std::string& m : layers[r]) {
      if (modules.count(m) == 0) continue;
      ranked.insert(m);
      members += " \"" + m + "\";";
    }
    if (members.empty()) continue;
    dot += "  { rank=same; /* layer " + std::to_string(r) + " */" + members +
           " }\n";
  }
  for (const std::string& m : modules)
    if (ranked.count(m) == 0)
      dot += "  \"" + m + "\" [color=red];  // undeclared module\n";
  for (const auto& [from, to_map] : edges)
    for (const auto& [to, n] : to_map)
      dot += "  \"" + from + "\" -> \"" + to + "\" [label=\"" +
             std::to_string(n) + "\"];\n";
  dot += "}\n";
  return dot;
}

}  // namespace faaspart::lint
