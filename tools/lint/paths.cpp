#include "paths.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "cst.hpp"

namespace faaspart::lint {
namespace {

struct VarState {
  enum class S { kLive, kMoved, kSettled };
  S s = S::kLive;
  int adopt_line = 0;
  int loop_depth = 0;  // enclosing loops at adoption; 0 = function scope
};

struct Env {
  std::map<std::string, VarState> vars;
  std::map<std::string, std::string> aliases;  // alias name -> root var

  /// Resolves an identifier through the alias map to a tracked var name,
  /// or "" when the identifier tracks nothing.
  [[nodiscard]] std::string root_of(const std::string& name) const {
    if (vars.count(name) != 0) return name;
    const auto it = aliases.find(name);
    if (it != aliases.end() && vars.count(it->second) != 0) return it->second;
    return {};
  }
};

enum class Term { kNone, kReturn, kThrow, kContinue, kBreak };

struct Walker {
  const std::vector<Token>& t;
  const std::vector<std::string>& owners;
  const std::vector<std::string>& settles;
  std::vector<RawFinding>& out;
  std::string func;
  int loop_depth = 0;
  // One consumption set per enclosing loop/switch: every var consumed
  // anywhere inside, even on arms that terminated. Applied optimistically
  // at the region's exit.
  std::vector<std::set<std::string>*> regions;

  [[nodiscard]] bool is_owner(std::string_view s) const {
    for (const std::string& o : owners)
      if (o == s) return true;
    return false;
  }
  [[nodiscard]] bool is_settle(std::string_view s) const {
    for (const std::string& o : settles)
      if (o == s) return true;
    return false;
  }

  void note_consumed(const std::string& var) {
    for (std::set<std::string>* r : regions) r->insert(var);
  }

  void consume_move(Env& env, const std::string& var) {
    VarState& v = env.vars.at(var);
    if (v.s == VarState::S::kLive) v.s = VarState::S::kMoved;
    note_consumed(var);
  }

  void consume_settle(Env& env, const std::string& var, int line) {
    VarState& v = env.vars.at(var);
    if (v.s == VarState::S::kSettled) {
      out.push_back({line, "E1",
                     "in '" + func + "': request '" + var +
                         "' is settled twice on one path; settle_* must run "
                         "exactly once per request (FP_CHECK(!r.settled) "
                         "would fire at runtime)"});
    }
    v.s = VarState::S::kSettled;
    note_consumed(var);
  }

  void leak(const std::string& var, const VarState& v, int line,
            std::string_view where) {
    out.push_back(
        {line, "E1",
         "in '" + func + "': " + std::string(where) +
             " with adopted request '" + var + "' (adopted line " +
             std::to_string(v.adopt_line) +
             ") neither settled nor transferred; every exit after adoption "
             "must reach exactly one settle_*/std::move (serve/request.hpp)"});
  }

  /// Leak check at a function exit (`return`/`co_return`/function end):
  /// every live var is in scope and must be consumed.
  void check_exit(const Env& env, int line, std::string_view where) {
    for (const auto& [name, v] : env.vars)
      if (v.s == VarState::S::kLive) leak(name, v, line, where);
  }

  /// Leak check at a loop edge (`continue`/`break`/end of body): only the
  /// iteration's own adoptions die here; outer vars live on.
  void check_loop_edge(const Env& env, int line, std::string_view where) {
    for (const auto& [name, v] : env.vars)
      if (v.s == VarState::S::kLive && v.loop_depth >= loop_depth)
        leak(name, v, line, where);
  }

  // --- statement collection -------------------------------------------

  /// Collects one expression/declaration statement starting at `i`: every
  /// token up to the `;` at paren/brace depth zero. Lambda and nested-
  /// function bodies are excluded (they are analyzed independently) but
  /// their headers — in particular init-captures like [r = std::move(r)] —
  /// stay in, so a move into a capture still consumes. Returns the index
  /// one past the `;`.
  std::size_t collect_stmt(std::size_t i, std::size_t end,
                           std::vector<std::size_t>& stmt) {
    int paren = 0;
    int brace = 0;
    while (i < end) {
      if (is_punct(t[i], ";") && paren == 0 && brace == 0) return i + 1;
      if (is_punct(t[i], "(") || is_punct(t[i], "[")) ++paren;
      if (is_punct(t[i], ")") || is_punct(t[i], "]")) --paren;
      if (is_punct(t[i], "{")) {
        const BraceScope bs = classify_open_brace(t, i);
        if (bs.kind != BraceScope::Kind::kPlain) {
          const std::size_t close = match_fwd_brace(t, i);
          if (close == kNpos) return end;
          i = close + 1;
          continue;
        }
        ++brace;
      }
      if (is_punct(t[i], "}")) {
        if (brace == 0) return i;  // ran into the enclosing block's end
        --brace;
      }
      stmt.push_back(i);
      ++i;
    }
    return end;
  }

  // --- statement semantics --------------------------------------------

  /// Adoption, aliasing and consumption over one collected statement.
  void process_stmt(const std::vector<std::size_t>& stmt, Env& env) {
    // Adoption: `Owner name = ...;`, `Owner name{...};`, `Owner name;`.
    for (std::size_t k = 0; k + 1 < stmt.size(); ++k) {
      const Token& ty = t[stmt[k]];
      const Token& nm = t[stmt[k + 1]];
      if (ty.kind != Tok::kIdent || !is_owner(ty.text)) continue;
      if (nm.kind != Tok::kIdent) continue;  // `Owner&`, `Owner>`, ...
      const bool init_ok =
          k + 2 >= stmt.size() || is_punct(t[stmt[k + 2]], "=") ||
          is_punct(t[stmt[k + 2]], "{");
      if (!init_ok) continue;
      env.vars[std::string(nm.text)] =
          {VarState::S::kLive, nm.line, loop_depth};
    }
    // Reference alias: `Type& name = <expr mentioning a tracked var>;`.
    for (std::size_t k = 0; k + 2 < stmt.size(); ++k) {
      if (!is_punct(t[stmt[k]], "&")) continue;
      const Token& nm = t[stmt[k + 1]];
      if (nm.kind != Tok::kIdent || !is_punct(t[stmt[k + 2]], "=")) continue;
      for (std::size_t m = k + 3; m < stmt.size(); ++m) {
        if (t[stmt[m]].kind != Tok::kIdent) continue;
        const std::string root = env.root_of(std::string(t[stmt[m]].text));
        if (!root.empty()) {
          env.aliases[std::string(nm.text)] = root;
          break;
        }
      }
    }
    // Transfer: `std::move(var...)` — also matches field moves like
    // std::move(seq->r), which strip the shell of its payload.
    for (std::size_t k = 0; k + 1 < stmt.size(); ++k) {
      if (!is_ident(t[stmt[k]], "move") || !is_punct(t[stmt[k + 1]], "("))
        continue;
      if (k < 2 || !is_punct(t[stmt[k - 1]], "::") ||
          !is_ident(t[stmt[k - 2]], "std"))
        continue;
      if (k + 2 >= stmt.size() || t[stmt[k + 2]].kind != Tok::kIdent) continue;
      const std::string root = env.root_of(std::string(t[stmt[k + 2]].text));
      if (!root.empty()) consume_move(env, root);
    }
    // Settlement: a settle call naming the var or an alias of it.
    int settle_line = 0;
    for (const std::size_t idx : stmt) {
      if (t[idx].kind == Tok::kIdent && is_settle(t[idx].text)) {
        settle_line = t[idx].line;
        break;
      }
    }
    if (settle_line != 0) {
      std::set<std::string> mentioned;
      for (const std::size_t idx : stmt) {
        if (t[idx].kind != Tok::kIdent) continue;
        const std::string root = env.root_of(std::string(t[idx].text));
        if (!root.empty()) mentioned.insert(root);
      }
      for (const std::string& root : mentioned)
        consume_settle(env, root, settle_line);
    }
  }

  /// `return x;` / `co_return x;`: returning a tracked var (with or
  /// without std::move) transfers it out.
  void process_return_value(const std::vector<std::size_t>& stmt, Env& env) {
    for (const std::size_t idx : stmt) {
      if (t[idx].kind != Tok::kIdent) continue;
      const std::string root = env.root_of(std::string(t[idx].text));
      if (!root.empty()) consume_move(env, root);
    }
  }

  // --- control flow ----------------------------------------------------

  /// Merges branch environments back into `env`. Pessimistic: a var counts
  /// as consumed only if every non-terminated arm consumed it. Terminated
  /// arms were leak-checked at their own terminators. Vars adopted INSIDE
  /// a non-terminated arm go out of scope here — still live means leaked.
  void merge(Env& env, const std::vector<std::pair<Env, Term>>& arms,
             bool exhaustive) {
    for (const auto& [e, term] : arms) {
      if (term != Term::kNone) continue;
      for (const auto& [name, v] : e.vars)
        if (v.s == VarState::S::kLive && env.vars.count(name) == 0)
          leak(name, v, v.adopt_line, "the branch ends");
    }
    std::vector<const Env*> live;
    for (const auto& [e, term] : arms)
      if (term == Term::kNone) live.push_back(&e);
    if (!exhaustive) live.push_back(&env);  // the fall-through arm
    if (live.empty()) return;               // all arms terminated
    for (auto& [name, v] : env.vars) {
      bool settled_any = v.s == VarState::S::kSettled;
      bool consumed_all = true;
      for (const Env* e : live) {
        const auto it = e->vars.find(name);
        if (it == e->vars.end()) continue;
        if (it->second.s == VarState::S::kLive) consumed_all = false;
        if (it->second.s == VarState::S::kSettled) settled_any = true;
      }
      if (consumed_all && v.s == VarState::S::kLive)
        v.s = settled_any ? VarState::S::kSettled : VarState::S::kMoved;
      else if (settled_any)
        v.s = VarState::S::kSettled;
    }
    // New aliases from any arm remain usable afterwards.
    for (const auto& [e, term] : arms)
      for (const auto& [a, r] : e.aliases) env.aliases.emplace(a, r);
  }

  /// Parses one statement starting at `i` (never past `end`), updating
  /// `env`. Returns {next index, how the statement terminates}.
  std::pair<std::size_t, Term> parse_stmt(std::size_t i, std::size_t end,
                                          Env& env) {
    if (i >= end) return {end, Term::kNone};
    const Token& tok = t[i];

    if (is_punct(tok, ";")) return {i + 1, Term::kNone};

    if (is_punct(tok, "{")) {
      const std::size_t close = match_fwd_brace(t, i);
      if (close == kNpos || close > end) return {end, Term::kNone};
      const Term term = parse_block(i + 1, close, env);
      return {close + 1, term};
    }

    if (is_ident(tok, "if")) {
      std::size_t j = i + 1;
      if (j < end && is_ident(t[j], "constexpr")) ++j;
      if (j >= end || !is_punct(t[j], "(")) return {i + 1, Term::kNone};
      const std::size_t close_paren = match_fwd_paren(t, j);
      if (close_paren == kNpos) return {end, Term::kNone};
      {  // the condition can consume: `if (!try_requeue(std::move(seq)))`
        std::vector<std::size_t> cond;
        for (std::size_t k = j + 1; k < close_paren; ++k) cond.push_back(k);
        process_stmt(cond, env);
      }
      std::vector<std::pair<Env, Term>> arms;
      arms.emplace_back(env, Term::kNone);
      auto [after_then, term_then] =
          parse_stmt(close_paren + 1, end, arms.back().first);
      arms.back().second = term_then;
      std::size_t next = after_then;
      bool has_else = false;
      if (next < end && is_ident(t[next], "else")) {
        has_else = true;
        arms.emplace_back(env, Term::kNone);
        auto [after_else, term_else] =
            parse_stmt(next + 1, end, arms.back().first);
        arms.back().second = term_else;
        next = after_else;
      }
      merge(env, arms, /*exhaustive=*/has_else);
      bool all_terminate = has_else;
      for (const auto& [e, term] : arms)
        if (term == Term::kNone) all_terminate = false;
      return {next, all_terminate ? Term::kReturn : Term::kNone};
    }

    if (is_ident(tok, "for") || is_ident(tok, "while")) {
      std::size_t j = i + 1;
      if (j >= end || !is_punct(t[j], "(")) return {i + 1, Term::kNone};
      const std::size_t close_paren = match_fwd_paren(t, j);
      if (close_paren == kNpos) return {end, Term::kNone};
      std::set<std::string> consumed_inside;
      regions.push_back(&consumed_inside);
      ++loop_depth;
      Env body = env;
      {  // header: range-for can adopt per-iteration; either kind can consume
        std::vector<std::size_t> head;
        for (std::size_t k = j + 1; k < close_paren; ++k) head.push_back(k);
        process_stmt(head, body);
      }
      auto [after_body, term] = parse_stmt(close_paren + 1, end, body);
      if (term == Term::kNone)
        check_loop_edge(body, t[close_paren].line, "an iteration can end");
      --loop_depth;
      regions.pop_back();
      for (const std::string& var : consumed_inside) {
        const auto it = env.vars.find(var);
        if (it != env.vars.end() && it->second.s == VarState::S::kLive)
          it->second.s = VarState::S::kMoved;  // optimistic loop exit
      }
      return {after_body, Term::kNone};
    }

    if (is_ident(tok, "do")) {
      std::set<std::string> consumed_inside;
      regions.push_back(&consumed_inside);
      ++loop_depth;
      Env body = env;
      auto [after_body, term] = parse_stmt(i + 1, end, body);
      if (term == Term::kNone)
        check_loop_edge(body, t[i].line, "an iteration can end");
      --loop_depth;
      regions.pop_back();
      for (const std::string& var : consumed_inside) {
        const auto it = env.vars.find(var);
        if (it != env.vars.end() && it->second.s == VarState::S::kLive)
          it->second.s = VarState::S::kMoved;
      }
      // Skip the trailing `while (...) ;`.
      std::size_t next = after_body;
      if (next < end && is_ident(t[next], "while") && next + 1 < end &&
          is_punct(t[next + 1], "(")) {
        const std::size_t cp = match_fwd_paren(t, next + 1);
        next = cp == kNpos ? end : cp + 1;
        if (next < end && is_punct(t[next], ";")) ++next;
      }
      return {next, Term::kNone};
    }

    if (is_ident(tok, "switch")) {
      std::size_t j = i + 1;
      if (j >= end || !is_punct(t[j], "(")) return {i + 1, Term::kNone};
      const std::size_t close_paren = match_fwd_paren(t, j);
      if (close_paren == kNpos) return {end, Term::kNone};
      // The body is a may-or-may-not region like a loop body, minus the
      // per-iteration edge checks (break just leaves the switch).
      std::set<std::string> consumed_inside;
      regions.push_back(&consumed_inside);
      Env body = env;
      auto [after_body, term] = parse_stmt(close_paren + 1, end, body);
      (void)term;
      regions.pop_back();
      for (const std::string& var : consumed_inside) {
        const auto it = env.vars.find(var);
        if (it != env.vars.end() && it->second.s == VarState::S::kLive)
          it->second.s = VarState::S::kMoved;
      }
      return {after_body, Term::kNone};
    }

    if (is_ident(tok, "return") || is_ident(tok, "co_return")) {
      std::vector<std::size_t> stmt;
      const std::size_t next = collect_stmt(i + 1, end, stmt);
      process_stmt(stmt, env);  // `return settle_and_take(r);` still settles
      process_return_value(stmt, env);
      check_exit(env, tok.line,
                 std::string(tok.text) == "return" ? "'return' leaves"
                                                   : "'co_return' leaves");
      return {next, Term::kReturn};
    }

    if (is_ident(tok, "throw")) {
      std::vector<std::size_t> stmt;
      const std::size_t next = collect_stmt(i + 1, end, stmt);
      // Trusted terminator: the federation sheds by throwing ShedError and
      // the catch site settles; unwinding is not a silent leak.
      return {next, Term::kThrow};
    }

    if (is_ident(tok, "continue") || is_ident(tok, "break")) {
      const bool is_continue = tok.text == "continue";
      if (loop_depth > 0)
        check_loop_edge(env, tok.line,
                        is_continue ? "'continue' ends an iteration"
                                    : "'break' leaves the loop");
      std::size_t next = i + 1;
      if (next < end && is_punct(t[next], ";")) ++next;
      return {next, is_continue ? Term::kContinue : Term::kBreak};
    }

    if (is_ident(tok, "else"))  // dangling else from a skipped arm
      return parse_stmt(i + 1, end, env);

    if (is_ident(tok, "case") || is_ident(tok, "default")) {
      // Skip the label head up to `:` so the arm parses as statements.
      std::size_t j = i;
      while (j < end && !is_punct(t[j], ":")) ++j;
      return {j < end ? j + 1 : end, Term::kNone};
    }

    std::vector<std::size_t> stmt;
    const std::size_t next = collect_stmt(i, end, stmt);
    process_stmt(stmt, env);
    return {next, Term::kNone};
  }

  /// Parses statements in [i, end) where t[end] is the block's `}`.
  /// Statements after a terminator are dead and skipped unparsed.
  Term parse_block(std::size_t i, std::size_t end, Env& env) {
    while (i < end) {
      if (is_punct(t[i], "}")) return Term::kNone;  // defensive
      auto [next, term] = parse_stmt(i, end, env);
      if (term != Term::kNone) return term;
      if (next <= i) return Term::kNone;  // no progress: bail quietly
      i = next;
    }
    return Term::kNone;
  }

  void analyze_function(const BraceScope& bs, std::size_t open,
                        std::size_t close) {
    func = bs.name_index != kNpos ? std::string(t[bs.name_index].text)
                                  : "(lambda)";
    loop_depth = 0;
    regions.clear();
    Env env;
    for (std::size_t k = bs.params_begin;
         k + 1 < bs.params_end && k + 1 < t.size(); ++k) {
      // By-value owner parameter: `Owner name` with nothing between; a
      // `&`/`*`/`>` after the type means borrowed, not adopted.
      if (t[k].kind == Tok::kIdent && is_owner(t[k].text) &&
          t[k + 1].kind == Tok::kIdent) {
        env.vars[std::string(t[k + 1].text)] =
            {VarState::S::kLive, t[k + 1].line, 0};
      }
    }
    const Term term = parse_block(open + 1, close, env);
    if (term == Term::kNone)
      check_exit(env, t[close].line, "control reaches the end");
  }
};

}  // namespace

void check_settlement(const LexResult& lx,
                      const std::vector<std::string>& owners,
                      const std::vector<std::string>& settles,
                      std::vector<RawFinding>& out) {
  if (owners.empty() || settles.empty()) return;
  const std::size_t first = out.size();
  const std::vector<Token> t = strip_preprocessor(lx.tokens);
  Walker w{t, owners, settles, out};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(t[i], "{")) continue;
    const BraceScope bs = classify_open_brace(t, i);
    if (bs.kind == BraceScope::Kind::kPlain) continue;
    const std::size_t close = match_fwd_brace(t, i);
    if (close == kNpos) continue;
    w.analyze_function(bs, i, close);
  }
  // Findings come out grouped per function; re-sort into source order so
  // the report reads top to bottom like every other rule.
  std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
                   [](const RawFinding& a, const RawFinding& b) {
                     return a.line < b.line;
                   });
}

}  // namespace faaspart::lint
