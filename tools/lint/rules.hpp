// The per-file determinism/concurrency/settlement checks, run over a
// lexed file (the project-wide passes — include graph, symbols — live in
// include_graph.hpp and symbols.hpp and are driven from lint.cpp).
// Suppression handling lives one layer up (lint.cpp): rules emit every
// match; annotations then filter them and flag their own hygiene issues.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace faaspart::lint {

struct RawFinding {
  int line = 0;
  std::string rule;
  std::string message;
};

/// Runs every rule enabled for `path` (per cfg) over the token stream and
/// appends matches to `out`, in source order per rule.
void run_rules(std::string_view path, const LexResult& lx, const Config& cfg,
               std::vector<RawFinding>& out);

}  // namespace faaspart::lint
