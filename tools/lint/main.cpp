// faaspart_lint CLI.
//
//   faaspart_lint [--root DIR] [--config FILE] [--compile-commands FILE]
//                 [--only PREFIX]... [--json[=FILE]] [--quiet]
//                 [--list-rules] [PATH]...
//
// PATH arguments (files or directories, repo-relative or absolute under
// --root) are walked for .cpp/.cc/.hpp/.h sources; --compile-commands adds
// every translation unit listed in a compile_commands.json. --only filters
// the merged set to the given prefixes. The file list is sorted before
// linting, so output order is stable no matter how inputs were gathered —
// the linter holds itself to the determinism bar it enforces.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using faaspart::lint::Config;
using faaspart::lint::Finding;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" ||
         e == ".hh" || e == ".h";
}

/// Repo-relative, '/'-separated form of `p` under `root`; empty if outside.
std::string relativize(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(fs::weakly_canonical(p, ec),
                                    fs::weakly_canonical(root, ec), ec);
  if (ec || rel.empty()) return {};
  std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) return {};
  return s;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config FILE] [--compile-commands FILE]\n"
               "       [--only PREFIX]... [--json[=FILE]] [--quiet] "
               "[--list-rules] [PATH]...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::string compile_commands;
  std::string json_out;
  bool json_enabled = false;
  bool quiet = false;
  std::vector<std::string> only;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--config") {
      config_path = next("--config");
    } else if (arg == "--compile-commands") {
      compile_commands = next("--compile-commands");
    } else if (arg == "--only") {
      only.push_back(next("--only"));
    } else if (arg == "--json") {
      json_enabled = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_enabled = true;
      json_out = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : faaspart::lint::known_rules())
        std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  // Config: explicit path, else <root>/.faaspart-lint if present.
  Config cfg;
  {
    std::string effective = config_path;
    if (effective.empty()) {
      const fs::path def = fs::path(root) / ".faaspart-lint";
      if (fs::exists(def)) effective = def.string();
    }
    if (!effective.empty()) {
      std::ifstream in(effective, std::ios::binary);
      if (!in) {
        std::cerr << "faaspart-lint: cannot read config " << effective << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string err;
      if (!faaspart::lint::parse_config(buf.str(), cfg, err)) {
        std::cerr << "faaspart-lint: bad config " << effective << ": " << err
                  << "\n";
        return 2;
      }
    }
  }

  // Gather the file set (repo-relative, deduped via std::set = sorted).
  std::set<std::string> files;
  const fs::path root_path(root);
  for (const std::string& p : paths) {
    const fs::path full =
        fs::path(p).is_absolute() ? fs::path(p) : root_path / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (auto it = fs::recursive_directory_iterator(full, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && has_source_ext(it->path())) {
          const std::string rel = relativize(root_path, it->path());
          if (!rel.empty()) files.insert(rel);
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      const std::string rel = relativize(root_path, full);
      files.insert(rel.empty() ? p : rel);
    } else {
      std::cerr << "faaspart-lint: no such file or directory: " << p << "\n";
      return 2;
    }
  }
  if (!compile_commands.empty()) {
    std::ifstream in(compile_commands, std::ios::binary);
    if (!in) {
      std::cerr << "faaspart-lint: cannot read " << compile_commands << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    for (const std::string& f :
         faaspart::lint::compile_commands_files(buf.str())) {
      const fs::path full =
          fs::path(f).is_absolute() ? fs::path(f) : root_path / f;
      if (!has_source_ext(full)) continue;
      const std::string rel = relativize(root_path, full);
      if (!rel.empty()) files.insert(rel);
    }
  }
  if (!only.empty()) {
    for (auto it = files.begin(); it != files.end();) {
      const bool keep = std::any_of(
          only.begin(), only.end(), [&](const std::string& pfx) {
            return it->rfind(pfx, 0) == 0;
          });
      it = keep ? std::next(it) : files.erase(it);
    }
  }
  if (files.empty()) {
    std::cerr << "faaspart-lint: no input files (give PATHs or "
                 "--compile-commands)\n";
    return 2;
  }

  std::vector<Finding> findings;
  int scanned = 0;
  for (const std::string& rel : files) {
    if (cfg.skipped(rel)) continue;
    std::string err;
    if (!faaspart::lint::lint_file(root, rel, cfg, findings, err)) {
      std::cerr << "faaspart-lint: " << err << "\n";
      return 2;
    }
    ++scanned;
  }

  if (json_enabled) {
    std::ofstream jf;
    std::ostream* js = &std::cout;
    if (!json_out.empty() && json_out != "-") {
      jf.open(json_out, std::ios::binary);
      if (!jf) {
        std::cerr << "faaspart-lint: cannot write " << json_out << "\n";
        return 2;
      }
      js = &jf;
    }
    for (const Finding& f : findings)
      *js << faaspart::lint::format_json(f) << "\n";
  }
  if (!quiet && !(json_enabled && json_out.empty())) {
    for (const Finding& f : findings)
      std::cerr << faaspart::lint::format_human(f) << "\n";
  }

  if (!quiet) {
    std::map<std::string, int> by_rule;
    for (const Finding& f : findings) ++by_rule[f.rule];
    std::cerr << "faaspart-lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in " << scanned
              << " file" << (scanned == 1 ? "" : "s");
    if (!findings.empty()) {
      std::cerr << " (";
      bool first = true;
      for (const auto& [rule, n] : by_rule) {
        std::cerr << (first ? "" : " ") << rule << ":" << n;
        first = false;
      }
      std::cerr << ")";
    }
    std::cerr << "\n";
  }
  return findings.empty() ? 0 : 1;
}
