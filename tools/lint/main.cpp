// faaspart_lint CLI.
//
//   faaspart_lint [--root DIR] [--config FILE] [--compile-commands FILE]
//                 [--only PREFIX]... [--json[=FILE]] [--quiet]
//                 [--baseline FILE] [--write-baseline FILE]
//                 [--emit-dot[=FILE]] [--list-rules] [PATH]...
//
// PATH arguments (files or directories, repo-relative or absolute under
// --root) are walked for .cpp/.cc/.hpp/.h sources; --compile-commands adds
// every translation unit listed in a compile_commands.json. --only filters
// the merged set to the given prefixes. The file list is sorted before
// linting, so output order is stable no matter how inputs were gathered —
// the linter holds itself to the determinism bar it enforces.
//
// The whole file set is linted as one project so the include-graph (L1)
// and cross-domain state (S1) passes see the global picture. --emit-dot
// writes the module-level include graph (stdout with no value). --baseline
// (or a `baseline` line in .faaspart-lint) turns on ratchet mode: known
// findings are tolerated, only fresh ones fail, stale entries warn.
// --write-baseline regenerates the committed baseline from the current
// findings and exits 0.
//
// Exit codes: 0 clean (or ratchet-clean), 1 findings, 2 usage or I/O
// error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using faaspart::lint::Config;
using faaspart::lint::Finding;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" ||
         e == ".hh" || e == ".h";
}

/// Repo-relative, '/'-separated form of `p` under `root`; empty if outside.
std::string relativize(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(fs::weakly_canonical(p, ec),
                                    fs::weakly_canonical(root, ec), ec);
  if (ec || rel.empty()) return {};
  std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) return {};
  return s;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config FILE] [--compile-commands FILE]\n"
               "       [--only PREFIX]... [--json[=FILE]] [--quiet]\n"
               "       [--baseline FILE] [--write-baseline FILE] "
               "[--emit-dot[=FILE]]\n"
               "       [--list-rules] [PATH]...\n";
  return 2;
}

/// Slurps a file; returns false on I/O failure.
bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::string compile_commands;
  std::string json_out;
  bool json_enabled = false;
  bool quiet = false;
  std::string baseline_flag;
  std::string write_baseline;
  std::string dot_out;
  bool emit_dot = false;
  std::vector<std::string> only;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--config") {
      config_path = next("--config");
    } else if (arg == "--compile-commands") {
      compile_commands = next("--compile-commands");
    } else if (arg == "--only") {
      only.push_back(next("--only"));
    } else if (arg == "--json") {
      json_enabled = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_enabled = true;
      json_out = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--baseline") {
      baseline_flag = next("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline = next("--write-baseline");
    } else if (arg == "--emit-dot") {
      emit_dot = true;
    } else if (arg.rfind("--emit-dot=", 0) == 0) {
      emit_dot = true;
      dot_out = arg.substr(11);
    } else if (arg == "--list-rules") {
      for (const std::string& r : faaspart::lint::known_rules())
        std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  // Config: explicit path, else <root>/.faaspart-lint if present.
  Config cfg;
  {
    std::string effective = config_path;
    if (effective.empty()) {
      const fs::path def = fs::path(root) / ".faaspart-lint";
      if (fs::exists(def)) effective = def.string();
    }
    if (!effective.empty()) {
      std::ifstream in(effective, std::ios::binary);
      if (!in) {
        std::cerr << "faaspart-lint: cannot read config " << effective << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string err;
      if (!faaspart::lint::parse_config(buf.str(), cfg, err)) {
        std::cerr << "faaspart-lint: bad config " << effective << ": " << err
                  << "\n";
        return 2;
      }
    }
  }

  // Gather the file set (repo-relative, deduped via std::set = sorted).
  std::set<std::string> files;
  const fs::path root_path(root);
  for (const std::string& p : paths) {
    const fs::path full =
        fs::path(p).is_absolute() ? fs::path(p) : root_path / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (auto it = fs::recursive_directory_iterator(full, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && has_source_ext(it->path())) {
          const std::string rel = relativize(root_path, it->path());
          if (!rel.empty()) files.insert(rel);
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      const std::string rel = relativize(root_path, full);
      files.insert(rel.empty() ? p : rel);
    } else {
      std::cerr << "faaspart-lint: no such file or directory: " << p << "\n";
      return 2;
    }
  }
  if (!compile_commands.empty()) {
    std::ifstream in(compile_commands, std::ios::binary);
    if (!in) {
      std::cerr << "faaspart-lint: cannot read " << compile_commands << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    for (const std::string& f :
         faaspart::lint::compile_commands_files(buf.str())) {
      const fs::path full =
          fs::path(f).is_absolute() ? fs::path(f) : root_path / f;
      if (!has_source_ext(full)) continue;
      const std::string rel = relativize(root_path, full);
      if (!rel.empty()) files.insert(rel);
    }
  }
  if (!only.empty()) {
    for (auto it = files.begin(); it != files.end();) {
      const bool keep = std::any_of(
          only.begin(), only.end(), [&](const std::string& pfx) {
            return it->rfind(pfx, 0) == 0;
          });
      it = keep ? std::next(it) : files.erase(it);
    }
  }
  if (files.empty()) {
    std::cerr << "faaspart-lint: no input files (give PATHs or "
                 "--compile-commands)\n";
    return 2;
  }

  // Project mode: load everything, lint once so L1/S1 see the full graph.
  std::map<std::string, std::string> sources;
  int scanned = 0;
  for (const std::string& rel : files) {
    if (cfg.skipped(rel)) continue;
    std::string content;
    if (!read_file(root_path / rel, content)) {
      std::cerr << "faaspart-lint: cannot read " << (root_path / rel).string()
                << "\n";
      return 2;
    }
    sources.emplace(rel, std::move(content));
    ++scanned;
  }

  std::string dot;
  std::vector<Finding> findings =
      faaspart::lint::lint_project(sources, cfg, emit_dot ? &dot : nullptr);

  if (emit_dot) {
    if (dot_out.empty() || dot_out == "-") {
      std::cout << dot;
    } else {
      std::ofstream df(dot_out, std::ios::binary);
      if (!df) {
        std::cerr << "faaspart-lint: cannot write " << dot_out << "\n";
        return 2;
      }
      df << dot;
    }
  }

  if (!write_baseline.empty()) {
    std::ofstream bf(write_baseline, std::ios::binary);
    if (!bf) {
      std::cerr << "faaspart-lint: cannot write " << write_baseline << "\n";
      return 2;
    }
    for (const Finding& f : findings)
      bf << faaspart::lint::format_json(f) << "\n";
    if (!quiet) {
      std::cerr << "faaspart-lint: wrote baseline with " << findings.size()
                << " finding" << (findings.size() == 1 ? "" : "s") << " to "
                << write_baseline << "\n";
    }
    return 0;
  }

  // Ratchet: the --baseline flag wins over the config's `baseline` line.
  std::size_t baselined = 0;
  std::size_t stale = 0;
  std::string baseline_path = baseline_flag;
  if (baseline_path.empty() && !cfg.baseline_path.empty())
    baseline_path = (root_path / cfg.baseline_path).string();
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "faaspart-lint: cannot read baseline " << baseline_path
                << " (use --write-baseline to create it)\n";
      return 2;
    }
    faaspart::lint::Baseline base;
    std::string err;
    if (!faaspart::lint::parse_baseline(text, base, err)) {
      std::cerr << "faaspart-lint: bad baseline " << baseline_path << ": "
                << err << "\n";
      return 2;
    }
    faaspart::lint::BaselineDelta delta =
        faaspart::lint::apply_baseline(findings, base);
    baselined = delta.matched;
    stale = delta.stale;
    findings = std::move(delta.fresh);
  }

  if (json_enabled) {
    std::ofstream jf;
    std::ostream* js = &std::cout;
    if (!json_out.empty() && json_out != "-") {
      jf.open(json_out, std::ios::binary);
      if (!jf) {
        std::cerr << "faaspart-lint: cannot write " << json_out << "\n";
        return 2;
      }
      js = &jf;
    }
    for (const Finding& f : findings)
      *js << faaspart::lint::format_json(f) << "\n";
  }
  if (!quiet && !(json_enabled && json_out.empty())) {
    for (const Finding& f : findings)
      std::cerr << faaspart::lint::format_human(f) << "\n";
  }

  if (!quiet) {
    std::map<std::string, int> by_rule;
    for (const Finding& f : findings) ++by_rule[f.rule];
    std::cerr << "faaspart-lint: " << findings.size()
              << (baselined != 0 || stale != 0 ? " fresh finding"
                                               : " finding")
              << (findings.size() == 1 ? "" : "s") << " in " << scanned
              << " file" << (scanned == 1 ? "" : "s");
    if (!findings.empty()) {
      std::cerr << " (";
      bool first = true;
      for (const auto& [rule, n] : by_rule) {
        std::cerr << (first ? "" : " ") << rule << ":" << n;
        first = false;
      }
      std::cerr << ")";
    }
    if (baselined != 0) std::cerr << ", " << baselined << " baselined";
    if (stale != 0) {
      std::cerr << "\nfaaspart-lint: warning: " << stale
                << " baseline entr" << (stale == 1 ? "y" : "ies")
                << " no longer fire" << (stale == 1 ? "s" : "")
                << " — shrink the baseline (--write-baseline) so the "
                   "ratchet only tightens";
    }
    std::cerr << "\n";
  }
  return findings.empty() ? 0 : 1;
}
