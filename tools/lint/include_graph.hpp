// Include-graph pass for faaspart-lint (rule L1, DESIGN.md §15).
//
// ROADMAP #3 (conservative parallel DES) shards the simulator into
// per-endpoint event domains; that only works if the dependency structure
// of src/ stays a layered DAG — an upward or cyclic include is exactly the
// kind of coupling that would let one domain reach into another behind the
// WAN boundary's back. This pass builds the quoted-include graph over the
// linted file set, aggregates it per module (the first directory under
// src/), and checks it against the layering declared in `.faaspart-lint`:
//
//   layer util
//   layer sim trace
//   ...
//
// declares layers lowest-first; a file may include its own module and any
// module on a strictly lower layer. Same-layer cross-module includes are
// errors too — two modules sharing a layer line is a statement that they
// are peers that must not know about each other, which is what keeps the
// module graph acyclic by construction. File-level include cycles (even
// inside one module) are always errors. The graph is also exported as DOT
// (`--emit-dot`) so DESIGN.md can carry the committed render.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "rules.hpp"

namespace faaspart::lint {

struct IncludeEdge {
  int line = 0;          ///< line of the #include in the including file
  std::string target;    ///< raw quoted include text, e.g. "gpu/mig.hpp"
  std::string resolved;  ///< repo-relative path in the file set; "" if not
};

struct IncludeGraph {
  /// Repo-relative path -> outgoing quoted-include edges, every linted file
  /// present (possibly with no edges), so iteration order is stable.
  std::map<std::string, std::vector<IncludeEdge>> files;

  /// `#include "..."` targets of one source, with line numbers. `<...>`
  /// includes are system/third-party by repo convention and never scanned.
  [[nodiscard]] static std::vector<IncludeEdge> scan_includes(
      std::string_view content);

  /// Module of a path: "src/gpu/mig.hpp" -> "gpu"; "" for anything not of
  /// the form src/<module>/<file>.
  [[nodiscard]] static std::string module_of(std::string_view path);

  /// Builds the graph over `sources` (path -> content). A quoted include is
  /// resolved first relative to the including file's directory, then
  /// relative to the repo root, then under src/ (the include root every
  /// target compiles with); unresolved targets keep an empty `resolved`.
  static IncludeGraph build(const std::map<std::string, std::string>& sources);

  /// Every file reachable from files under `prefix` by following resolved
  /// edges (the start set included).
  [[nodiscard]] std::set<std::string> reachable_from(
      std::string_view prefix) const;

  /// File-level include cycles, each reported once as the cycle's path
  /// starting from its lexicographically smallest member.
  [[nodiscard]] std::vector<std::vector<std::string>> file_cycles() const;

  /// Rule L1 over the declared layering (`layers` lowest-first, one vector
  /// of module names per layer). Emits one finding per offending #include,
  /// keyed by the including file, plus one per file-level cycle keyed by
  /// the cycle's smallest member. Modules seen in src/ but absent from the
  /// declaration are findings as well — the layering must be total or the
  /// gate silently narrows.
  void check_layers(const std::vector<std::vector<std::string>>& layers,
                    std::map<std::string, std::vector<RawFinding>>& out) const;

  /// Module-level DOT graph (src/ only), layers rendered as same-rank
  /// groups, edges labeled with their include count. Deterministic output.
  [[nodiscard]] std::string to_dot(
      const std::vector<std::vector<std::string>>& layers) const;
};

}  // namespace faaspart::lint
