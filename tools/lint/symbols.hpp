// Symbol extraction for faaspart-lint (rule S1, DESIGN.md §15).
//
// A lightweight declaration scanner over the stripped token stream: it
// walks namespace/class/function scopes structurally (no AST, no types)
// and records data members, namespace-scope variables, and function-local
// statics (classes appear as the `parent` of their members, not as rows). That table powers rule S1 — cross-domain state
// isolation for the ROADMAP #3 PDES shard: when the simulator is sharded
// into per-endpoint event domains, any *static* mutable state (a non-const
// global, a `static`/`thread_local` local, a static non-const data member)
// in code reachable from more than one declared endpoint domain is state
// the domains would share behind the WAN boundary's back. lint.cpp decides
// WHICH files are in scope (include-graph reachability from the `domain`
// roots minus the `wan-boundary` allowlist); this pass only answers "what
// static mutable state does this file declare".
//
// Heuristics, stated so the goldens can pin them: a declaration whose
// tokens contain `const`, `constexpr` or `constinit` anywhere counts as
// const; a namespace-scope statement with a `(` before the declared name
// is taken for a function declaration and skipped; members declared with
// function-typed templates (`std::function<void(int)> cb;`) are skipped for
// the same reason. False negatives are acceptable — S1 is a tripwire, not
// a proof — but false positives are not, so every skip errs quiet.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace faaspart::lint {

enum class SymKind {
  kClass,         ///< class/struct/union definition
  kMember,        ///< non-static data member
  kStaticMember,  ///< static data member
  kGlobal,        ///< namespace-scope variable
  kStaticLocal,   ///< function-local static or thread_local
};

struct Symbol {
  SymKind kind = SymKind::kGlobal;
  std::string name;
  std::string parent;  ///< enclosing class or function ("" at file scope)
  int line = 0;
  bool is_const = false;   ///< const/constexpr/constinit anywhere in the decl
  bool is_inline = false;  ///< spelled inline, or declared in a header/class
  std::string type;        ///< best-effort: declaration tokens before the name
};

/// Extracts the symbol table of one file. `path` only feeds the header
/// heuristic (members/functions in .hpp/.h are implicitly inline) and
/// reporting; content is NOT read from disk.
[[nodiscard]] std::vector<Symbol> extract_symbols(std::string_view path,
                                                  const LexResult& lx);

/// Rule S1 over one file's symbols: flags every non-const global, static
/// or thread_local local, and static non-const data member. The caller
/// gates this on the file being cross-domain-shared (see header comment).
void check_state_isolation(const std::vector<Symbol>& symbols,
                           std::vector<RawFinding>& out);

}  // namespace faaspart::lint
