// Token scanner for faaspart-lint.
//
// A deliberately small C++ lexer: it does not build an AST, it produces the
// flat token stream the rule checks in rules.cpp pattern-match against.
// Three things matter and are handled carefully, because getting them wrong
// produces false findings:
//   * comments are captured (with line numbers and whether they stand on a
//     line of their own) — suppression annotations live in them;
//   * string/char/raw-string literals are opaque single tokens, so a string
//     containing "system_clock" never trips rule D1;
//   * `#include <...>` header names become one kHeaderName token (`<thread>`),
//     so rules can ban whole headers without parsing `<` `thread` `>`.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace faaspart::lint {

enum class Tok {
  kIdent,       // identifiers and keywords, including co_await etc.
  kNumber,      // pp-number (never inspected by rules)
  kString,      // "..." or R"(...)" including quotes
  kChar,        // '...'
  kHeaderName,  // <thread> — only from an #include line
  kPunct,       // longest-match punctuation: ::, ->, &&, ...
};

struct Token {
  Tok kind;
  std::string_view text;  // view into the source buffer passed to lex()
  int line;
};

struct Comment {
  std::string_view text;  // body only: no // or /* */ fences
  int line;               // line the comment starts on
  bool own_line;          // no code precedes it on its line
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `src`. Never throws on malformed input (an unterminated string
/// swallows the rest of the file — the compiler will complain, not us).
/// The returned views point into `src`, which must outlive the result.
LexResult lex(std::string_view src);

}  // namespace faaspart::lint
