// faaspart-lint — determinism & concurrency static analysis for this repo.
//
// The simulator's headline guarantee is that every figure/table is
// byte-identical across --jobs counts, replays, and sanitizer tiers
// (DESIGN.md §8). Runtime goldens catch drift after it ships; this tool is
// the compile-time firewall in front of them. It scans the repo's own
// sources (token stream, no AST) and enforces six named rules:
//
//   D1  no wall-clock / entropy sources (system_clock, random_device, rand,
//       time(), getenv, ...) outside the allowlisted RNG and runner shims;
//   D2  no std::unordered_{map,set,...} in order-sensitive code — anything
//       that renders output, hashes state, or feeds scheduling order;
//   C1  no raw threading primitives (std::thread/mutex/atomic/..., their
//       headers, thread_local, .detach()/.join()) outside src/runner;
//   C2  coroutine-lifetime hazards: a capturing lambda used as a coroutine
//       body, or an rvalue-reference parameter into a coroutine frame;
//   O1  no per-call metric registry lookups (`...metrics().counter("x").add()`
//       in one expression) — hot paths must cache the handle (DESIGN.md §7);
//   O2  no span id discarded at creation (`tracer->open_span(...);` as a full
//       statement) — an unclosed span poisons its whole causal tree; bind
//       the id and close it, or wrap it in an obs::SpanGuard (DESIGN.md §12).
//
// Every finding is suppressible only with an inline annotation that names
// the rule AND gives a reason:
//     // faaspart-lint: allow(D1) -- reason visible in review
// placed on the offending line or alone on the line above. Malformed
// (reason-less) and unused annotations are themselves findings (rule X1),
// so suppressions can never silently rot.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace faaspart::lint {

struct Finding {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;
  std::string rule;  // "D1".."O2", or "X1" for annotation hygiene
  std::string message;
};

/// Per-file-configurable rule switches, loaded from `.faaspart-lint` at the
/// repo root (see parse_config). Path prefixes are repo-relative.
struct Config {
  struct AllowEntry {
    std::string rule;
    std::string prefix;
  };
  std::vector<std::string> skip_prefixes;  // not linted at all
  std::vector<AllowEntry> allows;          // rule disabled under prefix

  [[nodiscard]] bool skipped(std::string_view path) const;
  [[nodiscard]] bool rule_enabled(std::string_view rule,
                                  std::string_view path) const;
};

/// Parses the config text. Lines: `skip <prefix>`, `allow <RULE> <prefix>`,
/// blank, or `# comment`. Unknown directives are reported in `error` and
/// make the parse fail (a typo in the lint config must not silently widen
/// the gate).
bool parse_config(std::string_view text, Config& out, std::string& error);

/// All rule ids this build knows, in report order.
const std::vector<std::string>& known_rules();

/// Lints one in-memory source. `path` is the repo-relative path used for
/// config matching and reporting; the file is NOT read from disk, so tests
/// can lint synthetic content against real paths.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content, const Config& cfg);

/// Reads and lints one file from disk. Returns false (and sets `error`)
/// only on I/O failure; findings are appended to `out`.
bool lint_file(const std::string& root, const std::string& rel_path,
               const Config& cfg, std::vector<Finding>& out,
               std::string& error);

/// Extracts the "file" entries from a compile_commands.json buffer.
/// Tolerant, order-preserving, duplicates removed by the caller. Only the
/// `"file" : "value"` pairs are interpreted; everything else is skipped.
std::vector<std::string> compile_commands_files(std::string_view json);

/// One human-readable line: `src/x.cpp:12: D1: message`.
std::string format_human(const Finding& f);

/// One JSON line: {"file":...,"line":N,"rule":...,"message":...}.
std::string format_json(const Finding& f);

}  // namespace faaspart::lint
