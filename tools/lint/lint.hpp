// faaspart-lint — determinism & concurrency static analysis for this repo.
//
// The simulator's headline guarantee is that every figure/table is
// byte-identical across --jobs counts, replays, and sanitizer tiers
// (DESIGN.md §8). Runtime goldens catch drift after it ships; this tool is
// the compile-time firewall in front of them. It scans the repo's own
// sources (token stream, no AST) and enforces nine named rules:
//
//   D1  no wall-clock / entropy sources (system_clock, random_device, rand,
//       time(), getenv, ...) outside the allowlisted RNG and runner shims;
//   D2  no std::unordered_{map,set,...} in order-sensitive code — anything
//       that renders output, hashes state, or feeds scheduling order;
//   C1  no raw threading primitives (std::thread/mutex/atomic/..., their
//       headers, thread_local, .detach()/.join()) outside src/runner;
//   C2  coroutine-lifetime hazards: a capturing lambda used as a coroutine
//       body, or an rvalue-reference parameter into a coroutine frame;
//   O1  no per-call metric registry lookups (`...metrics().counter("x").add()`
//       in one expression) — hot paths must cache the handle (DESIGN.md §7);
//   O2  no span id discarded at creation (`tracer->open_span(...);` as a full
//       statement) — an unclosed span poisons its whole causal tree; bind
//       the id and close it, or wrap it in an obs::SpanGuard (DESIGN.md §12);
//   L1  the src/ module include graph must match the layering DAG declared
//       with `layer` lines — no upward, same-layer, or cyclic includes
//       (include_graph.hpp; project mode only);
//   S1  no static mutable state in files reachable from more than one
//       declared endpoint `domain` unless under a `wan-boundary` prefix
//       (symbols.hpp; project mode only);
//   E1  every adopted request (by-value ServedRequestPtr/SeqPtr) must be
//       settled or transferred exactly once on every path out of the
//       function (paths.hpp).
//
// Every finding is suppressible only with an inline annotation that names
// the rule AND gives a reason: a comment consisting of the tool's name, a
// colon, then `allow(D1) -- reason visible in review` (spelling the marker
// out here would make this header's own comment parse as an annotation),
// placed on the offending line or alone on the line above. Malformed
// (reason-less) and unused annotations are themselves findings (rule X1),
// so suppressions can never silently rot.
//
// CI runs in ratchet mode: findings already recorded in the committed
// baseline (lint_baseline.jsonl) are tolerated-but-tracked, fresh ones
// fail the gate, and baseline entries that no longer fire are flagged so
// the file only ever shrinks.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace faaspart::lint {

struct Finding {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;
  std::string rule;  // "D1".."O2", or "X1" for annotation hygiene
  std::string message;
};

/// Per-file-configurable rule switches, loaded from `.faaspart-lint` at the
/// repo root (see parse_config). Path prefixes are repo-relative.
struct Config {
  struct AllowEntry {
    std::string rule;
    std::string prefix;
  };
  std::vector<std::string> skip_prefixes;  // not linted at all
  std::vector<AllowEntry> allows;          // rule disabled under prefix

  /// Layering for rule L1, lowest layer first; each entry is the set of
  /// src/ modules sharing that layer. Empty => L1 off.
  std::vector<std::vector<std::string>> layers;
  /// Endpoint-domain root prefixes for rule S1 (e.g. "src/serve/engine.").
  /// Fewer than two declared domains => S1 off.
  std::vector<std::string> domains;
  /// Prefixes exempt from S1: the declared WAN boundary, where cross-domain
  /// state is the point (queues, mailboxes, the boundary itself).
  std::vector<std::string> wan_boundary;
  /// Committed findings baseline (repo-relative), "" if none configured.
  std::string baseline_path;
  /// Owner types adopted by value (rule E1) and the settle call names that
  /// consume them. Defaults match serve/request.hpp; `e1-owner` /
  /// `e1-settle` lines replace the defaults on first use.
  std::vector<std::string> e1_owners = {"ServedRequestPtr", "SeqPtr"};
  std::vector<std::string> e1_settles = {"settle_completed", "settle_shed",
                                         "settle_failed"};

  [[nodiscard]] bool skipped(std::string_view path) const;
  [[nodiscard]] bool rule_enabled(std::string_view rule,
                                  std::string_view path) const;
};

/// Parses the config text. Lines: `skip <prefix>`, `allow <RULE> <prefix>`,
/// `layer <module>...` (one line per layer, lowest first), `domain
/// <prefix>`, `wan-boundary <prefix>`, `baseline <path>`, `e1-owner
/// <Type>`, `e1-settle <name>`, blank, or `# comment`. Unknown directives
/// are reported in `error` and make the parse fail (a typo in the lint
/// config must not silently widen the gate).
bool parse_config(std::string_view text, Config& out, std::string& error);

/// All rule ids this build knows, in report order.
const std::vector<std::string>& known_rules();

/// Lints one in-memory source. `path` is the repo-relative path used for
/// config matching and reporting; the file is NOT read from disk, so tests
/// can lint synthetic content against real paths.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content, const Config& cfg);

/// Reads and lints one file from disk. Returns false (and sets `error`)
/// only on I/O failure; findings are appended to `out`.
bool lint_file(const std::string& root, const std::string& rel_path,
               const Config& cfg, std::vector<Finding>& out,
               std::string& error);

/// Lints a whole project at once (path -> content, paths repo-relative).
/// Runs every per-file rule plus the project passes that need the global
/// view: L1 (include-graph layering, when cfg.layers is non-empty) and S1
/// (static mutable state in files include-reachable from 2+ cfg.domains
/// roots and not under a wan-boundary prefix). Inline allow() annotations
/// apply to all of them. If `dot` is non-null it receives the module-level
/// include graph in DOT form. Findings are ordered by path, then line.
std::vector<Finding> lint_project(
    const std::map<std::string, std::string>& sources, const Config& cfg,
    std::string* dot = nullptr);

/// The findings-ratchet baseline: multiset of known findings keyed by
/// (file, rule, message) — deliberately line-number-insensitive so pure
/// code motion above a known finding does not break CI.
struct Baseline {
  std::map<std::string, std::size_t> counts;  // key -> allowed occurrences
  [[nodiscard]] static std::string key(const Finding& f);
};

/// Parses a baseline from JSONL as written by --write-baseline (one
/// format_json line per finding; unknown keys ignored; blank lines
/// skipped). Returns false and sets `error` on a line that has no
/// file/rule/message triple.
bool parse_baseline(std::string_view jsonl, Baseline& out,
                    std::string& error);

/// Result of subtracting a baseline from a findings list.
struct BaselineDelta {
  std::vector<Finding> fresh;   ///< not covered by the baseline: CI fails
  std::size_t matched = 0;      ///< suppressed as already-known
  std::size_t stale = 0;        ///< baseline entries that no longer fire —
                                ///< the ratchet can (and should) shrink
};

/// Applies the ratchet: each finding consumes one baseline count if
/// available, otherwise lands in `fresh`. Leftover counts become `stale`.
BaselineDelta apply_baseline(const std::vector<Finding>& findings,
                             const Baseline& baseline);

/// Extracts the "file" entries from a compile_commands.json buffer.
/// Tolerant, order-preserving, duplicates removed by the caller. Only the
/// `"file" : "value"` pairs are interpreted; everything else is skipped.
std::vector<std::string> compile_commands_files(std::string_view json);

/// One human-readable line: `src/x.cpp:12: D1: message`.
std::string format_human(const Finding& f);

/// One JSON line: {"file":...,"line":N,"rule":...,"message":...}.
std::string format_json(const Finding& f);

}  // namespace faaspart::lint
