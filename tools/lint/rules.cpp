#include "rules.hpp"

#include <array>
#include <string>

#include "cst.hpp"
#include "paths.hpp"

namespace faaspart::lint {
namespace {

using Tokens = std::vector<Token>;

// ---------------------------------------------------------------- D1 ------
// Banned wherever they appear: no spelling of these is innocent in a
// deterministic simulator.
constexpr std::array<std::string_view, 16> kD1Always = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime",
    "timespec_get",  "localtime",    "gmtime",
    "mktime",        "srand",        "rand_r",
    "drand48",       "getentropy",   "random_shuffle",
    "utc_clock"};
// Banned only as a free/qualified call — `rand(`, `std::time(` — so member
// functions like `record->run_time()` never match.
constexpr std::array<std::string_view, 4> kD1Call = {"rand", "time", "clock",
                                                     "getenv"};

void rule_d1(const Tokens& t, std::vector<RawFinding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (one_of(t[i].text, kD1Always)) {
      out.push_back({t[i].line, "D1",
                     "wall-clock/entropy source '" + std::string(t[i].text) +
                         "': simulated time comes from Simulator::now(), "
                         "randomness from a seeded util::Rng"});
      continue;
    }
    if (one_of(t[i].text, kD1Call) && i + 1 < t.size() &&
        is_punct(t[i + 1], "(")) {
      const bool member_call =
          i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
      if (!member_call) {
        out.push_back({t[i].line, "D1",
                       "call to '" + std::string(t[i].text) +
                           "(': wall-clock/entropy/environment reads make "
                           "replays diverge; thread the value in explicitly"});
      }
    }
  }
}

// ---------------------------------------------------------------- D2 ------
constexpr std::array<std::string_view, 4> kD2Types = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void rule_d2(const Tokens& t, std::vector<RawFinding>& out) {
  for (const Token& tok : t) {
    if (tok.kind == Tok::kIdent && one_of(tok.text, kD2Types)) {
      out.push_back({tok.line, "D2",
                     "'std::" + std::string(tok.text) +
                         "' in order-sensitive code: its iteration order is "
                         "implementation-defined and can leak into rendered "
                         "output, hashes, or scheduling order; use std::map, "
                         "a sorted vector, or justify with an annotation"});
    } else if (tok.kind == Tok::kHeaderName &&
               (tok.text == "<unordered_map>" ||
                tok.text == "<unordered_set>")) {
      out.push_back({tok.line, "D2",
                     "include of " + std::string(tok.text) +
                         " in order-sensitive code (see rule D2)"});
    }
  }
}

// ---------------------------------------------------------------- C1 ------
constexpr std::array<std::string_view, 29> kC1Types = {
    "thread",        "jthread",
    "mutex",         "recursive_mutex",
    "timed_mutex",   "recursive_timed_mutex",
    "shared_mutex",  "shared_timed_mutex",
    "condition_variable", "condition_variable_any",
    "atomic",        "atomic_flag",
    "atomic_ref",    "counting_semaphore",
    "binary_semaphore",   "latch",
    "barrier",       "future",
    "shared_future", "promise",
    "packaged_task", "async",
    "lock_guard",    "unique_lock",
    "scoped_lock",   "shared_lock",
    "stop_token",    "call_once",
    "once_flag"};
constexpr std::array<std::string_view, 10> kC1Headers = {
    "<thread>", "<mutex>",           "<shared_mutex>", "<atomic>",
    "<future>", "<condition_variable>", "<semaphore>", "<latch>",
    "<barrier>", "<stop_token>"};

void rule_c1(const Tokens& t, std::vector<RawFinding>& out) {
  bool has_thread_header = false;
  for (const Token& tok : t)
    if (tok.kind == Tok::kHeaderName && one_of(tok.text, kC1Headers))
      has_thread_header = true;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == Tok::kHeaderName && one_of(tok.text, kC1Headers)) {
      out.push_back({tok.line, "C1",
                     "include of " + std::string(tok.text) +
                         ": raw threading is confined to src/runner — the "
                         "simulator itself is single-threaded by design"});
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;
    if (tok.text == "thread_local") {
      out.push_back({tok.line, "C1",
                     "'thread_local': per-thread state outside src/runner "
                     "hides cross-thread sharing from review"});
      continue;
    }
    // std::thread, std::mutex, ... — the std:: qualification keeps members
    // and project types named e.g. `promise` from matching.
    if (one_of(tok.text, kC1Types) && i >= 2 && is_punct(t[i - 1], "::") &&
        is_ident(t[i - 2], "std")) {
      out.push_back({tok.line, "C1",
                     "'std::" + std::string(tok.text) +
                         "' outside src/runner: shared mutable state must "
                         "stay inside the replication runner"});
      continue;
    }
    // .detach()/.join() only count in files that pull in a threading
    // header, so e.g. obs::UtilizationSampler::detach() never matches.
    if (has_thread_header && (tok.text == "detach" || tok.text == "join") &&
        i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      out.push_back({tok.line, "C1",
                     "'." + std::string(tok.text) +
                         "()' on a thread outside src/runner"});
    }
  }
}

// ---------------------------------------------------------------- C2 ------
// Scope-tracking pass. Every `{` is classified by looking backwards:
//   `] {` or `](params){` (with optional mutable/noexcept and a trailing
//   return type)                      -> lambda, capturing if [..] non-empty
//   `name(params){`                   -> function definition
//   `if/for/while/switch/catch (..){` -> control block (transparent)
//   anything else                     -> plain block (transparent)
// A co_await/co_return/co_yield token belongs to the nearest enclosing
// lambda-or-function scope; that owner is checked for (a) captures and
// (b) rvalue-reference parameters. The `{` classifier itself now lives in
// cst.hpp, shared with the symbol and settlement passes.

constexpr std::array<std::string_view, 3> kCoKw = {"co_await", "co_return",
                                                   "co_yield"};

void rule_c2(const Tokens& t, std::vector<RawFinding>& out) {
  std::vector<BraceScope> stack;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_punct(t[i], "{")) {
      stack.push_back(classify_open_brace(t, i));
      continue;
    }
    if (is_punct(t[i], "}")) {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (t[i].kind != Tok::kIdent || !one_of(t[i].text, kCoKw)) continue;

    // Nearest enclosing lambda-or-function owns this coroutine keyword.
    for (std::size_t d = stack.size(); d-- > 0;) {
      BraceScope& owner = stack[d];
      if (owner.kind == BraceScope::Kind::kPlain) continue;
      if (owner.kind == BraceScope::Kind::kLambda && owner.capturing &&
          !owner.reported_capture) {
        owner.reported_capture = true;
        out.push_back(
            {owner.header_line, "C2",
             "capturing lambda used as a coroutine body: captures live in "
             "the lambda object, not the coroutine frame, and dangle if the "
             "lambda dies before the coroutine finishes; pass state as "
             "parameters or keep the lambda alive for the full run"});
      }
      if (!owner.reported_params) {
        owner.reported_params = true;
        for (std::size_t k = owner.params_begin; k < owner.params_end; ++k) {
          if (is_punct(t[k], "&&")) {
            out.push_back(
                {t[k].line, "C2",
                 "rvalue-reference parameter into a coroutine frame: the "
                 "referent dies at the first suspension point; take it by "
                 "value so it moves into the frame"});
          }
        }
      }
      break;
    }
  }
}

// ---------------------------------------------------------------- O1 ------
constexpr std::array<std::string_view, 3> kRegistryLookups = {
    "counter", "gauge", "histogram"};

void rule_o1(const Tokens& t, std::vector<RawFinding>& out) {
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !one_of(t[i].text, kRegistryLookups))
      continue;
    if (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->")) continue;
    if (!is_punct(t[i + 1], "(")) continue;
    const std::size_t close = match_fwd_paren(t, i + 1);
    if (close == kNpos || close + 1 >= t.size()) continue;
    // Lookup immediately chained into a use (`.add()`, `.observe()`, ...):
    // that is a registry map lookup per call. Cached-handle init sites bind
    // the result (`x_ = &m.counter(...)`), so nothing chains and they pass.
    if (is_punct(t[close + 1], ".") || is_punct(t[close + 1], "->")) {
      out.push_back(
          {t[i].line, "O1",
           "per-call metric registry lookup '." + std::string(t[i].text) +
               "(...)' chained straight into a use: hot paths must cache "
               "the handle once (DESIGN.md §7) or annotate a cold path"});
    }
  }
}

// ---------------------------------------------------------------- O2 ------
// A span id discarded at creation can never be closed: the span stays open
// forever, the critical-path analyzer skips its whole request tree, and the
// p99 breakdown silently loses the trace. The id must be consumed — bound
// to a variable, returned, passed as an argument, or handed to an
// obs::SpanGuard whose destructor closes it.

void rule_o2(const Tokens& t, std::vector<RawFinding>& out) {
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "open_span") || !is_punct(t[i + 1], "(")) continue;
    if (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->")) continue;
    // Walk the callee chain back to its first token:
    // `tel->tracer()->open_span`, `tracer_.open_span`, `obs().tr.open_span`.
    std::size_t j = i;
    while (j > 0 && (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->") ||
                     is_punct(t[j - 1], "::"))) {
      if (j >= 2 && t[j - 2].kind == Tok::kIdent) {
        j -= 2;
        continue;
      }
      if (j >= 2 && is_punct(t[j - 2], ")")) {
        const std::size_t open = match_back_paren(t, j - 2);
        if (open == kNpos || open == 0 ||
            t[open - 1].kind != Tok::kIdent) {
          break;  // `(expr)->open_span`: can't see the receiver; stay quiet
        }
        j = open - 1;
        continue;
      }
      break;
    }
    if (j == 0 || (!is_punct(t[j - 1], ".") && !is_punct(t[j - 1], "->") &&
                   !is_punct(t[j - 1], "::"))) {
      // j is the chain's first token; the token before it tells us whether
      // the call's result is consumed. Only a bare statement discards it.
      const bool discarded = j == 0 || is_punct(t[j - 1], ";") ||
                             is_punct(t[j - 1], "{") || is_punct(t[j - 1], "}");
      if (discarded) {
        out.push_back(
            {t[i].line, "O2",
             "span id discarded at creation: an unclosed span poisons its "
             "causal tree; bind the id and close_span() it, or wrap it in "
             "an obs::SpanGuard (DESIGN.md §12)"});
      }
    }
  }
}

}  // namespace

void run_rules(std::string_view path, const LexResult& lx, const Config& cfg,
               std::vector<RawFinding>& out) {
  if (cfg.rule_enabled("D1", path)) rule_d1(lx.tokens, out);
  if (cfg.rule_enabled("D2", path)) rule_d2(lx.tokens, out);
  if (cfg.rule_enabled("C1", path)) rule_c1(lx.tokens, out);
  if (cfg.rule_enabled("C2", path)) rule_c2(lx.tokens, out);
  if (cfg.rule_enabled("O1", path)) rule_o1(lx.tokens, out);
  if (cfg.rule_enabled("O2", path)) rule_o2(lx.tokens, out);
  if (cfg.rule_enabled("E1", path))
    check_settlement(lx, cfg.e1_owners, cfg.e1_settles, out);
}

}  // namespace faaspart::lint
