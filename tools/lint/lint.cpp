#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "include_graph.hpp"
#include "lexer.hpp"
#include "rules.hpp"
#include "symbols.hpp"

namespace faaspart::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// One parsed inline suppression: the marker-prefixed `allow(...) -- reason`
/// comment form (kMarker below; spelling it here would make this doc comment
/// itself parse as an annotation).
struct Annotation {
  int target_line = 0;  // line whose findings it suppresses
  int own_line = 0;     // line the comment itself sits on (for X1 reports)
  std::vector<std::string> rules;
  bool used = false;
};

constexpr std::string_view kMarker = "faaspart-lint:";

}  // namespace

bool Config::skipped(std::string_view path) const {
  return std::any_of(skip_prefixes.begin(), skip_prefixes.end(),
                     [&](const std::string& p) { return starts_with(path, p); });
}

bool Config::rule_enabled(std::string_view rule, std::string_view path) const {
  return std::none_of(allows.begin(), allows.end(), [&](const AllowEntry& a) {
    return a.rule == rule && starts_with(path, a.prefix);
  });
}

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "D1", "D2", "C1", "C2", "O1", "O2", "L1", "S1", "E1", "X1"};
  return kRules;
}

namespace {
bool is_known_rule(std::string_view r) {
  const auto& rules = known_rules();
  return std::find(rules.begin(), rules.end(), r) != rules.end();
}

std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream ss{std::string(line)};
  std::string field;
  while (ss >> field) out.push_back(field);
  return out;
}
}  // namespace

bool parse_config(std::string_view text, Config& out, std::string& error) {
  int lineno = 0;
  std::size_t pos = 0;
  bool owners_reset = false;
  bool settles_reset = false;
  std::set<std::string> layered_modules;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::vector<std::string> f = split_fields(line);
    auto fail = [&](const std::string& why) {
      error = "line " + std::to_string(lineno) + ": " + why;
      return false;
    };

    if (f[0] == "skip" && f.size() == 2) {
      out.skip_prefixes.push_back(f[1]);
    } else if (f[0] == "allow" && f.size() == 3) {
      if (!is_known_rule(f[1]) || f[1] == "X1")
        return fail("unknown rule '" + f[1] + "' (X1 cannot be disabled)");
      out.allows.push_back({f[1], f[2]});
    } else if (f[0] == "layer" && f.size() >= 2) {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!layered_modules.insert(f[i]).second)
          return fail("module '" + f[i] +
                      "' appears in two layers; the layering must be a "
                      "function of module name");
      }
      out.layers.emplace_back(f.begin() + 1, f.end());
    } else if (f[0] == "domain" && f.size() == 2) {
      out.domains.push_back(f[1]);
    } else if (f[0] == "wan-boundary" && f.size() == 2) {
      out.wan_boundary.push_back(f[1]);
    } else if (f[0] == "baseline" && f.size() == 2) {
      if (!out.baseline_path.empty())
        return fail("duplicate 'baseline' (already '" + out.baseline_path +
                    "')");
      out.baseline_path = f[1];
    } else if (f[0] == "e1-owner" && f.size() == 2) {
      if (!owners_reset) {
        out.e1_owners.clear();  // explicit list replaces the defaults
        owners_reset = true;
      }
      out.e1_owners.push_back(f[1]);
    } else if (f[0] == "e1-settle" && f.size() == 2) {
      if (!settles_reset) {
        out.e1_settles.clear();
        settles_reset = true;
      }
      out.e1_settles.push_back(f[1]);
    } else {
      return fail(
          "expected 'skip <prefix>', 'allow <RULE> <prefix>', 'layer "
          "<module>...', 'domain <prefix>', 'wan-boundary <prefix>', "
          "'baseline <path>', 'e1-owner <Type>' or 'e1-settle <name>', "
          "got '" +
          std::string(line) + "'");
    }
  }
  return true;
}

namespace {

/// Parses annotations out of the comment list; malformed ones become X1
/// findings immediately. `code_lines` is the sorted list of lines that carry
/// at least one token, used to resolve which line an own-line annotation
/// covers (the next code line below it).
std::vector<Annotation> collect_annotations(const LexResult& lx,
                                            std::vector<RawFinding>& x1) {
  std::vector<int> code_lines;
  code_lines.reserve(lx.tokens.size());
  for (const Token& t : lx.tokens) code_lines.push_back(t.line);
  std::sort(code_lines.begin(), code_lines.end());
  code_lines.erase(std::unique(code_lines.begin(), code_lines.end()),
                   code_lines.end());

  std::vector<Annotation> out;
  for (const Comment& c : lx.comments) {
    const std::size_t at = c.text.find(kMarker);
    if (at == std::string_view::npos) continue;
    std::string_view rest = trim(c.text.substr(at + kMarker.size()));

    auto malformed = [&](const std::string& why) {
      x1.push_back({c.line, "X1",
                    "malformed faaspart-lint annotation (" + why +
                        "); expected: faaspart-lint: allow(RULE[,RULE]) "
                        "-- reason"});
    };

    if (!starts_with(rest, "allow")) {
      malformed("only 'allow' is recognised");
      continue;
    }
    rest = trim(rest.substr(5));
    if (rest.empty() || rest.front() != '(') {
      malformed("missing '(' after allow");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      malformed("missing ')'");
      continue;
    }

    Annotation ann;
    std::string_view list = rest.substr(1, close - 1);
    bool bad_rule = false;
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      std::string_view id = trim(
          comma == std::string_view::npos ? list : list.substr(0, comma));
      list = comma == std::string_view::npos ? std::string_view{}
                                             : list.substr(comma + 1);
      if (id.empty()) continue;
      if (!is_known_rule(id) || id == "X1") {
        std::string why = "'";
        why.append(id);
        why += "' is not a suppressible rule";
        malformed(why);
        bad_rule = true;
        break;
      }
      ann.rules.emplace_back(id);
    }
    if (bad_rule) continue;
    if (ann.rules.empty()) {
      malformed("empty rule list");
      continue;
    }

    // The reason is not optional: suppressions must be reviewable.
    std::string_view tail = trim(rest.substr(close + 1));
    if (!starts_with(tail, "--") || trim(tail.substr(2)).empty()) {
      x1.push_back({c.line, "X1",
                    "suppression without a reason: every allow() must end "
                    "with '-- <why this exception is sound>'"});
      continue;
    }

    ann.own_line = c.line;
    if (c.own_line) {
      // Stand-alone comment: covers the next line that has code.
      const auto it =
          std::upper_bound(code_lines.begin(), code_lines.end(), c.line);
      ann.target_line = it != code_lines.end() ? *it : c.line;
    } else {
      ann.target_line = c.line;
    }
    out.push_back(std::move(ann));
  }
  return out;
}

}  // namespace

namespace {

/// Applies inline annotations to one file's raw findings and produces the
/// final per-file report: suppressed findings drop out, unused or
/// malformed annotations come back as X1, and the result is sorted by
/// (line, rule, message). Shared by lint_source and lint_project.
std::vector<Finding> finalize_file(std::string_view path, const LexResult& lx,
                                   std::vector<RawFinding>& raw) {
  std::vector<Finding> findings;
  std::vector<RawFinding> x1;
  std::vector<Annotation> anns = collect_annotations(lx, x1);

  for (RawFinding& f : raw) {
    bool suppressed = false;
    for (Annotation& a : anns) {
      if (a.target_line != f.line) continue;
      if (std::find(a.rules.begin(), a.rules.end(), f.rule) ==
          a.rules.end())
        continue;
      a.used = true;
      suppressed = true;  // keep scanning: sibling annotations stay "used"
    }
    if (!suppressed)
      findings.push_back({std::string(path), f.line, f.rule, f.message});
  }

  for (const Annotation& a : anns) {
    if (a.used) continue;
    std::string rules;
    for (const std::string& r : a.rules)
      rules += (rules.empty() ? "" : ",") + r;
    x1.push_back({a.own_line, "X1",
                  "unused suppression allow(" + rules +
                      "): nothing on the covered line triggers it — remove "
                      "the annotation or fix its placement"});
  }

  for (const RawFinding& f : x1)
    findings.push_back({std::string(path), f.line, f.rule, f.message});

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content, const Config& cfg) {
  if (cfg.skipped(path)) return {};
  const LexResult lx = lex(content);
  std::vector<RawFinding> raw;
  run_rules(path, lx, cfg, raw);
  return finalize_file(path, lx, raw);
}

std::vector<Finding> lint_project(
    const std::map<std::string, std::string>& sources, const Config& cfg,
    std::string* dot) {
  // Per-file passes first; the lex results stay alive because tokens view
  // into the `sources` strings.
  std::map<std::string, LexResult> lexed;
  std::map<std::string, std::vector<RawFinding>> raw;
  for (const auto& [path, content] : sources) {
    if (cfg.skipped(path)) continue;
    lexed.emplace(path, lex(content));
    raw[path];  // every linted file gets an entry even when clean
  }
  for (auto& [path, r] : raw) run_rules(path, lexed.at(path), cfg, r);

  // L1: the include graph is built over everything we lint, so tools/ and
  // bench/ participate as nodes, but layering only governs src/ modules.
  IncludeGraph graph = IncludeGraph::build(sources);
  if (!cfg.layers.empty()) {
    std::map<std::string, std::vector<RawFinding>> l1;
    graph.check_layers(cfg.layers, l1);
    for (auto& [path, fs] : l1) {
      if (cfg.skipped(path)) continue;
      auto it = raw.find(path);
      if (it == raw.end()) continue;
      for (RawFinding& f : fs)
        if (cfg.rule_enabled("L1", path)) it->second.push_back(std::move(f));
    }
  }
  if (dot != nullptr) *dot = graph.to_dot(cfg.layers);

  // S1: a file is cross-domain iff it is include-reachable from two or
  // more declared endpoint-domain roots; the WAN boundary is exempt by
  // declaration — cross-domain state is its whole job.
  if (cfg.domains.size() >= 2) {
    std::map<std::string, int> domain_hits;
    for (const std::string& d : cfg.domains)
      for (const std::string& path : graph.reachable_from(d))
        ++domain_hits[path];
    const auto on_boundary = [&](std::string_view path) {
      return std::any_of(
          cfg.wan_boundary.begin(), cfg.wan_boundary.end(),
          [&](const std::string& p) { return starts_with(path, p); });
    };
    for (const auto& [path, hits] : domain_hits) {
      if (hits < 2 || on_boundary(path) || cfg.skipped(path)) continue;
      if (!cfg.rule_enabled("S1", path)) continue;
      const auto it = lexed.find(path);
      if (it == lexed.end()) continue;
      const std::vector<Symbol> syms = extract_symbols(path, it->second);
      check_state_isolation(syms, raw[path]);
    }
  }

  std::vector<Finding> findings;
  for (auto& [path, r] : raw) {
    std::vector<Finding> fs = finalize_file(path, lexed.at(path), r);
    findings.insert(findings.end(), std::make_move_iterator(fs.begin()),
                    std::make_move_iterator(fs.end()));
  }
  return findings;
}

bool lint_file(const std::string& root, const std::string& rel_path,
               const Config& cfg, std::vector<Finding>& out,
               std::string& error) {
  const std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    error = "cannot read " + full;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::vector<Finding> fs = lint_source(rel_path, content, cfg);
  out.insert(out.end(), std::make_move_iterator(fs.begin()),
             std::make_move_iterator(fs.end()));
  return true;
}

std::vector<std::string> compile_commands_files(std::string_view json) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t key = json.find("\"file\"", pos);
    if (key == std::string_view::npos) break;
    std::size_t p = key + 6;
    while (p < json.size() &&
           std::isspace(static_cast<unsigned char>(json[p])))
      ++p;
    if (p >= json.size() || json[p] != ':') {
      pos = key + 6;
      continue;
    }
    ++p;
    while (p < json.size() &&
           std::isspace(static_cast<unsigned char>(json[p])))
      ++p;
    if (p >= json.size() || json[p] != '"') {
      pos = p;
      continue;
    }
    ++p;
    std::string value;
    while (p < json.size() && json[p] != '"') {
      if (json[p] == '\\' && p + 1 < json.size()) {
        ++p;  // minimal unescape: \" \\ \/ keep the escaped char
      }
      value += json[p++];
    }
    out.push_back(std::move(value));
    pos = p;
  }
  return out;
}

std::string format_human(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
         f.message;
}

namespace {
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string format_json(const Finding& f) {
  return "{\"file\":\"" + json_escape(f.file) +
         "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
         json_escape(f.rule) + "\",\"message\":\"" + json_escape(f.message) +
         "\"}";
}

namespace {

/// Extracts the string value of `"key":"..."` from one JSONL line,
/// unescaping the subset format_json emits. Returns false if absent.
bool json_string_value(std::string_view line, std::string_view key,
                       std::string& out) {
  const std::string pat = "\"" + std::string(key) + "\"";
  std::size_t pos = line.find(pat);
  if (pos == std::string_view::npos) return false;
  pos += pat.size();
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])))
    ++pos;
  if (pos >= line.size() || line[pos] != ':') return false;
  ++pos;
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])))
    ++pos;
  if (pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < line.size() && line[pos] != '"') {
    char c = line[pos++];
    if (c == '\\' && pos < line.size()) {
      const char esc = line[pos++];
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'u': {  // format_json only emits \u00XX for control chars
          if (pos + 4 > line.size()) return false;
          c = static_cast<char>(
              std::stoi(std::string(line.substr(pos, 4)), nullptr, 16));
          pos += 4;
          break;
        }
        default: c = esc;
      }
    }
    out += c;
  }
  return pos < line.size();
}

}  // namespace

std::string Baseline::key(const Finding& f) {
  // Line numbers deliberately excluded: pure code motion above a known
  // finding must not break the ratchet.
  return f.file + '\x1f' + f.rule + '\x1f' + f.message;
}

bool parse_baseline(std::string_view jsonl, Baseline& out,
                    std::string& error) {
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= jsonl.size()) {
    const std::size_t eol = jsonl.find('\n', pos);
    std::string_view line = jsonl.substr(
        pos, eol == std::string_view::npos ? jsonl.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? jsonl.size() + 1 : eol + 1;
    ++lineno;
    line = trim(line);
    if (line.empty()) continue;

    Finding f;
    if (!json_string_value(line, "file", f.file) ||
        !json_string_value(line, "rule", f.rule) ||
        !json_string_value(line, "message", f.message)) {
      error = "baseline line " + std::to_string(lineno) +
              ": expected a faaspart-lint JSONL finding with file/rule/"
              "message";
      return false;
    }
    ++out.counts[Baseline::key(f)];
  }
  return true;
}

BaselineDelta apply_baseline(const std::vector<Finding>& findings,
                             const Baseline& baseline) {
  BaselineDelta delta;
  std::map<std::string, std::size_t> remaining = baseline.counts;
  for (const Finding& f : findings) {
    const auto it = remaining.find(Baseline::key(f));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      ++delta.matched;
    } else {
      delta.fresh.push_back(f);
    }
  }
  for (const auto& [key, n] : remaining) delta.stale += n;
  return delta;
}

}  // namespace faaspart::lint
