#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "lexer.hpp"
#include "rules.hpp"

namespace faaspart::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// A parsed `faaspart-lint: allow(...) -- reason` annotation.
struct Annotation {
  int target_line = 0;  // line whose findings it suppresses
  int own_line = 0;     // line the comment itself sits on (for X1 reports)
  std::vector<std::string> rules;
  bool used = false;
};

constexpr std::string_view kMarker = "faaspart-lint:";

}  // namespace

bool Config::skipped(std::string_view path) const {
  return std::any_of(skip_prefixes.begin(), skip_prefixes.end(),
                     [&](const std::string& p) { return starts_with(path, p); });
}

bool Config::rule_enabled(std::string_view rule, std::string_view path) const {
  return std::none_of(allows.begin(), allows.end(), [&](const AllowEntry& a) {
    return a.rule == rule && starts_with(path, a.prefix);
  });
}

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {"D1", "D2", "C1", "C2",
                                                  "O1", "O2", "X1"};
  return kRules;
}

namespace {
bool is_known_rule(std::string_view r) {
  const auto& rules = known_rules();
  return std::find(rules.begin(), rules.end(), r) != rules.end();
}
}  // namespace

bool parse_config(std::string_view text, Config& out, std::string& error) {
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    std::istringstream ss{std::string(line)};
    std::string directive, a, b, extra;
    ss >> directive >> a >> b >> extra;
    if (directive == "skip" && !a.empty() && b.empty()) {
      out.skip_prefixes.push_back(a);
    } else if (directive == "allow" && !a.empty() && !b.empty() &&
               extra.empty()) {
      if (!is_known_rule(a) || a == "X1") {
        error = "line " + std::to_string(lineno) + ": unknown rule '" + a +
                "' (X1 cannot be disabled)";
        return false;
      }
      out.allows.push_back({a, b});
    } else {
      error = "line " + std::to_string(lineno) +
              ": expected 'skip <prefix>' or 'allow <RULE> <prefix>', got '" +
              std::string(line) + "'";
      return false;
    }
  }
  return true;
}

namespace {

/// Parses annotations out of the comment list; malformed ones become X1
/// findings immediately. `code_lines` is the sorted list of lines that carry
/// at least one token, used to resolve which line an own-line annotation
/// covers (the next code line below it).
std::vector<Annotation> collect_annotations(const LexResult& lx,
                                            std::vector<RawFinding>& x1) {
  std::vector<int> code_lines;
  code_lines.reserve(lx.tokens.size());
  for (const Token& t : lx.tokens) code_lines.push_back(t.line);
  std::sort(code_lines.begin(), code_lines.end());
  code_lines.erase(std::unique(code_lines.begin(), code_lines.end()),
                   code_lines.end());

  std::vector<Annotation> out;
  for (const Comment& c : lx.comments) {
    const std::size_t at = c.text.find(kMarker);
    if (at == std::string_view::npos) continue;
    std::string_view rest = trim(c.text.substr(at + kMarker.size()));

    auto malformed = [&](const std::string& why) {
      x1.push_back({c.line, "X1",
                    "malformed faaspart-lint annotation (" + why +
                        "); expected: faaspart-lint: allow(RULE[,RULE]) "
                        "-- reason"});
    };

    if (!starts_with(rest, "allow")) {
      malformed("only 'allow' is recognised");
      continue;
    }
    rest = trim(rest.substr(5));
    if (rest.empty() || rest.front() != '(') {
      malformed("missing '(' after allow");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      malformed("missing ')'");
      continue;
    }

    Annotation ann;
    std::string_view list = rest.substr(1, close - 1);
    bool bad_rule = false;
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      std::string_view id = trim(
          comma == std::string_view::npos ? list : list.substr(0, comma));
      list = comma == std::string_view::npos ? std::string_view{}
                                             : list.substr(comma + 1);
      if (id.empty()) continue;
      if (!is_known_rule(id) || id == "X1") {
        std::string why = "'";
        why.append(id);
        why += "' is not a suppressible rule";
        malformed(why);
        bad_rule = true;
        break;
      }
      ann.rules.emplace_back(id);
    }
    if (bad_rule) continue;
    if (ann.rules.empty()) {
      malformed("empty rule list");
      continue;
    }

    // The reason is not optional: suppressions must be reviewable.
    std::string_view tail = trim(rest.substr(close + 1));
    if (!starts_with(tail, "--") || trim(tail.substr(2)).empty()) {
      x1.push_back({c.line, "X1",
                    "suppression without a reason: every allow() must end "
                    "with '-- <why this exception is sound>'"});
      continue;
    }

    ann.own_line = c.line;
    if (c.own_line) {
      // Stand-alone comment: covers the next line that has code.
      const auto it =
          std::upper_bound(code_lines.begin(), code_lines.end(), c.line);
      ann.target_line = it != code_lines.end() ? *it : c.line;
    } else {
      ann.target_line = c.line;
    }
    out.push_back(std::move(ann));
  }
  return out;
}

}  // namespace

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content, const Config& cfg) {
  std::vector<Finding> findings;
  if (cfg.skipped(path)) return findings;

  const LexResult lx = lex(content);
  std::vector<RawFinding> raw;
  run_rules(path, lx, cfg, raw);

  std::vector<RawFinding> x1;
  std::vector<Annotation> anns = collect_annotations(lx, x1);

  for (RawFinding& f : raw) {
    bool suppressed = false;
    for (Annotation& a : anns) {
      if (a.target_line != f.line) continue;
      if (std::find(a.rules.begin(), a.rules.end(), f.rule) ==
          a.rules.end())
        continue;
      a.used = true;
      suppressed = true;  // keep scanning: sibling annotations stay "used"
    }
    if (!suppressed)
      findings.push_back({std::string(path), f.line, f.rule, f.message});
  }

  for (const Annotation& a : anns) {
    if (a.used) continue;
    std::string rules;
    for (const std::string& r : a.rules)
      rules += (rules.empty() ? "" : ",") + r;
    x1.push_back({a.own_line, "X1",
                  "unused suppression allow(" + rules +
                      "): nothing on the covered line triggers it — remove "
                      "the annotation or fix its placement"});
  }

  for (const RawFinding& f : x1)
    findings.push_back({std::string(path), f.line, f.rule, f.message});

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

bool lint_file(const std::string& root, const std::string& rel_path,
               const Config& cfg, std::vector<Finding>& out,
               std::string& error) {
  const std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    error = "cannot read " + full;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::vector<Finding> fs = lint_source(rel_path, content, cfg);
  out.insert(out.end(), std::make_move_iterator(fs.begin()),
             std::make_move_iterator(fs.end()));
  return true;
}

std::vector<std::string> compile_commands_files(std::string_view json) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t key = json.find("\"file\"", pos);
    if (key == std::string_view::npos) break;
    std::size_t p = key + 6;
    while (p < json.size() &&
           std::isspace(static_cast<unsigned char>(json[p])))
      ++p;
    if (p >= json.size() || json[p] != ':') {
      pos = key + 6;
      continue;
    }
    ++p;
    while (p < json.size() &&
           std::isspace(static_cast<unsigned char>(json[p])))
      ++p;
    if (p >= json.size() || json[p] != '"') {
      pos = p;
      continue;
    }
    ++p;
    std::string value;
    while (p < json.size() && json[p] != '"') {
      if (json[p] == '\\' && p + 1 < json.size()) {
        ++p;  // minimal unescape: \" \\ \/ keep the escaped char
      }
      value += json[p++];
    }
    out.push_back(std::move(value));
    pos = p;
  }
  return out;
}

std::string format_human(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
         f.message;
}

namespace {
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string format_json(const Finding& f) {
  return "{\"file\":\"" + json_escape(f.file) +
         "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
         json_escape(f.rule) + "\",\"message\":\"" + json_escape(f.message) +
         "\"}";
}

}  // namespace faaspart::lint
