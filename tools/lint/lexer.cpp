#include "lexer.hpp"

#include <array>
#include <cctype>

namespace faaspart::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuators, longest first so maximal munch works with a
// simple prefix scan. Only operators that can actually start with the same
// character need to be ordered; everything absent falls back to one char.
constexpr std::array<std::string_view, 27> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "++",  "--",  "##", ".*"};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool line_has_code = false;   // any token emitted on the current line
  bool in_pp_line = false;      // inside a preprocessor directive
  bool pp_saw_include = false;  // the directive is #include / #include_next

  auto advance_line = [&] {
    ++line;
    line_has_code = false;
    if (in_pp_line && (i < 2 || src[i - 2] != '\\')) {
      in_pp_line = false;
      pp_saw_include = false;
    }
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      ++i;
      advance_line();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t e = start;
      while (e < n && src[e] != '\n') ++e;
      out.comments.push_back(
          {src.substr(start, e - start), line, !line_has_code});
      i = e;
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const bool own = !line_has_code;
      const std::size_t start = i + 2;
      std::size_t e = start;
      while (e + 1 < n && !(src[e] == '*' && src[e + 1] == '/')) {
        if (src[e] == '\n') ++line;
        ++e;
      }
      out.comments.push_back({src.substr(start, e - start), start_line, own});
      i = (e + 1 < n) ? e + 2 : n;
      // line_has_code is left as-is: /* x */ code is still code's line.
      continue;
    }

    // Preprocessor directive start.
    if (c == '#' && !line_has_code) {
      in_pp_line = true;
      out.tokens.push_back({Tok::kPunct, src.substr(i, 1), line});
      line_has_code = true;
      ++i;
      continue;
    }

    // <header> after #include becomes a single kHeaderName token.
    if (c == '<' && in_pp_line && pp_saw_include) {
      std::size_t e = i + 1;
      while (e < n && src[e] != '>' && src[e] != '\n') ++e;
      if (e < n && src[e] == '>') {
        out.tokens.push_back(
            {Tok::kHeaderName, src.substr(i, e - i + 1), line});
        pp_saw_include = false;
        i = e + 1;
        continue;
      }
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        std::string closer = ")";
        closer.append(src.substr(i + 2, d - (i + 2)));
        closer += '"';
        const std::size_t body = d + 1;
        const std::size_t found = src.find(closer, body);
        const std::size_t e = (found == std::string_view::npos)
                                  ? n
                                  : found + closer.size();
        const int start_line = line;
        for (std::size_t k = i; k < e; ++k)
          if (src[k] == '\n') ++line;
        out.tokens.push_back({Tok::kString, src.substr(i, e - i), start_line});
        line_has_code = true;
        i = e;
        continue;
      }
    }

    // String / char literal (escape-aware).
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t e = i + 1;
      while (e < n && src[e] != quote) {
        if (src[e] == '\\' && e + 1 < n) ++e;
        if (src[e] == '\n') break;  // unterminated; stop at EOL
        ++e;
      }
      if (e < n && src[e] == quote) ++e;
      out.tokens.push_back({quote == '"' ? Tok::kString : Tok::kChar,
                            src.substr(i, e - i), line});
      line_has_code = true;
      i = e;
      continue;
    }

    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t e = i + 1;
      while (e < n && is_ident_char(src[e])) ++e;
      const std::string_view ident = src.substr(i, e - i);
      // A string prefix like u8"..." — re-lex from the quote.
      if (e < n && (src[e] == '"' || src[e] == '\'') &&
          (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
        i = e;
        continue;
      }
      if (in_pp_line && (ident == "include" || ident == "include_next"))
        pp_saw_include = true;
      out.tokens.push_back({Tok::kIdent, ident, line});
      line_has_code = true;
      i = e;
      continue;
    }

    // pp-number: digits, ident chars, ' separators, exponent signs.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t e = i + 1;
      while (e < n) {
        const char d = src[e];
        if (is_ident_char(d) || d == '.') {
          ++e;
        } else if (d == '\'' && e + 1 < n && is_ident_char(src[e + 1])) {
          e += 2;
        } else if ((d == '+' || d == '-') &&
                   (src[e - 1] == 'e' || src[e - 1] == 'E' ||
                    src[e - 1] == 'p' || src[e - 1] == 'P')) {
          ++e;
        } else {
          break;
        }
      }
      out.tokens.push_back({Tok::kNumber, src.substr(i, e - i), line});
      line_has_code = true;
      i = e;
      continue;
    }

    // Punctuation: longest match from the table, else a single character.
    std::string_view text = src.substr(i, 1);
    for (const std::string_view p : kPuncts) {
      if (src.compare(i, p.size(), p) == 0) {
        text = src.substr(i, p.size());
        break;
      }
    }
    out.tokens.push_back({Tok::kPunct, text, line});
    line_has_code = true;
    i += text.size();
  }

  return out;
}

}  // namespace faaspart::lint
