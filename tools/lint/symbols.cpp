#include "symbols.hpp"

#include <array>

#include "cst.hpp"

namespace faaspart::lint {
namespace {

bool is_header(std::string_view path) {
  const auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  return ends_with(".hpp") || ends_with(".hh") || ends_with(".h");
}

// A statement containing any of these is never a variable declaration (or
// is one this scanner must not guess at).
constexpr std::array<std::string_view, 15> kNotADecl = {
    "using",    "typedef",  "friend",   "static_assert", "template",
    "operator", "extern",   "namespace", "class",        "struct",
    "enum",     "union",    "requires", "concept",       "return"};

constexpr std::array<std::string_view, 3> kConstKw = {"const", "constexpr",
                                                      "constinit"};

struct Frame {
  enum class Kind { kFile, kNamespace, kClass, kFunction, kBlock, kOpaque };
  Kind kind = Kind::kFile;
  std::string name;              // class or function name for reporting
  std::vector<std::size_t> buf;  // token indices of the pending statement
};

/// Declared-name extraction over a statement's tokens (indices into `t`):
/// the last identifier before the first top-level `=` (or the end), with a
/// `(` anywhere before that point vetoing the match as a function
/// declaration. Returns kNpos when the statement is not a variable.
std::size_t decl_name_index(const std::vector<Token>& t,
                            const std::vector<std::size_t>& buf) {
  std::size_t name = kNpos;
  for (const std::size_t idx : buf) {
    const Token& tok = t[idx];
    if (is_punct(tok, "=")) break;
    if (is_punct(tok, "(")) return kNpos;  // function decl / ctor call
    if (tok.kind == Tok::kIdent && !one_of(tok.text, kConstKw) &&
        tok.text != "static" && tok.text != "thread_local" &&
        tok.text != "inline" && tok.text != "mutable" &&
        tok.text != "volatile") {
      name = idx;
    }
  }
  return name;
}

bool buf_has_ident(const std::vector<Token>& t,
                   const std::vector<std::size_t>& buf, std::string_view s,
                   bool stop_at_assign = true) {
  for (const std::size_t idx : buf) {
    if (stop_at_assign && is_punct(t[idx], "=")) return false;
    if (is_ident(t[idx], s)) return true;
  }
  return false;
}

std::string type_text(const std::vector<Token>& t,
                      const std::vector<std::size_t>& buf,
                      std::size_t name_idx) {
  std::string out;
  for (const std::size_t idx : buf) {
    if (idx == name_idx) break;
    const std::string_view s = t[idx].text;
    if (s == "static" || s == "thread_local" || s == "inline" ||
        s == "mutable") {
      continue;  // storage/decl specifiers are not part of the type
    }
    if (!out.empty() && t[idx].kind == Tok::kIdent &&
        out.back() != ':' && out.back() != '<' && out.back() != '*' &&
        out.back() != '&') {
      out += ' ';
    }
    out.append(s);
  }
  return out;
}

}  // namespace

std::vector<Symbol> extract_symbols(std::string_view path,
                                    const LexResult& lx) {
  const std::vector<Token> t = strip_preprocessor(lx.tokens);
  const bool header = is_header(path);

  std::vector<Symbol> out;
  std::vector<Frame> stack;
  stack.push_back({Frame::Kind::kFile, "", {}});

  const auto enclosing_class = [&]() -> std::string {
    for (std::size_t d = stack.size(); d-- > 0;)
      if (stack[d].kind == Frame::Kind::kClass) return stack[d].name;
    return {};
  };
  const auto enclosing_function = [&]() -> std::string {
    for (std::size_t d = stack.size(); d-- > 0;)
      if (stack[d].kind == Frame::Kind::kFunction) return stack[d].name;
    return {};
  };

  // Emits the pending statement of `f` as a symbol if it declares one.
  const auto flush_statement = [&](Frame& f) {
    std::vector<std::size_t> buf;
    buf.swap(f.buf);
    if (buf.empty()) return;
    const Frame::Kind k = f.kind;

    if (k == Frame::Kind::kFunction || k == Frame::Kind::kBlock) {
      // Only function-local statics matter; everything else is per-call.
      const Token& first = t[buf.front()];
      if (!is_ident(first, "static") && !is_ident(first, "thread_local"))
        return;
      const std::size_t name = decl_name_index(t, buf);
      if (name == kNpos) return;
      Symbol s;
      s.kind = SymKind::kStaticLocal;
      s.name = std::string(t[name].text);
      s.parent = enclosing_function();
      s.line = t[name].line;
      for (const std::size_t idx : buf) {
        if (is_punct(t[idx], "=")) break;
        if (t[idx].kind == Tok::kIdent && one_of(t[idx].text, kConstKw))
          s.is_const = true;
      }
      s.is_inline = header;
      s.type = type_text(t, buf, name);
      out.push_back(std::move(s));
      return;
    }
    if (k != Frame::Kind::kFile && k != Frame::Kind::kNamespace &&
        k != Frame::Kind::kClass) {
      return;
    }
    for (const std::size_t idx : buf) {
      if (is_punct(t[idx], "=")) break;
      if (t[idx].kind == Tok::kIdent && one_of(t[idx].text, kNotADecl)) return;
    }
    const std::size_t name = decl_name_index(t, buf);
    if (name == kNpos) return;
    Symbol s;
    s.name = std::string(t[name].text);
    s.line = t[name].line;
    bool is_static = false;
    for (const std::size_t idx : buf) {
      if (is_punct(t[idx], "=")) break;
      if (t[idx].kind == Tok::kIdent && one_of(t[idx].text, kConstKw))
        s.is_const = true;
      if (is_ident(t[idx], "static")) is_static = true;
      if (is_ident(t[idx], "inline")) s.is_inline = true;
    }
    if (k == Frame::Kind::kClass) {
      s.kind = is_static ? SymKind::kStaticMember : SymKind::kMember;
      s.parent = enclosing_class();
      s.is_inline = true;  // in-class declarations are implicitly inline-ish
    } else {
      s.kind = SymKind::kGlobal;
      s.is_inline = s.is_inline || header;
    }
    s.type = type_text(t, buf, name);
    out.push_back(std::move(s));
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    Frame& cur = stack.back();
    const Token& tok = t[i];

    if (is_punct(tok, ";")) {
      flush_statement(cur);
      continue;
    }
    if (is_punct(tok, ":")) {
      // Access specifiers separate statements at class scope; anything else
      // (base clauses, bitfields, ternaries) just rides in the buffer.
      if (cur.kind == Frame::Kind::kClass && cur.buf.size() == 1 &&
          (is_ident(t[cur.buf[0]], "public") ||
           is_ident(t[cur.buf[0]], "private") ||
           is_ident(t[cur.buf[0]], "protected"))) {
        cur.buf.clear();
        continue;
      }
      cur.buf.push_back(i);
      continue;
    }
    if (is_punct(tok, "}")) {
      if (stack.size() > 1) stack.pop_back();
      stack.back().buf.clear();  // `void f() { ... }` — the head is spent
      continue;
    }
    if (!is_punct(tok, "{")) {
      cur.buf.push_back(i);
      continue;
    }

    // Classify the `{`. Order matters: `template <class T> void f() {` must
    // classify as a function even though its head spells `class`.
    const bool has_namespace = buf_has_ident(t, cur.buf, "namespace", false);
    const bool has_enum = buf_has_ident(t, cur.buf, "enum", false);
    const BraceScope bs = classify_open_brace(t, i);

    if (has_namespace) {
      std::string name = "(anonymous)";
      for (const std::size_t idx : cur.buf)
        if (t[idx].kind == Tok::kIdent && t[idx].text != "namespace" &&
            t[idx].text != "inline")
          name = std::string(t[idx].text);
      cur.buf.clear();
      stack.push_back({Frame::Kind::kNamespace, std::move(name), {}});
      continue;
    }
    if (has_enum) {  // enumerators are constants, never state
      cur.buf.clear();
      stack.push_back({Frame::Kind::kOpaque, "", {}});
      continue;
    }
    if (bs.kind != BraceScope::Kind::kPlain) {
      std::string name = "(lambda)";
      if (bs.name_index != kNpos) name = std::string(t[bs.name_index].text);
      cur.buf.clear();
      stack.push_back({Frame::Kind::kFunction, std::move(name), {}});
      continue;
    }
    // Class head? The LAST class-kw wins so `template <class T> struct X`
    // names X, not T.
    std::size_t class_kw = kNpos;
    for (const std::size_t idx : cur.buf)
      if (is_ident(t[idx], "class") || is_ident(t[idx], "struct") ||
          is_ident(t[idx], "union"))
        class_kw = idx;
    if (class_kw != kNpos) {
      std::string name = "(anonymous)";
      for (const std::size_t idx : cur.buf) {
        if (idx <= class_kw || t[idx].kind != Tok::kIdent) continue;
        if (is_ident(t[idx], "final") || is_ident(t[idx], "alignas")) continue;
        name = std::string(t[idx].text);
        break;
      }
      cur.buf.clear();
      stack.push_back({Frame::Kind::kClass, std::move(name), {}});
      continue;
    }
    if (cur.kind == Frame::Kind::kFunction ||
        cur.kind == Frame::Kind::kBlock) {
      // Control/plain block inside a function: transparent, statics inside
      // still belong to the enclosing function.
      cur.buf.clear();
      stack.push_back({Frame::Kind::kBlock, "", {}});
      continue;
    }
    if (!cur.buf.empty()) {
      // Brace init at class/namespace scope (`int x{0};`): fold the braces
      // into the pending statement by skipping to the match.
      const std::size_t close = match_fwd_brace(t, i);
      if (close == kNpos) break;  // unbalanced; stop quietly
      i = close;
      continue;
    }
    stack.push_back({Frame::Kind::kOpaque, "", {}});
  }
  return out;
}

void check_state_isolation(const std::vector<Symbol>& symbols,
                           std::vector<RawFinding>& out) {
  for (const Symbol& s : symbols) {
    switch (s.kind) {
      case SymKind::kGlobal:
        if (!s.is_const) {
          out.push_back(
              {s.line, "S1",
               "non-const namespace-scope variable '" + s.name +
                   "' is process-wide mutable state: with per-endpoint event "
                   "domains (ROADMAP #3) every domain would share it behind "
                   "the WAN boundary's back; make it const, move it into a "
                   "domain-owned object, or add it to the wan-boundary "
                   "allowlist"});
        }
        break;
      case SymKind::kStaticLocal:
        if (!s.is_const) {
          out.push_back(
              {s.line, "S1",
               "function-local '" + s.type + " " + s.name + "' in '" +
                   (s.parent.empty() ? "?" : s.parent) +
                   "' persists across calls and is shared by every domain "
                   "that executes this code; hoist it into a domain-owned "
                   "object or justify it with an annotation"});
        }
        break;
      case SymKind::kStaticMember:
        if (!s.is_const) {
          out.push_back(
              {s.line, "S1",
               "static non-const member '" + s.name + "' of '" + s.parent +
                   "' is shared by every instance across all endpoint "
                   "domains; make it per-instance or route it through the "
                   "WAN boundary"});
        }
        break;
      case SymKind::kClass:
      case SymKind::kMember:
        break;
    }
  }
}

}  // namespace faaspart::lint
