#include "cst.hpp"

namespace faaspart::lint {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == Tok::kPunct && t.text == p;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == Tok::kIdent && t.text == s;
}

std::size_t match_back_paren(const std::vector<Token>& t, std::size_t close) {
  int depth = 0;
  for (std::size_t k = close + 1; k-- > 0;) {
    if (is_punct(t[k], ")")) ++depth;
    if (is_punct(t[k], "(") && --depth == 0) return k;
  }
  return kNpos;
}

std::size_t match_fwd_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t k = open; k < t.size(); ++k) {
    if (is_punct(t[k], "(")) ++depth;
    if (is_punct(t[k], ")") && --depth == 0) return k;
  }
  return kNpos;
}

std::size_t match_back_bracket(const std::vector<Token>& t,
                               std::size_t close) {
  int depth = 0;
  for (std::size_t k = close + 1; k-- > 0;) {
    if (is_punct(t[k], "]")) ++depth;
    if (is_punct(t[k], "[") && --depth == 0) return k;
  }
  return kNpos;
}

std::size_t match_fwd_brace(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t k = open; k < t.size(); ++k) {
    if (is_punct(t[k], "{")) ++depth;
    if (is_punct(t[k], "}") && --depth == 0) return k;
  }
  return kNpos;
}

std::vector<Token> strip_preprocessor(const std::vector<Token>& t) {
  std::vector<Token> out;
  out.reserve(t.size());
  std::size_t i = 0;
  while (i < t.size()) {
    // The lexer only emits `#` as the first token of a line when it starts
    // a directive, so a line-leading `#` is unambiguous here.
    const bool directive_start =
        is_punct(t[i], "#") && (out.empty() || out.back().line != t[i].line) &&
        (i == 0 || t[i - 1].line != t[i].line || is_punct(t[i - 1], "#"));
    if (!directive_start) {
      out.push_back(t[i++]);
      continue;
    }
    // Swallow the directive: all tokens on its line, plus any lines a
    // trailing backslash continues onto.
    int line = t[i].line;
    bool continued = false;
    while (i < t.size()) {
      if (t[i].line == line) {
        continued = is_punct(t[i], "\\");
        ++i;
        continue;
      }
      if (!continued) break;
      line = t[i].line;
      continued = is_punct(t[i], "\\");
      ++i;
    }
  }
  return out;
}

namespace {
constexpr std::array<std::string_view, 5> kControlKw = {"if", "for", "while",
                                                        "switch", "catch"};
constexpr std::array<std::string_view, 5> kSpecifierKw = {
    "mutable", "noexcept", "const", "override", "final"};
}  // namespace

BraceScope classify_open_brace(const std::vector<Token>& t,
                               std::size_t brace) {
  BraceScope s;
  if (brace == 0) return s;
  std::size_t j = brace - 1;

  // Skip trailing specifiers (`mutable`, `noexcept`, ...).
  while (j > 0 && t[j].kind == Tok::kIdent && one_of(t[j].text, kSpecifierKw))
    --j;

  // Skip a trailing return type `-> sim::Co<faas::AppValue>`: walk back over
  // type-ish tokens; if that walk reaches a `->` preceded by `)`, resume the
  // classification from that `)`.
  {
    std::size_t k = j;
    int steps = 0;
    while (steps++ < 64) {
      const Token& tk = t[k];
      if (is_punct(tk, "->")) {
        if (k >= 1 && is_punct(t[k - 1], ")")) j = k - 1;
        break;
      }
      const bool type_tok =
          tk.kind == Tok::kIdent || tk.kind == Tok::kNumber ||
          is_punct(tk, "::") || is_punct(tk, "<") || is_punct(tk, ">") ||
          is_punct(tk, ">>") || is_punct(tk, ",") || is_punct(tk, "*") ||
          is_punct(tk, "&") || is_punct(tk, "&&");
      if (!type_tok || k == 0) break;
      --k;
    }
  }

  if (is_punct(t[j], "]")) {  // parameterless lambda `[x] {`
    const std::size_t open = match_back_bracket(t, j);
    if (open == kNpos) return s;
    s.kind = BraceScope::Kind::kLambda;
    s.capturing = j - open > 1;
    s.header_line = t[open].line;
    return s;
  }

  if (!is_punct(t[j], ")")) return s;
  const std::size_t open = match_back_paren(t, j);
  if (open == kNpos || open == 0) return s;
  const Token& before = t[open - 1];

  if (is_punct(before, "]")) {  // lambda with parameter list
    const std::size_t lb = match_back_bracket(t, open - 1);
    if (lb == kNpos) return s;
    s.kind = BraceScope::Kind::kLambda;
    s.capturing = (open - 1) - lb > 1;
    s.header_line = t[lb].line;
    s.params_begin = open + 1;
    s.params_end = j;
    return s;
  }

  if (before.kind == Tok::kIdent) {
    if (one_of(before.text, kControlKw)) return s;  // control block
    if (before.text == "constexpr" && open >= 2 && is_ident(t[open - 2], "if"))
      return s;  // `if constexpr (...) {`
    s.kind = BraceScope::Kind::kFunction;
    s.header_line = before.line;
    s.name_index = open - 1;
    s.params_begin = open + 1;
    s.params_end = j;
  }
  return s;
}

}  // namespace faaspart::lint
