// Minimal recursive-descent JSON reader for obs-query's offline loaders.
//
// Deliberately tiny: the tool only ever reads artifacts this repo's own
// exporters wrote (trace.json, and nothing exotic inside it), so this parses
// strict JSON — objects, arrays, strings with the standard escapes, numbers,
// booleans, null — and throws util::Error with a byte offset on anything
// malformed. No streaming, no comments, no trailing commas.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace faaspart::obsquery {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  /// Typed accessors; throw util::Error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; null when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Convenience: member's string / number with a default when absent.
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback = "") const;
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback = 0) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses one JSON document (the whole input; trailing non-space throws).
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace faaspart::obsquery
