#include "loader.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "json.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::obsquery {

namespace {

std::int64_t us_to_ns(double us) {
  return static_cast<std::int64_t>(std::llround(us * 1e3));
}

}  // namespace

std::vector<obs::CausalSpan> load_chrome_spans(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw util::Error("trace.json: no traceEvents array");
  }

  std::vector<obs::CausalSpan> spans;
  for (const JsonValue& ev : events->as_array()) {
    if (!ev.is_object()) continue;
    if (ev.string_or("ph") != "X" || ev.number_or("pid") != 2) continue;
    const JsonValue* args = ev.find("args");
    if (args == nullptr) continue;

    obs::CausalSpan s;
    s.trace = static_cast<std::uint64_t>(ev.number_or("tid"));
    s.id = static_cast<std::uint64_t>(args->number_or("span"));
    s.parent = static_cast<std::uint64_t>(args->number_or("parent"));
    s.kind = ev.string_or("cat");
    // The writer names pid-2 boxes "kind:name"; strip the kind prefix.
    s.name = ev.string_or("name");
    if (s.name.rfind(s.kind + ":", 0) == 0) {
      s.name = s.name.substr(s.kind.size() + 1);
    }
    s.site = args->string_or("site");
    s.tenant = args->string_or("tenant");
    s.note = args->string_or("note");
    s.attempt = static_cast<int>(args->number_or("attempt"));
    s.start = util::TimePoint{us_to_ns(ev.number_or("ts"))};
    s.end = util::TimePoint{s.start.ns + us_to_ns(ev.number_or("dur"))};
    s.open = false;  // the exporter only writes completed slices
    spans.push_back(std::move(s));
  }
  std::sort(spans.begin(), spans.end(),
            [](const obs::CausalSpan& a, const obs::CausalSpan& b) {
              return a.id < b.id;
            });
  return spans;
}

std::string fdump_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default:
        out += '\\';
        out += s[i];
    }
  }
  return out;
}

std::vector<obs::FlightDump> load_fdump(std::istream& in) {
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(in, line) || util::trim(line) != "fdump v1") {
    throw util::Error("fdump: missing 'fdump v1' header");
  }

  std::vector<obs::FlightDump> dumps;
  while (std::getline(in, line)) {
    ++lineno;
    if (util::trim(line).empty()) continue;
    const std::vector<std::string> head = util::split(line, ' ');
    if (head.size() < 7 || head[0] != "dump" || head[2] != "at_ns" ||
        head[4] != "events" || head[6] != "reason") {
      throw util::Error(util::strf("fdump: line ", lineno, ": bad dump header"));
    }
    obs::FlightDump d;
    d.at = util::TimePoint{std::stoll(head[3])};
    const auto expected = static_cast<std::size_t>(std::stoull(head[5]));
    // The reason is everything after " reason " (it may contain spaces).
    const std::string marker = " reason ";
    d.reason = fdump_unescape(line.substr(line.find(marker) + marker.size()));

    bool terminated = false;
    while (std::getline(in, line)) {
      ++lineno;
      if (line == "end") {
        terminated = true;
        break;
      }
      const std::vector<std::string> f = util::split(line, '\t');
      if (f.size() != 6) {
        throw util::Error(
            util::strf("fdump: line ", lineno, ": expected 6 fields"));
      }
      obs::FlightEvent ev;
      ev.at = util::TimePoint{std::stoll(f[0])};
      ev.seq = std::stoull(f[1]);
      ev.key = fdump_unescape(f[2]);
      ev.kind = fdump_unescape(f[3]);
      ev.trace = std::stoull(f[4]);
      ev.message = fdump_unescape(f[5]);
      d.events.push_back(std::move(ev));
    }
    if (!terminated) {
      throw util::Error(
          util::strf("fdump: line ", lineno, ": truncated dump (no 'end')"));
    }
    if (d.events.size() != expected) {
      throw util::Error(util::strf("fdump: dump at line ", lineno, " has ",
                                   d.events.size(), " events, header said ",
                                   expected));
    }
    dumps.push_back(std::move(d));
  }
  return dumps;
}

}  // namespace faaspart::obsquery
