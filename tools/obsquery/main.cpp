// obs-query — offline breakdown queries over a run's exported observability
// artifacts (the directory Telemetry::export_all wrote).
//
//   faaspart_obsquery breakdown runinfo/obs/trace.json [--by tenant]
//       "where did p99 go": per-group latency decomposition from the
//       exported causal spans (same analyzer the benches run live).
//   faaspart_obsquery requests runinfo/obs/trace.json [--top 10]
//       the slowest requests, one line each, with per-segment shares.
//   faaspart_obsquery flight runinfo/obs/flight.fdump [--dump 1] [--key ep-a]
//       post-mortem: replay a flight-recorder dump's merged event ring.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "loader.hpp"
#include "obs/critical_path.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace faaspart;  // tool main: keep call sites short

int usage() {
  std::cerr
      << "usage:\n"
      << "  faaspart_obsquery breakdown <trace.json> [--by function|tenant|site]\n"
      << "  faaspart_obsquery requests <trace.json> [--top N]\n"
      << "  faaspart_obsquery flight <flight.fdump> [--dump N] [--key KEY]\n";
  return 2;
}

std::vector<obs::CausalSpan> spans_of(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::Error("cannot open " + path);
  return obsquery::load_chrome_spans(in);
}

int cmd_breakdown(const std::vector<std::string>& args) {
  obs::GroupBy by = obs::GroupBy::kFunction;
  std::string by_name = "function";
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--by" && i + 1 < args.size()) {
      by_name = args[++i];
    } else {
      return usage();
    }
  }
  if (by_name == "function") {
    by = obs::GroupBy::kFunction;
  } else if (by_name == "tenant") {
    by = obs::GroupBy::kTenant;
  } else if (by_name == "site") {
    by = obs::GroupBy::kSite;
  } else {
    return usage();
  }

  const auto requests = obs::analyze_requests(spans_of(args[0]));
  if (requests.empty()) {
    std::cout << "no closed request trees in " << args[0] << "\n";
    return 0;
  }
  const auto groups = obs::aggregate_breakdowns(requests, by);
  std::cout << obs::render_critical_path(
      groups, util::strf("critical path by ", by_name, " (", requests.size(),
                         " requests) — ", args[0]));
  return 0;
}

int cmd_requests(const std::vector<std::string>& args) {
  std::size_t top = 10;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::stoull(args[++i]));
    } else {
      return usage();
    }
  }
  auto requests = obs::analyze_requests(spans_of(args[0]));
  std::sort(requests.begin(), requests.end(),
            [](const obs::RequestBreakdown& a, const obs::RequestBreakdown& b) {
              return a.total.ns != b.total.ns ? a.total.ns > b.total.ns
                                              : a.root_span < b.root_span;
            });
  if (requests.size() > top) requests.resize(top);
  for (const auto& r : requests) {
    std::cout << "trace " << r.trace << " " << r.name;
    if (!r.tenant.empty()) std::cout << " tenant=" << r.tenant;
    if (!r.site.empty()) std::cout << " via=" << r.site;
    std::cout << " total=" << util::fixed(r.total.seconds(), 3) << "s";
    for (const auto& [segment, d] : r.segments) {
      std::cout << " " << segment << "="
                << util::fixed(d.seconds(), 3) << "s";
    }
    if (!r.note.empty()) std::cout << " note=\"" << r.note << "\"";
    std::cout << "\n";
  }
  return 0;
}

int cmd_flight(const std::vector<std::string>& args) {
  std::size_t which = 0;  // 0 = latest
  std::string key;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--dump" && i + 1 < args.size()) {
      which = static_cast<std::size_t>(std::stoull(args[++i]));
    } else if (args[i] == "--key" && i + 1 < args.size()) {
      key = args[++i];
    } else {
      return usage();
    }
  }
  std::ifstream in(args[0]);
  if (!in) throw util::Error("cannot open " + args[0]);
  const auto dumps = obsquery::load_fdump(in);
  if (dumps.empty()) {
    std::cout << "no dumps in " << args[0] << "\n";
    return 0;
  }
  if (which == 0) which = dumps.size();
  if (which > dumps.size()) {
    throw util::Error(util::strf("dump ", which, " out of range (", dumps.size(),
                                 " dumps)"));
  }
  const obs::FlightDump& d = dumps[which - 1];
  std::cout << "dump " << which << "/" << dumps.size() << " at "
            << util::fixed(d.at.seconds(), 6) << "s reason \"" << d.reason
            << "\" (" << d.events.size() << " events)\n";
  for (const auto& ev : d.events) {
    if (!key.empty() && ev.key != key) continue;
    std::cout << util::fixed(ev.at.seconds(), 6) << "s  " << ev.key << "  "
              << ev.kind << "  " << ev.message;
    if (ev.trace != 0) std::cout << "  [trace " << ev.trace << "]";
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) return usage();
  const std::string cmd = args[0];
  args.erase(args.begin());
  try {
    if (cmd == "breakdown") return cmd_breakdown(args);
    if (cmd == "requests") return cmd_requests(args);
    if (cmd == "flight") return cmd_flight(args);
  } catch (const std::exception& e) {
    std::cerr << "obs-query: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
