// Offline artifact loaders for obs-query.
//
// Two formats come back from a run's export directory:
//   trace.json    — the enriched Chrome trace (obs/chrome.cpp). Pid-2 "X"
//                   events are causal spans; this loader inverts the writer
//                   so obs::analyze_requests runs on exported artifacts
//                   exactly as it runs on a live Tracer.
//   flight.fdump  — the flight recorder's versioned dump file
//                   (obs/flight.cpp write()).
//
// Both loaders throw util::Error with a line/offset on malformed input —
// a truncated artifact should fail loudly, not decompose quietly.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/tracer.hpp"

namespace faaspart::obsquery {

/// Reconstructs causal spans from an enriched Chrome trace. Only pid-2
/// complete ("X") events are spans; resource lanes (pid 1), counters
/// (pid 3), metadata, and flow events are skipped. Spans come back closed,
/// in span-id order, with timestamps re-quantized from the trace's
/// microsecond floats to nanoseconds.
[[nodiscard]] std::vector<obs::CausalSpan> load_chrome_spans(std::istream& in);

/// Parses a .fdump file (any number of dumps, "fdump v1" header).
[[nodiscard]] std::vector<obs::FlightDump> load_fdump(std::istream& in);

/// Reverses obs::fdump_escape.
[[nodiscard]] std::string fdump_unescape(const std::string& s);

}  // namespace faaspart::obsquery
