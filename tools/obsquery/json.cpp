#include "json.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::obsquery {

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw util::Error(util::strf("json: byte ", at, ": ", what));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, util::strf("expected '", c, "'"));
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::make_string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail(pos_, "bad literal");
      return JsonValue::make_bool(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail(pos_, "bad literal");
      return JsonValue::make_bool(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail(pos_, "bad literal");
      return JsonValue::make_null();
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::make_object(std::move(obj));
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::make_array(std::move(arr));
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Our writers only escape control bytes; decode BMP code points
          // to UTF-8 (no surrogate-pair handling — the exporters never emit
          // them).
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4U;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad \\u escape");
            }
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0U | (cp >> 6U));
            out += static_cast<char>(0x80U | (cp & 0x3FU));
          } else {
            out += static_cast<char>(0xE0U | (cp >> 12U));
            out += static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU));
            out += static_cast<char>(0x80U | (cp & 0x3FU));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(start, "expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "bad number");
    return JsonValue::make_number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw util::Error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw util::Error("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw util::Error("json: not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw util::Error("json: not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw util::Error("json: not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<JsonObject>(std::move(o));
  return v;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace faaspart::obsquery
