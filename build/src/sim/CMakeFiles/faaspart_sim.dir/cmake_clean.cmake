file(REMOVE_RECURSE
  "CMakeFiles/faaspart_sim.dir/simulator.cpp.o"
  "CMakeFiles/faaspart_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/faaspart_sim.dir/sync.cpp.o"
  "CMakeFiles/faaspart_sim.dir/sync.cpp.o.d"
  "libfaaspart_sim.a"
  "libfaaspart_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
