# Empty dependencies file for faaspart_sim.
# This may be replaced when dependencies are built.
