file(REMOVE_RECURSE
  "libfaaspart_sim.a"
)
