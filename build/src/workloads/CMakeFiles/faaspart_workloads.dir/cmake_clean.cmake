file(REMOVE_RECURSE
  "CMakeFiles/faaspart_workloads.dir/batching.cpp.o"
  "CMakeFiles/faaspart_workloads.dir/batching.cpp.o.d"
  "CMakeFiles/faaspart_workloads.dir/dnn.cpp.o"
  "CMakeFiles/faaspart_workloads.dir/dnn.cpp.o.d"
  "CMakeFiles/faaspart_workloads.dir/llama.cpp.o"
  "CMakeFiles/faaspart_workloads.dir/llama.cpp.o.d"
  "CMakeFiles/faaspart_workloads.dir/moldesign.cpp.o"
  "CMakeFiles/faaspart_workloads.dir/moldesign.cpp.o.d"
  "CMakeFiles/faaspart_workloads.dir/multiplex_experiment.cpp.o"
  "CMakeFiles/faaspart_workloads.dir/multiplex_experiment.cpp.o.d"
  "CMakeFiles/faaspart_workloads.dir/serving.cpp.o"
  "CMakeFiles/faaspart_workloads.dir/serving.cpp.o.d"
  "libfaaspart_workloads.a"
  "libfaaspart_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
