file(REMOVE_RECURSE
  "libfaaspart_workloads.a"
)
