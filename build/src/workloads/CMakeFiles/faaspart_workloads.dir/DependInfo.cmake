
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/batching.cpp" "src/workloads/CMakeFiles/faaspart_workloads.dir/batching.cpp.o" "gcc" "src/workloads/CMakeFiles/faaspart_workloads.dir/batching.cpp.o.d"
  "/root/repo/src/workloads/dnn.cpp" "src/workloads/CMakeFiles/faaspart_workloads.dir/dnn.cpp.o" "gcc" "src/workloads/CMakeFiles/faaspart_workloads.dir/dnn.cpp.o.d"
  "/root/repo/src/workloads/llama.cpp" "src/workloads/CMakeFiles/faaspart_workloads.dir/llama.cpp.o" "gcc" "src/workloads/CMakeFiles/faaspart_workloads.dir/llama.cpp.o.d"
  "/root/repo/src/workloads/moldesign.cpp" "src/workloads/CMakeFiles/faaspart_workloads.dir/moldesign.cpp.o" "gcc" "src/workloads/CMakeFiles/faaspart_workloads.dir/moldesign.cpp.o.d"
  "/root/repo/src/workloads/multiplex_experiment.cpp" "src/workloads/CMakeFiles/faaspart_workloads.dir/multiplex_experiment.cpp.o" "gcc" "src/workloads/CMakeFiles/faaspart_workloads.dir/multiplex_experiment.cpp.o.d"
  "/root/repo/src/workloads/serving.cpp" "src/workloads/CMakeFiles/faaspart_workloads.dir/serving.cpp.o" "gcc" "src/workloads/CMakeFiles/faaspart_workloads.dir/serving.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faas/CMakeFiles/faaspart_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/faaspart_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/faaspart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/faaspart_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/faaspart_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faaspart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/faaspart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faaspart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
