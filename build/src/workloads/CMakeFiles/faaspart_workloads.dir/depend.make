# Empty dependencies file for faaspart_workloads.
# This may be replaced when dependencies are built.
