file(REMOVE_RECURSE
  "libfaaspart_federation.a"
)
