# Empty dependencies file for faaspart_federation.
# This may be replaced when dependencies are built.
