file(REMOVE_RECURSE
  "CMakeFiles/faaspart_federation.dir/endpoint.cpp.o"
  "CMakeFiles/faaspart_federation.dir/endpoint.cpp.o.d"
  "CMakeFiles/faaspart_federation.dir/service.cpp.o"
  "CMakeFiles/faaspart_federation.dir/service.cpp.o.d"
  "libfaaspart_federation.a"
  "libfaaspart_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
