
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/chrometrace.cpp" "src/trace/CMakeFiles/faaspart_trace.dir/chrometrace.cpp.o" "gcc" "src/trace/CMakeFiles/faaspart_trace.dir/chrometrace.cpp.o.d"
  "/root/repo/src/trace/gantt.cpp" "src/trace/CMakeFiles/faaspart_trace.dir/gantt.cpp.o" "gcc" "src/trace/CMakeFiles/faaspart_trace.dir/gantt.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/trace/CMakeFiles/faaspart_trace.dir/recorder.cpp.o" "gcc" "src/trace/CMakeFiles/faaspart_trace.dir/recorder.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/faaspart_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/faaspart_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/table.cpp" "src/trace/CMakeFiles/faaspart_trace.dir/table.cpp.o" "gcc" "src/trace/CMakeFiles/faaspart_trace.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/faaspart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
