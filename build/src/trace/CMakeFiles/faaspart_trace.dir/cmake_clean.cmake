file(REMOVE_RECURSE
  "CMakeFiles/faaspart_trace.dir/chrometrace.cpp.o"
  "CMakeFiles/faaspart_trace.dir/chrometrace.cpp.o.d"
  "CMakeFiles/faaspart_trace.dir/gantt.cpp.o"
  "CMakeFiles/faaspart_trace.dir/gantt.cpp.o.d"
  "CMakeFiles/faaspart_trace.dir/recorder.cpp.o"
  "CMakeFiles/faaspart_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/faaspart_trace.dir/stats.cpp.o"
  "CMakeFiles/faaspart_trace.dir/stats.cpp.o.d"
  "CMakeFiles/faaspart_trace.dir/table.cpp.o"
  "CMakeFiles/faaspart_trace.dir/table.cpp.o.d"
  "libfaaspart_trace.a"
  "libfaaspart_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
