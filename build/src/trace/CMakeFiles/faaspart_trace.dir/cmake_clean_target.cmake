file(REMOVE_RECURSE
  "libfaaspart_trace.a"
)
