# Empty dependencies file for faaspart_trace.
# This may be replaced when dependencies are built.
