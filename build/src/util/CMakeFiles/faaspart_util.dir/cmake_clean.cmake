file(REMOVE_RECURSE
  "CMakeFiles/faaspart_util.dir/error.cpp.o"
  "CMakeFiles/faaspart_util.dir/error.cpp.o.d"
  "CMakeFiles/faaspart_util.dir/logging.cpp.o"
  "CMakeFiles/faaspart_util.dir/logging.cpp.o.d"
  "CMakeFiles/faaspart_util.dir/rng.cpp.o"
  "CMakeFiles/faaspart_util.dir/rng.cpp.o.d"
  "CMakeFiles/faaspart_util.dir/strings.cpp.o"
  "CMakeFiles/faaspart_util.dir/strings.cpp.o.d"
  "CMakeFiles/faaspart_util.dir/units.cpp.o"
  "CMakeFiles/faaspart_util.dir/units.cpp.o.d"
  "libfaaspart_util.a"
  "libfaaspart_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
