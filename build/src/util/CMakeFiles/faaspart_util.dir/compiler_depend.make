# Empty compiler generated dependencies file for faaspart_util.
# This may be replaced when dependencies are built.
