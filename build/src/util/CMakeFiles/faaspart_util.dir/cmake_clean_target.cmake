file(REMOVE_RECURSE
  "libfaaspart_util.a"
)
