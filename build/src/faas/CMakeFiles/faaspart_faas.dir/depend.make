# Empty dependencies file for faaspart_faas.
# This may be replaced when dependencies are built.
