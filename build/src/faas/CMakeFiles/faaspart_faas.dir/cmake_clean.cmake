file(REMOVE_RECURSE
  "CMakeFiles/faaspart_faas.dir/dfk.cpp.o"
  "CMakeFiles/faaspart_faas.dir/dfk.cpp.o.d"
  "CMakeFiles/faaspart_faas.dir/elastic.cpp.o"
  "CMakeFiles/faaspart_faas.dir/elastic.cpp.o.d"
  "CMakeFiles/faaspart_faas.dir/executor.cpp.o"
  "CMakeFiles/faaspart_faas.dir/executor.cpp.o.d"
  "CMakeFiles/faaspart_faas.dir/loader.cpp.o"
  "CMakeFiles/faaspart_faas.dir/loader.cpp.o.d"
  "CMakeFiles/faaspart_faas.dir/monitoring.cpp.o"
  "CMakeFiles/faaspart_faas.dir/monitoring.cpp.o.d"
  "libfaaspart_faas.a"
  "libfaaspart_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
