file(REMOVE_RECURSE
  "libfaaspart_faas.a"
)
