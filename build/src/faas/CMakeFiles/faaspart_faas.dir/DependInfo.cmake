
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faas/dfk.cpp" "src/faas/CMakeFiles/faaspart_faas.dir/dfk.cpp.o" "gcc" "src/faas/CMakeFiles/faaspart_faas.dir/dfk.cpp.o.d"
  "/root/repo/src/faas/elastic.cpp" "src/faas/CMakeFiles/faaspart_faas.dir/elastic.cpp.o" "gcc" "src/faas/CMakeFiles/faaspart_faas.dir/elastic.cpp.o.d"
  "/root/repo/src/faas/executor.cpp" "src/faas/CMakeFiles/faaspart_faas.dir/executor.cpp.o" "gcc" "src/faas/CMakeFiles/faaspart_faas.dir/executor.cpp.o.d"
  "/root/repo/src/faas/loader.cpp" "src/faas/CMakeFiles/faaspart_faas.dir/loader.cpp.o" "gcc" "src/faas/CMakeFiles/faaspart_faas.dir/loader.cpp.o.d"
  "/root/repo/src/faas/monitoring.cpp" "src/faas/CMakeFiles/faaspart_faas.dir/monitoring.cpp.o" "gcc" "src/faas/CMakeFiles/faaspart_faas.dir/monitoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/faaspart_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/faaspart_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faaspart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/faaspart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faaspart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
