# Empty dependencies file for faaspart_gpu.
# This may be replaced when dependencies are built.
