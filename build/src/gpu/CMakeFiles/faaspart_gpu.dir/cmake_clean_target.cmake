file(REMOVE_RECURSE
  "libfaaspart_gpu.a"
)
