
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/arch.cpp" "src/gpu/CMakeFiles/faaspart_gpu.dir/arch.cpp.o" "gcc" "src/gpu/CMakeFiles/faaspart_gpu.dir/arch.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/gpu/CMakeFiles/faaspart_gpu.dir/device.cpp.o" "gcc" "src/gpu/CMakeFiles/faaspart_gpu.dir/device.cpp.o.d"
  "/root/repo/src/gpu/kernel.cpp" "src/gpu/CMakeFiles/faaspart_gpu.dir/kernel.cpp.o" "gcc" "src/gpu/CMakeFiles/faaspart_gpu.dir/kernel.cpp.o.d"
  "/root/repo/src/gpu/memory.cpp" "src/gpu/CMakeFiles/faaspart_gpu.dir/memory.cpp.o" "gcc" "src/gpu/CMakeFiles/faaspart_gpu.dir/memory.cpp.o.d"
  "/root/repo/src/gpu/mig.cpp" "src/gpu/CMakeFiles/faaspart_gpu.dir/mig.cpp.o" "gcc" "src/gpu/CMakeFiles/faaspart_gpu.dir/mig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/faaspart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/faaspart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faaspart_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
