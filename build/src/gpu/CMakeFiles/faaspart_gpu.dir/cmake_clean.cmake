file(REMOVE_RECURSE
  "CMakeFiles/faaspart_gpu.dir/arch.cpp.o"
  "CMakeFiles/faaspart_gpu.dir/arch.cpp.o.d"
  "CMakeFiles/faaspart_gpu.dir/device.cpp.o"
  "CMakeFiles/faaspart_gpu.dir/device.cpp.o.d"
  "CMakeFiles/faaspart_gpu.dir/kernel.cpp.o"
  "CMakeFiles/faaspart_gpu.dir/kernel.cpp.o.d"
  "CMakeFiles/faaspart_gpu.dir/memory.cpp.o"
  "CMakeFiles/faaspart_gpu.dir/memory.cpp.o.d"
  "CMakeFiles/faaspart_gpu.dir/mig.cpp.o"
  "CMakeFiles/faaspart_gpu.dir/mig.cpp.o.d"
  "libfaaspart_gpu.a"
  "libfaaspart_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
