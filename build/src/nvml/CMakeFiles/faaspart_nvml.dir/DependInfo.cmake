
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvml/manager.cpp" "src/nvml/CMakeFiles/faaspart_nvml.dir/manager.cpp.o" "gcc" "src/nvml/CMakeFiles/faaspart_nvml.dir/manager.cpp.o.d"
  "/root/repo/src/nvml/monitor.cpp" "src/nvml/CMakeFiles/faaspart_nvml.dir/monitor.cpp.o" "gcc" "src/nvml/CMakeFiles/faaspart_nvml.dir/monitor.cpp.o.d"
  "/root/repo/src/nvml/mps_control.cpp" "src/nvml/CMakeFiles/faaspart_nvml.dir/mps_control.cpp.o" "gcc" "src/nvml/CMakeFiles/faaspart_nvml.dir/mps_control.cpp.o.d"
  "/root/repo/src/nvml/smi.cpp" "src/nvml/CMakeFiles/faaspart_nvml.dir/smi.cpp.o" "gcc" "src/nvml/CMakeFiles/faaspart_nvml.dir/smi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/faaspart_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/faaspart_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/faaspart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faaspart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faaspart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
