# Empty compiler generated dependencies file for faaspart_nvml.
# This may be replaced when dependencies are built.
