file(REMOVE_RECURSE
  "libfaaspart_nvml.a"
)
