file(REMOVE_RECURSE
  "CMakeFiles/faaspart_nvml.dir/manager.cpp.o"
  "CMakeFiles/faaspart_nvml.dir/manager.cpp.o.d"
  "CMakeFiles/faaspart_nvml.dir/monitor.cpp.o"
  "CMakeFiles/faaspart_nvml.dir/monitor.cpp.o.d"
  "CMakeFiles/faaspart_nvml.dir/mps_control.cpp.o"
  "CMakeFiles/faaspart_nvml.dir/mps_control.cpp.o.d"
  "CMakeFiles/faaspart_nvml.dir/smi.cpp.o"
  "CMakeFiles/faaspart_nvml.dir/smi.cpp.o.d"
  "libfaaspart_nvml.a"
  "libfaaspart_nvml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_nvml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
