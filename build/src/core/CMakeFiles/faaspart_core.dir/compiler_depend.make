# Empty compiler generated dependencies file for faaspart_core.
# This may be replaced when dependencies are built.
