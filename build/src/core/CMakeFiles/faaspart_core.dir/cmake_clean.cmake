file(REMOVE_RECURSE
  "CMakeFiles/faaspart_core.dir/accelerator.cpp.o"
  "CMakeFiles/faaspart_core.dir/accelerator.cpp.o.d"
  "CMakeFiles/faaspart_core.dir/autoscale.cpp.o"
  "CMakeFiles/faaspart_core.dir/autoscale.cpp.o.d"
  "CMakeFiles/faaspart_core.dir/migplan.cpp.o"
  "CMakeFiles/faaspart_core.dir/migplan.cpp.o.d"
  "CMakeFiles/faaspart_core.dir/partitioner.cpp.o"
  "CMakeFiles/faaspart_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/faaspart_core.dir/reconfigure.cpp.o"
  "CMakeFiles/faaspart_core.dir/reconfigure.cpp.o.d"
  "CMakeFiles/faaspart_core.dir/rightsize.cpp.o"
  "CMakeFiles/faaspart_core.dir/rightsize.cpp.o.d"
  "CMakeFiles/faaspart_core.dir/weightcache.cpp.o"
  "CMakeFiles/faaspart_core.dir/weightcache.cpp.o.d"
  "libfaaspart_core.a"
  "libfaaspart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
