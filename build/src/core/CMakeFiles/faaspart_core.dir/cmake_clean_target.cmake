file(REMOVE_RECURSE
  "libfaaspart_core.a"
)
