file(REMOVE_RECURSE
  "CMakeFiles/faaspart_sched.dir/mps.cpp.o"
  "CMakeFiles/faaspart_sched.dir/mps.cpp.o.d"
  "CMakeFiles/faaspart_sched.dir/timeshare.cpp.o"
  "CMakeFiles/faaspart_sched.dir/timeshare.cpp.o.d"
  "CMakeFiles/faaspart_sched.dir/vgpu.cpp.o"
  "CMakeFiles/faaspart_sched.dir/vgpu.cpp.o.d"
  "libfaaspart_sched.a"
  "libfaaspart_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faaspart_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
