file(REMOVE_RECURSE
  "libfaaspart_sched.a"
)
