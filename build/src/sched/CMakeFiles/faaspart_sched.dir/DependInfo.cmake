
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/mps.cpp" "src/sched/CMakeFiles/faaspart_sched.dir/mps.cpp.o" "gcc" "src/sched/CMakeFiles/faaspart_sched.dir/mps.cpp.o.d"
  "/root/repo/src/sched/timeshare.cpp" "src/sched/CMakeFiles/faaspart_sched.dir/timeshare.cpp.o" "gcc" "src/sched/CMakeFiles/faaspart_sched.dir/timeshare.cpp.o.d"
  "/root/repo/src/sched/vgpu.cpp" "src/sched/CMakeFiles/faaspart_sched.dir/vgpu.cpp.o" "gcc" "src/sched/CMakeFiles/faaspart_sched.dir/vgpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/faaspart_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/faaspart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faaspart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faaspart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
