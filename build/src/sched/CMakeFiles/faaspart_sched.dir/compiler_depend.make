# Empty compiler generated dependencies file for faaspart_sched.
# This may be replaced when dependencies are built.
