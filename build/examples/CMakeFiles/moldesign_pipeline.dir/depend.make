# Empty dependencies file for moldesign_pipeline.
# This may be replaced when dependencies are built.
