file(REMOVE_RECURSE
  "CMakeFiles/moldesign_pipeline.dir/moldesign_pipeline.cpp.o"
  "CMakeFiles/moldesign_pipeline.dir/moldesign_pipeline.cpp.o.d"
  "moldesign_pipeline"
  "moldesign_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldesign_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
