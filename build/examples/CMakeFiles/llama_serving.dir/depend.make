# Empty dependencies file for llama_serving.
# This may be replaced when dependencies are built.
