file(REMOVE_RECURSE
  "CMakeFiles/llama_serving.dir/llama_serving.cpp.o"
  "CMakeFiles/llama_serving.dir/llama_serving.cpp.o.d"
  "llama_serving"
  "llama_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llama_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
