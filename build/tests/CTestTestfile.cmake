# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_nvml[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_faas[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_monitoring[1]_include.cmake")
include("/root/repo/build/tests/test_autoscale[1]_include.cmake")
include("/root/repo/build/tests/test_federation[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
