# Empty dependencies file for test_nvml.
# This may be replaced when dependencies are built.
