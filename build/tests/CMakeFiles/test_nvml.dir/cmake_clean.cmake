file(REMOVE_RECURSE
  "CMakeFiles/test_nvml.dir/test_nvml.cpp.o"
  "CMakeFiles/test_nvml.dir/test_nvml.cpp.o.d"
  "test_nvml"
  "test_nvml.pdb"
  "test_nvml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
