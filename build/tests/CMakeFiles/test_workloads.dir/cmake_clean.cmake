file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/test_workloads_batching.cpp.o"
  "CMakeFiles/test_workloads.dir/test_workloads_batching.cpp.o.d"
  "CMakeFiles/test_workloads.dir/test_workloads_dnn.cpp.o"
  "CMakeFiles/test_workloads.dir/test_workloads_dnn.cpp.o.d"
  "CMakeFiles/test_workloads.dir/test_workloads_llama.cpp.o"
  "CMakeFiles/test_workloads.dir/test_workloads_llama.cpp.o.d"
  "CMakeFiles/test_workloads.dir/test_workloads_moldesign.cpp.o"
  "CMakeFiles/test_workloads.dir/test_workloads_moldesign.cpp.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
