
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gpu_arch.cpp" "tests/CMakeFiles/test_gpu.dir/test_gpu_arch.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/test_gpu_arch.cpp.o.d"
  "/root/repo/tests/test_gpu_device.cpp" "tests/CMakeFiles/test_gpu.dir/test_gpu_device.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/test_gpu_device.cpp.o.d"
  "/root/repo/tests/test_gpu_memory.cpp" "tests/CMakeFiles/test_gpu.dir/test_gpu_memory.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/test_gpu_memory.cpp.o.d"
  "/root/repo/tests/test_gpu_mig.cpp" "tests/CMakeFiles/test_gpu.dir/test_gpu_mig.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/test_gpu_mig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/faaspart_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/faaspart_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/faaspart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/faaspart_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/faaspart_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/faaspart_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/faaspart_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/faaspart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faaspart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faaspart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
