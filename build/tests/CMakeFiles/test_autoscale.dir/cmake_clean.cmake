file(REMOVE_RECURSE
  "CMakeFiles/test_autoscale.dir/test_core_autoscale.cpp.o"
  "CMakeFiles/test_autoscale.dir/test_core_autoscale.cpp.o.d"
  "CMakeFiles/test_autoscale.dir/test_core_migplan.cpp.o"
  "CMakeFiles/test_autoscale.dir/test_core_migplan.cpp.o.d"
  "test_autoscale"
  "test_autoscale.pdb"
  "test_autoscale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
