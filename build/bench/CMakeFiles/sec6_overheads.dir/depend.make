# Empty dependencies file for sec6_overheads.
# This may be replaced when dependencies are built.
