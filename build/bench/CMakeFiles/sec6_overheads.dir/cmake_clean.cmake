file(REMOVE_RECURSE
  "CMakeFiles/sec6_overheads.dir/sec6_overheads.cpp.o"
  "CMakeFiles/sec6_overheads.dir/sec6_overheads.cpp.o.d"
  "sec6_overheads"
  "sec6_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
