file(REMOVE_RECURSE
  "CMakeFiles/fig5_inference_latency.dir/fig5_inference_latency.cpp.o"
  "CMakeFiles/fig5_inference_latency.dir/fig5_inference_latency.cpp.o.d"
  "fig5_inference_latency"
  "fig5_inference_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_inference_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
