file(REMOVE_RECURSE
  "CMakeFiles/kv_context_sweep.dir/kv_context_sweep.cpp.o"
  "CMakeFiles/kv_context_sweep.dir/kv_context_sweep.cpp.o.d"
  "kv_context_sweep"
  "kv_context_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_context_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
