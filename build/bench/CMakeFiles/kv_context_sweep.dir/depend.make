# Empty dependencies file for kv_context_sweep.
# This may be replaced when dependencies are built.
