# Empty dependencies file for fig2_llama_sm_sweep.
# This may be replaced when dependencies are built.
