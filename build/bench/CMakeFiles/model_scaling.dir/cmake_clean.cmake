file(REMOVE_RECURSE
  "CMakeFiles/model_scaling.dir/model_scaling.cpp.o"
  "CMakeFiles/model_scaling.dir/model_scaling.cpp.o.d"
  "model_scaling"
  "model_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
