# Empty dependencies file for fig3_moldesign_timeline.
# This may be replaced when dependencies are built.
