file(REMOVE_RECURSE
  "CMakeFiles/table1_multiplexing.dir/table1_multiplexing.cpp.o"
  "CMakeFiles/table1_multiplexing.dir/table1_multiplexing.cpp.o.d"
  "table1_multiplexing"
  "table1_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
