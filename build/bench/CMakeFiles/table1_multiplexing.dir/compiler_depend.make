# Empty compiler generated dependencies file for table1_multiplexing.
# This may be replaced when dependencies are built.
