# Empty dependencies file for cross_arch.
# This may be replaced when dependencies are built.
