file(REMOVE_RECURSE
  "CMakeFiles/cross_arch.dir/cross_arch.cpp.o"
  "CMakeFiles/cross_arch.dir/cross_arch.cpp.o.d"
  "cross_arch"
  "cross_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
