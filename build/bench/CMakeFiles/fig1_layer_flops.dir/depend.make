# Empty dependencies file for fig1_layer_flops.
# This may be replaced when dependencies are built.
