file(REMOVE_RECURSE
  "CMakeFiles/fig1_layer_flops.dir/fig1_layer_flops.cpp.o"
  "CMakeFiles/fig1_layer_flops.dir/fig1_layer_flops.cpp.o.d"
  "fig1_layer_flops"
  "fig1_layer_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_layer_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
