file(REMOVE_RECURSE
  "CMakeFiles/ablation_weight_cache.dir/ablation_weight_cache.cpp.o"
  "CMakeFiles/ablation_weight_cache.dir/ablation_weight_cache.cpp.o.d"
  "ablation_weight_cache"
  "ablation_weight_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weight_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
