file(REMOVE_RECURSE
  "CMakeFiles/fig4_completion_time.dir/fig4_completion_time.cpp.o"
  "CMakeFiles/fig4_completion_time.dir/fig4_completion_time.cpp.o.d"
  "fig4_completion_time"
  "fig4_completion_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_completion_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
