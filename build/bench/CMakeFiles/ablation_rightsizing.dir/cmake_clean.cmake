file(REMOVE_RECURSE
  "CMakeFiles/ablation_rightsizing.dir/ablation_rightsizing.cpp.o"
  "CMakeFiles/ablation_rightsizing.dir/ablation_rightsizing.cpp.o.d"
  "ablation_rightsizing"
  "ablation_rightsizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rightsizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
