# Empty dependencies file for ablation_rightsizing.
# This may be replaced when dependencies are built.
