// ASCII Gantt rendering of a Recorder's spans — the Fig 3 timeline view.
#pragma once

#include <ostream>
#include <string>

#include "trace/recorder.hpp"

namespace faaspart::trace {

struct GanttOptions {
  int width = 100;             // character columns for the time axis
  bool show_axis = true;       // print a seconds scale below
  char fill = '#';             // default mark when no category glyph matches
  /// If nonempty, only spans whose category starts with this prefix render.
  std::string category_prefix;
  /// Skip lanes that would render no spans under the current filter.
  bool hide_empty_lanes = false;
};

/// Renders one row per lane; spans map to glyphs by category first letter
/// (e.g. "phase:simulation" → 's'). Overlapping spans on the same lane
/// render with '+'.
void render_gantt(std::ostream& os, const Recorder& rec, const GanttOptions& opts = {});

}  // namespace faaspart::trace
