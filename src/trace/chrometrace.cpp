#include "trace/chrometrace.hpp"

namespace faaspart::trace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_chrome_trace(std::ostream& os, const Recorder& rec,
                        const std::string& process_name) {
  os << "{\"traceEvents\":[";
  bool first = true;

  // Thread-name metadata per lane.
  for (LaneId l = 0; l < rec.lane_count(); ++l) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << l + 1
       << ",\"args\":{\"name\":";
    write_json_string(os, rec.lane_name(l));
    os << "}}";
  }
  os << ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":";
  write_json_string(os, process_name);
  os << "}}";

  for (const auto& s : rec.spans()) {
    os << ",{\"name\":";
    write_json_string(os, s.name);
    os << ",\"cat\":";
    write_json_string(os, s.category);
    // Trace Event timestamps are µs; keep sub-µs precision as fractions.
    os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.lane + 1
       << ",\"ts\":" << static_cast<double>(s.start.ns) / 1e3
       << ",\"dur\":" << static_cast<double>((s.end - s.start).ns) / 1e3 << "}";
  }
  os << "]}";
}

}  // namespace faaspart::trace
