#include "trace/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/error.hpp"

namespace faaspart::trace {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'x' && c != ' ') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(s[0])) != 0 || s[0] == '-' ||
         s[0] == '+' || s[0] == '.';
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FP_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FP_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      const bool right = align_numeric && looks_numeric(cell);
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << (c + 1 < cells.size() ? " | " : " |\n");
    }
    if (cells.size() == 1) return;  // separator already printed inline
  };

  emit(headers_, /*align_numeric=*/false);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << (c + 1 < widths.size() ? "+" : "|\n");
  }
  for (const auto& row : rows_) emit(row, /*align_numeric=*/true);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  const std::size_t pad = title.size() < 72 ? 76 - title.size() : 4;
  os << "\n== " << title << " " << std::string(pad, '=') << "\n\n";
}

}  // namespace faaspart::trace
