#include "trace/recorder.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace faaspart::trace {

LaneId Recorder::add_lane(std::string name) {
  lanes_.push_back(std::move(name));
  return static_cast<LaneId>(lanes_.size() - 1);
}

const std::string& Recorder::lane_name(LaneId id) const {
  FP_CHECK_MSG(id < lanes_.size(), "unknown lane id");
  return lanes_[id];
}

void Recorder::record(LaneId lane, std::string name, std::string category,
                      TimePoint start, TimePoint end) {
  FP_CHECK_MSG(lane < lanes_.size(), "record on unknown lane");
  FP_CHECK_MSG(end >= start, "span ends before it starts");
  spans_.push_back(Span{lane, std::move(name), std::move(category), start, end});
}

std::vector<Span> Recorder::lane_spans(LaneId lane) const {
  std::vector<Span> out;
  for (const auto& s : spans_) {
    if (s.lane == lane) out.push_back(s);
  }
  return out;
}

std::vector<Span> Recorder::category_spans(const std::string& category) const {
  std::vector<Span> out;
  for (const auto& s : spans_) {
    if (s.category == category) out.push_back(s);
  }
  return out;
}

Duration Recorder::busy_time(LaneId lane, TimePoint from, TimePoint to) const {
  FP_CHECK(to >= from);
  // Collect clipped intervals, sort, merge overlaps, sum.
  std::vector<std::pair<std::int64_t, std::int64_t>> ivals;
  for (const auto& s : spans_) {
    if (s.lane != lane) continue;
    const std::int64_t b = std::max(s.start.ns, from.ns);
    const std::int64_t e = std::min(s.end.ns, to.ns);
    if (e > b) ivals.emplace_back(b, e);
  }
  std::sort(ivals.begin(), ivals.end());
  std::int64_t busy = 0;
  std::int64_t cur_b = 0;
  std::int64_t cur_e = -1;
  for (const auto& [b, e] : ivals) {
    if (cur_e < 0) {
      cur_b = b;
      cur_e = e;
    } else if (b <= cur_e) {
      cur_e = std::max(cur_e, e);
    } else {
      busy += cur_e - cur_b;
      cur_b = b;
      cur_e = e;
    }
  }
  if (cur_e >= 0) busy += cur_e - cur_b;
  return Duration{busy};
}

double Recorder::utilization(LaneId lane, TimePoint from, TimePoint to) const {
  const Duration window = to - from;
  if (window.ns <= 0) return 0.0;
  return busy_time(lane, from, to) / window;
}

TimePoint Recorder::first_start() const {
  TimePoint t{INT64_MAX};
  for (const auto& s : spans_) t = std::min(t, s.start);
  return spans_.empty() ? TimePoint{0} : t;
}

TimePoint Recorder::last_end() const {
  TimePoint t{0};
  for (const auto& s : spans_) t = std::max(t, s.end);
  return t;
}

void Recorder::clear() { spans_.clear(); }

}  // namespace faaspart::trace
