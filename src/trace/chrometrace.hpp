// chrome://tracing (Perfetto-compatible) export of a Recorder's spans —
// drag the JSON into chrome://tracing or ui.perfetto.dev to browse a run's
// timeline interactively.
#pragma once

#include <ostream>
#include <string>

#include "trace/recorder.hpp"

namespace faaspart::trace {

/// Emits `s` as a double-quoted JSON string (escapes quotes, backslashes,
/// and control characters). Shared by the trace and obs exporters.
void write_json_string(std::ostream& os, const std::string& s);

/// Writes Trace Event Format JSON: one complete ("X") event per span, lanes
/// mapped to tids under a single process. Virtual-time ns map to trace µs.
void write_chrome_trace(std::ostream& os, const Recorder& rec,
                        const std::string& process_name = "faaspart");

}  // namespace faaspart::trace
