// Minimal CSV emission for offline plotting of bench series.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace faaspart::trace {

/// Writes rows with RFC-4180-style quoting (quotes fields containing the
/// separator, quotes, carriage returns, or newlines), so task/span names
/// like "llama2,13b" survive a spreadsheet round-trip intact.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os_ << ',';
      write_field(cells[i]);
    }
    os_ << '\n';
  }

  void row(std::initializer_list<std::string> cells) {
    row(std::vector<std::string>(cells));
  }

 private:
  void write_field(const std::string& f) {
    if (f.find_first_of(",\"\r\n") == std::string::npos) {
      os_ << f;
      return;
    }
    os_ << '"';
    for (const char c : f) {
      if (c == '"') os_ << '"';
      os_ << c;
    }
    os_ << '"';
  }

  std::ostream& os_;
};

}  // namespace faaspart::trace
