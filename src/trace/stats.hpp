// Summary statistics for latency/throughput reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace faaspart::trace {

/// Order statistics and moments of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary; an empty input yields an all-zero Summary.
Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Convenience: summarize durations in seconds.
Summary summarize_durations(const std::vector<util::Duration>& ds);

/// Streaming mean/variance (Welford) for long-running meters.
class OnlineStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace faaspart::trace
