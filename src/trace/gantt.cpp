#include "trace/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/strings.hpp"

namespace faaspart::trace {

void render_gantt(std::ostream& os, const Recorder& rec, const GanttOptions& opts) {
  const TimePoint t0 = rec.first_start();
  const TimePoint t1 = rec.last_end();
  if (t1 <= t0 || rec.lane_count() == 0) {
    os << "(empty timeline)\n";
    return;
  }
  const double span_ns = static_cast<double>((t1 - t0).ns);
  const int width = std::max(10, opts.width);

  std::size_t label_w = 0;
  for (LaneId l = 0; l < rec.lane_count(); ++l) {
    label_w = std::max(label_w, rec.lane_name(l).size());
  }

  for (LaneId l = 0; l < rec.lane_count(); ++l) {
    std::string row(static_cast<std::size_t>(width), '.');
    bool any = false;
    for (const auto& s : rec.spans()) {
      if (s.lane != l) continue;
      if (!opts.category_prefix.empty() &&
          !util::starts_with(s.category, opts.category_prefix)) {
        continue;
      }
      any = true;
      // Glyph: the character after the last ':' in the category, or fill.
      char glyph = opts.fill;
      const auto colon = s.category.rfind(':');
      const std::string tail =
          colon == std::string::npos ? s.category : s.category.substr(colon + 1);
      if (!tail.empty()) glyph = tail[0];

      auto to_col = [&](TimePoint t) {
        const double frac = static_cast<double>((t - t0).ns) / span_ns;
        return std::clamp(static_cast<int>(frac * width), 0, width - 1);
      };
      const int b = to_col(s.start);
      const int e = std::max(b, to_col(s.end));
      for (int c = b; c <= e; ++c) {
        auto& cell = row[static_cast<std::size_t>(c)];
        cell = (cell == '.') ? glyph : (cell == glyph ? glyph : '+');
      }
    }
    if (opts.hide_empty_lanes && !any) continue;
    os << rec.lane_name(l) << std::string(label_w - rec.lane_name(l).size(), ' ')
       << " |" << row << "|\n";
  }

  if (opts.show_axis) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1fs", t0.seconds());
    std::string axis(static_cast<std::size_t>(width), ' ');
    const std::string left = buf;
    std::snprintf(buf, sizeof buf, "%.1fs", t1.seconds());
    const std::string right = buf;
    os << std::string(label_w, ' ') << "  " << left
       << std::string(
              std::max<std::size_t>(1, static_cast<std::size_t>(width) -
                                           left.size() - right.size()),
              ' ')
       << right << "\n";
  }
}

}  // namespace faaspart::trace
