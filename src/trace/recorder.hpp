// Span recording and utilization accounting.
//
// Every timed activity in the simulator (a kernel on a GPU, a task on a
// worker, a workflow phase) can be recorded as a Span on a named lane. The
// Recorder answers the questions the paper's evaluation asks: how busy was
// each lane (GPU utilization, Fig 3's idle gaps), when did phases run, and
// what does the timeline look like.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace faaspart::trace {

using util::Duration;
using util::TimePoint;

using LaneId = std::uint32_t;

struct Span {
  LaneId lane = 0;
  std::string name;      // e.g. kernel or task name
  std::string category;  // e.g. "kernel", "task", "phase:train"
  TimePoint start{};
  TimePoint end{};

  [[nodiscard]] Duration duration() const { return end - start; }
};

class Recorder {
 public:
  /// Registers a lane (a GPU, a worker, a logical swimlane). Lane names are
  /// not required to be unique, ids are.
  LaneId add_lane(std::string name);

  [[nodiscard]] const std::string& lane_name(LaneId id) const;
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }

  /// Records a closed span; `end >= start` is enforced.
  void record(LaneId lane, std::string name, std::string category,
              TimePoint start, TimePoint end);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }

  /// Spans on one lane, in recording order.
  [[nodiscard]] std::vector<Span> lane_spans(LaneId lane) const;

  /// Spans whose category matches exactly.
  [[nodiscard]] std::vector<Span> category_spans(const std::string& category) const;

  /// Total time in [from, to] during which at least one span on `lane` was
  /// active (overlapping spans are unioned, not double-counted).
  [[nodiscard]] Duration busy_time(LaneId lane, TimePoint from, TimePoint to) const;

  /// busy_time / (to - from); 0 for an empty window.
  [[nodiscard]] double utilization(LaneId lane, TimePoint from, TimePoint to) const;

  /// Earliest start / latest end over all spans (simulation extent).
  [[nodiscard]] TimePoint first_start() const;
  [[nodiscard]] TimePoint last_end() const;

  void clear();

 private:
  std::vector<std::string> lanes_;
  std::vector<Span> spans_;
};

}  // namespace faaspart::trace
