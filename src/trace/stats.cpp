#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace faaspart::trace {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  FP_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (const double x : samples) sum += x;
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (const double x : samples) sq += (x - s.mean) * (x - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(sq / static_cast<double>(s.count - 1)) : 0.0;
  s.p50 = percentile_sorted(samples, 0.50);
  s.p95 = percentile_sorted(samples, 0.95);
  s.p99 = percentile_sorted(samples, 0.99);
  return s;
}

Summary summarize_durations(const std::vector<util::Duration>& ds) {
  std::vector<double> xs;
  xs.reserve(ds.size());
  for (const auto d : ds) xs.push_back(d.seconds());
  return summarize(std::move(xs));
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace faaspart::trace
