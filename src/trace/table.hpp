// Console table rendering for bench output.
//
// Benches print paper-style tables; this keeps the formatting in one place
// (column sizing, right-alignment of numerics, separators).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace faaspart::trace {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header separator; numeric-looking cells right-align.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used between experiment blocks in bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace faaspart::trace
