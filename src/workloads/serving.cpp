#include "workloads/serving.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace faaspart::workloads {

BatchRunResult summarize_handles(const std::vector<faas::AppHandle>& handles) {
  BatchRunResult r;
  r.tasks = handles.size();
  std::vector<double> run_times;
  std::vector<double> completions;
  util::TimePoint first_start{INT64_MAX};
  util::TimePoint last_finish{0};
  for (const auto& h : handles) {
    const auto& rec = *h.record;
    if (rec.state == faas::TaskRecord::State::kFailed) {
      ++r.failures;
      continue;
    }
    FP_CHECK_MSG(rec.state == faas::TaskRecord::State::kDone,
                 "summarize_handles before all tasks settled");
    run_times.push_back(rec.run_time().seconds());
    completions.push_back(rec.completion_time().seconds());
    first_start = std::min(first_start, rec.started);
    last_finish = std::max(last_finish, rec.finished);
  }
  if (last_finish > first_start) r.makespan = last_finish - first_start;
  r.latency = trace::summarize(std::move(run_times));
  r.completion = trace::summarize(std::move(completions));
  return r;
}

namespace {

sim::Co<void> client_loop(faas::DataFlowKernel& dfk, std::string label,
                          faas::AppDef app, int requests,
                          std::shared_ptr<std::vector<faas::AppHandle>> handles,
                          std::shared_ptr<int> clients_left,
                          std::shared_ptr<BatchRunResult> out) {
  for (int i = 0; i < requests; ++i) {
    faas::AppHandle h = dfk.submit(app, label);
    handles->push_back(h);
    try {
      (void)co_await h.future;
    } catch (...) {
      // Failure is reflected in the record; the loop carries on (a real
      // client would log and continue).
    }
  }
  if (--*clients_left == 0) *out = summarize_handles(*handles);
}

sim::Co<void> open_loop(sim::Simulator& sim, double rate_hz,
                        util::Duration duration, std::uint64_t seed,
                        std::function<void()> submit_one) {
  util::Rng rng(seed);
  const util::TimePoint end = sim.now() + duration;
  while (sim.now() < end) {
    co_await sim.delay(rng.exponential_duration(util::from_seconds(1.0 / rate_hz)));
    if (sim.now() >= end) break;
    submit_one();
  }
}

}  // namespace

std::vector<int> split_evenly(int total, int parts) {
  FP_CHECK_MSG(parts >= 1, "need at least one part");
  FP_CHECK_MSG(total >= 0, "negative total");
  std::vector<int> shares(static_cast<std::size_t>(parts), total / parts);
  for (int i = 0; i < total % parts; ++i) ++shares[static_cast<std::size_t>(i)];
  return shares;
}

void spawn_closed_loop_batch(sim::Simulator& sim, faas::DataFlowKernel& dfk,
                             const std::string& executor_label, faas::AppDef app,
                             int clients, int total_tasks,
                             std::shared_ptr<BatchRunResult> out) {
  FP_CHECK_MSG(clients >= 1, "need at least one client");
  FP_CHECK_MSG(total_tasks >= clients, "fewer tasks than clients");
  auto handles = std::make_shared<std::vector<faas::AppHandle>>();
  auto left = std::make_shared<int>(clients);
  const std::vector<int> shares = split_evenly(total_tasks, clients);
  for (int c = 0; c < clients; ++c) {
    sim.spawn(client_loop(dfk, executor_label, app,
                          shares[static_cast<std::size_t>(c)], handles, left, out),
              "client" + std::to_string(c));
  }
}

void spawn_open_loop_fn(sim::Simulator& sim, double rate_hz,
                        util::Duration duration, std::uint64_t seed,
                        std::function<void()> submit_one) {
  FP_CHECK_MSG(rate_hz > 0, "rate must be positive");
  FP_CHECK_MSG(static_cast<bool>(submit_one), "open loop needs a callback");
  sim.spawn(open_loop(sim, rate_hz, duration, seed, std::move(submit_one)),
            "open-loop");
}

void spawn_open_loop(sim::Simulator& sim, faas::DataFlowKernel& dfk,
                     const std::string& executor_label, faas::AppDef app,
                     double rate_hz, util::Duration duration, std::uint64_t seed,
                     std::shared_ptr<std::vector<faas::AppHandle>> out) {
  spawn_open_loop_fn(sim, rate_hz, duration, seed,
                     [&dfk, label = executor_label, app = std::move(app), out] {
                       out->push_back(dfk.submit(app, label));
                     });
}

}  // namespace faaspart::workloads
