// Molecular-design active-learning campaign (§3.1, Fig 3).
//
// Reproduces the Colmena-backed workflow's *structure*: each round
//   (1) runs quantum-chemistry simulations (CPU-only tasks) on a batch of
//       candidate molecules to obtain their ionization potentials (IPs);
//   (2) trains an ML emulator on all data gathered so far (GPU task);
//   (3) runs emulator inference over a large candidate pool (GPU tasks);
//   (4) selects the highest-estimated-IP candidates for the next round.
//
// The MOSES dataset and real quantum chemistry are substituted by a seeded
// synthetic pool: each molecule has a latent "true IP"; simulation reveals
// it (after a lognormal compute time); the emulator's ranking error shrinks
// as its training set grows, so the campaign's best-found IP improves round
// over round — giving tests a real convergence invariant.
//
// Fig 3's observable — long GPU idle gaps while simulations run — emerges
// naturally when the campaign executes on a DataFlowKernel with separate
// CPU and GPU executors.
#pragma once

#include <memory>
#include <vector>

#include "faas/dfk.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"

namespace faaspart::workloads {

struct MolDesignConfig {
  int rounds = 3;
  int simulations_per_round = 8;  ///< molecules sent to quantum chemistry
  int candidate_pool = 4000;      ///< molecules scored by the emulator
  int inference_chunk = 1000;     ///< molecules per inference task

  util::Duration simulation_mean = util::seconds(30);
  double simulation_cv = 0.5;

  /// Emulator training compute per accumulated sample, per epoch.
  double train_flops_per_sample = 2e12;
  int train_epochs = 6;
  /// Emulator inference compute per molecule.
  double infer_flops_per_molecule = 2e9;

  /// Pipelined mode — §3.4's suggestion ("Pipe-lining this application will
  /// yield higher accelerator utilization"): instead of strict
  /// simulate-all → train → infer rounds, a constant window of simulations
  /// stays in flight and the GPU retrains/re-ranks whenever `retrain_every`
  /// new results have accumulated, steering the still-open simulation
  /// slots. The data dependency (training needs results) is preserved; the
  /// barriers are gone.
  bool pipelined = false;
  int retrain_every = 4;          ///< results per train+infer refresh
  int simulation_window = 8;      ///< concurrent simulations kept in flight

  std::uint64_t seed = 7;
};

struct MolDesignResult {
  util::Duration makespan{};
  util::Duration simulation_busy{};  ///< summed task run times per phase
  util::Duration training_busy{};
  util::Duration inference_busy{};
  int simulation_tasks = 0;
  int training_tasks = 0;
  int inference_tasks = 0;
  /// Best true IP found per round (monotone non-decreasing).
  std::vector<double> best_ip_per_round;
};

class MolDesignCampaign {
 public:
  /// `cpu_label` / `gpu_label` select the DataFlowKernel executors for
  /// simulation vs. training/inference tasks. If `rec` is given, phase
  /// spans land on three dedicated lanes (the Fig 3 rows).
  MolDesignCampaign(faas::DataFlowKernel& dfk, std::string cpu_label,
                    std::string gpu_label, MolDesignConfig cfg,
                    trace::Recorder* rec = nullptr);

  /// Drives the whole campaign (round-based or pipelined per the config);
  /// spawn on the simulator and run.
  sim::Co<void> run();

  [[nodiscard]] const MolDesignResult& result() const { return result_; }

 private:
  struct Molecule {
    double true_ip = 0;
    double estimated_ip = 0;
  };

  sim::Co<void> run_rounds();
  sim::Co<void> run_pipelined();
  std::vector<Molecule> make_pool();
  faas::AppDef make_simulate_app(double true_ip);
  faas::AppDef make_train_app(int dataset_size);
  faas::AppDef make_infer_app(int chunk_size);
  sim::Co<void> train_and_rank(std::vector<Molecule>& pool, int dataset_size);
  void record_phase(const faas::TaskRecord& rec, trace::LaneId lane,
                    const std::string& phase);
  void note_extent(const faas::TaskRecord& rec);

  util::TimePoint first_start_{INT64_MAX};
  util::TimePoint last_finish_{0};

  faas::DataFlowKernel& dfk_;
  std::string cpu_label_;
  std::string gpu_label_;
  MolDesignConfig cfg_;
  trace::Recorder* rec_;
  trace::LaneId lane_sim_ = 0;
  trace::LaneId lane_train_ = 0;
  trace::LaneId lane_infer_ = 0;
  util::Rng rng_;
  MolDesignResult result_;
};

}  // namespace faaspart::workloads
