#include "workloads/batching.hpp"

#include "util/error.hpp"

namespace faaspart::workloads {

BatchingServer::BatchingServer(sim::Simulator& sim, gpu::Device& device,
                               gpu::ContextId ctx, DnnModel model,
                               BatchingServerConfig cfg)
    : sim_(sim), device_(device), ctx_(ctx), model_(std::move(model)), cfg_(cfg) {
  FP_CHECK_MSG(cfg_.max_batch >= 1, "max_batch must be >= 1");
  FP_CHECK_MSG(cfg_.flush_every.ns > 0, "flush period must be positive");
}

sim::Future<> BatchingServer::infer() {
  Pending p{sim::Promise<>(sim_), sim_.now()};
  auto fut = p.done.future();
  queue_.push_back(std::move(p));
  return fut;
}

sim::Co<void> BatchingServer::run_one_batch(std::vector<Pending> batch) {
  const int b = static_cast<int>(batch.size());
  batch_sizes_.push_back(b);
  for (const auto& k : model_.inference_kernels(b)) {
    co_await device_.launch(ctx_, k);
  }
  const util::TimePoint done_at = sim_.now();
  for (auto& p : batch) {
    latencies_s_.push_back((done_at - p.enqueued).seconds());
    p.done.set_value();
    ++served_;
  }
}

sim::Co<void> BatchingServer::run(util::TimePoint deadline) {
  while (true) {
    co_await sim_.delay(cfg_.flush_every);
    // Drain everything queued this tick, max_batch at a time.
    while (!queue_.empty()) {
      std::vector<Pending> batch;
      while (!queue_.empty() &&
             static_cast<int>(batch.size()) < cfg_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      co_await run_one_batch(std::move(batch));
    }
    if (sim_.now() >= deadline) break;
  }
}

double BatchingServer::mean_batch_size() const {
  if (batch_sizes_.empty()) return 0.0;
  double sum = 0;
  for (const int b : batch_sizes_) sum += b;
  return sum / static_cast<double>(batch_sizes_.size());
}

trace::Summary BatchingServer::latency_summary() const {
  return trace::summarize(latencies_s_);
}

}  // namespace faaspart::workloads
