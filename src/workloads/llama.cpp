#include "workloads/llama.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::workloads {

double LlamaSpec::params() const {
  const double d = d_model;
  const double kv_ratio = static_cast<double>(n_kv_heads) / n_heads;
  const double embed = static_cast<double>(vocab) * d;      // token embeddings
  const double lm_head = static_cast<double>(vocab) * d;    // output projection
  // wq + wo are d×d; wk + wv shrink under grouped-query attention (70B).
  const double attn = (2.0 + 2.0 * kv_ratio) * d * d;
  const double mlp = 3.0 * d * d_ff;                        // gate, up, down
  const double norms = 2.0 * d;                             // rmsnorms
  return embed + lm_head + n_layers * (attn + mlp + norms) + d;
}

LlamaSpec llama2_7b() {
  return LlamaSpec{"llama2-7b", 32, 4096, 32, 32, 11008, 32000};
}
LlamaSpec llama2_13b() {
  return LlamaSpec{"llama2-13b", 40, 5120, 40, 40, 13824, 32000};
}
LlamaSpec llama2_70b() {
  return LlamaSpec{"llama2-70b", 80, 8192, 64, 8, 28672, 32000};
}

LlamaRunConfig fig2_config(int shards) {
  LlamaRunConfig cfg;
  cfg.bytes_per_param = 4;  // the paper runs Fig 2 in fp32
  cfg.shards = shards;
  cfg.decode_width_sms = 20;
  cfg.host_gap_per_token = util::milliseconds(20);
  return cfg;
}

LlamaRunConfig serving_config() {
  LlamaRunConfig cfg;
  cfg.bytes_per_param = 2;  // fp16 so four instances fit an 80 GB A100
  cfg.shards = 1;
  cfg.decode_width_sms = 35;  // paragraph context widens decode (DESIGN.md §5)
  cfg.host_gap_per_token = util::milliseconds(40);
  return cfg;
}

util::Bytes llama_weight_bytes(const LlamaSpec& spec, const LlamaRunConfig& cfg) {
  return static_cast<util::Bytes>(spec.params() * cfg.bytes_per_param / cfg.shards);
}

util::Bytes llama_memory_footprint(const LlamaSpec& spec, const LlamaRunConfig& cfg) {
  return llama_weight_bytes(spec, cfg) + cfg.runtime_overhead;
}

gpu::KernelDesc llama_decode_kernel(const LlamaSpec& spec, const LlamaRunConfig& cfg) {
  gpu::KernelDesc k;
  k.name = spec.name + "/decode";
  k.kind = gpu::KernelKind::kGemv;
  k.flops = 2.0 * spec.params() / cfg.shards;  // one MAC per weight
  k.bytes = llama_weight_bytes(spec, cfg);     // stream every weight once
  k.width_sms = cfg.decode_width_sms;
  k.bw_fraction = cfg.decode_bw_fraction;
  return k;
}

util::Bytes llama_kv_bytes_per_token(const LlamaSpec& spec,
                                     const LlamaRunConfig& cfg) {
  // K and V per layer: head_dim × n_kv_heads = d_model × (kv/heads).
  const double per_layer = 2.0 * spec.d_model *
                           (static_cast<double>(spec.n_kv_heads) / spec.n_heads) *
                           cfg.bytes_per_param;
  return static_cast<util::Bytes>(per_layer * spec.n_layers / cfg.shards);
}

gpu::KernelDesc llama_decode_kernel_at(const LlamaSpec& spec,
                                       const LlamaRunConfig& cfg, int position) {
  gpu::KernelDesc k = llama_decode_kernel(spec, cfg);
  if (cfg.model_kv_cache && position > 0) {
    // Attention streams the whole K/V history each step...
    k.bytes += llama_kv_bytes_per_token(spec, cfg) * position;
    k.flops += 2.0 * static_cast<double>(llama_kv_bytes_per_token(spec, cfg)) /
               cfg.bytes_per_param * position;
    // ...and that work parallelizes across positions, so the decode step's
    // saturation width grows with the context (one extra SM per ~64
    // positions is a reasonable occupancy model for fused attention).
    k.width_sms = std::min(128, std::max(k.width_sms, position / 64));
  }
  return k;
}

gpu::KernelDesc llama_batched_decode_kernel(const LlamaSpec& spec,
                                            const LlamaRunConfig& cfg,
                                            const std::vector<int>& positions) {
  FP_CHECK_MSG(!positions.empty(), "batched decode needs >= 1 sequence");
  const int batch = static_cast<int>(positions.size());
  gpu::KernelDesc k;
  k.name = util::strf(spec.name, "/decode-b", batch);
  // One fused step: GEMV degenerates to a (thin) GEMM once batch > 1.
  k.kind = batch > 1 ? gpu::KernelKind::kGemm : gpu::KernelKind::kGemv;
  k.flops = 2.0 * spec.params() / cfg.shards * batch;
  k.bytes = llama_weight_bytes(spec, cfg);  // weights stream once per step
  int max_position = 0;
  if (cfg.model_kv_cache) {
    const util::Bytes kv_tok = llama_kv_bytes_per_token(spec, cfg);
    for (const int position : positions) {
      FP_CHECK_MSG(position >= 0, "negative context position");
      max_position = std::max(max_position, position);
      if (position == 0) continue;
      // Each sequence's attention streams its own K/V history.
      k.bytes += kv_tok * position;
      k.flops += 2.0 * static_cast<double>(kv_tok) / cfg.bytes_per_param *
                 position;
    }
  }
  // Extra sequences and longer contexts both widen the step (more
  // independent rows / attention spans to spread over SMs), and a wider
  // kernel keeps more memory streams in flight, so the achieved bandwidth
  // fraction scales with width up to the prefill GEMM's fraction.
  k.width_sms = std::min(
      128, cfg.decode_width_sms + 2 * (batch - 1) + max_position / 64);
  k.bw_fraction =
      std::min(cfg.prefill_bw_fraction,
               cfg.decode_bw_fraction * k.width_sms / cfg.decode_width_sms);
  return k;
}

gpu::KernelDesc llama_prefill_kernel(const LlamaSpec& spec, const LlamaRunConfig& cfg,
                                     int prompt_tokens) {
  FP_CHECK_MSG(prompt_tokens >= 0, "negative prompt length");
  gpu::KernelDesc k;
  k.name = spec.name + "/prefill";
  k.kind = gpu::KernelKind::kGemm;
  k.flops = 2.0 * spec.params() * prompt_tokens / cfg.shards;
  k.bytes = llama_weight_bytes(spec, cfg);  // weights read once, batched over tokens
  k.width_sms = cfg.prefill_width_sms;
  k.bw_fraction = cfg.prefill_bw_fraction;
  return k;
}

util::Duration llama_decode_token_time(const LlamaSpec& spec, const LlamaRunConfig& cfg,
                                       const gpu::GpuArchSpec& arch, int sms) {
  const auto k = llama_decode_kernel(spec, cfg);
  util::Duration t = gpu::solo_service_time(arch, k, gpu::KernelGrant{sms});
  if (cfg.shards > 1) t += cfg.sync_per_layer * spec.n_layers;
  return t;
}

util::Duration llama_cpu_completion_time(const LlamaSpec& spec,
                                         const gpu::CpuSpec& cpu,
                                         int output_tokens) {
  // CPU decode is also weight-streaming-bound, at a much lower achieved
  // fraction of memory bandwidth (strided access, no tensor cores).
  // Calibrated at 3.3 % so fp32 7B ≈ 180 s and 13B ≈ 360 s (Fig 2 text).
  constexpr double kCpuBwFraction = 0.033;
  const double weight_bytes = spec.params() * 4;  // fp32 baseline
  const double token_s = weight_bytes / (cpu.mem_bw * kCpuBwFraction);
  return util::from_seconds(token_s * output_tokens);
}

sim::Co<void> llama_completion(sim::Simulator& sim, gpu::Device& dev,
                               gpu::ContextId ctx, const LlamaSpec& spec,
                               const LlamaRunConfig& cfg, CompletionShape shape) {
  // With KV modelling on, the request's cache lives in device memory for
  // the completion's duration.
  gpu::AllocationId kv_alloc = 0;
  if (cfg.model_kv_cache) {
    const util::Bytes kv_total =
        llama_kv_bytes_per_token(spec, cfg) *
        (shape.prompt_tokens + shape.output_tokens);
    if (kv_total > 0) kv_alloc = dev.alloc(ctx, kv_total, "kv-cache");
  }

  if (shape.prompt_tokens > 0) {
    co_await dev.launch(ctx, llama_prefill_kernel(spec, cfg, shape.prompt_tokens));
  }
  const util::Duration per_token_sync =
      cfg.shards > 1 ? cfg.sync_per_layer * spec.n_layers : util::Duration{0};
  for (int t = 0; t < shape.output_tokens; ++t) {
    co_await dev.launch(
        ctx, llama_decode_kernel_at(spec, cfg, shape.prompt_tokens + t));
    if (per_token_sync.ns > 0) co_await sim.delay(per_token_sync);
    co_await sim.delay(cfg.host_gap_per_token);
  }

  if (kv_alloc != 0) dev.free(ctx, kv_alloc);
}

sim::Co<void> llama_completion(faas::TaskContext& tctx, const LlamaSpec& spec,
                               const LlamaRunConfig& cfg, CompletionShape shape) {
  gpu::Device& dev = tctx.device();
  const gpu::ContextId ctx = tctx.gpu_context();
  gpu::AllocationId kv_alloc = 0;
  if (cfg.model_kv_cache) {
    const util::Bytes kv_total =
        llama_kv_bytes_per_token(spec, cfg) *
        (shape.prompt_tokens + shape.output_tokens);
    if (kv_total > 0) kv_alloc = dev.alloc(ctx, kv_total, "kv-cache");
  }

  if (shape.prompt_tokens > 0) {
    co_await tctx.launch(llama_prefill_kernel(spec, cfg, shape.prompt_tokens));
  }
  const util::Duration per_token_sync =
      cfg.shards > 1 ? cfg.sync_per_layer * spec.n_layers : util::Duration{0};
  for (int t = 0; t < shape.output_tokens; ++t) {
    co_await tctx.launch(
        llama_decode_kernel_at(spec, cfg, shape.prompt_tokens + t));
    if (per_token_sync.ns > 0) co_await tctx.sim().delay(per_token_sync);
    co_await tctx.sim().delay(cfg.host_gap_per_token);
  }

  if (kv_alloc != 0) dev.free(ctx, kv_alloc);
}

faas::AppDef make_llama_completion_app(const std::string& name, LlamaSpec spec,
                                       LlamaRunConfig cfg, CompletionShape shape) {
  faas::AppDef app;
  app.name = name;
  app.function_init = util::milliseconds(1200);  // torch import + env setup
  app.model_bytes = llama_memory_footprint(spec, cfg);
  app.model_key = spec.name + util::strf("@", cfg.bytes_per_param, "B");
  // faaspart-lint: allow(C2) -- stored in AppDef::body for the app's whole
  // lifetime; the executor never outlives the AppDef it runs
  app.body = [spec, cfg, shape](faas::TaskContext& tctx) -> sim::Co<faas::AppValue> {
    co_await llama_completion(tctx, spec, cfg, shape);
    co_return faas::AppValue{static_cast<double>(shape.output_tokens)};
  };
  return app;
}

}  // namespace faaspart::workloads
