#include "workloads/moldesign.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::workloads {

using faas::AppDef;
using faas::AppValue;
using faas::TaskContext;

MolDesignCampaign::MolDesignCampaign(faas::DataFlowKernel& dfk,
                                     std::string cpu_label, std::string gpu_label,
                                     MolDesignConfig cfg, trace::Recorder* rec)
    : dfk_(dfk),
      cpu_label_(std::move(cpu_label)),
      gpu_label_(std::move(gpu_label)),
      cfg_(cfg),
      rec_(rec),
      rng_(cfg.seed) {
  FP_CHECK_MSG(cfg_.rounds >= 1, "campaign needs at least one round");
  FP_CHECK_MSG(cfg_.inference_chunk >= 1, "inference chunk must be positive");
  FP_CHECK_MSG(!cfg_.pipelined || cfg_.retrain_every >= 1,
               "pipelined mode needs retrain_every >= 1");
  FP_CHECK_MSG(!cfg_.pipelined || cfg_.simulation_window >= 1,
               "pipelined mode needs a positive simulation window");
  if (rec_ != nullptr) {
    lane_sim_ = rec_->add_lane("simulation");
    lane_train_ = rec_->add_lane("training");
    lane_infer_ = rec_->add_lane("inference");
  }
}

std::vector<MolDesignCampaign::Molecule> MolDesignCampaign::make_pool() {
  std::vector<Molecule> pool(static_cast<std::size_t>(cfg_.candidate_pool));
  for (auto& m : pool) {
    m.true_ip = rng_.normal(10.0, 1.5);
    // Before any training the emulator knows nothing: random ranking.
    m.estimated_ip = rng_.normal(10.0, 1.5);
  }
  return pool;
}

AppDef MolDesignCampaign::make_simulate_app(double true_ip) {
  AppDef app;
  app.name = "simulate_molecule";
  const util::Duration mean = cfg_.simulation_mean;
  const double cv = cfg_.simulation_cv;
  // faaspart-lint: allow(C2) -- stored in AppDef::body for the app's whole
  // lifetime; coroutines it starts finish while the AppDef is alive
  app.body = [mean, cv, true_ip](TaskContext& ctx) -> sim::Co<AppValue> {
    // Quantum-chemistry step: CPU-bound for a lognormal time (§3.4: the
    // simulation phase uses only CPU).
    co_await ctx.compute(ctx.rng().lognormal_duration(mean, cv));
    co_return AppValue{true_ip};
  };
  return app;
}

AppDef MolDesignCampaign::make_train_app(int dataset_size) {
  AppDef app;
  app.name = "train_emulator";
  app.function_init = util::milliseconds(800);  // TF 2.8 import (§5.1)
  app.model_bytes = 512 * util::MB;             // emulator weights + optimizer
  app.model_key = "mol-emulator";
  const double flops =
      cfg_.train_flops_per_sample * dataset_size * cfg_.train_epochs;
  const int epochs = cfg_.train_epochs;
  // faaspart-lint: allow(C2) -- stored in AppDef::body, outlives its
  // coroutines (same contract as make_simulate_app)
  app.body = [flops, epochs](TaskContext& ctx) -> sim::Co<AppValue> {
    // One wide GEMM-shaped kernel per epoch.
    for (int e = 0; e < epochs; ++e) {
      gpu::KernelDesc k;
      k.name = util::strf("train/epoch", e);
      k.kind = gpu::KernelKind::kGemm;
      k.flops = flops / epochs;
      k.bytes = 256 * util::MB;
      k.width_sms = 80;
      k.bw_fraction = 0.4;
      co_await ctx.launch(std::move(k));
    }
    co_return AppValue{};
  };
  return app;
}

AppDef MolDesignCampaign::make_infer_app(int chunk_size) {
  AppDef app;
  app.name = "infer_emulator";
  app.function_init = util::milliseconds(800);
  app.model_bytes = 512 * util::MB;
  app.model_key = "mol-emulator";
  const double flops = cfg_.infer_flops_per_molecule * chunk_size;
  // faaspart-lint: allow(C2) -- stored in AppDef::body, outlives its
  // coroutines (same contract as make_simulate_app)
  app.body = [flops](TaskContext& ctx) -> sim::Co<AppValue> {
    gpu::KernelDesc k;
    k.name = "infer/chunk";
    k.kind = gpu::KernelKind::kGemm;
    k.flops = flops;
    k.bytes = 128 * util::MB;
    k.width_sms = 40;  // modest batch → far from saturating an A100 (§3.4)
    k.bw_fraction = 0.4;
    co_await ctx.launch(std::move(k));
    co_return AppValue{};
  };
  return app;
}

void MolDesignCampaign::record_phase(const faas::TaskRecord& rec,
                                     trace::LaneId lane,
                                     const std::string& phase) {
  if (rec_ == nullptr || rec.state != faas::TaskRecord::State::kDone) return;
  rec_->record(lane, rec.app, "phase:" + phase, rec.started, rec.finished);
}

void MolDesignCampaign::note_extent(const faas::TaskRecord& rec) {
  first_start_ = std::min(first_start_, rec.started);
  last_finish_ = std::max(last_finish_, rec.finished);
}

sim::Co<void> MolDesignCampaign::train_and_rank(std::vector<Molecule>& pool,
                                                int dataset_size) {
  // Train the emulator on everything gathered so far.
  {
    auto h = dfk_.submit(make_train_app(dataset_size), gpu_label_);
    co_await h.future;
    ++result_.training_tasks;
    result_.training_busy += h.record->run_time();
    record_phase(*h.record, lane_train_, "training");
    note_extent(*h.record);
  }
  // Emulator inference over the candidate pool, in chunks.
  std::vector<faas::AppHandle> infers;
  for (int off = 0; off < cfg_.candidate_pool; off += cfg_.inference_chunk) {
    const int n = std::min(cfg_.inference_chunk, cfg_.candidate_pool - off);
    infers.push_back(dfk_.submit(make_infer_app(n), gpu_label_));
  }
  for (auto& h : infers) {
    co_await h.future;
    ++result_.inference_tasks;
    result_.inference_busy += h.record->run_time();
    record_phase(*h.record, lane_infer_, "inference");
    note_extent(*h.record);
  }
  // Estimates: true IP + noise shrinking with the dataset size.
  const double noise = 2.0 / std::sqrt(static_cast<double>(dataset_size));
  for (auto& m : pool) m.estimated_ip = m.true_ip + rng_.normal(0.0, noise);
}

sim::Co<void> MolDesignCampaign::run() {
  if (cfg_.pipelined) {
    co_await run_pipelined();
  } else {
    co_await run_rounds();
  }
  result_.makespan = last_finish_ > first_start_ ? last_finish_ - first_start_
                                                 : util::Duration{0};
}

sim::Co<void> MolDesignCampaign::run_rounds() {
  std::vector<Molecule> pool = make_pool();

  // Initial batch: random picks from the pool (the MOSES seed set).
  std::vector<std::size_t> batch;
  for (int i = 0; i < cfg_.simulations_per_round; ++i) {
    batch.push_back(static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1)));
  }

  int dataset_size = 0;
  double best_ip = -1e300;

  for (int round = 0; round < cfg_.rounds; ++round) {
    // (1) Simulations on the CPU executor — a hard barrier before training.
    std::vector<faas::AppHandle> sims;
    sims.reserve(batch.size());
    for (const auto idx : batch) {
      sims.push_back(dfk_.submit(make_simulate_app(pool[idx].true_ip), cpu_label_));
    }
    for (auto& h : sims) {
      const AppValue v = co_await h.future;
      best_ip = std::max(best_ip, std::get<double>(v));
      ++dataset_size;
      ++result_.simulation_tasks;
      result_.simulation_busy += h.record->run_time();
      record_phase(*h.record, lane_sim_, "simulation");
      note_extent(*h.record);
    }

    // (2)+(3) Train and re-rank — the GPU phase the CPUs wait behind.
    co_await train_and_rank(pool, dataset_size);

    // (4) Top estimates become the next round's simulations.
    std::vector<std::size_t> order(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pool[a].estimated_ip > pool[b].estimated_ip;
    });
    batch.assign(order.begin(),
                 order.begin() +
                     std::min<std::size_t>(
                         order.size(),
                         static_cast<std::size_t>(cfg_.simulations_per_round)));

    result_.best_ip_per_round.push_back(best_ip);
  }
}

sim::Co<void> MolDesignCampaign::run_pipelined() {
  std::vector<Molecule> pool = make_pool();
  const int total_sims = cfg_.rounds * cfg_.simulations_per_round;

  std::set<std::size_t> used;  // simulated or in flight
  const auto pick_best_unused = [&]() -> std::size_t {
    std::size_t best = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (used.count(i) > 0) continue;
      if (best == pool.size() ||
          pool[i].estimated_ip > pool[best].estimated_ip) {
        best = i;
      }
    }
    FP_CHECK_MSG(best < pool.size(), "candidate pool exhausted");
    return best;
  };

  int launched = 0;
  int completed = 0;
  int dataset_size = 0;
  int since_train = 0;
  double best_ip = -1e300;
  std::vector<faas::AppHandle> inflight;

  const auto top_up = [&] {
    while (launched < total_sims &&
           static_cast<int>(inflight.size()) < cfg_.simulation_window) {
      const std::size_t idx = pick_best_unused();
      used.insert(idx);
      inflight.push_back(
          dfk_.submit(make_simulate_app(pool[idx].true_ip), cpu_label_));
      ++launched;
    }
  };

  const auto harvest = [&](faas::AppHandle& h, const AppValue& v) {
    best_ip = std::max(best_ip, std::get<double>(v));
    ++dataset_size;
    ++completed;
    ++since_train;
    ++result_.simulation_tasks;
    result_.simulation_busy += h.record->run_time();
    record_phase(*h.record, lane_sim_, "simulation");
    note_extent(*h.record);
    if (completed % cfg_.simulations_per_round == 0) {
      result_.best_ip_per_round.push_back(best_ip);
    }
  };

  while (completed < total_sims) {
    top_up();
    // Await the oldest in-flight simulation (results arrive roughly in
    // order; awaiting a settled future costs nothing).
    FP_CHECK(!inflight.empty());
    faas::AppHandle h = inflight.front();
    inflight.erase(inflight.begin());
    const AppValue v = co_await h.future;
    harvest(h, v);

    // Refresh the emulator whenever enough new data accumulated — the GPU
    // works while the remaining simulations keep running (the pipelining).
    if (since_train >= cfg_.retrain_every && completed < total_sims) {
      since_train = 0;
      top_up();  // keep the CPU window full through the GPU phase
      co_await train_and_rank(pool, dataset_size);
    }
  }
}

}  // namespace faaspart::workloads
