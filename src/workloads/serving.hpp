// Request generators for the serving experiments.
//
// closed-loop: N concurrent clients each issue their share of a fixed batch
// back-to-back (the Fig 4/5 setup: "work was divided equally across number
// of processes"). open-loop: Poisson arrivals for the Table 1 mixed
// workload.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "faas/dfk.hpp"
#include "trace/stats.hpp"
#include "util/rng.hpp"

namespace faaspart::workloads {

struct BatchRunResult {
  util::Duration makespan{};        ///< first task start → last task finish
  trace::Summary latency;           ///< per-task body run times, seconds
  trace::Summary completion;        ///< per-task submit→finish, seconds
  std::size_t tasks = 0;
  std::size_t failures = 0;
  /// Tasks per second of makespan.
  [[nodiscard]] double throughput() const {
    return makespan.ns > 0 ? static_cast<double>(tasks) / makespan.seconds() : 0.0;
  }
};

/// Spawns `clients` closed loops on the simulator, splitting `total_tasks`
/// of `app` as evenly as possible, and fills `out` when all loops finish.
/// Caller runs the simulator. Latency/makespan are measured on task records
/// (cold starts excluded from `latency`, included in `completion`).
void spawn_closed_loop_batch(sim::Simulator& sim, faas::DataFlowKernel& dfk,
                             const std::string& executor_label, faas::AppDef app,
                             int clients, int total_tasks,
                             std::shared_ptr<BatchRunResult> out);

/// The closed-loop work split: `parts` shares of `total`, as even as
/// possible, earlier shares taking the remainder (sums to exactly `total`,
/// shares differ by at most one).
[[nodiscard]] std::vector<int> split_evenly(int total, int parts);

/// Spawns a Poisson open-loop generator: submits `app` at `rate_hz` for
/// `duration`, appending handles to `out`. Caller runs the simulator.
void spawn_open_loop(sim::Simulator& sim, faas::DataFlowKernel& dfk,
                     const std::string& executor_label, faas::AppDef app,
                     double rate_hz, util::Duration duration, std::uint64_t seed,
                     std::shared_ptr<std::vector<faas::AppHandle>> out);

/// The generator behind spawn_open_loop, decoupled from the DFK: calls
/// `submit_one` at Poisson arrival instants for `duration`. Lets the
/// federation layers (ClusterService) reuse the exact arrival process — same
/// seed ⇒ identical submit times regardless of what the callback does.
void spawn_open_loop_fn(sim::Simulator& sim, double rate_hz,
                        util::Duration duration, std::uint64_t seed,
                        std::function<void()> submit_one);

/// Folds a set of finished handles into a BatchRunResult.
BatchRunResult summarize_handles(const std::vector<faas::AppHandle>& handles);

}  // namespace faaspart::workloads
