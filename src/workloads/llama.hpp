// LLaMa-2 inference cost model (§3.2, §3.4, §5.2).
//
// The model mirrors what the paper measures rather than simulating math:
//   * decode (one output token) streams every weight once — a batch-1 GEMV
//     chain that is memory-bandwidth-bound and can only use ~20 SMs (the
//     Fig 2 knee). The paper's own numbers give its achieved bandwidth:
//     fp32 7B (~27 GB of weights) at ~167 ms/token ⇒ ~10 % of A100 peak.
//   * prefill (prompt ingestion) is one wide compute-bound GEMM batch.
//   * tensor parallelism (13B across 2 GPUs) shards weights per device and
//     pays a per-layer synchronization cost each token.
//   * a CPU-side gap per token (sampling, detokenization, framework
//     overhead) separates decode kernels — this is the idle time that makes
//     time-sharing multiplexing profitable at all.
//
// Two workload flavours share the machinery through LlamaRunConfig:
// fig2_config() reproduces the §3.4 SM sweep (fp32, 20-word completions),
// serving_config() the §5.2 chatbot experiments (fp16 paragraphs, whose
// longer context widens the decode kernels — see DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

#include "faas/app.hpp"
#include "gpu/arch.hpp"
#include "gpu/kernel.hpp"
#include "sim/co.hpp"
#include "util/units.hpp"

namespace faaspart::workloads {

struct LlamaSpec {
  std::string name;
  int n_layers = 0;
  int d_model = 0;
  int n_heads = 0;
  int n_kv_heads = 0;  ///< < n_heads for grouped-query attention (70B)
  int d_ff = 0;
  int vocab = 32000;

  /// Parameter count from the architecture (embeddings + attention + MLP +
  /// LM head); reproduces the nominal 6.7B / 13.0B / ~69B.
  [[nodiscard]] double params() const;
};

LlamaSpec llama2_7b();
LlamaSpec llama2_13b();
LlamaSpec llama2_70b();

/// Experiment-level knobs for running a LLaMa model.
struct LlamaRunConfig {
  int bytes_per_param = 4;  ///< 4 = fp32 (Fig 2), 2 = fp16 (serving, §5.2)
  int shards = 1;           ///< tensor-parallel GPU count

  /// Decode saturation width. 20 SMs for the short-completion Fig 2
  /// workload; ~35 for the paragraph serving workload whose longer context
  /// gives the decode step more parallel work.
  int decode_width_sms = 20;
  /// Fraction of peak HBM bandwidth decode achieves at full width —
  /// back-derived from the paper's fp32 numbers (~10 %).
  double decode_bw_fraction = 0.10;

  int prefill_width_sms = 108;
  double prefill_bw_fraction = 0.5;

  /// CPU-side work between output tokens (sampling, detokenize, Python).
  util::Duration host_gap_per_token = util::milliseconds(100);
  /// Per-layer synchronization per token when shards > 1 (fp32 over PCIe).
  util::Duration sync_per_layer = util::milliseconds(2);

  /// Device-resident footprint beyond the weights (CUDA context, allocator
  /// reserve, activations, KV cache). Calibrated so that exactly four fp16
  /// 7B instances fit in an 80 GB A100 (§5.2).
  util::Bytes runtime_overhead = static_cast<util::Bytes>(6.5 * 1e9);

  /// When true, decode kernels additionally stream the KV cache for the
  /// current context (grows with token position) and each completion
  /// allocates its KV cache in device memory for its duration. Off by
  /// default: at the paper's ~100-token contexts the effect is <1 % and the
  /// calibrated headline numbers stay put; bench/kv_context_sweep turns it
  /// on to study long-context serving.
  bool model_kv_cache = false;
};

/// Fig 2 flavour: fp32, 20-word completions, knee at ~20 SMs.
LlamaRunConfig fig2_config(int shards = 1);
/// §5.2 serving flavour: fp16 paragraph completions.
LlamaRunConfig serving_config();

/// Weights resident on one shard.
util::Bytes llama_weight_bytes(const LlamaSpec& spec, const LlamaRunConfig& cfg);
/// Total device footprint of one instance on one shard (weights + overhead).
util::Bytes llama_memory_footprint(const LlamaSpec& spec, const LlamaRunConfig& cfg);

/// One decode step on one shard (context position 0 — no KV traffic).
gpu::KernelDesc llama_decode_kernel(const LlamaSpec& spec, const LlamaRunConfig& cfg);

/// Decode step at a context position: with model_kv_cache the kernel also
/// streams `position` tokens' worth of K/V per layer.
gpu::KernelDesc llama_decode_kernel_at(const LlamaSpec& spec,
                                       const LlamaRunConfig& cfg, int position);

/// Bytes of K/V the model stores per context token on one shard.
util::Bytes llama_kv_bytes_per_token(const LlamaSpec& spec,
                                     const LlamaRunConfig& cfg);

/// One iteration of continuous batching: a single fused decode step that
/// produces one token for every sequence in `positions` (each entry is that
/// sequence's context length). The batching win the serving engine banks on
/// is explicit in the footprint: the weights stream ONCE for the whole
/// batch (vs once per token in run-to-completion decode), while per-
/// sequence K/V history still streams individually when model_kv_cache is
/// on. Width and achieved bandwidth grow with the batch — batching gives
/// the bandwidth-bound GEMV more parallel work, so it climbs out of the
/// ~10 %-of-peak batch-1 regime toward the prefill fraction.
/// An empty batch is a config error; a batch of one at position 0 matches
/// llama_decode_kernel exactly.
gpu::KernelDesc llama_batched_decode_kernel(const LlamaSpec& spec,
                                            const LlamaRunConfig& cfg,
                                            const std::vector<int>& positions);
/// Prompt ingestion on one shard.
gpu::KernelDesc llama_prefill_kernel(const LlamaSpec& spec, const LlamaRunConfig& cfg,
                                     int prompt_tokens);

/// Analytic decode-token service time at an SM grant — used by Fig 2 and by
/// the core right-sizing tool (no contention, launch overhead included).
util::Duration llama_decode_token_time(const LlamaSpec& spec, const LlamaRunConfig& cfg,
                                       const gpu::GpuArchSpec& arch, int sms);

/// Whole-completion latency on the CPU baseline (Fig 2: 180 s / 360 s).
util::Duration llama_cpu_completion_time(const LlamaSpec& spec,
                                         const gpu::CpuSpec& cpu,
                                         int output_tokens);

/// A completion task: prefill, then `output_tokens` decode steps with host
/// gaps, on the worker's bound GPU context.
struct CompletionShape {
  int prompt_tokens = 128;
  int output_tokens = 100;
};

/// Builds a FaaS app running one completion per invocation. The app's
/// model_bytes reflect the full footprint so capacity limits bite
/// ("only four 7B instances fit in 80 GB").
faas::AppDef make_llama_completion_app(const std::string& name, LlamaSpec spec,
                                       LlamaRunConfig cfg, CompletionShape shape);

/// The completion body itself, reusable outside the FaaS layer (Fig 2
/// drives it straight on a device context).
sim::Co<void> llama_completion(sim::Simulator& sim, gpu::Device& dev,
                               gpu::ContextId ctx, const LlamaSpec& spec,
                               const LlamaRunConfig& cfg, CompletionShape shape);

/// Task-context variant: identical timing, but kernels go through
/// TaskContext::launch so each one becomes a "kernel" span in the causal
/// trace when telemetry is on. make_llama_completion_app uses this.
sim::Co<void> llama_completion(faas::TaskContext& tctx, const LlamaSpec& spec,
                               const LlamaRunConfig& cfg, CompletionShape shape);

}  // namespace faaspart::workloads
