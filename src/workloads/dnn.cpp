#include "workloads/dnn.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::workloads {

util::Flops DnnModel::flops_per_image() const {
  util::Flops total = 0;
  for (const auto& l : layers) total += l.flops;
  return total;
}

util::Bytes DnnModel::weight_bytes() const {
  util::Bytes total = 0;
  for (const auto& l : layers) total += l.weight_bytes;
  return total;
}

double DnnModel::param_count() const {
  return static_cast<double>(weight_bytes()) / 4.0;
}

std::vector<LayerSpec> DnnModel::compute_layers() const {
  std::vector<LayerSpec> out;
  for (const auto& l : layers) {
    if (l.type != LayerType::kPool) out.push_back(l);
  }
  return out;
}

std::vector<gpu::KernelDesc> DnnModel::inference_kernels(int batch) const {
  FP_CHECK_MSG(batch >= 1, "batch must be >= 1");
  std::vector<gpu::KernelDesc> out;
  for (const auto& l : compute_layers()) {
    gpu::KernelDesc k;
    k.name = name + "/" + l.name;
    k.kind = l.type == LayerType::kConv ? gpu::KernelKind::kConv
                                        : gpu::KernelKind::kGemv;
    k.flops = l.flops * batch;
    // Weights read once per batch; activations move per image.
    k.bytes = l.weight_bytes + l.activation_bytes * batch;
    // Occupancy heuristic: one SM per ~8k output elements, clamped.
    const double out_elems =
        static_cast<double>(l.out_c) * l.out_h * l.out_w * batch;
    k.width_sms = std::clamp(static_cast<int>(out_elems / 8192.0), 2, 108);
    k.bw_fraction = l.type == LayerType::kConv ? 0.5 : 0.8;
    out.push_back(std::move(k));
  }
  return out;
}

namespace models {
namespace {

/// Incremental graph builder tracking the activation shape.
class Builder {
 public:
  Builder(std::string model_name, int channels, int hw)
      : model_(std::move(model_name)), c_(channels), h_(hw), w_(hw) {}

  void conv(const std::string& name, int out_c, int k, int stride, int pad) {
    LayerSpec l;
    l.name = name;
    l.type = LayerType::kConv;
    l.in_c = c_;
    l.in_h = h_;
    l.in_w = w_;
    l.kernel = k;
    l.stride = stride;
    l.out_c = out_c;
    l.out_h = (h_ + 2 * pad - k) / stride + 1;
    l.out_w = (w_ + 2 * pad - k) / stride + 1;
    const double macs = static_cast<double>(k) * k * c_ * l.out_h * l.out_w * out_c;
    l.flops = 2.0 * macs;
    l.weight_bytes = static_cast<util::Bytes>(
        (static_cast<std::int64_t>(k) * k * c_ * out_c + out_c) * 4);
    l.activation_bytes = static_cast<util::Bytes>(
        (static_cast<std::int64_t>(c_) * h_ * w_ +
         static_cast<std::int64_t>(out_c) * l.out_h * l.out_w) *
        4);
    layers_.push_back(l);
    c_ = out_c;
    h_ = l.out_h;
    w_ = l.out_w;
  }

  void pool(const std::string& name, int k, int stride, int pad = 0) {
    LayerSpec l;
    l.name = name;
    l.type = LayerType::kPool;
    l.in_c = c_;
    l.in_h = h_;
    l.in_w = w_;
    l.kernel = k;
    l.stride = stride;
    l.out_c = c_;
    l.out_h = (h_ + 2 * pad - k) / stride + 1;
    l.out_w = (w_ + 2 * pad - k) / stride + 1;
    l.flops = static_cast<double>(k) * k * l.out_c * l.out_h * l.out_w;
    l.activation_bytes = static_cast<util::Bytes>(
        (static_cast<std::int64_t>(c_) * h_ * w_ +
         static_cast<std::int64_t>(l.out_c) * l.out_h * l.out_w) *
        4);
    layers_.push_back(l);
    h_ = l.out_h;
    w_ = l.out_w;
  }

  void global_avgpool(const std::string& name) {
    LayerSpec l;
    l.name = name;
    l.type = LayerType::kPool;
    l.in_c = c_;
    l.in_h = h_;
    l.in_w = w_;
    l.kernel = h_;
    l.stride = h_;
    l.out_c = c_;
    l.out_h = 1;
    l.out_w = 1;
    l.flops = static_cast<double>(c_) * h_ * w_;
    l.activation_bytes =
        static_cast<util::Bytes>((static_cast<std::int64_t>(c_) * h_ * w_ + c_) * 4);
    layers_.push_back(l);
    h_ = 1;
    w_ = 1;
  }

  void fc(const std::string& name, int out) {
    const int in = c_ * h_ * w_;
    LayerSpec l;
    l.name = name;
    l.type = LayerType::kFc;
    l.in_c = in;
    l.in_h = 1;
    l.in_w = 1;
    l.out_c = out;
    l.out_h = 1;
    l.out_w = 1;
    l.kernel = 1;
    l.flops = 2.0 * in * out;
    l.weight_bytes =
        static_cast<util::Bytes>((static_cast<std::int64_t>(in) * out + out) * 4);
    l.activation_bytes = static_cast<util::Bytes>((in + out) * 4);
    layers_.push_back(l);
    c_ = out;
    h_ = 1;
    w_ = 1;
  }

  /// A convolution on explicit input geometry that does not advance the
  /// main shape chain — used for residual projection shortcuts, which read
  /// the block *input* in parallel with the main path.
  void side_conv(const std::string& name, int in_c, int in_h, int in_w,
                 int out_c, int k, int stride, int pad) {
    const int keep_c = c_;
    const int keep_h = h_;
    const int keep_w = w_;
    c_ = in_c;
    h_ = in_h;
    w_ = in_w;
    conv(name, out_c, k, stride, pad);
    c_ = keep_c;
    h_ = keep_h;
    w_ = keep_w;
  }

  [[nodiscard]] int channels() const { return c_; }
  [[nodiscard]] int height() const { return h_; }
  [[nodiscard]] int width() const { return w_; }

  DnnModel finish() { return DnnModel{model_, std::move(layers_)}; }

 private:
  std::string model_;
  int c_, h_, w_;
  std::vector<LayerSpec> layers_;
};

/// ResNet basic block (18/34): two 3×3 convs (+ 1×1 projection on entry).
void basic_block(Builder& b, const std::string& tag, int out_c, int stride,
                 bool project) {
  const int in_c = b.channels();
  const int in_h = b.height();
  const int in_w = b.width();
  b.conv(tag + ".conv1", out_c, 3, stride, 1);
  b.conv(tag + ".conv2", out_c, 3, 1, 1);
  if (project) {
    b.side_conv(tag + ".proj", in_c, in_h, in_w, out_c, 1, stride, 0);
  }
}

/// ResNet bottleneck block (50/101/152): 1×1 reduce, 3×3, 1×1 expand.
void bottleneck_block(Builder& b, const std::string& tag, int mid_c, int out_c,
                      int stride, bool project) {
  const int in_c = b.channels();
  const int in_h = b.height();
  const int in_w = b.width();
  b.conv(tag + ".conv1", mid_c, 1, 1, 0);
  b.conv(tag + ".conv2", mid_c, 3, stride, 1);
  b.conv(tag + ".conv3", out_c, 1, 1, 0);
  if (project) {
    b.side_conv(tag + ".proj", in_c, in_h, in_w, out_c, 1, stride, 0);
  }
}

DnnModel resnet(const std::string& name, const std::vector<int>& blocks,
                bool bottleneck) {
  Builder b(name, 3, 224);
  b.conv("conv1", 64, 7, 2, 3);
  b.pool("maxpool", 3, 2, 1);
  const int stage_mid[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const int mid = stage_mid[stage];
    const int out = bottleneck ? mid * 4 : mid;
    for (int i = 0; i < blocks[static_cast<std::size_t>(stage)]; ++i) {
      const int stride = (stage > 0 && i == 0) ? 2 : 1;
      const bool project = i == 0;  // channel change (and stride) on entry
      const std::string tag = util::strf("layer", stage + 1, ".", i);
      if (bottleneck) {
        bottleneck_block(b, tag, mid, out, stride, project);
      } else {
        basic_block(b, tag, out, stride, project);
      }
    }
  }
  b.global_avgpool("avgpool");
  b.fc("fc", 1000);
  return b.finish();
}

}  // namespace

DnnModel alexnet() {
  Builder b("alexnet", 3, 224);
  b.conv("conv1", 64, 11, 4, 2);
  b.pool("pool1", 3, 2);
  b.conv("conv2", 192, 5, 1, 2);
  b.pool("pool2", 3, 2);
  b.conv("conv3", 384, 3, 1, 1);
  b.conv("conv4", 256, 3, 1, 1);
  b.conv("conv5", 256, 3, 1, 1);
  b.pool("pool5", 3, 2);
  b.fc("fc6", 4096);
  b.fc("fc7", 4096);
  b.fc("fc8", 1000);
  return b.finish();
}

DnnModel vgg16() {
  Builder b("vgg16", 3, 224);
  const int cfg[5][3] = {{64, 64, 0}, {128, 128, 0}, {256, 256, 256},
                         {512, 512, 512}, {512, 512, 512}};
  for (int stage = 0; stage < 5; ++stage) {
    for (int i = 0; i < 3; ++i) {
      if (cfg[stage][i] == 0) continue;
      b.conv(util::strf("conv", stage + 1, "_", i + 1), cfg[stage][i], 3, 1, 1);
    }
    b.pool(util::strf("pool", stage + 1), 2, 2);
  }
  b.fc("fc6", 4096);
  b.fc("fc7", 4096);
  b.fc("fc8", 1000);
  return b.finish();
}

DnnModel resnet18() { return resnet("resnet18", {2, 2, 2, 2}, false); }
DnnModel resnet34() { return resnet("resnet34", {3, 4, 6, 3}, false); }
DnnModel resnet50() { return resnet("resnet50", {3, 4, 6, 3}, true); }
DnnModel resnet101() { return resnet("resnet101", {3, 4, 23, 3}, true); }
DnnModel resnet152() { return resnet("resnet152", {3, 8, 36, 3}, true); }

std::vector<DnnModel> all() {
  return {alexnet(), vgg16(),    resnet18(), resnet34(),
          resnet50(), resnet101(), resnet152()};
}

DnnModel by_name(const std::string& name) {
  for (auto& m : all()) {
    if (m.name == name) return m;
  }
  throw util::NotFoundError(util::strf("DNN model '", name, "'"));
}

}  // namespace models
}  // namespace faaspart::workloads
