// BatchingServer — a DNN inference server that groups queued requests into
// batches before launching (the serving-layer optimization of the paper's
// own GSlice/D-STACK lineage [9, 10]). Batching amortizes kernel launches
// and widens the kernels, which is what makes small MPS/MIG partitions
// throughput-efficient for CNN serving (§3.3/Table 1's workload).
//
// The server drains its queue on a fixed flush tick: each tick it forms
// batches of up to `max_batch` requests and runs the model's kernel
// sequence per batch on its GPU context.
#pragma once

#include <deque>
#include <vector>

#include "gpu/device.hpp"
#include "sim/future.hpp"
#include "trace/stats.hpp"
#include "workloads/dnn.hpp"

namespace faaspart::workloads {

struct BatchingServerConfig {
  int max_batch = 8;
  /// Queue drain period; also the worst-case added queueing delay.
  util::Duration flush_every = util::milliseconds(10);
};

class BatchingServer {
 public:
  BatchingServer(sim::Simulator& sim, gpu::Device& device, gpu::ContextId ctx,
                 DnnModel model, BatchingServerConfig cfg = {});

  /// Client API: one inference request; the future completes when its batch
  /// finishes on the GPU.
  sim::Future<> infer();

  /// Serving loop; spawn on the simulator. Runs until `deadline`, then
  /// drains whatever is still queued.
  sim::Co<void> run(util::TimePoint deadline);

  [[nodiscard]] std::size_t requests_served() const { return served_; }
  [[nodiscard]] std::size_t batches_run() const { return batch_sizes_.size(); }
  [[nodiscard]] double mean_batch_size() const;
  /// Request latencies (enqueue → batch completion), seconds.
  [[nodiscard]] trace::Summary latency_summary() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Pending {
    sim::Promise<> done;
    util::TimePoint enqueued{};
  };

  sim::Co<void> run_one_batch(std::vector<Pending> batch);

  sim::Simulator& sim_;
  gpu::Device& device_;
  gpu::ContextId ctx_;
  DnnModel model_;
  BatchingServerConfig cfg_;
  std::deque<Pending> queue_;
  std::vector<int> batch_sizes_;
  std::vector<double> latencies_s_;
  std::size_t served_ = 0;
};

}  // namespace faaspart::workloads
