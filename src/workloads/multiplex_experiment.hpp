// The §5.2 multiplexed-vs-non-multiplexed LLaMa-2 experiment (Figs 4 & 5).
//
// One A100-80GB serves N concurrent LLaMa-2 7B chatbots completing a fixed
// batch of paragraph completions ("work divided equally across number of
// processes"). Sharing mode per the paper:
//   timeshare — available_accelerators repeats the GPU, no percentages;
//   mps       — equal GPU percentages (100/N each, Listing 2);
//   mig       — N instances: 3g.40gb ×2, 2g.20gb ×3, 1g.20gb ×4 (Listing 3;
//               the 4-way row uses the double-memory 1g profile so the fp16
//               model fits — see EXPERIMENTS.md);
//   N = 1     — the non-multiplexed FaaS default the paper compares against.
//
// Each run builds a fresh virtual testbed, so runs are independent and
// deterministic.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "faults/faults.hpp"
#include "workloads/llama.hpp"
#include "workloads/serving.hpp"

namespace faaspart::workloads {

enum class MultiplexMode { kSingle, kTimeshare, kMps, kMig };

const char* multiplex_mode_name(MultiplexMode mode);

struct MultiplexRunConfig {
  int processes = 1;        ///< concurrent model instances (1–4)
  MultiplexMode mode = MultiplexMode::kSingle;
  int total_completions = 100;  ///< the paper's batch
  LlamaSpec model = llama2_7b();
  LlamaRunConfig run = serving_config();
  CompletionShape shape{128, 100};
  /// The GPU under test — A100-80GB per §5.2; swap in H100/MI210 for the
  /// cross-architecture study.
  gpu::GpuArchSpec arch = gpu::arch::a100_80gb();
  std::uint64_t seed = 1;

  // -- chaos extensions (bench/chaos_soak, tests) ---------------------------
  /// Fault plan installed for the run; FaultPlan{} (all-zero) leaves the
  /// fault layer out entirely, reproducing the undisturbed baseline.
  faults::FaultPlan faults;
  /// DFK resubmissions per task and the pause policy between them.
  int retries = 0;
  util::Duration retry_backoff_base{};
  /// Accept task failures (retries exhausted) instead of aborting the run.
  bool allow_failures = false;
  /// Serialize the run's chrome trace into the result (determinism checks).
  bool capture_chrome_trace = false;

  // -- observability (PR: unified telemetry layer) --------------------------
  /// Installs an obs::Telemetry for the run: metrics at every layer, causal
  /// task spans, and per-partition utilization sampling. Off by default so
  /// undisturbed runs stay byte-identical to the uninstrumented baseline.
  bool observability = false;
  /// Virtual-time sampling cadence for partition utilization.
  util::Duration obs_sample_period = util::milliseconds(50);
  /// Causal span collection; metrics + sampling stay on when false.
  bool obs_tracing = true;
  /// Render prometheus_text / obs_chrome_trace / dashboard_text into the
  /// result. bench/sec6_overheads turns this off to time the in-run
  /// instrumentation alone — serialization is a post-run cost you pay only
  /// when you ask for the artifacts.
  bool obs_render = true;
  /// When set (and observability is on): export metrics.prom, trace.json
  /// and timeseries.csv into this directory after the run.
  std::string obs_export_dir;
};

struct MultiplexRunResult {
  MultiplexRunConfig config;
  BatchRunResult batch;
  double gpu_utilization = 0;  ///< measured over the batch window
  std::size_t retries_used = 0;     ///< extra attempts beyond the first
  std::size_t failures = 0;         ///< tasks that exhausted their retries
  std::uint64_t faults_injected = 0;
  std::string chrome_trace;         ///< filled when capture_chrome_trace
  util::Duration gpu_busy{};        ///< total busy time on the device
  util::TimePoint run_end{};        ///< virtual clock when the run drained

  // Filled when cfg.observability:
  std::string prometheus_text;      ///< the metrics registry, exposition text
  std::string obs_chrome_trace;     ///< enriched trace (causal spans + flows)
  std::string dashboard_text;       ///< terminal dashboard rendering
  /// Sampler busy integrals per partition (name → seconds) — each equals the
  /// partition's engine busy time up to float rounding.
  std::vector<std::pair<std::string, double>> partition_busy_s;
};

/// Builds the testbed, runs the batch to completion, returns measurements.
MultiplexRunResult run_multiplex_experiment(const MultiplexRunConfig& cfg);

/// The MIG profile the paper assigns for N concurrent models on an 80 GB
/// A100 (7g/3g/2g/1g for 1–4 processes).
std::string mig_profile_for_processes(int processes);

}  // namespace faaspart::workloads
