#include "workloads/multiplex_experiment.hpp"

#include <memory>
#include <sstream>

#include "core/partitioner.hpp"
#include "faas/dfk.hpp"
#include "faas/provider.hpp"
#include "nvml/manager.hpp"
#include "obs/chrome.hpp"
#include "obs/dashboard.hpp"
#include "obs/prometheus.hpp"
#include "obs/telemetry.hpp"
#include "trace/chrometrace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::workloads {

const char* multiplex_mode_name(MultiplexMode mode) {
  switch (mode) {
    case MultiplexMode::kSingle: return "single";
    case MultiplexMode::kTimeshare: return "timeshare";
    case MultiplexMode::kMps: return "mps";
    case MultiplexMode::kMig: return "mig";
  }
  return "?";
}

std::string mig_profile_for_processes(int processes) {
  switch (processes) {
    case 1: return "7g.80gb";
    case 2: return "3g.40gb";
    case 3: return "2g.20gb";
    case 4: return "1g.20gb";
    default:
      throw util::ConfigError(util::strf("no MIG layout for ", processes,
                                         " processes on one A100"));
  }
}

MultiplexRunResult run_multiplex_experiment(const MultiplexRunConfig& cfg) {
  FP_CHECK_MSG(cfg.processes >= 1, "need at least one process");
  FP_CHECK_MSG(
      static_cast<util::Bytes>(cfg.processes) *
              llama_memory_footprint(cfg.model, cfg.run) <=
          cfg.arch.memory,
      "instances exceed device memory (only four 7B fit an 80 GB A100, §5.2)");
  if (cfg.mode == MultiplexMode::kSingle) {
    FP_CHECK_MSG(cfg.processes == 1, "single mode means one process");
  }

  sim::Simulator sim;
  trace::Recorder rec;
  // Telemetry before everything it observes (destroyed after them, so device
  // destructors can still detach their sampler sources).
  std::unique_ptr<obs::Telemetry> telemetry;
  if (cfg.observability) {
    obs::TelemetryOptions topts;
    topts.sample_period = cfg.obs_sample_period;
    topts.tracing = cfg.obs_tracing;
    telemetry = std::make_unique<obs::Telemetry>(sim, topts);
  }
  // The injector outlives the devices/executors that subscribe to it
  // (declared before DeviceManager so it is destroyed after them).
  std::unique_ptr<faults::FaultInjector> injector;
  if (cfg.faults.enabled()) {
    injector = std::make_unique<faults::FaultInjector>(sim, cfg.faults, &rec);
  }
  nvml::DeviceManager mgr(sim, &rec);
  const int gpu = mgr.add_device(cfg.arch);
  faas::LocalProvider provider(sim, 24);  // §5.1 testbed
  core::GpuPartitioner part(mgr);
  faas::Config dfk_cfg;
  dfk_cfg.retries = cfg.retries;
  dfk_cfg.backoff.base = cfg.retry_backoff_base;
  faas::DataFlowKernel dfk(sim, dfk_cfg);

  faas::HtexConfig htex;
  htex.label = "gpu";
  switch (cfg.mode) {
    case MultiplexMode::kSingle:
      htex.available_accelerators = {"0"};
      break;
    case MultiplexMode::kTimeshare:
      // Repeat the GPU id, no percentages: NVIDIA's default sharing.
      for (int i = 0; i < cfg.processes; ++i) {
        htex.available_accelerators.push_back("0");
      }
      break;
    case MultiplexMode::kMps:
      // Listing 2: equal split — 50 % each at 2, 33 % at 3, 25 % at 4.
      for (int i = 0; i < cfg.processes; ++i) {
        htex.available_accelerators.push_back("0");
        htex.gpu_percentages.push_back(100 / cfg.processes);
      }
      break;
    case MultiplexMode::kMig: {
      const std::string profile = mig_profile_for_processes(cfg.processes);
      gpu::Device& dev = mgr.device(gpu);
      dev.enable_mig();
      for (int i = 0; i < cfg.processes; ++i) {
        const auto id = dev.create_instance(profile);
        htex.available_accelerators.push_back(dev.instance(id).uuid);
      }
      break;
    }
  }

  dfk.add_executor(part.build_executor(sim, provider, htex, nullptr, &rec,
                                       cfg.seed));

  const faas::AppDef app = make_llama_completion_app(
      cfg.model.name + "-chat", cfg.model, cfg.run, cfg.shape);

  auto out = std::make_shared<BatchRunResult>();
  spawn_closed_loop_batch(sim, dfk, "gpu", app, cfg.processes,
                          cfg.total_completions, out);
  sim.run();
  if (injector != nullptr) injector->stop();
  FP_CHECK_MSG(out->tasks == static_cast<std::size_t>(cfg.total_completions),
               "batch did not complete");
  if (!cfg.allow_failures) {
    FP_CHECK_MSG(out->failures == 0, "tasks failed during the batch");
  }

  MultiplexRunResult result;
  result.config = cfg;
  result.batch = *out;
  result.failures = out->failures;
  for (const auto& r : dfk.records()) {
    if (r->tries > 1) result.retries_used += static_cast<std::size_t>(r->tries - 1);
  }
  if (injector != nullptr) {
    result.faults_injected = injector->stats().injected_total();
  }
  if (cfg.capture_chrome_trace) {
    std::ostringstream os;
    trace::write_chrome_trace(os, rec);
    result.chrome_trace = os.str();
  }
  result.gpu_busy = mgr.device(gpu).busy_time();
  result.run_end = sim.now();
  // Utilization over the measured window (first body start → last finish).
  const auto extent_end = rec.last_end();
  result.gpu_utilization = mgr.device(gpu).measured_utilization(
      extent_end - result.batch.makespan, extent_end);
  if (telemetry != nullptr) {
    telemetry->finish();
    for (const auto& s : telemetry->sampler().series()) {
      result.partition_busy_s.emplace_back(s.name, s.busy_integral_s);
    }
    if (cfg.obs_render) {
      std::ostringstream prom;
      obs::write_prometheus(prom, telemetry->metrics());
      result.prometheus_text = prom.str();
      std::ostringstream enriched;
      obs::write_enriched_chrome_trace(enriched, &rec, telemetry->tracer(),
                                       &telemetry->sampler());
      result.obs_chrome_trace = enriched.str();
      std::ostringstream dash;
      obs::write_dashboard(
          dash, *telemetry,
          util::strf(cfg.processes, "-process ",
                     multiplex_mode_name(cfg.mode), " telemetry"));
      result.dashboard_text = dash.str();
    }
    if (!cfg.obs_export_dir.empty()) {
      (void)telemetry->export_all(cfg.obs_export_dir, &rec);
    }
  }
  return result;
}

}  // namespace faaspart::workloads
