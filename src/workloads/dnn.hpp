// CNN architectures and per-layer arithmetic (Fig 1, §3.3, §3.4).
//
// Fig 1 plots the floating-point work of every convolution layer of popular
// torchvision models to show how compute demand varies wildly *within* one
// inference. These builders construct the layer graphs analytically:
// geometry in, closed-form FLOP/byte counts out, validated against the
// well-known parameter counts (ResNet-50 ≈ 25.6 M, VGG-16 ≈ 138 M, ...).
#pragma once

#include <string>
#include <vector>

#include "gpu/kernel.hpp"
#include "util/units.hpp"

namespace faaspart::workloads {

enum class LayerType { kConv, kFc, kPool };

struct LayerSpec {
  std::string name;
  LayerType type = LayerType::kConv;

  // Geometry (per image).
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0, out_h = 0, out_w = 0;
  int kernel = 0, stride = 1;

  util::Flops flops = 0;            ///< per image (2 × MACs)
  util::Bytes weight_bytes = 0;     ///< fp32 weights + bias
  util::Bytes activation_bytes = 0; ///< fp32 input + output activations
};

struct DnnModel {
  std::string name;
  std::vector<LayerSpec> layers;

  [[nodiscard]] util::Flops flops_per_image() const;
  [[nodiscard]] util::Bytes weight_bytes() const;
  [[nodiscard]] double param_count() const;  ///< weight_bytes / 4

  /// Convolution/FC layers only — the series Fig 1 plots.
  [[nodiscard]] std::vector<LayerSpec> compute_layers() const;

  /// One kernel per compute layer for a batched inference. Kernel widths
  /// follow layer output size (early high-resolution convs are wide, late
  /// small maps and batch-1 FC layers are narrow — the Fig 1 variability).
  [[nodiscard]] std::vector<gpu::KernelDesc> inference_kernels(int batch) const;
};

namespace models {
DnnModel alexnet();
DnnModel vgg16();
DnnModel resnet18();
DnnModel resnet34();
DnnModel resnet50();
DnnModel resnet101();
DnnModel resnet152();

/// All of the above, the Fig 1 roster.
std::vector<DnnModel> all();
/// Lookup by name ("resnet50"); throws util::NotFoundError.
DnnModel by_name(const std::string& name);
}  // namespace models

}  // namespace faaspart::workloads
