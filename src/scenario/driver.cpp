#include "scenario/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace faaspart::scenario {

TraceDriver::TraceDriver(sim::Simulator& sim,
                         federation::ClusterService& cluster, Trace trace)
    : sim_(sim), cluster_(cluster), trace_(std::move(trace)) {
  validate(trace_);
  std::stable_sort(trace_.events.begin(), trace_.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
}

void TraceDriver::bind_all(const AppFactory& make_app,
                           const std::string& executor_label) {
  bind_all(make_app,
           [&executor_label](const TraceFunction&) { return executor_label; });
}

void TraceDriver::bind_all(const AppFactory& make_app, const LabelFn& label_of) {
  for (const TraceFunction& f : trace_.catalog) {
    faas::AppDef app = make_app(f);
    app.name = f.name;
    const std::string id =
        cluster_.service().register_function(std::move(app));
    federation::FunctionClass cls = f.cls;
    cls.tenant = f.tenant;  // tag request spans / SLIs with the SLO class
    cluster_.configure_function(id, cls);
    bindings_[f.name] = Binding{id, label_of(f), f.tenant};
  }
}

sim::Co<void> TraceDriver::arrivals() {
  for (const TraceEvent& ev : trace_.events) {
    if (ev.at > sim_.now()) co_await sim_.delay(ev.at - sim_.now());
    const Binding& b = bindings_.at(ev.function);
    handles_.push_back(cluster_.submit(b.function_id, b.executor_label));
  }
}

void TraceDriver::start() {
  FP_CHECK_MSG(!started_, "TraceDriver::start called twice");
  FP_CHECK_MSG(bindings_.size() == trace_.catalog.size(),
               "TraceDriver::start before bind_all");
  started_ = true;
  sim_.spawn(arrivals(), "trace-driver");
}

ReplayReport TraceDriver::report() const {
  ReplayReport r;
  r.submitted = handles_.size();
  std::vector<double> completions;
  std::ostringstream hashed;
  for (const faas::AppHandle& h : handles_) {
    const faas::TaskRecord& rec = *h.record;
    ++r.submitted_by_function[rec.app];
    if (rec.state == faas::TaskRecord::State::kDone) {
      ++r.completed;
      const auto bit = bindings_.find(rec.app);
      if (bit != bindings_.end()) ++r.completed_by_tenant[bit->second.tenant];
      completions.push_back(rec.completion_time().seconds());
    } else if (rec.error.rfind("shed: ", 0) == 0) {
      ++r.shed;
    } else {
      ++r.failed;
    }
    hashed << rec.app << '|' << static_cast<int>(rec.state) << '|'
           << rec.finished.ns << '|' << rec.error << '\n';
  }
  r.completion = trace::summarize(std::move(completions));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(hashed.str())));
  r.digest = buf;
  return r;
}

namespace {

sim::Co<void> drain_after(sim::Simulator& sim,
                          federation::ClusterService& cluster,
                          util::Duration at_least) {
  co_await sim.delay(at_least);
  co_await cluster.shutdown();
}

}  // namespace

ReplayReport replay_trace(sim::Simulator& sim,
                          federation::ClusterService& cluster, Trace trace,
                          const TraceDriver::AppFactory& make_app,
                          const std::string& executor_label,
                          util::Duration drain_grace) {
  TraceDriver driver(sim, cluster, std::move(trace));
  driver.bind_all(make_app, executor_label);
  driver.start();
  sim.spawn(drain_after(sim, cluster, driver.trace().horizon + drain_grace),
            "trace-drain");
  sim.run();
  return driver.report();
}

}  // namespace faaspart::scenario
