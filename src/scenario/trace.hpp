// The .fstrace scenario format (DESIGN.md §11) — a compact, versioned,
// diffable text description of an open-loop load scenario: a catalog of
// functions with their serving classes (WFQ weight, admission limits, SLO
// deadline — federation::FunctionClass verbatim) plus a time-sorted list of
// arrival events over a horizon.
//
// The format is the contract between three consumers:
//   * scenario::synthesize (modulated-Poisson phases × Zipf popularity)
//     emits it,
//   * scenario::TraceDriver replays it into a federation::ClusterService
//     deterministically, and
//   * tests/prop serializes shrunk property counterexamples into it, so a
//     CI failure is a file you can `git add` to the regression corpus.
//
// Canonical form: save() always emits the same bytes for the same Trace
// (catalog sorted by name, events by (time, input order), doubles printed
// with round-trip precision), so `save(load(save(t))) == save(t)` holds —
// the property tests pin it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "federation/admission.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace faaspart::scenario {

/// A malformed or internally inconsistent .fstrace.
class TraceFormatError : public util::Error {
 public:
  explicit TraceFormatError(const std::string& what)
      : Error("fstrace: " + what) {}
};

/// One catalog entry: a function name, the tenant (SLO class) it belongs
/// to, and its full serving class.
struct TraceFunction {
  std::string name;
  std::string tenant;  ///< free-form SLO-class label ("interactive", ...)
  federation::FunctionClass cls;
};

/// One open-loop arrival.
struct TraceEvent {
  util::TimePoint at{};
  std::string function;  ///< must name a catalog entry
};

/// A complete scenario. `seed` records provenance (the synthesis seed; 0
/// for hand-written or shrunk traces) — replay never draws from it.
struct Trace {
  int version = 1;
  std::uint64_t seed = 0;
  util::Duration horizon{};  ///< end of the arrival window
  std::vector<TraceFunction> catalog;
  std::vector<TraceEvent> events;
};

/// Serializes to canonical .fstrace text. Sorts the catalog by name and the
/// events by (time, position); the input Trace is taken by value so callers
/// keep their ordering.
[[nodiscard]] std::string save(Trace trace);

/// Parses .fstrace text; throws TraceFormatError on malformed input,
/// unknown versions, or events naming functions missing from the catalog.
[[nodiscard]] Trace load(const std::string& text);

/// Checks internal consistency (catalog names unique and non-empty, events
/// sorted by time, every event's function in the catalog, non-negative
/// times within the horizon); throws TraceFormatError on violation.
void validate(const Trace& trace);

/// FNV-1a hex digest over the canonical serialization — a cheap identity
/// for replay/determinism assertions.
[[nodiscard]] std::string digest(const Trace& trace);

/// FNV-1a over arbitrary bytes (exposed for replay-outcome digests).
[[nodiscard]] std::uint64_t fnv1a(const std::string& bytes,
                                  std::uint64_t seed = 14695981039346656037ull);

}  // namespace faaspart::scenario
