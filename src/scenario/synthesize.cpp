#include "scenario/synthesize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace faaspart::scenario {
namespace {

/// Zipf probability mass over ranks 0..n-1 with exponent s, as a CDF for
/// inverse-transform sampling.
std::vector<double> zipf_cdf(int n, double s) {
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double total = 0;
  for (int r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[static_cast<std::size_t>(r)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

int sample_cdf(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<int>(std::min<std::ptrdiff_t>(
      it - cdf.begin(), static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

}  // namespace

std::vector<PhaseSpec> diurnal_burst_phases(util::Duration phase_len,
                                            double peak_mult,
                                            double burst_mult) {
  return {
      {.length = phase_len, .rate_mult = 0.3 * peak_mult},
      {.length = phase_len, .rate_mult = 0.7 * peak_mult},
      {.length = phase_len, .rate_mult = 1.0 * peak_mult},
      {.length = phase_len,
       .rate_mult = burst_mult * peak_mult,
       .burstiness = 0.8,
       .burst_period = util::seconds(3)},
  };
}

Trace synthesize(const SynthesisSpec& spec) {
  FP_CHECK_MSG(spec.functions > 0, "synthesize needs >= 1 function");
  FP_CHECK_MSG(spec.base_rate_hz > 0, "synthesize needs a positive base rate");
  FP_CHECK_MSG(spec.zipf_s >= 0, "zipf exponent must be non-negative");

  std::vector<PhaseSpec> phases = spec.phases;
  if (phases.empty()) {
    phases.push_back({.length = spec.horizon, .rate_mult = 1.0});
  }
  double peak_mult = 0;
  util::Duration horizon{};
  for (const PhaseSpec& ph : phases) {
    FP_CHECK_MSG(ph.length.ns > 0, "phase length must be positive");
    FP_CHECK_MSG(ph.rate_mult >= 0, "phase rate_mult must be non-negative");
    FP_CHECK_MSG(ph.burstiness >= 0 && ph.burstiness <= 1,
                 "phase burstiness must be in [0, 1]");
    horizon += ph.length;
    peak_mult =
        std::max(peak_mult, ph.rate_mult * (1.0 + ph.burstiness));
  }
  std::vector<TenantSpec> tenants = spec.tenants;
  if (tenants.empty()) tenants.push_back(TenantSpec{});

  Trace trace;
  trace.seed = spec.seed;
  trace.horizon = horizon;

  // Catalog: rank r gets the Zipf share of the offered load; its admission
  // limits scale from the peak per-function rate so the hot head and the
  // cold tail get proportionate buckets rather than one global knob.
  const std::vector<double> cdf = zipf_cdf(spec.functions, spec.zipf_s);
  for (int r = 0; r < spec.functions; ++r) {
    const double share =
        cdf[static_cast<std::size_t>(r)] -
        (r > 0 ? cdf[static_cast<std::size_t>(r - 1)] : 0.0);
    const TenantSpec& tenant =
        tenants[static_cast<std::size_t>(r) % tenants.size()];
    TraceFunction f;
    f.name = util::strf("fn-", r < 10 ? "0" : "", r);
    f.tenant = tenant.name;
    f.cls.weight = tenant.weight;
    const double peak_fn_rate = spec.base_rate_hz * peak_mult * share;
    if (tenant.rate_headroom > 0) {
      f.cls.rate_hz = tenant.rate_headroom * peak_fn_rate;
      f.cls.burst = std::max(1.0, tenant.burst_seconds * peak_fn_rate);
    }
    f.cls.max_queue = tenant.max_queue;
    f.cls.deadline = tenant.deadline;
    f.cls.service_estimate = tenant.service_estimate;
    trace.catalog.push_back(std::move(f));
  }

  // Arrival process: one RNG stream, consumed phase by phase. Inside a
  // bursty phase a two-state modulation gate switches between ON/OFF rates
  // with exponential sojourns; arrivals are a Poisson process at the
  // current state's rate, functions drawn Zipf per arrival.
  util::Rng rng(spec.seed);
  util::TimePoint t{};
  util::TimePoint phase_start{};
  for (const PhaseSpec& ph : phases) {
    const util::TimePoint phase_end = phase_start + ph.length;
    bool on = true;
    util::TimePoint state_until =
        ph.burstiness > 0
            ? phase_start + rng.exponential_duration(ph.burst_period)
            : phase_end;
    if (t < phase_start) t = phase_start;
    while (true) {
      const double state_rate =
          spec.base_rate_hz * ph.rate_mult *
          (ph.burstiness > 0
               ? (on ? 1.0 + ph.burstiness : std::max(0.0, 1.0 - ph.burstiness))
               : 1.0);
      if (state_rate <= 0) {
        // Silent state: jump to its end (consuming no draws keeps the
        // stream aligned with the state switches, which do draw).
        t = state_until;
      } else {
        t = t + rng.exponential_duration(util::from_seconds(1.0 / state_rate));
      }
      while (t >= state_until && state_until < phase_end) {
        on = !on;
        state_until = state_until + rng.exponential_duration(ph.burst_period);
        if (state_until > phase_end) state_until = phase_end;
      }
      if (t >= phase_end) break;
      TraceEvent e;
      e.at = t;
      e.function =
          trace.catalog[static_cast<std::size_t>(
                            sample_cdf(cdf, rng.next_double()))]
              .name;
      trace.events.push_back(std::move(e));
    }
    phase_start = phase_end;
    t = phase_start;
  }

  validate(trace);
  return trace;
}

}  // namespace faaspart::scenario
