#include "scenario/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <utility>

#include "util/strings.hpp"

namespace faaspart::scenario {
namespace {

/// Shortest-round-trip decimal form of `v`: try increasing precision until
/// the parse recovers the exact double, so canonical text is both readable
/// ("2", "0.5") and loss-free (save→load→save is byte-stable).
std::string canonical_double(double v) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == '=' || c == '#' || c == ' ' || c == '\t' || c == '\n' ||
        c == '\r') {
      return false;
    }
  }
  return true;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::int64_t parse_i64(const std::string& s, int lineno, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw TraceFormatError(util::strf("line ", lineno, ": bad ", what, " '",
                                      s, "'"));
  }
  return static_cast<std::int64_t>(v);
}

/// Seeds use the full unsigned range; strtoll would clamp anything past
/// INT64_MAX (caught by the trace-canonical-roundtrip property).
std::uint64_t parse_u64(const std::string& s, int lineno, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || s.front() == '-' ||
      errno == ERANGE) {
    throw TraceFormatError(util::strf("line ", lineno, ": bad ", what, " '",
                                      s, "'"));
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const std::string& s, int lineno, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw TraceFormatError(util::strf("line ", lineno, ": bad ", what, " '",
                                      s, "'"));
  }
  return v;
}

/// Splits "key=value"; throws when there is no '='.
std::pair<std::string, std::string> split_kv(const std::string& tok,
                                             int lineno) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw TraceFormatError(
        util::strf("line ", lineno, ": expected key=value, got '", tok, "'"));
  }
  return {tok.substr(0, eq), tok.substr(eq + 1)};
}

}  // namespace

std::string save(Trace trace) {
  validate(trace);
  std::stable_sort(trace.catalog.begin(), trace.catalog.end(),
                   [](const TraceFunction& a, const TraceFunction& b) {
                     return a.name < b.name;
                   });
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  std::ostringstream os;
  os << "fstrace " << trace.version << "\n";
  os << "seed " << trace.seed << "\n";
  os << "horizon_ns " << trace.horizon.ns << "\n";
  for (const TraceFunction& f : trace.catalog) {
    os << "function " << f.name << " tenant=" << f.tenant
       << " weight=" << canonical_double(f.cls.weight)
       << " rate_hz=" << canonical_double(f.cls.rate_hz)
       << " burst=" << canonical_double(f.cls.burst)
       << " max_queue=" << f.cls.max_queue
       << " deadline_ns=" << f.cls.deadline.ns
       << " service_ns=" << f.cls.service_estimate.ns << "\n";
  }
  for (const TraceEvent& e : trace.events) {
    os << "event " << e.at.ns << " " << e.function << "\n";
  }
  return os.str();
}

Trace load(const std::string& text) {
  Trace trace;
  bool saw_header = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto toks = split_ws(line);
    if (toks.empty() || toks[0][0] == '#') continue;
    if (!saw_header) {
      if (toks[0] != "fstrace" || toks.size() != 2) {
        throw TraceFormatError(
            util::strf("line ", lineno, ": expected 'fstrace <version>'"));
      }
      trace.version = static_cast<int>(parse_i64(toks[1], lineno, "version"));
      if (trace.version != 1) {
        throw TraceFormatError(
            util::strf("unsupported version ", trace.version));
      }
      saw_header = true;
      continue;
    }
    if (toks[0] == "seed" && toks.size() == 2) {
      trace.seed = parse_u64(toks[1], lineno, "seed");
    } else if (toks[0] == "horizon_ns" && toks.size() == 2) {
      trace.horizon = util::Duration{parse_i64(toks[1], lineno, "horizon")};
    } else if (toks[0] == "function") {
      if (toks.size() < 2) {
        throw TraceFormatError(
            util::strf("line ", lineno, ": function needs a name"));
      }
      TraceFunction f;
      f.name = toks[1];
      for (std::size_t i = 2; i < toks.size(); ++i) {
        const auto [key, val] = split_kv(toks[i], lineno);
        if (key == "tenant") {
          f.tenant = val;
        } else if (key == "weight") {
          f.cls.weight = parse_f64(val, lineno, "weight");
        } else if (key == "rate_hz") {
          f.cls.rate_hz = parse_f64(val, lineno, "rate_hz");
        } else if (key == "burst") {
          f.cls.burst = parse_f64(val, lineno, "burst");
        } else if (key == "max_queue") {
          f.cls.max_queue =
              static_cast<std::size_t>(parse_i64(val, lineno, "max_queue"));
        } else if (key == "deadline_ns") {
          f.cls.deadline = util::Duration{parse_i64(val, lineno, "deadline")};
        } else if (key == "service_ns") {
          f.cls.service_estimate =
              util::Duration{parse_i64(val, lineno, "service")};
        } else {
          throw TraceFormatError(
              util::strf("line ", lineno, ": unknown function key '", key,
                         "'"));
        }
      }
      trace.catalog.push_back(std::move(f));
    } else if (toks[0] == "event" && toks.size() == 3) {
      TraceEvent e;
      e.at = util::TimePoint{parse_i64(toks[1], lineno, "event time")};
      e.function = toks[2];
      trace.events.push_back(std::move(e));
    } else {
      throw TraceFormatError(
          util::strf("line ", lineno, ": unrecognized directive '", toks[0],
                     "'"));
    }
  }
  if (!saw_header) throw TraceFormatError("missing 'fstrace <version>' header");
  validate(trace);
  return trace;
}

void validate(const Trace& trace) {
  if (trace.version != 1) {
    throw TraceFormatError(util::strf("unsupported version ", trace.version));
  }
  if (trace.horizon.ns < 0) throw TraceFormatError("negative horizon");
  std::map<std::string, const TraceFunction*> by_name;
  for (const TraceFunction& f : trace.catalog) {
    if (!valid_name(f.name)) {
      throw TraceFormatError("bad function name '" + f.name + "'");
    }
    if (!valid_name(f.tenant)) {
      throw TraceFormatError("function " + f.name + ": bad tenant '" +
                             f.tenant + "'");
    }
    if (!by_name.emplace(f.name, &f).second) {
      throw TraceFormatError("duplicate function '" + f.name + "'");
    }
    if (f.cls.weight <= 0) {
      throw TraceFormatError("function " + f.name + ": weight must be > 0");
    }
    if (f.cls.rate_hz < 0 || f.cls.burst < 0) {
      throw TraceFormatError("function " + f.name +
                             ": negative rate_hz/burst");
    }
    if (f.cls.rate_hz > 0 && f.cls.burst < 1.0) {
      throw TraceFormatError("function " + f.name +
                             ": rate-limited class needs burst >= 1");
    }
    if (f.cls.deadline.ns < 0 || f.cls.service_estimate.ns < 0) {
      throw TraceFormatError("function " + f.name +
                             ": negative deadline/service estimate");
    }
  }
  for (const TraceEvent& e : trace.events) {
    if (e.at.ns < 0) throw TraceFormatError("event before time zero");
    if (e.at.ns > trace.horizon.ns) {
      throw TraceFormatError(
          util::strf("event at ", e.at.ns, " ns past the horizon (",
                     trace.horizon.ns, " ns)"));
    }
    if (by_name.find(e.function) == by_name.end()) {
      throw TraceFormatError("event names unknown function '" + e.function +
                             "'");
    }
  }
}

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string digest(const Trace& trace) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(save(trace))));
  return buf;
}

}  // namespace faaspart::scenario
