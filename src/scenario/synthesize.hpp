// Seeded scenario synthesis (DESIGN.md §11) — the traffic regime the
// partitioning decisions actually face: open-loop arrivals whose rate is
// modulated by diurnal/bursty phases, spread over a function catalog with
// Zipf-distributed popularity (a few hot functions, a long cold tail) and
// per-tenant SLO classes.
//
// Everything draws from one util::Rng stream seeded by SynthesisSpec::seed,
// so the same spec always yields byte-identical traces (pinned by the
// property suite's SynthesizeDeterministic invariant).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/trace.hpp"

namespace faaspart::scenario {

/// One segment of the modulated-Poisson arrival process.
struct PhaseSpec {
  util::Duration length{};
  /// Arrival-rate multiplier on SynthesisSpec::base_rate_hz for the phase
  /// (the diurnal shape: trough ~0.3, ramp ~0.7, peak ~1, flash burst 2+).
  double rate_mult = 1.0;
  /// ON/OFF burstiness inside the phase (two-state modulated Poisson): the
  /// process alternates ON windows at rate*(1+burstiness) and OFF windows
  /// at rate*max(0, 1-burstiness), mean window `burst_period`. 0 = plain
  /// Poisson.
  double burstiness = 0.0;
  util::Duration burst_period = util::seconds(5);
};

/// A tenant SLO class applied to every function assigned to it. Admission
/// limits are scaled per function from its expected share of the offered
/// load, so hot and cold functions get proportionate buckets.
struct TenantSpec {
  std::string name = "default";
  double weight = 1.0;          ///< WFQ share
  util::Duration deadline{};    ///< completion SLO; 0 = none
  util::Duration service_estimate = util::milliseconds(200);
  /// Token-bucket rate as a multiple of the function's expected peak rate;
  /// 0 disables rate limiting for the tenant.
  double rate_headroom = 1.25;
  /// Bucket depth in seconds of the function's expected peak rate (>= 1
  /// token enforced).
  double burst_seconds = 2.0;
  std::size_t max_queue = 0;  ///< service-side queue cap; 0 = unbounded
};

struct SynthesisSpec {
  std::uint64_t seed = 1;
  int functions = 8;
  /// Zipf popularity exponent over function rank (s=0 uniform; ~1 the
  /// classic serverless skew).
  double zipf_s = 1.0;
  /// Aggregate arrival rate at rate_mult = 1, across all functions.
  double base_rate_hz = 50.0;
  /// Phases played back-to-back; empty = one flat phase of `horizon`.
  std::vector<PhaseSpec> phases;
  /// Used only when `phases` is empty.
  util::Duration horizon = util::seconds(120);
  /// Tenants assigned to functions round-robin in popularity-rank order, so
  /// every class sees both hot and cold functions; empty = one default
  /// tenant.
  std::vector<TenantSpec> tenants;
};

/// A four-phase trough → ramp → peak → flash-crowd shape, `phase_len` each.
[[nodiscard]] std::vector<PhaseSpec> diurnal_burst_phases(
    util::Duration phase_len, double peak_mult = 1.0,
    double burst_mult = 2.0);

/// Generates a validated, canonical-ordered trace from the spec.
[[nodiscard]] Trace synthesize(const SynthesisSpec& spec);

}  // namespace faaspart::scenario
