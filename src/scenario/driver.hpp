// TraceDriver — deterministic replay of an .fstrace scenario into the
// cluster serving layer (DESIGN.md §11).
//
// The driver owns none of the serving stack: the caller builds the
// Simulator, endpoints and ClusterService, then hands the driver a trace
// plus an AppDef factory. bind_all() registers one function per catalog
// entry (through the ComputeService) and installs its serving class;
// start() spawns the arrival coroutine, which submits each event at its
// exact virtual timestamp — so a trace replays byte-identically however
// many runner jobs shard the surrounding sweep, and a synthesize→save→
// load→replay round trip lands on the same outcome digest.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "faas/app.hpp"
#include "federation/cluster.hpp"
#include "scenario/trace.hpp"
#include "trace/stats.hpp"

namespace faaspart::scenario {

/// Outcome of one replay, summarized after the cluster drains.
struct ReplayReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< records in State::kDone
  std::size_t shed = 0;       ///< failed with a ShedError ("shed: ...")
  std::size_t failed = 0;     ///< failed for any other reason
  std::map<std::string, std::size_t> submitted_by_function;
  std::map<std::string, std::size_t> completed_by_tenant;
  trace::Summary completion;  ///< submit→finish seconds, completed requests
  /// FNV-1a over every request's (function, state, finished_ns, error) in
  /// submit order — byte-identical replays have equal digests.
  std::string digest;
};

class TraceDriver {
 public:
  /// Builds an executable app for a catalog entry. The returned AppDef's
  /// name is overridden with the catalog name so reports reconcile.
  using AppFactory = std::function<faas::AppDef(const TraceFunction&)>;

  /// Sorts the trace's events by (time, input order); `trace` must be
  /// valid (scenario::validate) — throws TraceFormatError otherwise.
  TraceDriver(sim::Simulator& sim, federation::ClusterService& cluster,
              Trace trace);

  /// Picks the executor label a catalog function's submits target — lets
  /// one trace span heterogeneous executors (e.g. one GPU executor per
  /// function under the Repartitioner).
  using LabelFn = std::function<std::string(const TraceFunction&)>;

  /// Registers every catalog function with the compute service, installs
  /// its FunctionClass on the cluster, and remembers the (function id,
  /// executor label) binding replay will submit with.
  void bind_all(const AppFactory& make_app, const std::string& executor_label);
  void bind_all(const AppFactory& make_app, const LabelFn& label_of);

  /// Spawns the arrival coroutine; the caller then runs the simulator and
  /// drains the cluster (typically shutdown after the trace horizon).
  void start();

  [[nodiscard]] const Trace& trace() const { return trace_; }

  /// The ComputeService function id bind_all registered for a catalog name —
  /// what callers need to configure per-function machinery (e.g. the online
  /// Repartitioner) around a replay. Throws std::out_of_range before
  /// bind_all or for names missing from the catalog.
  [[nodiscard]] const std::string& function_id(const std::string& name) const {
    return bindings_.at(name).function_id;
  }
  [[nodiscard]] const std::vector<faas::AppHandle>& handles() const {
    return handles_;
  }

  /// Summarizes the replay; call after the simulator drained.
  [[nodiscard]] ReplayReport report() const;

 private:
  struct Binding {
    std::string function_id;
    std::string executor_label;
    std::string tenant;
  };

  sim::Co<void> arrivals();

  sim::Simulator& sim_;
  federation::ClusterService& cluster_;
  Trace trace_;
  std::map<std::string, Binding> bindings_;
  std::vector<faas::AppHandle> handles_;
  bool started_ = false;
};

/// Convenience one-shot: bind, replay, drain `drain_grace` past the trace
/// horizon, shut the cluster down, and return the report.
ReplayReport replay_trace(sim::Simulator& sim,
                          federation::ClusterService& cluster, Trace trace,
                          const TraceDriver::AppFactory& make_app,
                          const std::string& executor_label,
                          util::Duration drain_grace = util::seconds(60));

}  // namespace faaspart::scenario
