#include "core/accelerator.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::core {

namespace {

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

}  // namespace

AcceleratorRef AcceleratorRef::parse(const std::string& text) {
  const std::string t = util::trim(text);
  if (t.empty()) throw util::ConfigError("empty accelerator reference");

  if (util::starts_with(t, "MIG-")) {
    return AcceleratorRef{Kind::kMigInstance, -1, t};
  }
  std::string digits = t;
  const std::string lower = util::to_lower(t);
  if (util::starts_with(lower, "cuda:")) {
    digits = t.substr(5);
  } else if (util::starts_with(lower, "gpu:")) {
    digits = t.substr(4);
  } else if (util::starts_with(lower, "gpu-")) {
    digits = t.substr(4);
  }
  if (!all_digits(digits)) {
    throw util::ConfigError(util::strf("unparseable accelerator reference '", text,
                                       "' (expected a GPU index or MIG-... UUID)"));
  }
  return AcceleratorRef{Kind::kGpu, std::stoi(digits), ""};
}

std::string AcceleratorRef::to_string() const {
  if (kind == Kind::kMigInstance) return mig_uuid;
  return util::strf("cuda:", gpu_index);
}

}  // namespace faaspart::core
