// Reconfigurer — timed GPU-partition reallocation (§6 "Execution overhead"
// and §7 "Re-configuring GPU resources Faster").
//
// MPS path: a client's GPU% cannot change while its process lives, so every
// affected worker restarts — paying process spawn + context init + model
// reload (10–20 s for LLaMa-sized models with the stock DirectLoader, ~0.1 s
// with the WeightCache).
//
// MIG path: every context must leave the device, the GPU resets (1–2 s,
// interfering with all tenants), instances are recreated, and all workers
// restart against the new instances — strictly more disruptive than MPS,
// exactly as Table 1 ranks it.
#pragma once

#include <string>
#include <vector>

#include "core/weightcache.hpp"
#include "faas/executor.hpp"
#include "nvml/manager.hpp"

namespace faaspart::core {

struct ReconfigureReport {
  util::Duration total_time{};  ///< wall-clock (virtual) for the whole operation
  int workers_restarted = 0;
  bool gpu_reset = false;
  /// Graceful degradation: when the requested MIG layout cannot be built
  /// (injected instance-create failure), the reconfigurer falls back to MPS
  /// percentage caps — or plain timesharing if the MPS daemon is down too —
  /// instead of failing the reconfiguration.
  bool degraded = false;
  std::string requested = "mig";
  std::string achieved = "mig";
  std::string degrade_reason;
};

class Reconfigurer {
 public:
  explicit Reconfigurer(nvml::DeviceManager& manager) : manager_(manager) {}

  /// Restarts every worker of `ex` with a new MPS percentage
  /// (new_percentages[i] → worker i). Workers restart concurrently; the
  /// report's total_time is the start-to-finish wall time.
  sim::Co<ReconfigureReport> change_mps_percentages(
      faas::HighThroughputExecutor& ex, std::vector<int> new_percentages);

  /// Re-layouts device `device_index` to `profiles` and rebinds every worker
  /// of `ex` to the new instances (worker i → profiles[i], which must match
  /// the worker count). `cache`, when given, is flushed off the device first
  /// (its daemon contexts would otherwise block the reset) — pass the same
  /// cache the executor loads through.
  sim::Co<ReconfigureReport> change_mig_layout(faas::HighThroughputExecutor& ex,
                                               int device_index,
                                               std::vector<std::string> profiles,
                                               WeightCache* cache = nullptr);

  /// One tenant's share of a multi-tenant device relayout.
  struct TenantLayout {
    faas::HighThroughputExecutor* executor = nullptr;
    /// One profile per worker of `executor`. Empty = park-only: the tenant
    /// has no instance on this device in the new plan, so its workers stay
    /// parked (the cluster layer must stop routing to it first).
    std::vector<std::string> profiles;
  };

  /// Multi-tenant version of change_mig_layout: parks every worker of every
  /// tenant, resets device `device_index` to the concatenation of the
  /// tenants' profiles, and restarts each non-empty tenant's workers against
  /// its own instances. An all-empty layout clears MIG and leaves everything
  /// parked. Degrades MIG→MPS→timeshare exactly like change_mig_layout; in
  /// the degraded modes park-only tenants also stay parked. This is the
  /// apply path of the online Repartitioner (federation/repartition.hpp).
  sim::Co<ReconfigureReport> change_device_layout(
      std::vector<TenantLayout> tenants, int device_index,
      WeightCache* cache = nullptr);

 private:
  nvml::DeviceManager& manager_;
};

}  // namespace faaspart::core
