#include "core/weightcache.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::core {

WeightCache::Scope& WeightCache::scope_for(gpu::Device& dev, gpu::ContextId ctx) {
  const auto inst = dev.context(ctx).instance();
  const ScopeKey key =
      key_for(dev, inst.has_value() ? static_cast<std::int64_t>(*inst) : -1);
  auto it = scopes_.find(key);
  if (it == scopes_.end()) {
    Scope scope;
    gpu::ContextOptions opts;
    opts.instance = inst;
    scope.daemon_ctx = dev.create_context("weight-cache", opts);
    it = scopes_.emplace(key, std::move(scope)).first;
  }
  return it->second;
}

sim::Co<void> WeightCache::load(gpu::Device& dev, gpu::ContextId ctx,
                                const faas::AppDef& app) {
  if (app.model_bytes <= 0) co_return;
  Scope& scope = scope_for(dev, ctx);
  const std::string& key = app.effective_model_key();

  const auto hit = scope.entries.find(key);
  if (hit != scope.entries.end()) {
    hit->second.last_used = ++clock_;
    ++hits_;
    co_await dev.simulator().delay(attach_cost_);
    co_return;
  }

  // Miss: allocate in the daemon context, evicting LRU entries on pressure —
  // first against the configured byte budget, then against device OOM.
  ++misses_;
  evict_for_budget(dev, scope, app.model_bytes);
  gpu::AllocationId alloc = 0;
  while (true) {
    try {
      alloc = dev.alloc(scope.daemon_ctx, app.model_bytes, "cache:" + key);
      break;
    } catch (const util::OutOfMemoryError&) {
      // Evict the least-recently-used entry in this scope; rethrow when the
      // scope has nothing left to give back.
      auto lru = scope.entries.end();
      for (auto it = scope.entries.begin(); it != scope.entries.end(); ++it) {
        if (lru == scope.entries.end() ||
            it->second.last_used < lru->second.last_used) {
          lru = it;
        }
      }
      if (lru == scope.entries.end()) throw;
      dev.free(scope.daemon_ctx, lru->second.alloc);
      scope.entries.erase(lru);
      ++evictions_;
    }
  }

  scope.entries.emplace(key, Entry{alloc, app.model_bytes, ++clock_});
  const double rate = dev.arch().model_load_bw;
  co_await dev.simulator().delay(
      util::from_seconds(static_cast<double>(app.model_bytes) / rate));
  // The requesting worker then attaches like any other consumer.
  co_await dev.simulator().delay(attach_cost_);
}

void WeightCache::evict_for_budget(gpu::Device& dev, Scope& scope,
                                   util::Bytes incoming) {
  if (capacity_ <= 0) return;
  const auto resident = [&scope] {
    util::Bytes total = 0;
    for (const auto& [name, entry] : scope.entries) total += entry.bytes;
    return total;
  };
  while (!scope.entries.empty() && resident() + incoming > capacity_) {
    auto lru = scope.entries.begin();
    for (auto it = scope.entries.begin(); it != scope.entries.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    dev.free(scope.daemon_ctx, lru->second.alloc);
    scope.entries.erase(lru);
    ++evictions_;
  }
}

bool WeightCache::holds(const std::string& model_key) const {
  for (const auto& [key, scope] : scopes_) {
    if (scope.entries.contains(model_key)) return true;
  }
  return false;
}

util::Bytes WeightCache::resident_bytes(const gpu::Device& dev) const {
  util::Bytes total = 0;
  for (const auto& [key, scope] : scopes_) {
    if (key.dev != &dev) continue;
    for (const auto& [name, entry] : scope.entries) total += entry.bytes;
  }
  return total;
}

void WeightCache::release_device(gpu::Device& dev) {
  for (auto it = scopes_.begin(); it != scopes_.end();) {
    if (it->first.dev == &dev) {
      // Destroying the daemon context frees all of its allocations.
      dev.destroy_context(it->second.daemon_ctx);
      it = scopes_.erase(it);
    } else {
      ++it;
    }
  }
}

void WeightCache::evict(gpu::Device& dev, const std::string& model_key) {
  for (auto& [key, scope] : scopes_) {
    if (key.dev != &dev) continue;
    const auto it = scope.entries.find(model_key);
    if (it != scope.entries.end()) {
      dev.free(scope.daemon_ctx, it->second.alloc);
      ++evictions_;
      scope.entries.erase(it);
      return;
    }
  }
  throw util::NotFoundError(util::strf("model '", model_key, "' not cached on ",
                                       dev.name()));
}

}  // namespace faaspart::core
