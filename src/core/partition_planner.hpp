// PartitionPlanner — cluster-wide MIG layout packing (DESIGN.md §13).
//
// Given per-function demand (offered rate) and per-profile performance
// scores (from sched::MpsProbe co-run probes, MISO-style), the planner packs
// MIG profiles across a fleet of identical GPUs so that satisfied demand —
// Σ_f min(rate_f, Σ capacity of f's instances) — is maximized, ParvaGPU's
// two-level idea: choose a profile ladder per function, then pack instances
// across devices minimizing fragmentation.
//
// The planner is pure (no simulator, no devices): deterministic data in,
// deterministic plan out. That is what makes it property-testable — the
// invariants in tests/prop/prop_planner.cpp (no slice overlap, capacity
// conservation, idempotence, bounded optimality vs a brute-force packer)
// check the function, not a running system. The online Repartitioner
// (federation/repartition.hpp) is a thin applier around it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "gpu/mig.hpp"
#include "sched/profile_score.hpp"

namespace faaspart::core {

/// Predicted per-instance performance of one function on one MIG profile —
/// defined in sched/profile_score.hpp next to the MpsProbe that produces
/// it (keeps sched below core in the layering DAG), re-exported here for
/// the planner's callers.
using sched::ProfileScore;

/// One function's planning input.
struct FunctionDemand {
  std::string name;
  double rate_hz = 0;        ///< offered load to satisfy
  util::Bytes memory = 0;    ///< resident bytes (weights + activations)
  std::vector<ProfileScore> scores;
};

/// One MIG instance in a plan: a function bound to a profile at a concrete
/// slice offset. Offsets are what make overlap checkable.
struct Placement {
  std::string function;
  std::string profile;
  int compute_start = 0;
  int compute_slices = 0;
  int mem_start = 0;
  int mem_slices = 0;

  friend bool operator==(const Placement&, const Placement&) = default;
};

struct GpuLayout {
  std::vector<Placement> placements;

  friend bool operator==(const GpuLayout&, const GpuLayout&) = default;
};

struct FleetPlan {
  std::vector<GpuLayout> gpus;

  friend bool operator==(const FleetPlan&, const FleetPlan&) = default;
};

struct PlannerOptions {
  /// A smaller profile within (1+epsilon)× of the best probed latency is
  /// preferred over the faster one — MISO's "right-size, don't max-size".
  double epsilon = 0.05;
  /// Virtual seconds one GPU is unavailable while its layout is rebuilt
  /// (drain + MIG reset + worker restarts).
  double reset_cost_s = 2.0;
  /// Horizon over which a predicted throughput gain must pay back the
  /// requests lost to resets before the plan is worth applying.
  double horizon_s = 60.0;
  /// Minimum predicted gain (req/s) to bother reconfiguring at all.
  double min_gain_hz = 0.0;
};

struct PlanResult {
  FleetPlan plan;
  double objective = 0;          ///< satisfied demand of `plan`, req/s
  double current_objective = 0;  ///< satisfied demand of the current plan
  double predicted_gain_hz = 0;  ///< objective - current_objective
  int gpus_changed = 0;          ///< devices whose layout differs from current
  bool apply = false;            ///< true when the gain amortizes the resets
  std::string reason;            ///< why apply is true/false
};

/// Satisfied demand of `plan` under `demands`: Σ_f min(rate_f, Σ over f's
/// placements of the placed profile's predicted throughput). Placements of
/// functions absent from `demands` contribute nothing.
[[nodiscard]] double planner_objective(const std::vector<FunctionDemand>& demands,
                                       const FleetPlan& plan);

/// Structural validity of a plan on `arch`: every profile exists, slice
/// ranges match the profile's shape, no two placements on a device overlap
/// in compute or memory slices, and per-device totals respect the slice
/// budgets. Returns "" when valid, else a description of the first violation.
[[nodiscard]] std::string validate_fleet_plan(const gpu::GpuArchSpec& arch,
                                              const FleetPlan& plan);

/// Builds one device's layout from (function, profile) pairs, assigning
/// non-overlapping slice offsets (largest instance first, then by function
/// name — the same canonical order plan_fleet uses). Throws util::ConfigError
/// when the instances do not fit the device.
[[nodiscard]] GpuLayout layout_from_profiles(
    const gpu::GpuArchSpec& arch,
    const std::vector<std::pair<std::string, std::string>>& assignments);

/// The planner: packs `demands` across `gpu_count` identical `arch` devices.
/// `current` (may be empty) is the layout in force; it breaks score ties in
/// favor of not moving and feeds the reset-cost amortization that decides
/// `apply`. Deterministic: same inputs, same plan — replanning an applied
/// plan yields gpus_changed == 0 (idempotence, property-tested).
[[nodiscard]] PlanResult plan_fleet(const gpu::GpuArchSpec& arch, int gpu_count,
                                    const std::vector<FunctionDemand>& demands,
                                    const FleetPlan& current,
                                    const PlannerOptions& opts = {});

}  // namespace faaspart::core
