// MIG layout planning — the missing piece between §7's per-function
// right-sizing and §4.2's instance creation: given the tenants' compute and
// memory requirements, pick a set of MIG profiles that fits the GPU's slice
// budgets (7 compute / 8 memory slices on A100).
#pragma once

#include <string>
#include <vector>

#include "core/rightsize.hpp"
#include "gpu/mig.hpp"

namespace faaspart::core {

/// One tenant's needs, typically from rightsize_kernels() + the model's
/// memory footprint.
struct TenantRequirement {
  std::string name;
  int min_sms = 1;
  util::Bytes min_memory = 0;
};

struct MigPlan {
  /// profiles[i] hosts requirements[i] (same order as the input).
  std::vector<gpu::MigProfile> profiles;
  int compute_slices_used = 0;
  int mem_slices_used = 0;

  [[nodiscard]] std::vector<std::string> profile_names() const {
    std::vector<std::string> out;
    out.reserve(profiles.size());
    for (const auto& p : profiles) out.push_back(p.name);
    return out;
  }
};

/// Plans a layout: each tenant gets the smallest profile covering its needs;
/// if the naive sum exceeds the slice budgets, the planner greedily upgrades
/// nothing and instead fails — a partial placement would silently starve a
/// tenant. Throws util::StateError with a capacity breakdown when the
/// tenants cannot co-reside; util::NotFoundError when a single tenant
/// exceeds every profile.
MigPlan plan_mig_layout(const gpu::GpuArchSpec& arch,
                        const std::vector<TenantRequirement>& tenants);

/// True when the tenants fit (same logic, no throw).
bool mig_layout_fits(const gpu::GpuArchSpec& arch,
                     const std::vector<TenantRequirement>& tenants);

}  // namespace faaspart::core
