#include "core/reconfigure.hpp"

#include <algorithm>

#include "faults/faults.hpp"
#include "gpu/mig.hpp"
#include "obs/telemetry.hpp"
#include "sched/mps.hpp"
#include "sched/timeshare.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::core {

namespace {

void count_reconfigure(sim::Simulator& sim, const char* kind) {
  if (auto* tel = sim.telemetry()) {
    // faaspart-lint: allow(O1) -- cold path: a reconfigure drains the GPU and
    // pays seconds of MIG/MPS teardown, so one registry lookup is noise
    tel->metrics().counter("reconfigures_total", {{"kind", kind}}).add();
  }
}

}  // namespace

sim::Co<ReconfigureReport> Reconfigurer::change_mps_percentages(
    faas::HighThroughputExecutor& ex, std::vector<int> new_percentages) {
  if (new_percentages.size() != ex.worker_count()) {
    throw util::ConfigError(util::strf(
        "change_mps_percentages: ", new_percentages.size(), " percentages for ",
        ex.worker_count(), " workers"));
  }
  for (const int pct : new_percentages) {
    if (pct <= 0 || pct > 100) {
      throw util::ConfigError(util::strf("GPU percentage ", pct, " outside (0, 100]"));
    }
  }
  const util::TimePoint t0 = manager_.simulator().now();
  std::vector<sim::Future<>> done;
  done.reserve(ex.worker_count());
  for (std::size_t i = 0; i < ex.worker_count(); ++i) {
    gpu::ContextOptions opts;
    opts.active_thread_percentage = new_percentages[i];
    done.push_back(ex.restart_worker(i, opts));
  }
  co_await sim::when_all(std::move(done));

  count_reconfigure(manager_.simulator(), "mps");
  ReconfigureReport report;
  report.total_time = manager_.simulator().now() - t0;
  report.workers_restarted = static_cast<int>(ex.worker_count());
  co_return report;
}

sim::Co<ReconfigureReport> Reconfigurer::change_mig_layout(
    faas::HighThroughputExecutor& ex, int device_index,
    std::vector<std::string> profiles, WeightCache* cache) {
  if (profiles.size() != ex.worker_count()) {
    throw util::ConfigError(util::strf("change_mig_layout: ", profiles.size(),
                                       " profiles for ", ex.worker_count(),
                                       " workers"));
  }
  const util::TimePoint t0 = manager_.simulator().now();
  gpu::Device& dev = manager_.device(device_index);

  // 1. Every tenant off the device ("we must shut down all the applications
  //    that are running on the GPU", §6).
  std::vector<sim::Future<>> parked;
  parked.reserve(ex.worker_count());
  for (std::size_t i = 0; i < ex.worker_count(); ++i) {
    parked.push_back(ex.park_worker(i));
  }
  co_await sim::when_all(std::move(parked));
  if (cache != nullptr) cache->release_device(dev);

  // 2. GPU reset + new instances. An injected instance-create failure
  //    (faults::FaultKind::kMigCreateFail) degrades gracefully instead of
  //    stranding the parked workers: fall back to MPS percentage caps sized
  //    like the requested profiles, or to plain timesharing when the MPS
  //    control daemon is down too (Table 1's isolation ladder, descended).
  ReconfigureReport report;
  std::vector<std::string> uuids;
  try {
    uuids = co_await manager_.configure_mig(device_index, profiles);
  } catch (const util::DeviceError& e) {
    report.degraded = true;
    report.degrade_reason = e.what();
  }

  if (!report.degraded) {
    // 3. Workers back up against the new instances.
    std::vector<sim::Future<>> restarted;
    restarted.reserve(ex.worker_count());
    for (std::size_t i = 0; i < ex.worker_count(); ++i) {
      gpu::ContextOptions opts;
      opts.instance = dev.instance_by_uuid(uuids[i]);
      restarted.push_back(ex.restart_worker(i, opts));
    }
    co_await sim::when_all(std::move(restarted));

    count_reconfigure(manager_.simulator(), "mig");
    report.total_time = manager_.simulator().now() - t0;
    report.workers_restarted = static_cast<int>(ex.worker_count());
    report.gpu_reset = true;
    co_return report;
  }

  // Degraded path: wipe the half-built layout (second reset), then pick the
  // best remaining sharing mode.
  co_await manager_.clear_mig(device_index);
  auto* fi = manager_.simulator().faults();
  const std::string device_key = util::strf("gpu:", device_index);
  const bool mps_ok = fi == nullptr || fi->mps_available(device_key);

  std::vector<sim::Future<>> restarted;
  restarted.reserve(ex.worker_count());
  if (mps_ok) {
    report.achieved = "mps";
    dev.set_engine_factory(sched::mps_factory());
    for (std::size_t i = 0; i < ex.worker_count(); ++i) {
      // Approximate each requested profile with its SM share as an MPS
      // active-thread percentage.
      const gpu::MigProfile p = gpu::mig_profile(dev.arch(), profiles[i]);
      const int pct = std::clamp(
          static_cast<int>(100.0 * p.sms(dev.arch()) / dev.arch().total_sms),
          1, 100);
      gpu::ContextOptions opts;
      opts.active_thread_percentage = pct;
      restarted.push_back(ex.restart_worker(i, opts));
    }
  } else {
    report.achieved = "timeshare";
    dev.set_engine_factory(sched::timeshare_factory());
    for (std::size_t i = 0; i < ex.worker_count(); ++i) {
      restarted.push_back(ex.restart_worker(i, gpu::ContextOptions{}));
    }
  }
  co_await sim::when_all(std::move(restarted));
  if (fi != nullptr) {
    fi->note_degradation(device_key, "mig", report.achieved,
                         report.degrade_reason);
  }
  count_reconfigure(manager_.simulator(), "mig");
  if (auto* tel = manager_.simulator().telemetry()) {
    // faaspart-lint: allow(O1) -- cold path: fallbacks happen at most once
    // per failed reconfigure attempt
    tel->metrics().counter("reconfigure_fallbacks_total").add();
  }

  report.total_time = manager_.simulator().now() - t0;
  report.workers_restarted = static_cast<int>(ex.worker_count());
  report.gpu_reset = true;
  co_return report;
}

sim::Co<ReconfigureReport> Reconfigurer::change_device_layout(
    std::vector<TenantLayout> tenants, int device_index, WeightCache* cache) {
  FP_CHECK_MSG(!tenants.empty(), "change_device_layout needs tenants");
  std::vector<std::string> all_profiles;
  for (const auto& t : tenants) {
    FP_CHECK_MSG(t.executor != nullptr, "change_device_layout: null executor");
    if (!t.profiles.empty() && t.profiles.size() != t.executor->worker_count()) {
      throw util::ConfigError(util::strf(
          "change_device_layout: ", t.profiles.size(), " profiles for ",
          t.executor->worker_count(), " workers"));
    }
    for (const auto& p : t.profiles) all_profiles.push_back(p);
  }
  const util::TimePoint t0 = manager_.simulator().now();
  gpu::Device& dev = manager_.device(device_index);

  // 1. Every tenant off the device — the reset tears down all instances, so
  //    even tenants whose profile does not change must vacate (§6).
  std::vector<sim::Future<>> parked;
  for (const auto& t : tenants) {
    for (std::size_t i = 0; i < t.executor->worker_count(); ++i) {
      parked.push_back(t.executor->park_worker(i));
    }
  }
  co_await sim::when_all(std::move(parked));
  if (cache != nullptr) cache->release_device(dev);

  ReconfigureReport report;
  if (all_profiles.empty()) {
    // The plan evicts every tenant from this device: clear the layout and
    // leave the workers parked for a later cycle to revive.
    co_await manager_.clear_mig(device_index);
    count_reconfigure(manager_.simulator(), "mig");
    report.total_time = manager_.simulator().now() - t0;
    report.gpu_reset = true;
    co_return report;
  }

  // 2. GPU reset + the combined instance set, with the same MIG→MPS→
  //    timeshare ladder change_mig_layout descends on an injected
  //    instance-create failure.
  std::vector<std::string> uuids;
  try {
    uuids = co_await manager_.configure_mig(device_index, all_profiles);
  } catch (const util::DeviceError& e) {
    report.degraded = true;
    report.degrade_reason = e.what();
  }

  if (!report.degraded) {
    // 3. Each tenant's workers back up against its own slice of the new
    //    instances; park-only tenants stay down.
    std::vector<sim::Future<>> restarted;
    std::size_t next_uuid = 0;
    for (const auto& t : tenants) {
      for (std::size_t i = 0; i < t.profiles.size(); ++i) {
        gpu::ContextOptions opts;
        opts.instance = dev.instance_by_uuid(uuids[next_uuid++]);
        restarted.push_back(t.executor->restart_worker(i, opts));
        ++report.workers_restarted;
      }
    }
    co_await sim::when_all(std::move(restarted));

    count_reconfigure(manager_.simulator(), "mig");
    report.total_time = manager_.simulator().now() - t0;
    report.gpu_reset = true;
    co_return report;
  }

  // Degraded path: wipe the half-built layout, then share the bare device.
  co_await manager_.clear_mig(device_index);
  auto* fi = manager_.simulator().faults();
  const std::string device_key = util::strf("gpu:", device_index);
  const bool mps_ok = fi == nullptr || fi->mps_available(device_key);

  std::vector<sim::Future<>> restarted;
  if (mps_ok) {
    report.achieved = "mps";
    dev.set_engine_factory(sched::mps_factory());
    for (const auto& t : tenants) {
      for (std::size_t i = 0; i < t.profiles.size(); ++i) {
        const gpu::MigProfile p = gpu::mig_profile(dev.arch(), t.profiles[i]);
        const int pct = std::clamp(
            static_cast<int>(100.0 * p.sms(dev.arch()) / dev.arch().total_sms),
            1, 100);
        gpu::ContextOptions opts;
        opts.active_thread_percentage = pct;
        restarted.push_back(t.executor->restart_worker(i, opts));
        ++report.workers_restarted;
      }
    }
  } else {
    report.achieved = "timeshare";
    dev.set_engine_factory(sched::timeshare_factory());
    for (const auto& t : tenants) {
      for (std::size_t i = 0; i < t.profiles.size(); ++i) {
        restarted.push_back(t.executor->restart_worker(i, gpu::ContextOptions{}));
        ++report.workers_restarted;
      }
    }
  }
  co_await sim::when_all(std::move(restarted));
  if (fi != nullptr) {
    fi->note_degradation(device_key, "mig", report.achieved,
                         report.degrade_reason);
  }
  count_reconfigure(manager_.simulator(), "mig");
  if (auto* tel = manager_.simulator().telemetry()) {
    // faaspart-lint: allow(O1) -- cold path: fallbacks happen at most once
    // per failed reconfigure attempt
    tel->metrics().counter("reconfigure_fallbacks_total").add();
  }

  report.total_time = manager_.simulator().now() - t0;
  report.gpu_reset = true;
  co_return report;
}

}  // namespace faaspart::core
