// Right-sizing (§7 "Understanding GPU resource requirement"): approximate
// how much GPU a function needs from a static profile of its kernels.
//
// The tool sweeps the analytic service time of a kernel sequence over SM
// grants and finds the knee: the smallest grant whose latency is within
// (1 + epsilon) of the full-GPU latency. For LLaMa-2 decode this lands at
// ~20 SMs — exactly the Fig 2 observation the paper wants to automate.
#pragma once

#include <vector>

#include "gpu/arch.hpp"
#include "gpu/kernel.hpp"
#include "gpu/mig.hpp"
#include "util/units.hpp"

namespace faaspart::core {

struct RightsizePoint {
  int sms = 0;
  util::Duration latency{};
};

struct RightsizeResult {
  int suggested_sms = 0;
  /// suggested_sms as a CUDA_MPS_ACTIVE_THREAD_PERCENTAGE (rounded up).
  int suggested_percentage = 0;
  util::Duration latency_at_suggested{};
  util::Duration latency_at_full{};
  std::vector<RightsizePoint> curve;  ///< latency at every probed grant

  /// Fraction of the GPU freed for other tenants by taking the suggestion.
  [[nodiscard]] double freed_fraction(int total_sms) const {
    return 1.0 - static_cast<double>(suggested_sms) / total_sms;
  }
};

/// Profiles a kernel sequence (one inference / one iteration) against an
/// architecture. `host_gap` is CPU time between consecutive kernels (it
/// dilutes the benefit of more SMs, so it belongs in the estimate).
RightsizeResult rightsize_kernels(const gpu::GpuArchSpec& arch,
                                  const std::vector<gpu::KernelDesc>& kernels,
                                  double epsilon = 0.05,
                                  util::Duration host_gap = util::Duration{0});

/// Estimated runtime of the sequence at a specific grant — the "runtime
/// approximation based on GPU resources" half of §7.
util::Duration estimate_runtime(const gpu::GpuArchSpec& arch,
                                const std::vector<gpu::KernelDesc>& kernels,
                                int sms,
                                util::Duration host_gap = util::Duration{0});

/// The smallest MIG profile whose compute slice covers the suggestion and
/// whose memory covers `memory_needed`. Throws util::NotFoundError when not
/// even the full-GPU profile fits (on a non-MIG part, always throws).
gpu::MigProfile suggest_mig_profile(const gpu::GpuArchSpec& arch,
                                    const RightsizeResult& suggestion,
                                    util::Bytes memory_needed);

}  // namespace faaspart::core
