// WeightCache — the §7 future-work optimization: share model weights across
// function instances so re-loads (and reconfiguration restarts) stop paying
// the 10–20 s upload.
//
// The cache owns a daemon context per memory pool (device, or MIG instance)
// and keeps weight segments resident there. A worker's first load of a
// model pays the full upload into the cache; every later load — including
// after the worker restarts with a new GPU percentage — only pays a small
// attach cost (the cuIpcOpenMemHandle-style remap). Segments survive worker
// context teardown because they belong to the daemon context.
//
// Capacity pressure evicts least-recently-used unattached-by-anyone... —
// simplification: LRU by last load time; eviction never invalidates a model
// a live worker is actively using mid-kernel because attach order is FIFO
// within the simulator's single thread.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "faas/loader.hpp"
#include "gpu/device.hpp"

namespace faaspart::core {

class WeightCache final : public faas::ModelLoader {
 public:
  /// `attach_cost`: virtual time to map an already-resident model into a
  /// new context (IPC handle open + pointer fix-up). `capacity` caps the
  /// bytes resident per pool scope (0 = limited only by device memory);
  /// loads over budget evict LRU entries first, so the cache can be held
  /// below the working set to study reload thrash (bench/cluster_serving).
  explicit WeightCache(util::Duration attach_cost = util::milliseconds(120),
                       util::Bytes capacity = 0)
      : attach_cost_(attach_cost), capacity_(capacity) {}

  sim::Co<void> load(gpu::Device& dev, gpu::ContextId ctx,
                     const faas::AppDef& app) override;

  /// Cache survives worker restarts by design — nothing to do.
  void on_context_destroyed(gpu::Device& dev, gpu::ContextId ctx) override {
    (void)dev;
    (void)ctx;
  }

  [[nodiscard]] const char* name() const override { return "weight-cache"; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] util::Duration attach_cost() const { return attach_cost_; }
  [[nodiscard]] util::Bytes capacity() const { return capacity_; }

  /// True when any scope holds `model_key` — the routing-layer signal for
  /// sticky dispatch (a load would hit the attach path, not the upload).
  [[nodiscard]] bool holds(const std::string& model_key) const;

  /// Weights currently resident for one pool scope.
  [[nodiscard]] util::Bytes resident_bytes(const gpu::Device& dev) const;

  /// Drops one model from a device's cache; throws util::NotFoundError when
  /// it is not resident.
  void evict(gpu::Device& dev, const std::string& model_key);

  /// Destroys every cache scope (daemon context + entries) on a device.
  /// Required before a MIG re-layout or GPU reset — the daemon contexts
  /// would otherwise keep the instances alive.
  void release_device(gpu::Device& dev);

 private:
  /// One cache scope per memory pool: the bare device or one MIG instance.
  struct ScopeKey {
    const gpu::Device* dev;
    std::int64_t instance;  // -1 = bare device
    auto operator<=>(const ScopeKey&) const = default;
  };

  struct Entry {
    gpu::AllocationId alloc = 0;
    util::Bytes bytes = 0;
    std::uint64_t last_used = 0;
  };

  struct Scope {
    gpu::ContextId daemon_ctx = 0;
    std::map<std::string, Entry> entries;
  };

  Scope& scope_for(gpu::Device& dev, gpu::ContextId ctx);
  static ScopeKey key_for(const gpu::Device& dev, std::int64_t instance) {
    return ScopeKey{&dev, instance};
  }

  /// Frees LRU entries until `scope` can take `incoming` more bytes under
  /// capacity_ (no-op when capacity_ == 0).
  void evict_for_budget(gpu::Device& dev, Scope& scope, util::Bytes incoming);

  util::Duration attach_cost_;
  util::Bytes capacity_;
  std::map<ScopeKey, Scope> scopes_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t clock_ = 0;
};

}  // namespace faaspart::core
