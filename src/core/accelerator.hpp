// Accelerator references — the strings that appear in
// `available_accelerators` (Listings 1–3): plain GPU indices and MIG UUIDs.
#pragma once

#include <string>

namespace faaspart::core {

struct AcceleratorRef {
  enum class Kind { kGpu, kMigInstance };

  Kind kind = Kind::kGpu;
  int gpu_index = -1;     ///< valid for kGpu
  std::string mig_uuid;   ///< valid for kMigInstance

  /// Accepts "0", "3", "cuda:1", "gpu:2", "GPU-4" or a MIG UUID
  /// ("MIG-..."). Throws util::ConfigError on anything else.
  static AcceleratorRef parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;

  bool operator==(const AcceleratorRef&) const = default;
};

}  // namespace faaspart::core
