// GpuPartitioner — THE paper's executor enhancement (§4): resolves an
// HtexConfig's accelerator strings and GPU percentages into per-worker
// bindings, enforcing the operational preconditions of each technique:
//
//   * gpu_percentages present (Listing 2) → CUDA MPS: the list must match
//     available_accelerators 1:1, values in (0, 100], and the
//     nvidia-cuda-mps-control daemon must be running on every referenced
//     device before any worker starts — the partitioner starts it.
//   * MIG UUIDs (Listing 3) → workers bind to instances; the instances must
//     already exist (nvidia-smi mig created them).
//   * repeated GPU ids without percentages → default time-sharing.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/accelerator.hpp"
#include "faas/config.hpp"
#include "faas/executor.hpp"
#include "faas/provider.hpp"
#include "nvml/manager.hpp"
#include "nvml/mps_control.hpp"

namespace faaspart::core {

class GpuPartitioner {
 public:
  explicit GpuPartitioner(nvml::DeviceManager& manager) : manager_(manager) {}

  /// Validates the config and returns one binding per accelerator entry.
  /// Starts MPS daemons as needed (each start costs
  /// MpsControl::startup_cost() of virtual time, charged immediately).
  std::vector<faas::WorkerBinding> resolve(const faas::HtexConfig& cfg);

  /// The daemon handle for a device (created lazily, maybe not running).
  nvml::MpsControl& mps(int device_index);

  /// Convenience: resolve + construct a started HighThroughputExecutor.
  std::unique_ptr<faas::HighThroughputExecutor> build_executor(
      sim::Simulator& sim, faas::ExecutionProvider& provider,
      const faas::HtexConfig& cfg, faas::ModelLoader* loader = nullptr,
      trace::Recorder* rec = nullptr, std::uint64_t seed = 1);

 private:
  nvml::DeviceManager& manager_;
  std::map<int, std::unique_ptr<nvml::MpsControl>> daemons_;
};

}  // namespace faaspart::core
