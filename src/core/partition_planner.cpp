#include "core/partition_planner.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::core {

namespace {

/// Profile-name equivalence under mig_profile's lookup rule: "3g" names
/// "3g.40gb" and vice versa.
bool profile_matches(const std::string& a, const std::string& b) {
  return a == b || util::starts_with(a, b + ".") || util::starts_with(b, a + ".");
}

/// One feasible profile for one function, ordered smallest-first. The greedy
/// packer walks rungs upward only while each step buys throughput.
struct Rung {
  gpu::MigProfile profile;
  double throughput = 0;
  double latency = 0;
};

/// MISO-style right-sizing: candidate profiles that fit the function's
/// memory, sorted ascending by compute slices, truncated above the smallest
/// profile whose latency is within (1+epsilon)× of the best probed latency
/// (bigger buys nothing the SLO can see), then pruned to a strictly
/// throughput-increasing ladder so every upgrade step has positive gain.
std::vector<Rung> build_ladder(const gpu::GpuArchSpec& arch,
                               const FunctionDemand& d, double epsilon) {
  std::vector<Rung> cands;
  for (const auto& s : d.scores) {
    if (s.throughput_hz <= 0) continue;
    const gpu::MigProfile p = gpu::mig_profile(arch, s.profile);
    if (p.memory(arch) < d.memory) continue;
    Rung r{p, s.throughput_hz,
           s.latency_s > 0 ? s.latency_s : 1.0 / s.throughput_hz};
    bool merged = false;
    for (auto& e : cands) {
      if (e.profile.name == p.name) {
        if (r.throughput > e.throughput) e = r;
        merged = true;
      }
    }
    if (!merged) cands.push_back(std::move(r));
  }
  if (cands.empty()) return {};
  std::sort(cands.begin(), cands.end(), [](const Rung& a, const Rung& b) {
    if (a.profile.compute_slices != b.profile.compute_slices) {
      return a.profile.compute_slices < b.profile.compute_slices;
    }
    if (a.profile.mem_slices != b.profile.mem_slices) {
      return a.profile.mem_slices < b.profile.mem_slices;
    }
    return a.profile.name < b.profile.name;
  });
  double best_latency = cands.front().latency;
  for (const auto& c : cands) best_latency = std::min(best_latency, c.latency);
  std::size_t preferred = cands.size() - 1;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].latency <= (1.0 + epsilon) * best_latency) {
      preferred = i;
      break;
    }
  }
  cands.resize(preferred + 1);
  std::vector<Rung> ladder;
  for (auto& c : cands) {
    if (ladder.empty() || c.throughput > ladder.back().throughput + 1e-12) {
      ladder.push_back(std::move(c));
    }
  }
  return ladder;
}

/// Canonical per-device ordering: biggest instance first (packs without
/// fragmentation when totals fit), function name as the stable tie-break.
struct Item {
  std::string function;
  gpu::MigProfile profile;
};

void sort_canonical(std::vector<Item>& items) {
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.profile.compute_slices != b.profile.compute_slices) {
      return a.profile.compute_slices > b.profile.compute_slices;
    }
    if (a.function != b.function) return a.function < b.function;
    return a.profile.name < b.profile.name;
  });
}

GpuLayout layout_from_items(const gpu::GpuArchSpec& arch,
                            std::vector<Item> items) {
  sort_canonical(items);
  GpuLayout layout;
  int compute_at = 0;
  int mem_at = 0;
  for (const auto& it : items) {
    Placement p;
    p.function = it.function;
    p.profile = it.profile.name;
    p.compute_start = compute_at;
    p.compute_slices = it.profile.compute_slices;
    p.mem_start = mem_at;
    p.mem_slices = it.profile.mem_slices;
    compute_at += p.compute_slices;
    mem_at += p.mem_slices;
    layout.placements.push_back(std::move(p));
  }
  if (compute_at > arch.mig_slices || mem_at > arch.mem_slices) {
    throw util::ConfigError(util::strf(
        "layout needs ", compute_at, "/", arch.mig_slices, " compute and ",
        mem_at, "/", arch.mem_slices, " memory slices on ", arch.name));
  }
  return layout;
}

/// (function, profile) multiset of one device — layout identity for churn
/// accounting, deliberately ignoring slice offsets.
std::vector<std::pair<std::string, std::string>> layout_key(const GpuLayout& g) {
  std::vector<std::pair<std::string, std::string>> key;
  key.reserve(g.placements.size());
  for (const auto& p : g.placements) key.emplace_back(p.function, p.profile);
  std::sort(key.begin(), key.end());
  return key;
}

}  // namespace

double planner_objective(const std::vector<FunctionDemand>& demands,
                         const FleetPlan& plan) {
  double total = 0;
  for (const auto& d : demands) {
    double capacity = 0;
    for (const auto& g : plan.gpus) {
      for (const auto& pl : g.placements) {
        if (pl.function != d.name) continue;
        double best = 0;
        for (const auto& s : d.scores) {
          if (profile_matches(s.profile, pl.profile)) {
            best = std::max(best, s.throughput_hz);
          }
        }
        capacity += best;
      }
    }
    total += std::min(d.rate_hz, capacity);
  }
  return total;
}

std::string validate_fleet_plan(const gpu::GpuArchSpec& arch,
                                const FleetPlan& plan) {
  for (std::size_t gi = 0; gi < plan.gpus.size(); ++gi) {
    std::vector<bool> compute_used(static_cast<std::size_t>(arch.mig_slices));
    std::vector<bool> mem_used(static_cast<std::size_t>(arch.mem_slices));
    for (const auto& p : plan.gpus[gi].placements) {
      gpu::MigProfile prof;
      try {
        prof = gpu::mig_profile(arch, p.profile);
      } catch (const util::NotFoundError& e) {
        return util::strf("gpu ", gi, ": ", e.what());
      }
      if (p.compute_slices != prof.compute_slices ||
          p.mem_slices != prof.mem_slices) {
        return util::strf("gpu ", gi, ": placement of ", p.function, " on ",
                          p.profile, " claims ", p.compute_slices, "c/",
                          p.mem_slices, "m slices, profile has ",
                          prof.compute_slices, "c/", prof.mem_slices, "m");
      }
      if (p.compute_start < 0 ||
          p.compute_start + p.compute_slices > arch.mig_slices) {
        return util::strf("gpu ", gi, ": ", p.function, " compute slices [",
                          p.compute_start, ", ",
                          p.compute_start + p.compute_slices,
                          ") outside budget ", arch.mig_slices);
      }
      if (p.mem_start < 0 || p.mem_start + p.mem_slices > arch.mem_slices) {
        return util::strf("gpu ", gi, ": ", p.function, " memory slices [",
                          p.mem_start, ", ", p.mem_start + p.mem_slices,
                          ") outside budget ", arch.mem_slices);
      }
      for (int s = p.compute_start; s < p.compute_start + p.compute_slices; ++s) {
        if (compute_used[static_cast<std::size_t>(s)]) {
          return util::strf("gpu ", gi, ": compute slice ", s,
                            " placed twice (", p.function, ")");
        }
        compute_used[static_cast<std::size_t>(s)] = true;
      }
      for (int s = p.mem_start; s < p.mem_start + p.mem_slices; ++s) {
        if (mem_used[static_cast<std::size_t>(s)]) {
          return util::strf("gpu ", gi, ": memory slice ", s, " placed twice (",
                            p.function, ")");
        }
        mem_used[static_cast<std::size_t>(s)] = true;
      }
    }
  }
  return "";
}

GpuLayout layout_from_profiles(
    const gpu::GpuArchSpec& arch,
    const std::vector<std::pair<std::string, std::string>>& assignments) {
  std::vector<Item> items;
  items.reserve(assignments.size());
  for (const auto& [fn, profile] : assignments) {
    items.push_back(Item{fn, gpu::mig_profile(arch, profile)});
  }
  return layout_from_items(arch, std::move(items));
}

PlanResult plan_fleet(const gpu::GpuArchSpec& arch, int gpu_count,
                      const std::vector<FunctionDemand>& demands,
                      const FleetPlan& current, const PlannerOptions& opts) {
  if (!arch.mig_capable) {
    throw util::ConfigError(arch.name + " is not MIG-capable");
  }
  if (gpu_count <= 0) throw util::ConfigError("plan_fleet needs gpus");

  // Canonical function order: the plan must be a pure function of the
  // demand *set*, not of caller ordering.
  std::vector<FunctionDemand> fns = demands;
  std::sort(fns.begin(), fns.end(),
            [](const FunctionDemand& a, const FunctionDemand& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 1; i < fns.size(); ++i) {
    if (fns[i].name == fns[i - 1].name) {
      throw util::ConfigError("duplicate demand for function " + fns[i].name);
    }
  }

  std::vector<std::vector<Rung>> ladders;
  ladders.reserve(fns.size());
  for (const auto& d : fns) ladders.push_back(build_ladder(arch, d, opts.epsilon));

  const std::size_t n_gpus = static_cast<std::size_t>(gpu_count);
  const std::size_t n_fns = fns.size();
  // rung[g][f]: index into ladders[f], or -1 when f has no instance on g.
  std::vector<std::vector<int>> rung(n_gpus, std::vector<int>(n_fns, -1));
  std::vector<int> compute_used(n_gpus, 0);
  std::vector<int> mem_used(n_gpus, 0);
  std::vector<double> capacity(n_fns, 0.0);

  const auto fits = [&](std::size_t g, int dc, int dm) {
    return compute_used[g] + dc <= arch.mig_slices &&
           mem_used[g] + dm <= arch.mem_slices;
  };
  const auto place = [&](std::size_t g, std::size_t f, int r) {
    const Rung& next = ladders[f][static_cast<std::size_t>(r)];
    if (rung[g][f] >= 0) {
      const Rung& cur = ladders[f][static_cast<std::size_t>(rung[g][f])];
      compute_used[g] -= cur.profile.compute_slices;
      mem_used[g] -= cur.profile.mem_slices;
      capacity[f] -= cur.throughput;
    }
    compute_used[g] += next.profile.compute_slices;
    mem_used[g] += next.profile.mem_slices;
    capacity[f] += next.throughput;
    rung[g][f] = r;
  };
  const auto satisfied_delta = [&](std::size_t f, double extra) {
    return std::min(fns[f].rate_hz, capacity[f] + extra) -
           std::min(fns[f].rate_hz, capacity[f]);
  };

  // Level 1 (presence): every plannable function gets its floor profile
  // somewhere, even when a busier function could outbid it — a function with
  // no instance anywhere sheds 100% of its traffic, which no throughput win
  // elsewhere justifies. Seed busiest-first (rate descending, name ascending
  // on ties) so that when floors don't all fit, the slices go to functions
  // with demand instead of whoever sorts first; each floor lands on the
  // emptiest device (most free compute slices, lowest index on ties).
  std::vector<std::size_t> seed_order(n_fns);
  for (std::size_t f = 0; f < n_fns; ++f) seed_order[f] = f;
  std::sort(seed_order.begin(), seed_order.end(),
            [&fns](std::size_t a, std::size_t b) {
              if (fns[a].rate_hz != fns[b].rate_hz) {
                return fns[a].rate_hz > fns[b].rate_hz;
              }
              return fns[a].name < fns[b].name;
            });
  for (const std::size_t f : seed_order) {
    if (ladders[f].empty()) continue;
    const Rung& floor = ladders[f].front();
    int best_g = -1;
    for (std::size_t g = 0; g < n_gpus; ++g) {
      if (!fits(g, floor.profile.compute_slices, floor.profile.mem_slices)) {
        continue;
      }
      if (best_g < 0 || compute_used[g] <
                            compute_used[static_cast<std::size_t>(best_g)]) {
        best_g = static_cast<int>(g);
      }
    }
    if (best_g >= 0) place(static_cast<std::size_t>(best_g), f, 0);
  }

  // Level 2 (packing): repeat the single best move — add a function's floor
  // instance to a device it is absent from, or upgrade an existing instance
  // one rung — ranked by satisfied-demand gain per slice consumed
  // (ParvaGPU-style fragmentation pressure). Ties break to the lowest device
  // index, then the lowest function name; determinism is load-bearing
  // (idempotence property).
  while (true) {
    double best_score = 0;
    double best_gain = 0;
    std::size_t best_g = 0;
    std::size_t best_f = 0;
    int best_r = -1;
    for (std::size_t g = 0; g < n_gpus; ++g) {
      for (std::size_t f = 0; f < n_fns; ++f) {
        if (ladders[f].empty()) continue;
        int target;
        int dc;
        int dm;
        double dt;
        if (rung[g][f] < 0) {
          target = 0;
          const Rung& r0 = ladders[f].front();
          dc = r0.profile.compute_slices;
          dm = r0.profile.mem_slices;
          dt = r0.throughput;
        } else {
          target = rung[g][f] + 1;
          if (static_cast<std::size_t>(target) >= ladders[f].size()) continue;
          const Rung& cur = ladders[f][static_cast<std::size_t>(rung[g][f])];
          const Rung& nxt = ladders[f][static_cast<std::size_t>(target)];
          dc = nxt.profile.compute_slices - cur.profile.compute_slices;
          dm = nxt.profile.mem_slices - cur.profile.mem_slices;
          dt = nxt.throughput - cur.throughput;
        }
        if (!fits(g, dc, dm)) continue;
        const double gain = satisfied_delta(f, dt);
        if (gain <= 1e-9) continue;
        const double cost = std::max(1, dc + dm);
        const double score = gain / cost;
        if (score > best_score + 1e-12) {
          best_score = score;
          best_gain = gain;
          best_g = g;
          best_f = f;
          best_r = target;
        }
      }
    }
    if (best_r < 0 || best_gain <= 1e-9) break;
    place(best_g, best_f, best_r);
  }

  PlanResult result;
  result.plan.gpus.resize(n_gpus);
  for (std::size_t g = 0; g < n_gpus; ++g) {
    std::vector<Item> items;
    for (std::size_t f = 0; f < n_fns; ++f) {
      if (rung[g][f] < 0) continue;
      items.push_back(
          Item{fns[f].name,
               ladders[f][static_cast<std::size_t>(rung[g][f])].profile});
    }
    result.plan.gpus[g] = layout_from_items(arch, std::move(items));
  }

  result.objective = planner_objective(fns, result.plan);
  result.current_objective = planner_objective(fns, current);
  result.predicted_gain_hz = result.objective - result.current_objective;
  for (std::size_t g = 0; g < n_gpus; ++g) {
    const GpuLayout empty;
    const GpuLayout& was = g < current.gpus.size() ? current.gpus[g] : empty;
    if (layout_key(result.plan.gpus[g]) != layout_key(was)) {
      ++result.gpus_changed;
    }
  }

  double total_rate = 0;
  for (const auto& d : fns) total_rate += d.rate_hz;
  if (result.gpus_changed == 0) {
    result.reason = "no-change";
  } else if (result.predicted_gain_hz <= opts.min_gain_hz + 1e-12) {
    result.reason = "gain-below-threshold";
  } else {
    // Reset-cost amortization: a changed device serves nothing for
    // reset_cost_s; the share of offered load it would have carried is lost.
    // Apply only when the gain, integrated over the planning horizon, buys
    // back more requests than the resets discard.
    const double requests_gained = result.predicted_gain_hz * opts.horizon_s;
    const double requests_lost = total_rate *
                                 (static_cast<double>(result.gpus_changed) /
                                  static_cast<double>(gpu_count)) *
                                 opts.reset_cost_s;
    result.apply = requests_gained > requests_lost;
    result.reason = result.apply ? "apply" : "reset-cost-dominates";
  }
  return result;
}

}  // namespace faaspart::core
