#include "core/migplan.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::core {

namespace {

gpu::MigProfile smallest_covering(const gpu::GpuArchSpec& arch,
                                  const TenantRequirement& t) {
  for (const auto& p : gpu::mig_profiles(arch)) {
    if (p.sms(arch) >= t.min_sms && p.memory(arch) >= t.min_memory) return p;
  }
  throw util::NotFoundError(util::strf(
      "tenant '", t.name, "' needs ", t.min_sms, " SMs and ",
      util::format_bytes(t.min_memory), " — no MIG profile on ", arch.name,
      " covers that"));
}

}  // namespace

MigPlan plan_mig_layout(const gpu::GpuArchSpec& arch,
                        const std::vector<TenantRequirement>& tenants) {
  FP_CHECK_MSG(!tenants.empty(), "plan needs at least one tenant");
  if (!arch.mig_capable) {
    throw util::StateError(arch.name + " is not MIG-capable");
  }
  MigPlan plan;
  for (const auto& t : tenants) {
    const auto p = smallest_covering(arch, t);
    plan.compute_slices_used += p.compute_slices;
    plan.mem_slices_used += p.mem_slices;
    plan.profiles.push_back(p);
  }
  if (plan.compute_slices_used > arch.mig_slices ||
      plan.mem_slices_used > arch.mem_slices) {
    throw util::StateError(util::strf(
        "tenants need ", plan.compute_slices_used, "/", arch.mig_slices,
        " compute and ", plan.mem_slices_used, "/", arch.mem_slices,
        " memory slices on ", arch.name, " — they cannot co-reside"));
  }
  return plan;
}

bool mig_layout_fits(const gpu::GpuArchSpec& arch,
                     const std::vector<TenantRequirement>& tenants) {
  try {
    (void)plan_mig_layout(arch, tenants);
    return true;
  } catch (const util::Error&) {
    return false;
  }
}

}  // namespace faaspart::core
