#include "core/autoscale.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace faaspart::core {

Autoscaler::Autoscaler(sim::Simulator& sim, Reconfigurer& reconfigurer,
                       AutoscalerOptions opts)
    : sim_(sim), reconfigurer_(reconfigurer), opts_(opts) {
  FP_CHECK_MSG(opts_.interval.ns > 0, "control interval must be positive");
  FP_CHECK_MSG(opts_.min_percentage >= 1, "floor must be >= 1%");
  FP_CHECK_MSG(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0,
               "ewma_alpha in (0, 1]");
}

void Autoscaler::add_tenant(faas::HighThroughputExecutor& executor,
                            int initial_percentage) {
  FP_CHECK_MSG(initial_percentage >= opts_.min_percentage &&
                   initial_percentage <= 100,
               "initial percentage outside [floor, 100]");
  tenants_.push_back(Tenant{&executor, initial_percentage, 0.0});
}

double Autoscaler::instantaneous_demand(const faas::HighThroughputExecutor& ex) {
  double demand = static_cast<double>(ex.queue_depth());
  for (std::size_t i = 0; i < ex.worker_count(); ++i) {
    if (ex.worker_info(i).busy) demand += 1.0;
  }
  return demand;
}

std::vector<int> Autoscaler::target_split() const {
  const std::size_t n = tenants_.size();
  std::vector<int> split(n, 0);
  double total = 0;
  for (const auto& t : tenants_) total += t.demand_ewma;
  if (total <= 0) {
    // No demand anywhere: keep the current allocation.
    for (std::size_t i = 0; i < n; ++i) split[i] = tenants_[i].percentage;
    return split;
  }
  const int budget = 100;
  const int floor_total = opts_.min_percentage * static_cast<int>(n);
  FP_CHECK_MSG(floor_total <= budget, "floors exceed 100%");
  int assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double share = tenants_[i].demand_ewma / total;
    split[i] = std::max(
        opts_.min_percentage,
        static_cast<int>(std::floor(share * (budget - floor_total))) +
            opts_.min_percentage);
    assigned += split[i];
  }
  // Trim any overshoot from the largest shares (floors stay intact).
  while (assigned > budget) {
    auto it = std::max_element(split.begin(), split.end());
    FP_CHECK(*it > opts_.min_percentage);
    --*it;
    --assigned;
  }
  return split;
}

std::vector<int> Autoscaler::current_percentages() const {
  std::vector<int> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t.percentage);
  return out;
}

sim::Co<void> Autoscaler::run(util::TimePoint deadline) {
  FP_CHECK_MSG(!tenants_.empty(), "autoscaler needs tenants");
  while (sim_.now() + opts_.interval <= deadline) {
    co_await sim_.delay(opts_.interval);

    for (auto& t : tenants_) {
      const double d = instantaneous_demand(*t.executor);
      t.demand_ewma =
          opts_.ewma_alpha * d + (1.0 - opts_.ewma_alpha) * t.demand_ewma;
    }

    const std::vector<int> target = target_split();
    int max_shift = 0;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      max_shift = std::max(max_shift, std::abs(target[i] - tenants_[i].percentage));
    }
    if (max_shift < opts_.min_delta) continue;  // not worth the restarts

    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      Tenant& t = tenants_[i];
      if (target[i] == t.percentage) continue;
      // Split the tenant's allocation evenly across its workers.
      const int per_worker = std::max(
          1, target[i] / static_cast<int>(t.executor->worker_count()));
      std::vector<int> pcts(t.executor->worker_count(), per_worker);
      (void)co_await reconfigurer_.change_mps_percentages(*t.executor, pcts);
      t.percentage = target[i];
    }
    decisions_.push_back(Decision{sim_.now(), target});
  }
}

}  // namespace faaspart::core
