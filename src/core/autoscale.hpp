// Autoscaler — the closed control loop the paper sketches in §7: "change
// GPU resources depending on demand".
//
// Tenants are executors whose workers hold MPS partitions of one GPU. Each
// control period the autoscaler measures tenant demand (queued + running
// tasks, EWMA-smoothed), converts demand shares into GPU percentages, and —
// only when the shift is worth the §6 restart cost (min_delta) — applies it
// through the Reconfigurer. Pair it with a WeightCache to make the restarts
// cheap, which is precisely the paper's motivation for that future work.
#pragma once

#include <vector>

#include "core/reconfigure.hpp"
#include "faas/executor.hpp"

namespace faaspart::core {

struct AutoscalerOptions {
  util::Duration interval = util::seconds(15);  ///< control period
  int min_percentage = 10;   ///< floor per tenant (keep it responsive)
  int min_delta = 10;        ///< smallest per-tenant shift worth a restart
  double ewma_alpha = 0.5;   ///< demand smoothing (1 = instantaneous)
};

class Autoscaler {
 public:
  Autoscaler(sim::Simulator& sim, Reconfigurer& reconfigurer,
             AutoscalerOptions opts = {});

  /// Registers a tenant executor; `initial_percentage` must match what the
  /// partitioner configured. All tenants are assumed to share one device.
  void add_tenant(faas::HighThroughputExecutor& executor, int initial_percentage);

  /// The control loop; spawn on the simulator. Runs until `deadline`.
  sim::Co<void> run(util::TimePoint deadline);

  struct Decision {
    util::TimePoint at{};
    std::vector<int> percentages;  ///< applied split, one per tenant
  };

  [[nodiscard]] const std::vector<Decision>& decisions() const { return decisions_; }
  [[nodiscard]] int reconfigurations() const { return static_cast<int>(decisions_.size()); }
  [[nodiscard]] std::vector<int> current_percentages() const;

 private:
  struct Tenant {
    faas::HighThroughputExecutor* executor = nullptr;
    int percentage = 0;
    double demand_ewma = 0;
  };

  [[nodiscard]] static double instantaneous_demand(
      const faas::HighThroughputExecutor& ex);
  /// Converts smoothed demands into a percentage split (sums to <= 100,
  /// respects the floor).
  [[nodiscard]] std::vector<int> target_split() const;

  sim::Simulator& sim_;
  Reconfigurer& reconfigurer_;
  AutoscalerOptions opts_;
  std::vector<Tenant> tenants_;
  std::vector<Decision> decisions_;
};

}  // namespace faaspart::core
