#include "core/rightsize.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::core {

util::Duration estimate_runtime(const gpu::GpuArchSpec& arch,
                                const std::vector<gpu::KernelDesc>& kernels,
                                int sms, util::Duration host_gap) {
  FP_CHECK_MSG(sms >= 1 && sms <= arch.total_sms, "grant outside device");
  util::Duration total{0};
  for (const auto& k : kernels) {
    total += gpu::solo_service_time(arch, k, gpu::KernelGrant{sms});
    total += host_gap;
  }
  return total;
}

RightsizeResult rightsize_kernels(const gpu::GpuArchSpec& arch,
                                  const std::vector<gpu::KernelDesc>& kernels,
                                  double epsilon, util::Duration host_gap) {
  FP_CHECK_MSG(!kernels.empty(), "rightsize needs at least one kernel");
  FP_CHECK_MSG(epsilon >= 0.0, "epsilon must be non-negative");

  RightsizeResult r;
  r.curve.reserve(static_cast<std::size_t>(arch.total_sms));
  for (int sms = 1; sms <= arch.total_sms; ++sms) {
    r.curve.push_back({sms, estimate_runtime(arch, kernels, sms, host_gap)});
  }
  r.latency_at_full = r.curve.back().latency;

  const double budget =
      static_cast<double>(r.latency_at_full.ns) * (1.0 + epsilon);
  for (const auto& p : r.curve) {
    if (static_cast<double>(p.latency.ns) <= budget) {
      r.suggested_sms = p.sms;
      r.latency_at_suggested = p.latency;
      break;
    }
  }
  FP_CHECK(r.suggested_sms >= 1);  // the full grant always qualifies
  r.suggested_percentage = static_cast<int>(
      std::ceil(100.0 * r.suggested_sms / arch.total_sms));
  return r;
}

gpu::MigProfile suggest_mig_profile(const gpu::GpuArchSpec& arch,
                                    const RightsizeResult& suggestion,
                                    util::Bytes memory_needed) {
  // Profiles come smallest-first from the catalogue; pick the first that
  // covers both dimensions.
  for (const auto& p : gpu::mig_profiles(arch)) {
    if (p.sms(arch) >= suggestion.suggested_sms &&
        p.memory(arch) >= memory_needed) {
      return p;
    }
  }
  throw util::NotFoundError(util::strf(
      "no MIG profile on ", arch.name, " covers ", suggestion.suggested_sms,
      " SMs and ", util::format_bytes(memory_needed)));
}

}  // namespace faaspart::core
