#include "core/partitioner.hpp"

#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::core {

nvml::MpsControl& GpuPartitioner::mps(int device_index) {
  auto it = daemons_.find(device_index);
  if (it == daemons_.end()) {
    it = daemons_
             .emplace(device_index, std::make_unique<nvml::MpsControl>(
                                        manager_.device(device_index)))
             .first;
  }
  return *it->second;
}

std::vector<faas::WorkerBinding> GpuPartitioner::resolve(
    const faas::HtexConfig& cfg) {
  const bool with_percentages = !cfg.gpu_percentages.empty();
  if (with_percentages &&
      cfg.gpu_percentages.size() != cfg.available_accelerators.size()) {
    throw util::ConfigError(util::strf(
        "executor '", cfg.label, "': gpu_percentages has ",
        cfg.gpu_percentages.size(), " entries but available_accelerators has ",
        cfg.available_accelerators.size()));
  }
  if (with_percentages) {
    for (const int pct : cfg.gpu_percentages) {
      if (pct <= 0 || pct > 100) {
        throw util::ConfigError(util::strf("executor '", cfg.label,
                                           "': GPU percentage ", pct,
                                           " outside (0, 100]"));
      }
    }
  }

  std::vector<faas::WorkerBinding> bindings;
  std::set<int> devices_needing_mps;

  for (std::size_t i = 0; i < cfg.available_accelerators.size(); ++i) {
    const AcceleratorRef ref = AcceleratorRef::parse(cfg.available_accelerators[i]);
    faas::WorkerBinding b;
    b.accelerator = cfg.available_accelerators[i];
    if (ref.kind == AcceleratorRef::Kind::kGpu) {
      b.device = &manager_.device(ref.gpu_index);
      if (with_percentages) {
        b.ctx_opts.active_thread_percentage = cfg.gpu_percentages[i];
        devices_needing_mps.insert(ref.gpu_index);
      }
    } else {
      const int dev_index = manager_.device_of_instance(ref.mig_uuid);
      gpu::Device& dev = manager_.device(dev_index);
      b.device = &dev;
      b.ctx_opts.instance = dev.instance_by_uuid(ref.mig_uuid);
      if (with_percentages) {
        // MPS inside a MIG instance: the percentage applies to the slice.
        b.ctx_opts.active_thread_percentage = cfg.gpu_percentages[i];
      }
    }
    bindings.push_back(std::move(b));
  }

  // "We need to make sure that nvidia-cuda-mps-control is launched in the
  // compute node before any function with GPU code runs" (§4.1).
  for (const int dev : devices_needing_mps) {
    nvml::MpsControl& daemon = mps(dev);
    if (!daemon.running()) {
      daemon.start();
      manager_.simulator().run_until(manager_.simulator().now() +
                                     daemon.startup_cost());
    }
  }
  return bindings;
}

std::unique_ptr<faas::HighThroughputExecutor> GpuPartitioner::build_executor(
    sim::Simulator& sim, faas::ExecutionProvider& provider,
    const faas::HtexConfig& cfg, faas::ModelLoader* loader,
    trace::Recorder* rec, std::uint64_t seed) {
  faas::HighThroughputExecutor::Options opts;
  opts.label = cfg.label;
  opts.cpu_workers = cfg.max_workers;
  opts.cpu_cores_per_worker = cfg.cpu_cores_per_worker;
  opts.bindings = resolve(cfg);
  opts.seed = seed;
  auto ex = std::make_unique<faas::HighThroughputExecutor>(sim, provider,
                                                           std::move(opts),
                                                           loader, rec);
  ex->start();
  return ex;
}

}  // namespace faaspart::core
