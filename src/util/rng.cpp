#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace faaspart::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FP_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FP_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
  FP_CHECK(mean > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  FP_CHECK(mean > 0.0);
  FP_CHECK(cv >= 0.0);
  if (cv == 0.0) {
    // Still consume the two draws a nonzero-cv call would, so toggling the
    // cv of one component does not shift every other stream consumer.
    (void)next_double();
    (void)next_double();
    return mean;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

Duration Rng::exponential_duration(Duration mean) {
  return from_seconds(exponential(mean.seconds()));
}

Duration Rng::lognormal_duration(Duration mean, double cv) {
  return from_seconds(lognormal_mean_cv(mean.seconds(), cv));
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  return from_seconds(uniform(lo.seconds(), hi.seconds()));
}

}  // namespace faaspart::util
