#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace faaspart::util {

namespace {

std::string scaled(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_duration(Duration d) {
  const double ns = static_cast<double>(d.ns);
  const double mag = std::fabs(ns);
  if (mag >= 60e9) {
    // minutes:seconds for long spans — bench tables report multi-minute runs.
    const double s = ns * 1e-9;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0fm%04.1fs", std::trunc(s / 60.0),
                  std::fabs(s) - std::fabs(std::trunc(s / 60.0)) * 60.0);
    return buf;
  }
  if (mag >= 1e9) return scaled(ns * 1e-9, "s");
  if (mag >= 1e6) return scaled(ns * 1e-6, "ms");
  if (mag >= 1e3) return scaled(ns * 1e-3, "us");
  return scaled(ns, "ns");
}

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b);
  const double mag = std::fabs(v);
  if (mag >= 1e9) return scaled(v * 1e-9, "GB");
  if (mag >= 1e6) return scaled(v * 1e-6, "MB");
  if (mag >= 1e3) return scaled(v * 1e-3, "KB");
  return scaled(v, "B");
}

std::string format_flops(Flops f) {
  const double mag = std::fabs(f);
  if (mag >= 1e12) return scaled(f * 1e-12, "TFLOP");
  if (mag >= 1e9) return scaled(f * 1e-9, "GFLOP");
  if (mag >= 1e6) return scaled(f * 1e-6, "MFLOP");
  return scaled(f, "FLOP");
}

}  // namespace faaspart::util
