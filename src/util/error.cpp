#include "util/error.hpp"

#include <sstream>

namespace faaspart::util::detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  std::ostringstream os;
  os << "FP_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace faaspart::util::detail
