// Deterministic, platform-independent pseudo-randomness.
//
// std::mt19937 is deterministic but std::*_distribution is not specified
// bit-for-bit across standard libraries, so we implement both the generator
// (xoshiro256**, Blackman & Vigna 2018, public domain) and the distributions
// ourselves. Every stochastic component of the simulator takes an explicit
// Rng so experiments replay exactly from a seed.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace faaspart::util {

/// xoshiro256** seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box–Muller (polar form avoided to keep the stream simple:
  /// exactly two next_double() draws per sample).
  double normal(double mean, double stddev);

  /// Lognormal parameterized by the *target* mean and coefficient of
  /// variation of the resulting distribution (more convenient for workload
  /// models than mu/sigma of the underlying normal).
  double lognormal_mean_cv(double mean, double cv);

  /// Bernoulli draw.
  bool chance(double p);

  /// Derives an independent child stream; used to give each simulated actor
  /// its own stream so adding an actor does not perturb the others.
  Rng fork();

  // Duration-valued conveniences for workload models.
  Duration exponential_duration(Duration mean);
  Duration lognormal_duration(Duration mean, double cv);
  Duration uniform_duration(Duration lo, Duration hi);

 private:
  std::uint64_t s_[4];
};

}  // namespace faaspart::util
