// Minimal leveled logger.
//
// The simulator is single-threaded by construction (discrete-event core), so
// the logger needs no locking. Level filtering happens before argument
// formatting via the macro, keeping disabled log statements nearly free.
#pragma once

#include <sstream>
#include <string>

namespace faaspart::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide minimum level; defaults to kWarn so tests and benches stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr. Prefer the FP_LOG macro.
void log_line(LogLevel level, const char* file, int line, const std::string& msg);

const char* log_level_name(LogLevel level);

}  // namespace faaspart::util

#define FP_LOG(level, expr)                                                    \
  do {                                                                         \
    if (static_cast<int>(level) >= static_cast<int>(::faaspart::util::log_level())) { \
      std::ostringstream fp_log_os;                                            \
      fp_log_os << expr;                                                       \
      ::faaspart::util::log_line(level, __FILE__, __LINE__, fp_log_os.str());  \
    }                                                                          \
  } while (0)

#define FP_LOG_TRACE(expr) FP_LOG(::faaspart::util::LogLevel::kTrace, expr)
#define FP_LOG_DEBUG(expr) FP_LOG(::faaspart::util::LogLevel::kDebug, expr)
#define FP_LOG_INFO(expr) FP_LOG(::faaspart::util::LogLevel::kInfo, expr)
#define FP_LOG_WARN(expr) FP_LOG(::faaspart::util::LogLevel::kWarn, expr)
#define FP_LOG_ERROR(expr) FP_LOG(::faaspart::util::LogLevel::kError, expr)
