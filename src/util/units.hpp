// Physical units used throughout the simulator.
//
// Virtual time is kept as integer nanoseconds (deterministic, overflow-safe
// for > 290 years of simulated time). Byte counts are signed 64-bit so that
// accounting bugs surface as negative values in FP_CHECKs instead of silent
// wraparound. Floating-point is reserved for rates (flop/s, B/s) where the
// dynamic range requires it.
#pragma once

#include <cstdint>
#include <string>

namespace faaspart::util {

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

/// A span of virtual time in nanoseconds.
struct Duration {
  std::int64_t ns = 0;

  constexpr Duration() = default;
  explicit constexpr Duration(std::int64_t nanos) : ns(nanos) {}

  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns + o.ns}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns - o.ns}; }
  constexpr Duration& operator+=(Duration o) { ns += o.ns; return *this; }
  constexpr Duration& operator-=(Duration o) { ns -= o.ns; return *this; }
  constexpr Duration operator*(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns) * f)};
  }
  constexpr Duration operator/(std::int64_t d) const { return Duration{ns / d}; }
  [[nodiscard]] constexpr double operator/(Duration o) const {
    return static_cast<double>(ns) / static_cast<double>(o.ns);
  }
};

constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1'000}; }
constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }
constexpr Duration minutes(std::int64_t v) { return seconds(v * 60); }

/// Converts a floating-point second count, rounding to the nearest ns.
constexpr Duration from_seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

/// A point on the virtual timeline (ns since simulation start).
struct TimePoint {
  std::int64_t ns = 0;

  constexpr TimePoint() = default;
  explicit constexpr TimePoint(std::int64_t nanos) : ns(nanos) {}

  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns + d.ns}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns - d.ns}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{ns - o.ns}; }
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return nanoseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return microseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return milliseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return seconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(long double v) { return from_seconds(static_cast<double>(v)); }
constexpr Duration operator""_ms(long double v) { return from_seconds(static_cast<double>(v) * 1e-3); }
}  // namespace literals

// ---------------------------------------------------------------------------
// Bytes / compute
// ---------------------------------------------------------------------------

using Bytes = std::int64_t;

constexpr Bytes KiB = 1024;
constexpr Bytes MiB = 1024 * KiB;
constexpr Bytes GiB = 1024 * MiB;
/// Decimal gigabyte — GPU marketing numbers (40 GB HBM) use powers of ten.
constexpr Bytes GB = 1'000'000'000;
constexpr Bytes MB = 1'000'000;

/// Floating-point operation count. double holds exact integers to 2^53,
/// far beyond any single kernel we model.
using Flops = double;

constexpr Flops TFLOP = 1e12;
constexpr Flops GFLOP = 1e9;
constexpr Flops MFLOP = 1e6;

// ---------------------------------------------------------------------------
// Human-readable formatting (used in benches / traces)
// ---------------------------------------------------------------------------

/// "1.50 s", "340 ms", "12.0 us" — picks a scale that keeps 3 significant digits.
std::string format_duration(Duration d);
/// "40.0 GB", "512 MB", "1.2 KB" (decimal units to match GPU spec sheets).
std::string format_bytes(Bytes b);
/// "3.86 GFLOP", "19.5 TFLOP/s" style (caller appends "/s" for rates).
std::string format_flops(Flops f);

}  // namespace faaspart::util
