#include "util/logging.hpp"

#include <cstdio>

namespace faaspart::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip the path; the basename is enough to locate the call site.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s] %s:%d %s\n", log_level_name(level), base, line, msg.c_str());
}

}  // namespace faaspart::util
