// Small string helpers shared by config parsing and report rendering.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace faaspart::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// ostringstream-based formatter: strf("x=", 3, " y=", 4.5).
template <typename... Args>
std::string strf(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Fixed-precision double → string ("3.14" for fixed(3.14159, 2)).
std::string fixed(double v, int precision);

}  // namespace faaspart::util
