// Error hierarchy and checking macros for the faaspart library.
//
// All library-originated failures derive from util::Error so callers can
// catch the whole family with one handler. Specific subclasses mirror the
// failure domains of the real stack we model (CUDA OOM, nvidia-smi state
// errors, Parsl config validation, ...).
#pragma once

#include <stdexcept>
#include <string>

namespace faaspart::util {

/// Root of the faaspart exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an invalid configuration (bad percentage list, unknown
/// executor label, malformed accelerator reference, ...). Mirrors the
/// validation errors Parsl raises when a Config is loaded.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Device memory exhausted — the analogue of cudaErrorMemoryAllocation.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what)
      : Error("out of device memory: " + what) {}
};

/// An operation was attempted in a state that forbids it (e.g. reconfiguring
/// MIG while clients hold contexts, changing an MPS percentage on a live
/// process). These are the hard operational constraints from Table 1 / §6.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error("invalid state: " + what) {}
};

/// A referenced entity does not exist (GPU index, MIG UUID, app name, ...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

/// A task failed after exhausting its retries in the DataFlowKernel.
class TaskFailedError : public Error {
 public:
  explicit TaskFailedError(const std::string& what) : Error("task failed: " + what) {}
};

/// The device hit a fatal runtime error — the analogue of an Xid/ECC error or
/// cudaErrorDevicesUnavailable. In-flight work on the device is lost; client
/// processes must re-create their contexts.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error("device error: " + what) {}
};

/// A task attempt exceeded its walltime deadline and was killed. Deadline
/// kills are final: the DataFlowKernel does not retry them.
class TaskTimeoutError : public Error {
 public:
  explicit TaskTimeoutError(const std::string& what)
      : Error("task timed out: " + what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);
}  // namespace detail

}  // namespace faaspart::util

/// Internal-invariant check: always on (simulation correctness depends on
/// these; the cost is negligible next to event-queue work).
#define FP_CHECK(expr)                                                       \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::faaspart::util::detail::check_failed(__FILE__, __LINE__, #expr, ""); \
    }                                                                        \
  } while (0)

#define FP_CHECK_MSG(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::faaspart::util::detail::check_failed(__FILE__, __LINE__, #expr, msg); \
    }                                                                         \
  } while (0)
