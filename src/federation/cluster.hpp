// ClusterService — the cluster-scale serving layer on top of ComputeService
// (DESIGN.md §9).
//
// ComputeService routes each submit to an endpoint immediately; at cluster
// load that just relocates the queue to whichever endpoint the policy hit.
// ClusterService instead keeps a *service-side* queue:
//
//   submit → admission control (token bucket, queue cap, deadline)
//          → weighted fair queue across functions
//          → pump: dispatch to the best endpoint that has a credit
//
// Credits bound the work in flight per endpoint (worker_slots ×
// inflight_per_slot), so endpoints stay busy without absorbing the backlog —
// the queue, and therefore the fairness and shedding decisions, stay at the
// service where every function and every endpoint is visible.
//
// Routing policies (tie-breaks are always the lexicographically smallest
// endpoint name — determinism is load-bearing, see test_runner_determinism):
//   kRoundRobin   cycle endpoints, skipping unreachable/credit-less ones
//   kLeastLoaded  fewest in-flight per worker slot
//   kSticky       prefer endpoints whose WeightCache already holds the
//                 function's model (MQFQ-Sticky, arXiv:2507.08954), then the
//                 function's last endpoint, then least-loaded
//   kSloAware     minimize predicted completion: WAN RTT + queue-wait
//                 estimate + cold-start/weight-reload estimate
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/admission.hpp"
#include "federation/service.hpp"
#include "federation/wfq.hpp"

namespace faaspart::obs {
class Counter;
}  // namespace faaspart::obs

namespace faaspart::federation {

enum class ClusterPolicy { kRoundRobin, kLeastLoaded, kSticky, kSloAware };

[[nodiscard]] const char* to_string(ClusterPolicy policy);

struct ClusterOptions {
  ClusterPolicy policy = ClusterPolicy::kSloAware;
  /// Dispatch credits per endpoint worker slot: how deep each endpoint's
  /// local pipeline may run before further work waits in the service queue.
  double inflight_per_slot = 2.0;
  /// Smoothing for observed per-function service times (WFQ costs and
  /// queue-wait predictions).
  double ewma_alpha = 0.2;
};

struct ClusterStats {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t dispatched = 0;
  /// Dispatches that landed on an endpoint already holding the function's
  /// model (no weight reload) — the stickiness payoff.
  std::size_t sticky_hits = 0;
  /// Dispatches that reached an endpoint mid-repartition. Must stay zero —
  /// property-tested (repartition-no-dispatch-mid-reset); counted here so
  /// the invariant is observable rather than asserted deep in routing.
  std::size_t mid_reset_dispatches = 0;
  std::map<std::string, std::size_t> shed_by_reason;
  /// Admitted requests per function — the demand signal the online
  /// Repartitioner differentiates into offered rates.
  std::map<std::string, std::size_t> admitted_by_function;
};

class ClusterService {
 public:
  ClusterService(sim::Simulator& sim, ComputeService& service,
                 ClusterOptions opts = {});

  /// Sets the serving class of a registered function (weight, rate limit,
  /// queue cap, deadline). Unconfigured functions get FunctionClass{}.
  void configure_function(const std::string& function_id, FunctionClass cls);

  /// Submits through admission control and the fair queue. Always returns a
  /// handle whose future settles: with the task's value, its execution
  /// error, or ShedError when admission refused it.
  faas::AppHandle submit(const std::string& function_id,
                         const std::string& executor_label);

  /// Drains the service queue, settles every admitted request, then shuts
  /// down the underlying ComputeService and its endpoints.
  sim::Co<void> shutdown();

  [[nodiscard]] const ClusterStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] ComputeService& service() { return service_; }

  /// Wakes the pump after endpoint eligibility changed out-of-band — the
  /// Repartitioner calls this after end_repartition()/set_serving(), which
  /// free no credit and would otherwise leave the pump parked on the credit
  /// gate while dispatchable work queues.
  void notify_endpoints_changed() { credit_gate_.open(); }

 private:
  struct Pending {
    std::string function_id;
    std::string executor_label;
    sim::Promise<faas::AppValue> promise;
    std::shared_ptr<faas::TaskRecord> record;
    util::TimePoint enqueued{};
    /// Request-root span context (opened at submit, before admission, so
    /// shed requests trace too); inactive when tracing is off.
    obs::TraceContext trace{};
  };

  struct FunctionState {
    FunctionClass cls;
    std::unique_ptr<TokenBucket> bucket;  ///< null when cls.rate_hz == 0
    double service_ewma_s = 0;            ///< 0 until the first completion
    std::string last_endpoint;            ///< sticky fallback
    // Cached metric handles (rule O1): admission runs once per request, so
    // the registry lookup happens once per function/reason, not per call.
    obs::Counter* admitted_counter = nullptr;
    std::map<std::string, obs::Counter*> shed_counters;  ///< by shed reason
  };

  FunctionState& state_of(const std::string& function_id);
  [[nodiscard]] double service_estimate_s(const FunctionState& st) const;
  /// Predicted service-queue wait for a newly admitted request.
  [[nodiscard]] util::Duration predicted_wait() const;

  void shed(const std::string& function_id, const Pending& p,
            ShedReason reason);
  [[nodiscard]] std::size_t credit_limit(const Endpoint& ep) const;
  /// True when some endpoint eligible for `p` (serving its function, not
  /// mid-repartition) has spare credit.
  [[nodiscard]] bool any_credit(const Pending& p) const;
  /// The policy decision. Only considers endpoints with spare credit
  /// (callers guarantee at least one exists).
  [[nodiscard]] Endpoint* choose_endpoint(const Pending& p);
  void dispatch(Pending p);
  sim::Co<void> pump();

  sim::Simulator& sim_;
  ComputeService& service_;
  ClusterOptions opts_;
  WfqScheduler<Pending> queue_;
  std::map<std::string, FunctionState> functions_;
  std::map<std::string, std::size_t> inflight_;  ///< per endpoint (credits used)
  ClusterStats stats_;
  double mean_service_s_ = 0;  ///< EWMA across all functions
  sim::Gate work_gate_;        ///< opened when the queue gains work
  sim::Gate credit_gate_;      ///< opened when an endpoint credit frees up
  bool pump_running_ = false;
  bool stopping_ = false;
  std::size_t round_robin_next_ = 0;
  std::vector<sim::Future<faas::AppValue>> admitted_futures_;
};

}  // namespace faaspart::federation
