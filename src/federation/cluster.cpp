#include "federation/cluster.hpp"

#include <algorithm>
#include <limits>

#include "obs/telemetry.hpp"
#include "util/strings.hpp"

namespace faaspart::federation {

const char* to_string(ClusterPolicy policy) {
  switch (policy) {
    case ClusterPolicy::kRoundRobin: return "round-robin";
    case ClusterPolicy::kLeastLoaded: return "least-loaded";
    case ClusterPolicy::kSticky: return "sticky";
    case ClusterPolicy::kSloAware: return "slo-aware";
  }
  return "?";
}

ClusterService::ClusterService(sim::Simulator& sim, ComputeService& service,
                               ClusterOptions opts)
    : sim_(sim),
      service_(service),
      opts_(opts),
      work_gate_(sim, /*open=*/false),
      credit_gate_(sim, /*open=*/false) {
  FP_CHECK_MSG(opts_.inflight_per_slot > 0, "inflight_per_slot must be positive");
  FP_CHECK_MSG(opts_.ewma_alpha > 0 && opts_.ewma_alpha <= 1,
               "ewma_alpha must be in (0, 1]");
}

void ClusterService::configure_function(const std::string& function_id,
                                        FunctionClass cls) {
  (void)service_.function_def(function_id);  // throws on unknown functions
  FP_CHECK_MSG(cls.weight > 0, "function weight must be positive");
  FunctionState& st = functions_[function_id];
  st.cls = cls;
  st.bucket = cls.rate_hz > 0
                  ? std::make_unique<TokenBucket>(cls.rate_hz,
                                                  std::max(1.0, cls.burst),
                                                  sim_.now())
                  : nullptr;
  queue_.set_weight(function_id, cls.weight);
  if (auto* tel = sim_.telemetry()) {
    // Every configured function gets an SLI stream: the class deadline is
    // the completion objective (0 = goodput only), and the class tenant
    // labels the series for per-tenant burn-rate views.
    obs::SloTarget target;
    target.tenant = cls.tenant;
    target.objective = cls.deadline;
    tel->slo().configure(function_id, target);
  }
}

ClusterService::FunctionState& ClusterService::state_of(
    const std::string& function_id) {
  return functions_[function_id];
}

double ClusterService::service_estimate_s(const FunctionState& st) const {
  if (st.service_ewma_s > 0) return st.service_ewma_s;
  const double guess = st.cls.service_estimate.seconds();
  return guess > 0 ? guess : 1.0;
}

util::Duration ClusterService::predicted_wait() const {
  // Conservative until the first completion lands: an unknown service time
  // predicts zero wait rather than shedding on a guess.
  if (mean_service_s_ <= 0 || queue_.empty()) return util::Duration{};
  std::size_t slots = 0;
  for (const auto& name : service_.endpoint_names()) {
    slots += service_.endpoint(name).worker_slots();
  }
  const double wait_s = static_cast<double>(queue_.size()) * mean_service_s_ /
                        static_cast<double>(std::max<std::size_t>(1, slots));
  return util::from_seconds(wait_s);
}

void ClusterService::shed(const std::string& function_id, const Pending& p,
                          ShedReason reason) {
  const std::string reason_name = shed_reason_name(reason);
  ++stats_.shed;
  ++stats_.shed_by_reason[reason_name];
  p.record->state = faas::TaskRecord::State::kFailed;
  p.record->finished = sim_.now();
  p.record->error = "shed: " + reason_name;
  if (auto* tel = sim_.telemetry()) {
    FunctionState& st = state_of(function_id);
    auto [it, inserted] = st.shed_counters.try_emplace(reason_name, nullptr);
    if (inserted) {
      it->second = &tel->metrics().counter(
          "federation_shed_total",
          {{"function", function_id}, {"reason", reason_name}});
    }
    it->second->add();
    if (auto* tr = tel->tracer(); tr != nullptr && p.trace.active()) {
      // The refused interval becomes a "shed" child under the request root,
      // so shed requests decompose like served ones (segment "shed").
      tr->add_closed(p.trace.trace, p.trace.span, p.record->app, "shed",
                     p.enqueued, sim_.now(), "cluster:" + reason_name);
      tr->annotate(p.trace.span, "shed: " + reason_name);
      tr->close_span(p.trace.span);
    }
    tel->slo().record_shed(function_id, reason_name);
    if (auto* fr = tel->flight()) {
      fr->record("service", "shed", function_id + " " + reason_name,
                 p.trace.trace);
    }
  }
  p.promise.set_exception(std::make_exception_ptr(
      ShedError(reason_name + " (" + function_id + ")")));
}

faas::AppHandle ClusterService::submit(const std::string& function_id,
                                       const std::string& executor_label) {
  const faas::AppDef& app = service_.function_def(function_id);
  FunctionState& st = state_of(function_id);
  ++stats_.submitted;

  auto record = std::make_shared<faas::TaskRecord>();
  record->app = app.name;
  record->executor = "cluster";
  record->submitted = sim_.now();
  sim::Promise<faas::AppValue> promise(sim_);
  auto future = promise.future();
  Pending p{function_id, executor_label, std::move(promise), record, sim_.now()};
  if (auto* tel = sim_.telemetry()) {
    if (auto* tr = tel->tracer()) {
      // The request root spans submit → settle and anchors the whole
      // cross-endpoint tree: squeue/wan/task children hang off it, and the
      // critical-path analyzer decomposes its extent. Opened before
      // admission so shed requests trace too. Site = routing policy, so
      // breakdowns group by policy; tenant = the function's SLO class.
      const auto trace = tr->begin_trace();
      const auto root = tr->open_span(trace, 0, app.name, "request",
                                      to_string(opts_.policy));
      if (!st.cls.tenant.empty()) tr->set_tenant(root, st.cls.tenant);
      p.trace = obs::TraceContext{trace, root};
      record->trace = p.trace;
    }
  }

  ShedReason reason{};
  bool refused = false;
  if (st.bucket && !st.bucket->try_take(sim_.now())) {
    reason = ShedReason::kRateLimit;
    refused = true;
  } else if (st.cls.max_queue > 0 &&
             queue_.queued(function_id) >= st.cls.max_queue) {
    reason = ShedReason::kQueueFull;
    refused = true;
  } else if (st.cls.deadline.ns > 0 && predicted_wait() > st.cls.deadline) {
    reason = ShedReason::kDeadline;
    refused = true;
  }
  if (refused) {
    shed(function_id, p, reason);
    return faas::AppHandle{std::move(future), std::move(record)};
  }

  ++stats_.admitted;
  ++stats_.admitted_by_function[function_id];
  if (auto* tel = sim_.telemetry()) {
    if (st.admitted_counter == nullptr) {  // don't latch — may install later
      st.admitted_counter = &tel->metrics().counter(
          "federation_admitted_total", {{"function", function_id}});
    }
    st.admitted_counter->add();
  }
  admitted_futures_.push_back(future);
  queue_.push(function_id, service_estimate_s(st), std::move(p));
  work_gate_.open();
  if (!pump_running_) {
    pump_running_ = true;
    sim_.spawn(pump(), "cluster-pump");
  }
  return faas::AppHandle{std::move(future), std::move(record)};
}

std::size_t ClusterService::credit_limit(const Endpoint& ep) const {
  const auto limit = static_cast<std::size_t>(
      static_cast<double>(ep.worker_slots()) * opts_.inflight_per_slot);
  return std::max<std::size_t>(1, limit);
}

bool ClusterService::any_credit(const Pending& p) const {
  // A partitioned endpoint's credit only counts when *nothing* is reachable:
  // while any endpoint is up, waiting for one of its credits beats parking
  // work behind a WAN gate of unknown duration (dispatch never selects a
  // partitioned endpoint while a reachable one exists — see
  // test_federation_cluster's partition properties).
  //
  // Endpoints mid-repartition or not serving p's function contribute
  // nothing at all — unlike a WAN partition there is no "last resort" tier:
  // dispatching into a draining GPU reset would strand the request, and the
  // Repartitioner reopens the gate via notify_endpoints_changed().
  bool any_reachable = false;
  bool reachable_credit = false;
  bool any = false;
  for (const auto& name : service_.endpoint_names()) {
    const Endpoint& ep = service_.endpoint(name);
    if (ep.repartitioning() || !ep.serves(p.function_id)) continue;
    const auto it = inflight_.find(name);
    const std::size_t used = it != inflight_.end() ? it->second : 0;
    const bool credit = used < credit_limit(ep);
    const bool up = ep.reachable();
    any_reachable = any_reachable || up;
    any = any || credit;
    reachable_credit = reachable_credit || (credit && up);
  }
  return any_reachable ? reachable_credit : any;
}

Endpoint* ClusterService::choose_endpoint(const Pending& p) {
  const faas::AppDef& app = service_.function_def(p.function_id);
  const std::string& model = app.effective_model_key();
  const std::vector<std::string> names = service_.endpoint_names();

  if (opts_.policy == ClusterPolicy::kRoundRobin) {
    // Cycle the (sorted) name list; reachable endpoints with credit win,
    // partitioned ones only serve when nothing reachable has credit.
    Endpoint* fallback = nullptr;
    for (std::size_t hop = 0; hop < names.size(); ++hop) {
      const std::size_t i = (round_robin_next_ + hop) % names.size();
      Endpoint& ep = service_.endpoint(names[i]);
      if (ep.repartitioning() || !ep.serves(p.function_id)) continue;
      const auto it = inflight_.find(names[i]);
      const std::size_t used = it != inflight_.end() ? it->second : 0;
      if (used >= credit_limit(ep)) continue;
      if (ep.reachable()) {
        round_robin_next_ = (i + 1) % names.size();
        return &ep;
      }
      if (fallback == nullptr) fallback = &ep;
    }
    round_robin_next_ = (round_robin_next_ + 1) % names.size();
    return fallback;
  }

  // Score-based policies: lower is better; candidates arrive in name order,
  // so strict `<` makes every tie-break the lowest endpoint name.
  struct Cand {
    Endpoint* ep;
    double per_slot_load;
    bool holds;
  };
  std::vector<Cand> reachable;
  std::vector<Cand> partitioned;
  for (const auto& name : names) {
    Endpoint& ep = service_.endpoint(name);
    if (ep.repartitioning() || !ep.serves(p.function_id)) continue;
    const auto it = inflight_.find(name);
    const std::size_t used = it != inflight_.end() ? it->second : 0;
    if (used >= credit_limit(ep)) continue;
    const double slots =
        static_cast<double>(std::max<std::size_t>(1, ep.worker_slots()));
    const bool holds = app.model_bytes > 0 && ep.holds_model(model);
    Cand c{&ep, static_cast<double>(used) / slots, holds};
    (ep.reachable() ? reachable : partitioned).push_back(c);
  }
  const std::vector<Cand>& cands = reachable.empty() ? partitioned : reachable;
  if (cands.empty()) return nullptr;

  const auto least_loaded = [](const std::vector<Cand>& set) {
    const Cand* best = nullptr;
    for (const auto& c : set) {
      if (best == nullptr || c.per_slot_load < best->per_slot_load) best = &c;
    }
    return best->ep;
  };

  switch (opts_.policy) {
    case ClusterPolicy::kLeastLoaded:
      return least_loaded(cands);
    case ClusterPolicy::kSticky: {
      std::vector<Cand> warm;
      for (const auto& c : cands) {
        if (c.holds) warm.push_back(c);
      }
      if (!warm.empty()) return least_loaded(warm);
      const auto sit = functions_.find(p.function_id);
      if (sit != functions_.end() && !sit->second.last_endpoint.empty()) {
        for (const auto& c : cands) {
          if (c.ep->name() == sit->second.last_endpoint) return c.ep;
        }
      }
      return least_loaded(cands);
    }
    case ClusterPolicy::kSloAware: {
      const auto fit = functions_.find(p.function_id);
      const double svc = fit != functions_.end()
                             ? service_estimate_s(fit->second)
                             : 1.0;
      const Cand* best = nullptr;
      double best_score = std::numeric_limits<double>::max();
      for (const auto& c : cands) {
        const double score = c.ep->rtt().seconds() + c.per_slot_load * svc +
                             c.ep->cold_start_estimate(app).seconds();
        if (best == nullptr || score < best_score) {
          best = &c;
          best_score = score;
        }
      }
      return best->ep;
    }
    case ClusterPolicy::kRoundRobin: break;  // handled above
  }
  return nullptr;
}

void ClusterService::dispatch(Pending p) {
  Endpoint* ep = choose_endpoint(p);
  FP_CHECK_MSG(ep != nullptr, "dispatch without an eligible endpoint");
  const std::string name = ep->name();
  const faas::AppDef& app = service_.function_def(p.function_id);
  if (app.model_bytes > 0 && ep->holds_model(app.effective_model_key())) {
    ++stats_.sticky_hits;
  }
  if (ep->repartitioning()) ++stats_.mid_reset_dispatches;
  ++stats_.dispatched;
  ++inflight_[name];
  state_of(p.function_id).last_endpoint = name;

  if (auto* tel = sim_.telemetry()) {
    if (auto* tr = tel->tracer(); tr != nullptr && p.trace.active()) {
      // The service-queue wait (admission → dispatch) is only known in
      // hindsight; record it as a closed "squeue" child of the request root.
      tr->add_closed(p.trace.trace, p.trace.span, p.record->app, "squeue",
                     p.enqueued, sim_.now(), "service");
    }
    if (auto* fr = tel->flight()) {
      fr->record(name, "dispatch", p.function_id, p.trace.trace);
    }
  }

  faas::AppHandle inner =
      service_.submit(p.function_id, name, p.executor_label, p.trace);
  // Chain the endpoint-side settle back into the cluster-level handle: adopt
  // the execution observables but keep the cluster submit time (so
  // completion_time() includes the service-queue wait) and the request-root
  // trace context, which closes here with the request outcome.
  auto outer_rec = p.record;
  auto inner_rec = inner.record;
  auto inner_future = inner.future;
  auto promise = p.promise;  // shared state; safe to copy into the callback
  const auto cluster_submit = outer_rec->submitted;
  const auto request_ctx = p.trace;
  const std::string fn = p.function_id;
  inner_future.on_ready([this, name, fn, outer_rec, inner_rec, inner_future,
                         promise, cluster_submit, request_ctx] {
    *outer_rec = *inner_rec;
    outer_rec->submitted = cluster_submit;
    outer_rec->trace = request_ctx;
    --inflight_[name];
    credit_gate_.open();
    if (outer_rec->state == faas::TaskRecord::State::kDone) {
      const double obs = inner_rec->run_time().seconds();
      if (obs > 0) {
        auto& st = state_of(fn);
        st.service_ewma_s =
            st.service_ewma_s > 0
                ? opts_.ewma_alpha * obs + (1 - opts_.ewma_alpha) * st.service_ewma_s
                : obs;
        mean_service_s_ =
            mean_service_s_ > 0
                ? opts_.ewma_alpha * obs + (1 - opts_.ewma_alpha) * mean_service_s_
                : obs;
      }
    }
    if (auto* tel = sim_.telemetry()) {
      const auto latency = sim_.now() - cluster_submit;
      const bool failed = inner_future.error() != nullptr;
      const auto& cls = state_of(fn).cls;
      const bool good =
          !failed && (cls.deadline.ns <= 0 || latency <= cls.deadline);
      if (auto* tr = tel->tracer(); tr != nullptr && request_ctx.active()) {
        if (failed) {
          tr->annotate(request_ctx.span, "failed");
        } else if (!good) {
          tr->annotate(request_ctx.span, "deadline miss");
        }
        tr->close_span(request_ctx.span);
      }
      tel->slo().record_latency(fn, latency, good);
      if (auto* fr = tel->flight()) {
        fr->record(name, "settle",
                   fn + (good ? " good" : failed ? " failed" : " late"),
                   request_ctx.trace);
      }
    }
    if (auto err = inner_future.error()) {
      promise.set_exception(err);
    } else {
      promise.set_value(inner_future.value());
    }
  });
}

sim::Co<void> ClusterService::pump() {
  while (true) {
    if (queue_.empty()) {
      if (stopping_) break;
      work_gate_.close();
      co_await work_gate_.wait();
      continue;
    }
    {
      // Shed queued requests whose deadline already passed — dispatching
      // them would burn an endpoint credit on a guaranteed SLO miss.
      const std::string fn = queue_.peek().function_id;
      const FunctionState& st = state_of(fn);
      if (st.cls.deadline.ns > 0 &&
          queue_.peek().enqueued + st.cls.deadline <= sim_.now()) {
        const Pending expired = queue_.pop(fn);
        shed(fn, expired, ShedReason::kExpired);
        continue;
      }
    }
    if (!any_credit(queue_.peek())) {
      credit_gate_.close();
      co_await credit_gate_.wait();
      continue;  // re-check expiry: the head may have aged past its deadline
    }
    const std::string fn = queue_.peek().function_id;
    Pending next = queue_.pop(fn);
    dispatch(std::move(next));
  }
  pump_running_ = false;
}

sim::Co<void> ClusterService::shutdown() {
  stopping_ = true;
  work_gate_.open();
  // Admitted futures settle as the pump drains; re-check the (growing) list
  // like ComputeService::shutdown does.
  std::size_t settled = 0;
  while (settled < admitted_futures_.size()) {
    const auto f = admitted_futures_[settled];
    ++settled;
    try {
      (void)co_await f;
    } catch (...) {
      // Sheds and task failures settle too; that's all shutdown needs.
    }
  }
  co_await service_.shutdown();
}

}  // namespace faaspart::federation
