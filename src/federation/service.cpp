#include "federation/service.hpp"

#include <limits>

#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::federation {

Endpoint& ComputeService::register_endpoint(std::unique_ptr<Endpoint> endpoint) {
  FP_CHECK(endpoint != nullptr);
  const std::string name = endpoint->name();
  const auto [it, inserted] = endpoints_.emplace(name, std::move(endpoint));
  if (!inserted) {
    throw util::ConfigError(util::strf("duplicate endpoint '", name, "'"));
  }
  return *it->second;
}

Endpoint& ComputeService::endpoint(const std::string& name) {
  const auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw util::NotFoundError(util::strf("endpoint '", name, "'"));
  }
  return *it->second;
}

std::vector<std::string> ComputeService::endpoint_names() const {
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [name, ep] : endpoints_) out.push_back(name);
  return out;
}

std::string ComputeService::register_function(faas::AppDef app) {
  FP_CHECK_MSG(static_cast<bool>(app.body), "function needs a body");
  const std::string id = util::strf("fn-", next_function_++, "-", app.name);
  functions_.emplace(id, std::move(app));
  return id;
}

const faas::AppDef& ComputeService::function(const std::string& function_id) const {
  const auto it = functions_.find(function_id);
  if (it == functions_.end()) {
    throw util::NotFoundError(util::strf("function '", function_id, "'"));
  }
  return it->second;
}

namespace {

/// Dispatch leg: wait half the RTT, submit at the endpoint, await the
/// result, wait the return leg, settle the outer promise. An active trace
/// context hangs "wan-out" / "wan-back" spans off the upstream request root
/// — partition stalls show up as inflated WAN legs, exactly where the
/// latency was spent.
sim::Co<void> wan_task(sim::Simulator* sim, Endpoint* ep, faas::AppDef app,
                       std::string executor_label,
                       sim::Promise<faas::AppValue> outer,
                       std::shared_ptr<faas::TaskRecord> record,
                       obs::TraceContext parent) {
  const std::string app_name = app.name;
  const auto tracer = [sim, parent]() -> obs::Tracer* {
    if (!parent.active()) return nullptr;
    auto* tel = sim->telemetry();
    return tel != nullptr ? tel->tracer() : nullptr;
  };
  // A WAN partition (faults::FaultKind::kWanPartition) delays traffic rather
  // than dropping it: each leg waits for the link before paying its half-RTT.
  const auto out_start = sim->now();
  co_await ep->wan_gate().wait();
  co_await sim->delay(ep->rtt() * 0.5);
  if (auto* tr = tracer()) {
    tr->add_closed(parent.trace, parent.span, app_name, "wan-out", out_start,
                   sim->now(), ep->name());
  }
  faas::AppHandle inner = ep->dfk().submit(std::move(app), executor_label, parent);
  faas::AppValue value;
  std::exception_ptr error;
  try {
    value = co_await inner.future;
  } catch (...) {
    error = std::current_exception();
  }
  const auto back_start = sim->now();
  co_await ep->wan_gate().wait();
  co_await sim->delay(ep->rtt() * 0.5);  // result's way back over the WAN
  if (auto* tr = tracer()) {
    tr->add_closed(parent.trace, parent.span, app_name, "wan-back", back_start,
                   sim->now(), ep->name());
  }
  // Adopt the endpoint-side execution observables (started/finished bound
  // the actual run, so run_time stays endpoint-local) but keep the
  // service-side identity, submission time, and trace context. The return
  // WAN leg is visible through the outer future's settle time.
  const auto submitted = record->submitted;
  const auto executor = record->executor;
  const auto trace_ctx = record->trace;
  *record = *inner.record;
  record->submitted = submitted;
  record->executor = executor;
  record->trace = trace_ctx;
  if (error) {
    outer.set_exception(error);
  } else {
    outer.set_value(std::move(value));
  }
}

}  // namespace

faas::AppHandle ComputeService::dispatch(const faas::AppDef& app, Endpoint& ep,
                                         const std::string& executor_label,
                                         obs::TraceContext parent) {
  ++tasks_submitted_;
  ++dispatch_counts_[ep.name()];
  ++inflight_[ep.name()];
  if (auto* tel = sim_.telemetry()) {
    auto [it, inserted] = dispatch_counters_.try_emplace(ep.name(), nullptr);
    if (inserted) {
      it->second = &tel->metrics().counter("federation_dispatches_total",
                                           {{"endpoint", ep.name()}});
    }
    it->second->add();
  }
  auto record = std::make_shared<faas::TaskRecord>();
  record->app = app.name;
  record->executor = ep.name() + "/" + executor_label;
  record->submitted = sim_.now();
  record->trace = parent;  // service-side identity: the upstream request root
  sim::Promise<faas::AppValue> outer(sim_);
  auto future = outer.future();
  futures_.push_back(future);
  future.on_ready([this, name = ep.name()] { --inflight_[name]; });
  sim_.spawn(wan_task(&sim_, &ep, app, executor_label, std::move(outer), record,
                      parent),
             "wan-task@" + ep.name());
  return faas::AppHandle{std::move(future), std::move(record)};
}

faas::AppHandle ComputeService::submit(const std::string& function_id,
                                       const std::string& endpoint_name,
                                       const std::string& executor_label,
                                       obs::TraceContext parent) {
  return dispatch(function(function_id), endpoint(endpoint_name),
                  executor_label, parent);
}

faas::AppHandle ComputeService::submit_routed(const std::string& function_id,
                                              const std::string& executor_label,
                                              RoutingPolicy policy) {
  FP_CHECK_MSG(!endpoints_.empty(), "no endpoints registered");
  Endpoint* chosen = nullptr;
  switch (policy) {
    case RoutingPolicy::kRoundRobin: {
      // Skip partitioned endpoints (their queues only grow while the link is
      // down); when everything is unreachable fall through to the natural
      // pick — dispatch legs wait on the gate anyway.
      for (std::size_t hop = 0; hop < endpoints_.size(); ++hop) {
        auto it = endpoints_.begin();
        std::advance(it, round_robin_next_ % endpoints_.size());
        ++round_robin_next_;
        chosen = it->second.get();
        if (chosen->reachable() || hop + 1 == endpoints_.size()) break;
      }
      break;
    }
    case RoutingPolicy::kLeastLoaded: {
      // Normalize by worker count so a 4-worker site and a 1-worker edge box
      // compare by per-worker backlog, and count service-side in-flight
      // tasks that have not reached the endpoint yet. Reachable endpoints
      // always beat partitioned ones; equal scores break to the
      // lexicographically smallest endpoint name, explicitly — the pick must
      // not lean on container iteration order (pinned by test_federation's
      // tie-break regression).
      double best = std::numeric_limits<double>::max();
      bool best_reachable = false;
      for (auto& [name, ep] : endpoints_) {
        const auto it = inflight_.find(name);
        const std::size_t wan = it != inflight_.end() ? it->second : 0;
        const double load = static_cast<double>(std::max(ep->outstanding(), wan));
        const double workers =
            static_cast<double>(std::max<std::size_t>(1, ep->worker_slots()));
        const double score = load / workers;
        const bool up = ep->reachable();
        const bool better =
            (up && !best_reachable) ||
            (up == best_reachable &&
             (score < best ||
              (score == best && chosen != nullptr && name < chosen->name())));
        if (better) {
          best = score;
          best_reachable = up;
          chosen = ep.get();
        }
      }
      break;
    }
  }
  FP_CHECK(chosen != nullptr);
  return dispatch(function(function_id), *chosen, executor_label);
}

sim::Co<void> ComputeService::shutdown() {
  // Settle service-routed tasks first — a WAN dispatch leg may not have
  // reached its endpoint executor yet. New submissions during the wait are
  // covered by re-checking the (growing) list.
  std::size_t settled = 0;
  while (settled < futures_.size()) {
    const auto f = futures_[settled];
    ++settled;
    try {
      (void)co_await f;
    } catch (...) {
      // Failures settle too; that's all shutdown needs.
    }
  }
  for (auto& [name, ep] : endpoints_) {
    co_await ep->dfk().shutdown();
  }
}

}  // namespace faaspart::federation
