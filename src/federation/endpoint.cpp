#include "federation/endpoint.hpp"

#include "faults/faults.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::federation {

Endpoint::Endpoint(sim::Simulator& sim, Options opts, trace::Recorder* rec)
    : sim_(sim),
      opts_(std::move(opts)),
      rec_(rec),
      devices_(sim, rec),
      provider_(sim, opts_.cpu_cores),
      partitioner_(devices_),
      dfk_(sim, faas::Config{.run_dir = "runinfo/" + opts_.name,
                             .retries = opts_.dfk_retries,
                             .executors = {}}),
      wan_gate_(sim, /*open=*/true) {
  FP_CHECK_MSG(!opts_.name.empty(), "endpoint needs a name");
  FP_CHECK_MSG(opts_.rtt.ns >= 0, "negative RTT");
  for (const auto& arch : opts_.gpus) devices_.add_device(arch);
  if (auto* fi = sim_.faults()) {
    fault_subs_.push_back(fi->subscribe(
        faults::FaultKind::kWanPartition, "endpoint:" + opts_.name,
        [this](const faults::FaultEvent& ev) {
          partition_for(ev.duration.ns > 0 ? ev.duration : util::seconds(1));
        }));
  }
}

Endpoint::~Endpoint() {
  if (auto* fi = sim_.faults()) {
    for (const auto id : fault_subs_) fi->unsubscribe(id);
  }
}

void Endpoint::partition_for(util::Duration length) {
  FP_CHECK_MSG(length.ns > 0, "partition needs a positive length");
  ++wan_partitions_;
  if (auto* tel = sim_.telemetry()) {
    tel->metrics()
        .counter("federation_wan_partitions_total", {{"endpoint", opts_.name}})
        .add();
  }
  const util::TimePoint until = sim_.now() + length;
  if (until.ns > partition_until_.ns) partition_until_ = until;
  wan_gate_.close();
  sim_.schedule_at(partition_until_, [this] {
    // An overlapping later partition may have pushed the heal time out.
    if (sim_.now() >= partition_until_ && !wan_gate_.is_open()) {
      wan_gate_.open();
    }
  });
}

void Endpoint::add_cpu_executor(const std::string& label, int workers) {
  faas::HighThroughputExecutor::Options ex_opts;
  ex_opts.label = label;
  ex_opts.cpu_workers = workers;
  auto ex = std::make_unique<faas::HighThroughputExecutor>(
      sim_, provider_, std::move(ex_opts), nullptr, rec_);
  ex->start();
  dfk_.add_executor(std::move(ex));
  executor_labels_.push_back(label);
  worker_slots_ += static_cast<std::size_t>(workers);
}

void Endpoint::add_gpu_executor(const faas::HtexConfig& cfg,
                                faas::ModelLoader* loader) {
  dfk_.add_executor(partitioner_.build_executor(sim_, provider_, cfg, loader, rec_));
  executor_labels_.push_back(cfg.label);
  worker_slots_ += cfg.available_accelerators.empty()
                       ? static_cast<std::size_t>(cfg.max_workers)
                       : cfg.available_accelerators.size();
}

std::size_t Endpoint::outstanding() const {
  std::size_t n = 0;
  for (const auto& label : executor_labels_) {
    n += dfk_.executor(label).outstanding();
  }
  return n;
}

}  // namespace faaspart::federation
