#include "federation/endpoint.hpp"

#include "faults/faults.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::federation {

Endpoint::Endpoint(sim::Simulator& sim, Options opts, trace::Recorder* rec)
    : sim_(sim),
      opts_(std::move(opts)),
      rec_(rec),
      devices_(sim, rec),
      provider_(sim, opts_.cpu_cores),
      partitioner_(devices_),
      dfk_(sim, faas::Config{.run_dir = "runinfo/" + opts_.name,
                             .retries = opts_.dfk_retries,
                             .executors = {}}),
      wan_gate_(sim, /*open=*/true) {
  FP_CHECK_MSG(!opts_.name.empty(), "endpoint needs a name");
  FP_CHECK_MSG(opts_.rtt.ns >= 0, "negative RTT");
  for (const auto& arch : opts_.gpus) devices_.add_device(arch);
  if (auto* fi = sim_.faults()) {
    fault_subs_.push_back(fi->subscribe(
        faults::FaultKind::kWanPartition, "endpoint:" + opts_.name,
        [this](const faults::FaultEvent& ev) {
          partition_for(ev.duration.ns > 0 ? ev.duration : util::seconds(1));
        }));
  }
}

Endpoint::~Endpoint() {
  if (auto* fi = sim_.faults()) {
    for (const auto id : fault_subs_) fi->unsubscribe(id);
  }
}

void Endpoint::partition_for(util::Duration length) {
  FP_CHECK_MSG(length.ns > 0, "partition needs a positive length");
  ++wan_partitions_;
  if (auto* tel = sim_.telemetry()) {
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: WAN partitions are injected
        // faults, a handful per run
        .counter("federation_wan_partitions_total", {{"endpoint", opts_.name}})
        .add();
  }
  const util::TimePoint until = sim_.now() + length;
  if (until.ns > partition_until_.ns) partition_until_ = until;
  wan_gate_.close();
  sim_.schedule_at(partition_until_, [this] {
    // An overlapping later partition may have pushed the heal time out.
    if (sim_.now() >= partition_until_ && !wan_gate_.is_open()) {
      wan_gate_.open();
    }
  });
}

void Endpoint::begin_repartition() {
  FP_CHECK_MSG(!repartitioning_, "repartition already in progress");
  repartitioning_ = true;
  ++repartitions_;
  if (auto* tel = sim_.telemetry()) {
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: a repartition costs seconds
        // of simulated drain + reset time, one lookup is noise
        .counter("federation_repartitions_total", {{"endpoint", opts_.name}})
        .add();
  }
}

void Endpoint::end_repartition() {
  FP_CHECK_MSG(repartitioning_, "end_repartition without begin");
  repartitioning_ = false;
}

bool Endpoint::serves(const std::string& function_id) const {
  const auto it = serving_.find(function_id);
  return it == serving_.end() || it->second;
}

void Endpoint::set_serving(const std::string& function_id, bool serving) {
  serving_[function_id] = serving;
}

void Endpoint::add_cpu_executor(const std::string& label, int workers) {
  faas::HighThroughputExecutor::Options ex_opts;
  ex_opts.label = label;
  ex_opts.cpu_workers = workers;
  auto ex = std::make_unique<faas::HighThroughputExecutor>(
      sim_, provider_, std::move(ex_opts), nullptr, rec_);
  ex->start();
  dfk_.add_executor(std::move(ex));
  executor_labels_.push_back(label);
  worker_slots_ += static_cast<std::size_t>(workers);
}

void Endpoint::add_gpu_executor(const faas::HtexConfig& cfg,
                                faas::ModelLoader* loader) {
  if (loader == nullptr) loader = cache_.get();
  auto ex = partitioner_.build_executor(sim_, provider_, cfg, loader, rec_);
  gpu_executors_[cfg.label] = ex.get();
  dfk_.add_executor(std::move(ex));
  executor_labels_.push_back(cfg.label);
  worker_slots_ += cfg.available_accelerators.empty()
                       ? static_cast<std::size_t>(cfg.max_workers)
                       : cfg.available_accelerators.size();
}

core::WeightCache& Endpoint::enable_weight_cache(util::Duration attach_cost,
                                                 util::Bytes capacity) {
  FP_CHECK_MSG(cache_ == nullptr, "weight cache already enabled");
  FP_CHECK_MSG(gpu_executors_.empty(),
               "enable_weight_cache must precede add_gpu_executor");
  cache_ = std::make_unique<core::WeightCache>(attach_cost, capacity);
  return *cache_;
}

bool Endpoint::holds_model(const std::string& model_key) const {
  return cache_ != nullptr && cache_->holds(model_key);
}

util::Duration Endpoint::cold_start_estimate(const faas::AppDef& app) const {
  if (app.model_bytes <= 0) return app.function_init;
  if (holds_model(app.effective_model_key())) return cache_->attach_cost();
  // Uploads ride the first device's model-load path; a GPU-less endpoint
  // keeps a pessimistic default so routing still orders sensibly.
  const double bw = devices_.device_count() > 0
                        ? devices_.device(0).arch().model_load_bw
                        : 1e9;
  return app.function_init +
         util::from_seconds(static_cast<double>(app.model_bytes) / bw);
}

core::Autoscaler& Endpoint::enable_autoscaler(
    const std::vector<std::pair<std::string, int>>& tenants,
    util::TimePoint deadline, core::AutoscalerOptions opts) {
  FP_CHECK_MSG(autoscaler_ == nullptr, "autoscaler already enabled");
  FP_CHECK_MSG(!tenants.empty(), "autoscaler needs tenants");
  if (reconfigurer_ == nullptr) {
    reconfigurer_ = std::make_unique<core::Reconfigurer>(devices_);
  }
  autoscaler_ = std::make_unique<core::Autoscaler>(sim_, *reconfigurer_, opts);
  for (const auto& [label, pct] : tenants) {
    const auto it = gpu_executors_.find(label);
    FP_CHECK_MSG(it != gpu_executors_.end(),
                 "autoscaler tenant must be a GPU executor label");
    autoscaler_->add_tenant(*it->second, pct);
  }
  sim_.spawn(autoscaler_->run(deadline), "autoscaler@" + opts_.name);
  return *autoscaler_;
}

faas::HighThroughputExecutor& Endpoint::gpu_executor(const std::string& label) {
  const auto it = gpu_executors_.find(label);
  if (it == gpu_executors_.end()) {
    throw util::NotFoundError(
        util::strf("no GPU executor '", label, "' on ", opts_.name));
  }
  return *it->second;
}

core::Reconfigurer& Endpoint::reconfigurer() {
  if (reconfigurer_ == nullptr) {
    reconfigurer_ = std::make_unique<core::Reconfigurer>(devices_);
  }
  return *reconfigurer_;
}

std::size_t Endpoint::outstanding() const {
  std::size_t n = 0;
  for (const auto& label : executor_labels_) {
    n += dfk_.executor(label).outstanding();
  }
  return n;
}

}  // namespace faaspart::federation
