#include "federation/repartition.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::federation {

namespace {

bool placed_in(const core::GpuLayout& layout, const std::string& function_id) {
  for (const auto& p : layout.placements) {
    if (p.function == function_id) return true;
  }
  return false;
}

}  // namespace

Repartitioner::Repartitioner(sim::Simulator& sim, ClusterService& cluster,
                             std::vector<RepartitionTenant> tenants,
                             RepartitionerOptions opts)
    : sim_(sim), cluster_(cluster), tenants_(std::move(tenants)), opts_(opts) {
  FP_CHECK_MSG(!tenants_.empty(), "repartitioner needs tenants");
  FP_CHECK_MSG(opts_.interval.ns > 0, "repartition interval must be positive");
  FP_CHECK_MSG(opts_.drain_poll.ns > 0, "drain poll must be positive");
  for (std::size_t i = 1; i < tenants_.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      FP_CHECK_MSG(tenants_[i].function_id != tenants_[j].function_id,
                   "duplicate repartition tenant");
    }
  }
  last_admitted_.assign(tenants_.size(), 0);
}

void Repartitioner::add_endpoint(Endpoint& ep) {
  FP_CHECK_MSG(ep.devices().device_count() >= 1,
               "repartition endpoint needs a GPU");
  for (const auto& t : tenants_) {
    FP_CHECK_MSG(ep.gpu_executor(t.executor_label).worker_count() == 1,
                 "repartition tenants need single-worker GPU executors");
  }
  endpoints_.push_back(&ep);
}

std::size_t Repartitioner::applies() const {
  std::size_t n = 0;
  for (const auto& c : cycles_) n += c.applied ? 1 : 0;
  return n;
}

void Repartitioner::bootstrap_current() {
  const auto& arch = endpoints_.front()->devices().device(0).arch();
  std::vector<std::pair<std::string, std::string>> assignments;
  for (const auto& t : tenants_) {
    if (!t.initial_profile.empty()) {
      assignments.emplace_back(t.function_id, t.initial_profile);
    }
  }
  current_.gpus.assign(endpoints_.size(),
                       core::layout_from_profiles(arch, assignments));
}

void Repartitioner::count_cycle(const char* outcome) {
  if (auto* tel = sim_.telemetry()) {
    const obs::Labels labels{{"outcome", outcome}};
    // faaspart-lint: allow(O1) -- cold path: one optimizer cycle per
    // interval (tens of simulated seconds), plan churn is the metric
    tel->metrics().counter("repartition_cycles_total", labels).add();
  }
}

sim::Co<void> Repartitioner::run(util::TimePoint deadline) {
  if (!opts_.enabled || endpoints_.empty()) co_return;
  bootstrap_current();
  const auto& by_fn = cluster_.stats().admitted_by_function;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const auto it = by_fn.find(tenants_[i].function_id);
    last_admitted_[i] = it != by_fn.end() ? it->second : 0;
  }
  last_at_ = sim_.now();
  while (sim_.now() + opts_.interval < deadline) {
    co_await sim_.delay(opts_.interval);
    co_await run_cycle(sim_.now());
  }
}

sim::Co<void> Repartitioner::run_cycle(util::TimePoint plan_start) {
  const double elapsed = (plan_start - last_at_).seconds();
  if (elapsed <= 0) co_return;

  RepartitionCycle cycle;
  cycle.at = plan_start;
  const auto& by_fn = cluster_.stats().admitted_by_function;
  std::vector<core::FunctionDemand> demands;
  demands.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const RepartitionTenant& t = tenants_[i];
    const auto it = by_fn.find(t.function_id);
    const std::size_t admitted = it != by_fn.end() ? it->second : 0;
    const double rate =
        static_cast<double>(admitted - last_admitted_[i]) / elapsed;
    last_admitted_[i] = admitted;
    cycle.rates_hz.push_back(rate);
    core::FunctionDemand d;
    d.name = t.function_id;
    d.rate_hz = rate;
    d.memory = t.memory;
    d.scores = t.scores;
    demands.push_back(std::move(d));
  }
  last_at_ = plan_start;

  const auto& arch = endpoints_.front()->devices().device(0).arch();
  cycle.plan = core::plan_fleet(arch, static_cast<int>(endpoints_.size()),
                                demands, current_, opts_.planner);

  obs::Tracer* tr = nullptr;
  if (auto* tel = sim_.telemetry()) tr = tel->tracer();
  std::uint64_t trace = 0;
  std::uint64_t root = 0;
  if (tr != nullptr) {
    // One control-plane trace per optimizer cycle: a repartition root, a
    // plan child for the decision, an apply child per relayouted device.
    trace = tr->begin_trace();
    root = tr->open_span(trace, 0, "repartition", "repartition",
                         "repartitioner");
    tr->add_closed(trace, root, "plan", "plan", plan_start, sim_.now(),
                   cycle.plan.reason);
  }

  if (cycle.plan.apply) {
    // A plan that leaves any tenant with no instance anywhere would strand
    // its traffic behind set_serving(false) on every endpoint — the planner
    // seeds presence, so this can only mean mis-wired tenants.
    for (const auto& t : tenants_) {
      bool anywhere = false;
      for (const auto& g : cycle.plan.plan.gpus) {
        anywhere = anywhere || placed_in(g, t.function_id);
      }
      FP_CHECK_MSG(anywhere, "plan drops a tenant from the whole fleet");
    }
    for (std::size_t g = 0; g < endpoints_.size(); ++g) {
      const bool same = g < current_.gpus.size() &&
                        current_.gpus[g] == cycle.plan.plan.gpus[g];
      if (same) continue;
      co_await apply_endpoint(g, cycle.plan.plan.gpus[g], cycle, trace, root);
      ++cycle.endpoints_changed;
    }
    current_ = cycle.plan.plan;
    cycle.applied = true;
  }
  count_cycle(cycle.plan.reason.c_str());
  if (tr != nullptr) {
    tr->annotate(root, cycle.plan.reason);
    tr->close_span(root);
  }
  cycles_.push_back(std::move(cycle));
}

sim::Co<void> Repartitioner::apply_endpoint(std::size_t g,
                                            const core::GpuLayout& layout,
                                            RepartitionCycle& cycle,
                                            std::uint64_t trace,
                                            std::uint64_t root) {
  Endpoint& ep = *endpoints_[g];
  const util::TimePoint start = sim_.now();
  ep.begin_repartition();

  // Tenants the new layout evicts stay parked after the reset, so any task
  // still queued on their executor would strand: wait for them to drain.
  // Routing stopped at begin_repartition(), so outstanding only shrinks.
  for (const auto& t : tenants_) {
    if (placed_in(layout, t.function_id)) continue;
    auto& ex = ep.gpu_executor(t.executor_label);
    while (ex.outstanding() > 0) {
      co_await sim_.delay(opts_.drain_poll);
    }
  }

  std::vector<core::Reconfigurer::TenantLayout> layouts;
  layouts.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    core::Reconfigurer::TenantLayout tl;
    tl.executor = &ep.gpu_executor(t.executor_label);
    for (const auto& p : layout.placements) {
      if (p.function == t.function_id) tl.profiles.push_back(p.profile);
    }
    layouts.push_back(std::move(tl));
  }
  const core::ReconfigureReport report = co_await ep.reconfigurer().change_device_layout(
      std::move(layouts), /*device_index=*/0, ep.weight_cache());
  if (report.degraded) ++cycle.degraded;

  for (const auto& t : tenants_) {
    ep.set_serving(t.function_id, placed_in(layout, t.function_id));
  }
  ep.end_repartition();
  cluster_.notify_endpoints_changed();

  if (auto* tel = sim_.telemetry()) {
    if (auto* tr = tel->tracer(); tr != nullptr && root != 0) {
      tr->add_closed(trace, root, ep.name(), "apply", start, sim_.now(),
                     report.achieved);
    }
  }
}

}  // namespace faaspart::federation
