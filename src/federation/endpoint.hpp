// Endpoint — the Globus Compute deployment unit (§2.2): a user-deployed
// compute site (workstation, cluster login node, supercomputer) that runs a
// Parsl DataFlowKernel locally and receives work from the cloud service.
//
// An Endpoint bundles the whole node-local stack this library models:
// devices (nvml::DeviceManager), the CPU pool (LocalProvider), the GPU
// partitioner and a DataFlowKernel, plus the WAN round-trip time to the
// cloud service that routed the task.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/autoscale.hpp"
#include "core/partitioner.hpp"
#include "core/weightcache.hpp"
#include "faas/dfk.hpp"
#include "faas/provider.hpp"
#include "nvml/manager.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"

namespace faaspart::federation {

class Endpoint {
 public:
  struct Options {
    std::string name;
    int cpu_cores = 24;
    /// WAN round trip between this endpoint and the cloud service.
    util::Duration rtt = util::milliseconds(40);
    /// GPUs installed on the node.
    std::vector<gpu::GpuArchSpec> gpus;
    int dfk_retries = 0;
  };

  Endpoint(sim::Simulator& sim, Options opts, trace::Recorder* rec = nullptr);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] const std::string& name() const { return opts_.name; }
  [[nodiscard]] util::Duration rtt() const { return opts_.rtt; }

  // -- WAN fault paths ------------------------------------------------------

  /// False while a WAN partition separates this endpoint from the cloud
  /// service; dispatch/result legs wait on wan_gate() until it heals.
  [[nodiscard]] bool reachable() const { return wan_gate_.is_open(); }
  [[nodiscard]] sim::Gate& wan_gate() { return wan_gate_; }

  /// Severs the endpoint's WAN link for `length` (extends an ongoing
  /// partition). Traffic is delayed, not dropped — Globus Compute queues and
  /// retries transport-level sends.
  void partition_for(util::Duration length);

  [[nodiscard]] std::size_t wan_partitions() const { return wan_partitions_; }

  // -- Online repartitioning (federation/repartition.hpp) -------------------

  /// Marks the endpoint as mid-relayout: routing must not dispatch here
  /// until end_repartition(). Unlike a WAN partition the endpoint is healthy
  /// — its in-flight work drains normally; only *new* dispatches stop.
  void begin_repartition();
  void end_repartition();
  [[nodiscard]] bool repartitioning() const { return repartitioning_; }
  [[nodiscard]] std::size_t repartitions() const { return repartitions_; }

  /// Routing eligibility: reachable over the WAN and not mid-relayout.
  [[nodiscard]] bool accepting() const {
    return reachable() && !repartitioning_;
  }

  /// Whether this endpoint currently hosts an instance of `function_id`.
  /// Defaults to true — only layouts applied by the Repartitioner narrow an
  /// endpoint to a subset of the catalogue.
  [[nodiscard]] bool serves(const std::string& function_id) const;
  void set_serving(const std::string& function_id, bool serving);

  [[nodiscard]] nvml::DeviceManager& devices() { return devices_; }
  [[nodiscard]] faas::LocalProvider& provider() { return provider_; }
  [[nodiscard]] core::GpuPartitioner& partitioner() { return partitioner_; }
  [[nodiscard]] faas::DataFlowKernel& dfk() { return dfk_; }

  /// Convenience: a CPU executor with `workers` slots under `label`.
  void add_cpu_executor(const std::string& label, int workers);

  /// Convenience: a GPU executor from a paper-style HtexConfig (accelerator
  /// strings + optional percentages), built through the partitioner. With no
  /// explicit `loader`, executors load through the endpoint's weight cache
  /// when enable_weight_cache() was called first.
  void add_gpu_executor(const faas::HtexConfig& cfg,
                        faas::ModelLoader* loader = nullptr);

  // -- Serving-layer hooks (federation/cluster.hpp) -------------------------

  /// Installs an endpoint-owned WeightCache; subsequent GPU executors load
  /// through it. `capacity` caps resident bytes per pool scope (0 = device
  /// memory only). Must precede add_gpu_executor.
  core::WeightCache& enable_weight_cache(
      util::Duration attach_cost = util::milliseconds(120),
      util::Bytes capacity = 0);

  /// The endpoint's weight cache, or null when none was enabled.
  [[nodiscard]] core::WeightCache* weight_cache() { return cache_.get(); }

  /// True when the endpoint's weight cache holds `model_key` — routing to
  /// this endpoint pays the attach cost instead of the full upload.
  [[nodiscard]] bool holds_model(const std::string& model_key) const;

  /// Predicted cold-start charge were `app` dispatched here now: the attach
  /// cost when the weights are cached, otherwise function init + the weight
  /// upload at the endpoint's model-load bandwidth.
  [[nodiscard]] util::Duration cold_start_estimate(const faas::AppDef& app) const;

  /// Installs an endpoint-owned Reconfigurer + Autoscaler over GPU executor
  /// tenants `(label, initial_percentage)` and spawns its control loop until
  /// `deadline`. Labels must name GPU executors added earlier; tenants are
  /// assumed to share the endpoint's first device (core/autoscale contract).
  core::Autoscaler& enable_autoscaler(
      const std::vector<std::pair<std::string, int>>& tenants,
      util::TimePoint deadline, core::AutoscalerOptions opts = {});

  [[nodiscard]] core::Autoscaler* autoscaler() { return autoscaler_.get(); }

  /// The GPU executor added under `label`; throws util::NotFoundError.
  [[nodiscard]] faas::HighThroughputExecutor& gpu_executor(
      const std::string& label);

  /// Endpoint-owned Reconfigurer, created on first use (shared with the
  /// autoscaler when both are enabled).
  [[nodiscard]] core::Reconfigurer& reconfigurer();

  /// Tasks queued or running across all executors — the load signal the
  /// service's least-loaded routing uses.
  [[nodiscard]] std::size_t outstanding() const;

  /// Total worker slots across the endpoint's executors (routing weight).
  [[nodiscard]] std::size_t worker_slots() const { return worker_slots_; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  Options opts_;
  trace::Recorder* rec_;
  nvml::DeviceManager devices_;
  faas::LocalProvider provider_;
  core::GpuPartitioner partitioner_;
  faas::DataFlowKernel dfk_;
  sim::Gate wan_gate_;
  util::TimePoint partition_until_{};
  std::size_t wan_partitions_ = 0;
  bool repartitioning_ = false;
  std::size_t repartitions_ = 0;
  std::map<std::string, bool> serving_;  ///< absent = serves (default true)
  std::vector<std::uint64_t> fault_subs_;
  std::vector<std::string> executor_labels_;
  std::size_t worker_slots_ = 0;
  std::unique_ptr<core::WeightCache> cache_;
  std::map<std::string, faas::HighThroughputExecutor*> gpu_executors_;
  std::unique_ptr<core::Reconfigurer> reconfigurer_;
  std::unique_ptr<core::Autoscaler> autoscaler_;
};

}  // namespace faaspart::federation
