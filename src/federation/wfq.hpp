// Weighted fair queueing across functions (the service-side queue of the
// cluster serving subsystem, DESIGN.md §9).
//
// Classic virtual-clock WFQ, specialised to the single-threaded simulator:
// every function ("flow") has a weight; a request arriving with an expected
// cost c gets the finish tag
//
//   F = max(V, F_last(flow)) + c / weight(flow)
//
// where V is the virtual clock (the finish tag of the most recently
// dequeued request). pop() returns the smallest finish tag, FIFO within
// ties via a global arrival sequence — so backlogged flows share dispatch
// bandwidth in proportion to their weights, an idle flow's unused share is
// redistributed, and the order is bit-for-bit deterministic.
//
// MQFQ-Sticky (arXiv:2507.08954) applies exactly this shape to serverless
// GPU functions; we add its "stickiness" at the routing layer
// (federation/cluster.hpp), not in the queue itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace faaspart::federation {

template <typename T>
class WfqScheduler {
 public:
  /// Sets (or changes) a flow's weight; flows default to weight 1 on first
  /// push. Heavier flows drain proportionally faster under backlog.
  void set_weight(const std::string& flow, double weight) {
    FP_CHECK_MSG(weight > 0, "WFQ weight must be positive");
    flows_[flow].weight = weight;
  }

  /// Enqueues one request of expected cost `cost` (any positive unit —
  /// seconds of service works well) on `flow`.
  void push(const std::string& flow, double cost, T item) {
    FP_CHECK_MSG(cost > 0, "WFQ cost must be positive");
    Flow& f = flows_[flow];  // default weight 1
    const double start = std::max(vtime_, f.last_finish);
    const double finish = start + cost / f.weight;
    f.last_finish = finish;
    ++f.queued;
    items_.emplace(Key{finish, next_seq_++}, std::move(item));
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t queued(const std::string& flow) const {
    const auto it = flows_.find(flow);
    return it == flows_.end() ? 0 : it->second.queued;
  }

  /// The item pop() would return next. Requires !empty().
  [[nodiscard]] const T& peek() const {
    FP_CHECK_MSG(!items_.empty(), "peek on an empty WFQ");
    return items_.begin()->second;
  }

  /// Dequeues the smallest finish tag (FIFO within a tag tie) and advances
  /// the virtual clock. `flow_of` must name the flow the item was pushed on.
  T pop(const std::string& flow_of) {
    FP_CHECK_MSG(!items_.empty(), "pop on an empty WFQ");
    auto it = items_.begin();
    vtime_ = std::max(vtime_, it->first.finish);
    T out = std::move(it->second);
    items_.erase(it);
    auto fit = flows_.find(flow_of);
    FP_CHECK_MSG(fit != flows_.end() && fit->second.queued > 0,
                 "WFQ pop flow mismatch");
    --fit->second.queued;
    return out;
  }

  [[nodiscard]] double virtual_time() const { return vtime_; }

 private:
  struct Key {
    double finish;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };
  struct Flow {
    double weight = 1.0;
    double last_finish = 0.0;
    std::size_t queued = 0;
  };

  std::map<Key, T> items_;
  std::map<std::string, Flow> flows_;
  double vtime_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace faaspart::federation
