// Repartitioner — the online profile→predict→reconfigure loop (DESIGN.md
// §13): closes ROADMAP item #1 by driving the static MIG layouts from live
// traffic.
//
//   probe   sched::MpsProbe scores each function on every MIG profile once
//           (MISO-style MPS co-run, no GPU resets) — the scores arrive here
//           through RepartitionTenant.
//   plan    every `interval`, offered rates are differentiated from the
//           ClusterService's admitted-by-function counters and fed to
//           core::plan_fleet, which packs profiles across the fleet and
//           decides — via the reset-cost amortization gate — whether the
//           predicted gain is worth the resets.
//   apply   accepted plans roll out endpoint by endpoint: routing is gated
//           off (begin_repartition), evicted tenants drain, the device is
//           re-laid-out through core::Reconfigurer::change_device_layout
//           (inheriting its MIG→MPS→timeshare fault ladder), serving flags
//           are updated, and routing is re-opened.
//
// Contract: every endpoint added has one GPU (device 0) of the same arch and
// hosts one single-worker GPU executor per tenant label; endpoints must
// outlive the Repartitioner. Everything is deterministic — same trace, same
// plans, same apply schedule.
#pragma once

#include <string>
#include <vector>

#include "core/partition_planner.hpp"
#include "core/reconfigure.hpp"
#include "federation/cluster.hpp"

namespace faaspart::federation {

/// One function under online repartitioning.
struct RepartitionTenant {
  std::string function_id;     ///< registered ClusterService function
  std::string executor_label;  ///< GPU executor label on every endpoint
  util::Bytes memory = 0;      ///< resident footprint (planner feasibility)
  std::vector<core::ProfileScore> scores;  ///< from sched::MpsProbe
  /// Profile in force on every endpoint at startup (the static layout the
  /// optimizer starts from); empty = not initially placed.
  std::string initial_profile;
};

struct RepartitionerOptions {
  util::Duration interval = util::seconds(30);
  /// Poll step while waiting for an evicted tenant's executor to drain.
  util::Duration drain_poll = util::milliseconds(10);
  core::PlannerOptions planner{};
  /// When false, run() returns immediately: the fleet keeps its static
  /// layout and serving behavior is byte-identical to no Repartitioner.
  bool enabled = true;
};

/// One optimizer cycle, recorded whether or not the plan was applied.
struct RepartitionCycle {
  util::TimePoint at{};
  std::vector<double> rates_hz;  ///< per tenant, tenants() order
  core::PlanResult plan;
  int endpoints_changed = 0;
  int degraded = 0;  ///< endpoints that fell back to MPS/timeshare
  bool applied = false;
};

class Repartitioner {
 public:
  Repartitioner(sim::Simulator& sim, ClusterService& cluster,
                std::vector<RepartitionTenant> tenants,
                RepartitionerOptions opts = {});

  /// Registers a fleet endpoint. Call order defines the planner's device
  /// indexing — add in name order for reproducible plans.
  void add_endpoint(Endpoint& ep);

  /// The control loop: plan every `interval` until `deadline`. Spawn once.
  sim::Co<void> run(util::TimePoint deadline);

  [[nodiscard]] const std::vector<RepartitionCycle>& cycles() const {
    return cycles_;
  }
  [[nodiscard]] const core::FleetPlan& current_plan() const { return current_; }
  [[nodiscard]] const std::vector<RepartitionTenant>& tenants() const {
    return tenants_;
  }
  [[nodiscard]] std::size_t plans() const { return cycles_.size(); }
  [[nodiscard]] std::size_t applies() const;

 private:
  void bootstrap_current();
  sim::Co<void> run_cycle(util::TimePoint plan_start);
  sim::Co<void> apply_endpoint(std::size_t g, const core::GpuLayout& layout,
                               RepartitionCycle& cycle, std::uint64_t trace,
                               std::uint64_t root);
  void count_cycle(const char* outcome);

  sim::Simulator& sim_;
  ClusterService& cluster_;
  std::vector<RepartitionTenant> tenants_;
  RepartitionerOptions opts_;
  std::vector<Endpoint*> endpoints_;
  core::FleetPlan current_;
  std::vector<std::size_t> last_admitted_;  ///< per tenant
  util::TimePoint last_at_{};
  std::vector<RepartitionCycle> cycles_;
};

}  // namespace faaspart::federation
