// ComputeService — the cloud side of Globus Compute (§2.2): users register
// functions once, submit invocations to the service, and the service routes
// them to registered endpoints. Each hop pays the endpoint's WAN RTT (half
// on dispatch, half on the result's way back).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "faas/app.hpp"
#include "federation/endpoint.hpp"

namespace faaspart::obs {
class Counter;
}  // namespace faaspart::obs

namespace faaspart::federation {

enum class RoutingPolicy {
  kRoundRobin,
  kLeastLoaded,  ///< fewest outstanding tasks at dispatch time
};

class ComputeService {
 public:
  explicit ComputeService(sim::Simulator& sim) : sim_(sim) {}

  /// Registers an endpoint; its name becomes the routing key.
  Endpoint& register_endpoint(std::unique_ptr<Endpoint> endpoint);

  [[nodiscard]] Endpoint& endpoint(const std::string& name);
  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }
  [[nodiscard]] std::vector<std::string> endpoint_names() const;

  /// Registers a function; returns its id (Globus Compute's function UUID).
  std::string register_function(faas::AppDef app);

  /// The registered definition; throws util::NotFoundError on unknown ids.
  [[nodiscard]] const faas::AppDef& function_def(const std::string& function_id) const {
    return function(function_id);
  }

  /// Submits a registered function to a named endpoint's executor. An
  /// active `parent` context threads an upstream trace (the cluster request
  /// root) through the WAN legs and the endpoint-side task tree.
  faas::AppHandle submit(const std::string& function_id,
                         const std::string& endpoint_name,
                         const std::string& executor_label,
                         obs::TraceContext parent = {});

  /// Submits to an endpoint chosen by policy; every endpoint must expose
  /// `executor_label`.
  faas::AppHandle submit_routed(const std::string& function_id,
                                const std::string& executor_label,
                                RoutingPolicy policy = RoutingPolicy::kLeastLoaded);

  /// Waits for every service-routed task to settle (including in-flight WAN
  /// dispatch legs), then shuts down every endpoint's DataFlowKernel.
  sim::Co<void> shutdown();

  [[nodiscard]] std::size_t tasks_submitted() const { return tasks_submitted_; }
  /// Dispatch counts per endpoint (routing observability).
  [[nodiscard]] std::map<std::string, std::size_t> dispatch_counts() const {
    return dispatch_counts_;
  }

 private:
  faas::AppHandle dispatch(const faas::AppDef& app, Endpoint& ep,
                           const std::string& executor_label,
                           obs::TraceContext parent = {});
  [[nodiscard]] const faas::AppDef& function(const std::string& function_id) const;

  sim::Simulator& sim_;
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::string, faas::AppDef> functions_;
  std::uint64_t next_function_ = 1;
  std::size_t round_robin_next_ = 0;
  std::size_t tasks_submitted_ = 0;
  std::map<std::string, std::size_t> dispatch_counts_;
  // Cached per-endpoint metric handles (rule O1): dispatch is per-request,
  // so the registry lookup must not be.
  std::map<std::string, obs::Counter*> dispatch_counters_;
  /// Service-visible load: routed tasks not yet settled, per endpoint —
  /// includes tasks still in their WAN dispatch leg, which the endpoint's
  /// own outstanding() cannot see yet.
  std::map<std::string, std::size_t> inflight_;
  std::vector<sim::Future<faas::AppValue>> futures_;
};

}  // namespace faaspart::federation
