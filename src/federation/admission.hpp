// Admission control for the cluster serving subsystem (DESIGN.md §9).
//
// Two knobs, both per function class:
//   - a token bucket caps the sustained submit rate (burst-tolerant), and
//   - queue-depth / deadline policies shed requests that would only sit in
//     the service queue past any useful completion time.
//
// Shedding at the front door is what keeps admitted-request p99 bounded at
// 2× saturation: every request the bucket or the depth check turns away is
// one that would otherwise push the queue — and everyone behind it — further
// past its deadline. Shed requests fail fast with ShedError; nothing is
// silently dropped (the caller still gets a settled future and a record).
#pragma once

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/units.hpp"

namespace faaspart::federation {

/// A request refused by admission control; `what()` carries the reason.
class ShedError : public util::Error {
 public:
  explicit ShedError(const std::string& what) : Error("shed: " + what) {}
};

/// Why a request was shed. This enum is the single source of truth for the
/// reason spelling: ClusterStats keys, the federation_shed_total /
/// slo_shed_total metric labels, ShedError messages, and the SLO monitor's
/// shed accounting all go through shed_reason_name(), so a reason can never
/// drift into two spellings (pinned by test_federation_cluster's
/// ShedReasonSpellingsAreCanonicalEverywhere regression).
enum class ShedReason {
  kRateLimit,  ///< token bucket empty at submit
  kQueueFull,  ///< per-function service-queue cap reached
  kDeadline,   ///< predicted queue wait already exceeds the SLO at submit
  kExpired,    ///< aged past the SLO while queued; shed at dispatch
};

inline constexpr std::size_t kShedReasonCount = 4;

/// Canonical label: "rate-limit", "queue-full", "deadline", "expired".
[[nodiscard]] constexpr const char* shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::kRateLimit: return "rate-limit";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kDeadline: return "deadline";
    case ShedReason::kExpired: return "expired";
  }
  return "?";
}

/// Token bucket over virtual time: capacity `burst` tokens, refilled at
/// `rate_hz`. Lazy refill — no events, so an idle bucket costs nothing.
class TokenBucket {
 public:
  TokenBucket(double rate_hz, double burst, util::TimePoint start = {})
      : rate_hz_(rate_hz), burst_(burst), tokens_(burst), last_(start) {
    FP_CHECK_MSG(rate_hz > 0, "token bucket rate must be positive");
    FP_CHECK_MSG(burst >= 1.0, "token bucket burst must hold >= 1 token");
  }

  /// Takes one token if available at `now`; false = rate-limited.
  bool try_take(util::TimePoint now) {
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens(util::TimePoint now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(util::TimePoint now) {
    FP_CHECK_MSG(now >= last_, "token bucket time went backwards");
    tokens_ = std::min(burst_, tokens_ + (now - last_).seconds() * rate_hz_);
    last_ = now;
  }

  double rate_hz_;
  double burst_;
  double tokens_;
  util::TimePoint last_;
};

/// Per-function serving class: WFQ share, admission limits, SLO.
struct FunctionClass {
  /// Tenant / SLO-class label ("interactive", "batch", ...). Purely
  /// observational: it rides into request spans and the SLO monitor so
  /// breakdowns group per tenant, and never affects scheduling. Not part of
  /// the .fstrace serialization (the trace catalog carries the tenant;
  /// TraceDriver::bind_all stamps it here).
  std::string tenant;

  /// Weighted-fair-queueing share; backlogged functions drain in proportion.
  double weight = 1.0;

  /// Sustained admission rate (token bucket); 0 = unlimited.
  double rate_hz = 0.0;
  /// Bucket depth in requests (how much burst above rate_hz is absorbed).
  double burst = 1.0;

  /// Service-side queue cap for this function; 0 = unbounded.
  std::size_t max_queue = 0;

  /// Completion SLO measured from cluster submit. New requests whose
  /// predicted queue wait exceeds it are shed at admission ("deadline");
  /// queued requests already past it are shed at dispatch ("expired").
  /// 0 = none.
  util::Duration deadline{};

  /// Initial per-request service-time guess (WFQ cost unit); refined by an
  /// EWMA of observed run times once completions arrive.
  util::Duration service_estimate = util::seconds(1);
};

}  // namespace faaspart::federation
