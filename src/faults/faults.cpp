#include "faults/faults.hpp"

#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kDeviceError: return "device-error";
    case FaultKind::kMigCreateFail: return "mig-create-fail";
    case FaultKind::kMpsDaemonDeath: return "mps-daemon-death";
    case FaultKind::kWanPartition: return "wan-partition";
  }
  return "unknown";
}

namespace {
// Distinct SplitMix64 seeds per stream so each fault class draws from an
// independent sequence: adding one rate does not perturb the others.
constexpr std::uint64_t kMigStream = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kCrashStream = 0x243f6a8885a308d3ull;
constexpr std::uint64_t kDeviceStream = 0x13198a2e03707344ull;
constexpr std::uint64_t kWanStream = 0xa4093822299f31d0ull;
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan,
                             trace::Recorder* rec)
    : sim_(sim),
      plan_(std::move(plan)),
      rec_(rec),
      mig_rng_(plan_.seed ^ kMigStream),
      crash_rng_(plan_.seed ^ kCrashStream),
      device_rng_(plan_.seed ^ kDeviceStream),
      wan_rng_(plan_.seed ^ kWanStream) {
  FP_CHECK_MSG(sim_.faults() == nullptr,
               "a FaultInjector is already installed on this simulator");
  const bool has_rates = plan_.worker_crash_rate_hz > 0 ||
                         plan_.device_error_rate_hz > 0 ||
                         plan_.wan_partition_rate_hz > 0;
  FP_CHECK_MSG(!has_rates || plan_.horizon.ns > 0,
               "rate-based faults need a horizon or the simulator never drains");
  if (rec_ != nullptr) lane_ = rec_->add_lane("faults");
  sim_.install_faults(this);
  for (const auto& ev : plan_.schedule) {
    FP_CHECK_MSG(ev.at >= sim_.now(), "fault scheduled in the past");
    fixed_pending_.push_back(
        sim_.schedule_at(ev.at, [this, ev] { deliver(ev); }));
  }
  arm_rate(FaultKind::kWorkerCrash, plan_.worker_crash_rate_hz, crash_rng_);
  arm_rate(FaultKind::kDeviceError, plan_.device_error_rate_hz, device_rng_);
  arm_rate(FaultKind::kWanPartition, plan_.wan_partition_rate_hz, wan_rng_);
}

FaultInjector::~FaultInjector() {
  stop();
  if (sim_.faults() == this) sim_.install_faults(nullptr);
}

FaultInjector::SubscriptionId FaultInjector::subscribe(FaultKind kind,
                                                       std::string key,
                                                       Handler handler) {
  const SubscriptionId id = next_sub_++;
  subs_.emplace(id, Subscription{kind, std::move(key), std::move(handler)});
  return id;
}

void FaultInjector::unsubscribe(SubscriptionId id) { subs_.erase(id); }

void FaultInjector::stop() {
  stopped_ = true;
  for (const auto id : fixed_pending_) (void)sim_.cancel(id);
  fixed_pending_.clear();
  for (const auto& [kind, id] : rate_pending_) (void)sim_.cancel(id);
  rate_pending_.clear();
}

void FaultInjector::arm_rate(FaultKind kind, double rate_hz, util::Rng& rng) {
  if (rate_hz <= 0 || stopped_) return;
  const util::TimePoint next =
      sim_.now() + util::from_seconds(rng.exponential(1.0 / rate_hz));
  if (next > plan_.horizon) return;
  rate_pending_[kind] = sim_.schedule_at(next, [this, kind, rate_hz, &rng] {
    rate_pending_.erase(kind);
    FaultEvent ev;
    ev.at = sim_.now();
    ev.kind = kind;
    ev.salt = rng.next_u64();
    if (kind == FaultKind::kWanPartition) {
      ev.duration = util::from_seconds(
          rng.exponential(plan_.wan_partition_mean.seconds()));
    }
    deliver(std::move(ev));
    arm_rate(kind, rate_hz, rng);
  });
}

void FaultInjector::deliver(FaultEvent ev) {
  if (stopped_) return;
  const auto k = static_cast<std::size_t>(ev.kind);
  ++stats_.injected[k];

  // Resolve a rate event's victim first so the state updates below see the
  // concrete target. Handlers run on snapshots: they may (un)subscribe.
  std::vector<Handler> hit;
  if (ev.target.empty()) {
    std::vector<const Subscription*> eligible;
    for (const auto& [id, sub] : subs_) {
      if (sub.kind == ev.kind) eligible.push_back(&sub);
    }
    if (!eligible.empty()) {
      const Subscription& victim = *eligible[ev.salt % eligible.size()];
      ev.target = victim.key;
      hit.push_back(victim.handler);
    }
  } else {
    for (const auto& [id, sub] : subs_) {
      if (sub.kind == ev.kind && (sub.key.empty() || sub.key == ev.target)) {
        hit.push_back(sub.handler);
      }
    }
  }

  if (ev.kind == FaultKind::kMpsDaemonDeath && !ev.target.empty()) {
    mps_dead_.insert(ev.target);
  }
  if (ev.kind == FaultKind::kMigCreateFail) {
    ++armed_mig_failures_[ev.target];  // "" arms the next create anywhere
  }

  stats_.delivered[k] += hit.size();
  if (auto* tel = sim_.telemetry(); tel != nullptr && !hit.empty()) {
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: fault deliveries are rare
        // injected events, not per-task work
        .counter("faults_delivered_total",
                 {{"kind", fault_kind_name(ev.kind)}})
        .add(static_cast<double>(hit.size()));
    if (auto* fr = tel->flight()) {
      // A delivered fault is a post-mortem anchor: log it to the victim's
      // ring, then snapshot every ring as of this instant.
      const std::string label =
          std::string(fault_kind_name(ev.kind)) +
          (ev.target.empty() ? "" : ":" + ev.target);
      fr->record(ev.target.empty() ? "faults" : ev.target, "fault", label);
      fr->dump("fault:" + label);
    }
  }
  if (rec_ != nullptr) {
    rec_->record(lane_,
                 std::string(fault_kind_name(ev.kind)) +
                     (ev.target.empty() ? "" : ":" + ev.target),
                 "fault", sim_.now(), sim_.now());
  }
  for (const auto& h : hit) h(ev);
}

bool FaultInjector::take_mig_create_failure(const std::string& device_key) {
  auto it = armed_mig_failures_.find(device_key);
  if (it == armed_mig_failures_.end()) it = armed_mig_failures_.find("");
  const auto k = static_cast<std::size_t>(FaultKind::kMigCreateFail);
  if (it != armed_mig_failures_.end() && it->second > 0) {
    if (--it->second == 0) armed_mig_failures_.erase(it);
    ++stats_.delivered[k];
    return true;
  }
  if (plan_.mig_create_failure_prob > 0 &&
      mig_rng_.chance(plan_.mig_create_failure_prob)) {
    ++stats_.injected[k];
    ++stats_.delivered[k];
    return true;
  }
  return false;
}

void FaultInjector::note_degradation(const std::string& device_key,
                                     const std::string& from_mode,
                                     const std::string& to_mode,
                                     const std::string& reason) {
  degradations_.push_back(
      util::strf(device_key, ": ", from_mode, " -> ", to_mode,
                 reason.empty() ? "" : " (" + reason + ")"));
  if (auto* tel = sim_.telemetry()) {
    // faaspart-lint: allow(O1) -- cold path: a degradation is a headline
    // recovery event, a handful per chaos run
    tel->metrics().counter("degradations_total").add();
  }
  if (rec_ != nullptr) {
    rec_->record(lane_, util::strf("degrade:", device_key, ":", from_mode,
                                   "->", to_mode),
                 "degrade", sim_.now(), sim_.now());
  }
}

}  // namespace faaspart::faults
