// Seeded, policy-driven fault injection for the whole stack.
//
// A FaultPlan describes *what* goes wrong — a fixed schedule of FaultEvents
// plus Poisson rates for recurring ones — and a FaultInjector installed on a
// Simulator decides *when*, entirely inside virtual time, so every chaos run
// replays bit-for-bit from its seed. Consumers (gpu::Device, the executors,
// federation::Endpoint, core::Reconfigurer) subscribe by fault kind and a
// string key ("gpu:0", executor label, "endpoint:<name>"); a run without an
// injector costs a single null-pointer check per consult site.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace faaspart::faults {

enum class FaultKind {
  kWorkerCrash,     ///< one worker process dies (segfault/OOM-kill analogue)
  kDeviceError,     ///< fatal device error + reset: all in-flight kernels lost
  kMigCreateFail,   ///< the next MIG instance creation on the target fails
  kMpsDaemonDeath,  ///< MPS control daemon dies; non-MIG clients lose the GPU
  kWanPartition,    ///< a federated endpoint loses WAN connectivity for a while
};

inline constexpr std::size_t kFaultKindCount = 5;

/// "worker-crash", "device-error", ...
const char* fault_kind_name(FaultKind kind);

/// One concrete injected fault.
struct FaultEvent {
  util::TimePoint at{};  ///< delivery time (filled by the injector for rate events)
  FaultKind kind = FaultKind::kWorkerCrash;
  /// Subscription key this event targets; empty on a rate event until the
  /// injector picks a victim uniformly by `salt`.
  std::string target;
  /// Optional sub-target (e.g. worker index within an executor); -1 lets the
  /// receiver pick by `salt`.
  int index = -1;
  /// WAN partition length; zero means "use the plan's mean" (rate events) or
  /// the receiver's default (fixed events).
  util::Duration duration{};
  /// Per-event random value receivers use for victim selection, so delivery
  /// stays deterministic without threading an Rng through every consumer.
  std::uint64_t salt = 0;
};

/// What to inject over a run. The default-constructed plan is inert:
/// `enabled()` is false and no injector needs to be created at all.
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Faults at fixed virtual times, delivered to every subscriber whose key
  /// matches `target` (a subscriber with an empty key matches everything).
  std::vector<FaultEvent> schedule;

  // Poisson processes (events per simulated second); each picks one
  // subscriber of its kind uniformly at delivery time.
  double worker_crash_rate_hz = 0;
  double device_error_rate_hz = 0;
  double wan_partition_rate_hz = 0;
  util::Duration wan_partition_mean = util::seconds(5);

  /// Probability that any single MIG instance creation fails (consulted by
  /// Device::create_instance); fixed kMigCreateFail events arm a guaranteed
  /// failure for their target instead.
  double mig_create_failure_prob = 0;

  /// Rate processes stop at this virtual time. Required (> 0) when any rate
  /// is nonzero — an unbounded Poisson process would keep the event queue
  /// from ever draining.
  util::TimePoint horizon{};

  [[nodiscard]] bool enabled() const {
    return !schedule.empty() || worker_crash_rate_hz > 0 ||
           device_error_rate_hz > 0 || wan_partition_rate_hz > 0 ||
           mig_create_failure_prob > 0;
  }
};

/// Per-kind injected/delivered counters (copyable snapshot).
struct FaultStats {
  std::uint64_t injected[kFaultKindCount] = {};
  std::uint64_t delivered[kFaultKindCount] = {};
  [[nodiscard]] std::uint64_t injected_total() const {
    std::uint64_t n = 0;
    for (const auto v : injected) n += v;
    return n;
  }
};

class FaultInjector {
 public:
  using Handler = std::function<void(const FaultEvent&)>;
  using SubscriptionId = std::uint64_t;

  /// Installs itself on `sim` (one injector per simulator), schedules the
  /// plan's fixed events, and starts its rate processes. Passing a recorder
  /// adds a "faults" lane with a zero-length span per delivered fault.
  FaultInjector(sim::Simulator& sim, FaultPlan plan, trace::Recorder* rec = nullptr);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a handler for `kind`. An empty key receives every event of
  /// the kind; a non-empty key receives fixed events whose target matches
  /// and is eligible as a rate-event victim under that key.
  SubscriptionId subscribe(FaultKind kind, std::string key, Handler handler);
  /// Idempotent; unknown ids are ignored.
  void unsubscribe(SubscriptionId id);

  /// Cancels everything still pending (fixed and rate); delivered state
  /// (dead MPS daemons, armed MIG failures) is kept.
  void stop();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] FaultStats stats() const { return stats_; }

  /// False once a kMpsDaemonDeath hit `device_key` ("gpu:<index>") — the
  /// Reconfigurer uses this to pick between the MPS and timeshare fallbacks.
  [[nodiscard]] bool mps_available(const std::string& device_key) const {
    return mps_dead_.count(device_key) == 0;
  }

  /// Consulted by Device::create_instance: true when the creation must fail,
  /// consuming an armed kMigCreateFail for `device_key` (or an untargeted
  /// one) if present, else drawing against mig_create_failure_prob.
  bool take_mig_create_failure(const std::string& device_key);

  /// Records a graceful-degradation decision (Reconfigurer fallback) in the
  /// trace and the degradation log.
  void note_degradation(const std::string& device_key, const std::string& from_mode,
                        const std::string& to_mode, const std::string& reason);
  [[nodiscard]] const std::vector<std::string>& degradations() const {
    return degradations_;
  }

 private:
  struct Subscription {
    FaultKind kind;
    std::string key;
    Handler handler;
  };

  void deliver(FaultEvent ev);
  /// (Re)arms the Poisson process for `kind`; stops past the horizon.
  void arm_rate(FaultKind kind, double rate_hz, util::Rng& rng);

  sim::Simulator& sim_;
  FaultPlan plan_;
  trace::Recorder* rec_;
  trace::LaneId lane_ = 0;
  util::Rng mig_rng_;
  util::Rng crash_rng_;
  util::Rng device_rng_;
  util::Rng wan_rng_;
  std::map<SubscriptionId, Subscription> subs_;
  SubscriptionId next_sub_ = 1;
  std::vector<sim::Simulator::EventId> fixed_pending_;
  std::map<FaultKind, sim::Simulator::EventId> rate_pending_;
  FaultStats stats_;
  std::set<std::string> mps_dead_;
  std::map<std::string, int> armed_mig_failures_;
  std::vector<std::string> degradations_;
  bool stopped_ = false;
};

}  // namespace faaspart::faults
