// DataFlowKernel — Parsl's task orchestrator: app registry, routing by
// executor label, dependency handling and retries (Listing 1: retries=1).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "faas/app.hpp"
#include "faas/config.hpp"
#include "faas/executor.hpp"

namespace faaspart::faas {

class DataFlowKernel {
 public:
  DataFlowKernel(sim::Simulator& sim, Config cfg);

  /// Takes ownership; the executor's label routes submissions.
  void add_executor(std::unique_ptr<Executor> executor);

  [[nodiscard]] Executor& executor(const std::string& label);
  [[nodiscard]] const Executor& executor(const std::string& label) const;
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Submits an app to the labeled executor with DFK-level retries: on
  /// failure the task is resubmitted up to cfg.retries times; the returned
  /// future settles with the final outcome. The returned record is the
  /// logical task (tries counts attempts). An active `parent` context joins
  /// the task tree to an upstream trace (the federation request root), so a
  /// cluster request's story stays one connected tree across endpoints;
  /// default {} starts a fresh trace.
  AppHandle submit(AppDef app, const std::string& executor_label,
                   obs::TraceContext parent = {});

  /// Like submit, but waits for `deps` to succeed first. A failed dependency
  /// fails this task without consuming retries (dependency errors are not
  /// execution errors — mirrors Parsl).
  AppHandle submit_after(std::vector<sim::Future<AppValue>> deps, AppDef app,
                         const std::string& executor_label,
                         obs::TraceContext parent = {});

  /// Awaits every task submitted so far; does not throw on task failures
  /// (inspect records / counts instead).
  sim::Co<void> wait_all_settled();

  /// Drains and shuts down every executor.
  sim::Co<void> shutdown();

  [[nodiscard]] std::size_t tasks_submitted() const { return records_.size(); }
  [[nodiscard]] std::size_t tasks_failed() const;
  [[nodiscard]] std::size_t slo_misses() const;
  [[nodiscard]] std::size_t memo_hits() const { return memo_hits_; }
  void clear_memo() { memo_.clear(); }
  [[nodiscard]] const std::vector<std::shared_ptr<TaskRecord>>& records() const {
    return records_;
  }

 private:
  sim::Co<void> run_attempts(std::shared_ptr<const AppDef> app, Executor* ex,
                             sim::Promise<AppValue> outer,
                             std::shared_ptr<TaskRecord> logical,
                             std::vector<sim::Future<AppValue>> deps);
  /// Delay before the next resubmission given how many attempts failed.
  util::Duration backoff_delay(int failed_attempts);
  /// Resolves the per-task metric handles once (registry pointers are stable
  /// for the telemetry lifetime) — the submit/completion hot paths then cost
  /// a cached pointer use instead of a registry lookup per task.
  void resolve_task_metrics();

  sim::Simulator& sim_;
  Config cfg_;
  util::Rng backoff_rng_;
  std::map<std::string, std::unique_ptr<Executor>> executors_;
  /// (app name, memo key) → cached successful result (Parsl app caching).
  std::map<std::pair<std::string, std::string>, AppValue> memo_;
  std::size_t memo_hits_ = 0;
  std::vector<std::shared_ptr<TaskRecord>> records_;
  std::vector<sim::Future<AppValue>> futures_;
  std::uint64_t next_id_ = 1;
  // Cached per-task metric handles (see resolve_task_metrics()). All set
  // together; submits_counter_ == nullptr means telemetry is off.
  obs::Counter* submits_counter_ = nullptr;
  obs::Histogram* completion_hist_ = nullptr;
  obs::Histogram* queue_hist_ = nullptr;
  bool obs_metrics_resolved_ = false;
};

}  // namespace faaspart::faas
