#include "faas/dfk.hpp"

#include <algorithm>
#include <cmath>

#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::faas {

DataFlowKernel::DataFlowKernel(sim::Simulator& sim, Config cfg)
    : sim_(sim), cfg_(std::move(cfg)), backoff_rng_(cfg_.backoff.seed) {}

void DataFlowKernel::add_executor(std::unique_ptr<Executor> executor) {
  FP_CHECK(executor != nullptr);
  const std::string label = executor->label();
  const auto [it, inserted] = executors_.emplace(label, std::move(executor));
  if (!inserted) {
    throw util::ConfigError(util::strf("duplicate executor label '", label, "'"));
  }
}

Executor& DataFlowKernel::executor(const std::string& label) {
  const auto it = executors_.find(label);
  if (it == executors_.end()) {
    throw util::NotFoundError(util::strf("executor '", label, "'"));
  }
  return *it->second;
}

const Executor& DataFlowKernel::executor(const std::string& label) const {
  const auto it = executors_.find(label);
  if (it == executors_.end()) {
    throw util::NotFoundError(util::strf("executor '", label, "'"));
  }
  return *it->second;
}

AppHandle DataFlowKernel::submit(AppDef app, const std::string& executor_label,
                                 obs::TraceContext parent) {
  return submit_after({}, std::move(app), executor_label, parent);
}

AppHandle DataFlowKernel::submit_after(std::vector<sim::Future<AppValue>> deps,
                                       AppDef app,
                                       const std::string& executor_label,
                                       obs::TraceContext parent) {
  Executor* ex = &executor(executor_label);
  auto logical = std::make_shared<TaskRecord>();
  logical->id = next_id_++;
  logical->app = app.name;
  logical->executor = executor_label;
  logical->submitted = sim_.now();
  if (auto* tel = sim_.telemetry()) {
    if (!obs_metrics_resolved_) resolve_task_metrics();
    submits_counter_->add();
    if (auto* tracer = tel->tracer()) {
      // Root of the task's causal tree; every attempt/queue/cold/body/kernel
      // span downstream hangs off it. With an upstream parent (a federation
      // request root), the task tree attaches there instead of starting a
      // new trace.
      const auto trace = parent.active() ? parent.trace : tracer->begin_trace();
      const auto root = tracer->open_span(trace, parent.span, logical->app,
                                          "task", executor_label);
      logical->trace = obs::TraceContext{trace, root};
    }
  }
  sim::Promise<AppValue> outer(sim_);
  auto future = outer.future();
  records_.push_back(logical);
  futures_.push_back(future);
  sim_.spawn(run_attempts(std::make_shared<const AppDef>(std::move(app)), ex,
                          std::move(outer), logical, std::move(deps)),
             "dfk/task" + std::to_string(logical->id));
  return AppHandle{std::move(future), std::move(logical)};
}

sim::Co<void> DataFlowKernel::run_attempts(
    std::shared_ptr<const AppDef> app, Executor* ex,
    sim::Promise<AppValue> outer, std::shared_ptr<TaskRecord> logical,
    std::vector<sim::Future<AppValue>> deps) {
  auto* tel = sim_.telemetry();
  obs::Tracer* tracer =
      tel != nullptr && logical->trace.active() ? tel->tracer() : nullptr;
  const auto count = [tel](const char* name, double n = 1.0) {
    // faaspart-lint: allow(O1) -- cold path: only retry/walltime-kill/failure
    // bookkeeping goes through this helper, never the per-task happy path
    if (tel != nullptr) tel->metrics().counter(name).add(n);
  };
  const auto close_root = [&](const std::string& note) {
    if (tracer == nullptr) return;
    if (!note.empty()) tracer->annotate(logical->trace.span, note);
    tracer->close_span(logical->trace.span);
  };

  // Dependency stage: a failed parent fails this task immediately.
  for (auto& dep : deps) {
    try {
      (void)co_await dep;
    } catch (...) {
      logical->state = TaskRecord::State::kFailed;
      logical->finished = sim_.now();
      logical->error = "dependency failed";
      count("dfk_dependency_failures_total");
      close_root("dependency failed");
      outer.set_exception(std::make_exception_ptr(
          util::TaskFailedError(util::strf(app->name, ": dependency failed"))));
      co_return;
    }
  }

  // Memoization (Parsl app caching): a prior successful run with the same
  // (name, memo_key) answers instantly, consuming no executor capacity.
  if (!app->memo_key.empty()) {
    const auto it = memo_.find({app->name, app->memo_key});
    if (it != memo_.end()) {
      ++memo_hits_;
      logical->memoized = true;
      logical->tries = 0;
      logical->worker = "memo";
      logical->started = sim_.now();
      logical->finished = sim_.now();
      logical->state = TaskRecord::State::kDone;
      count("dfk_memo_hits_total");
      close_root("memo hit");
      outer.set_value(it->second);
      co_return;
    }
  }

  const int max_retries = app->retries >= 0 ? app->retries : cfg_.retries;
  for (int attempt = 0;; ++attempt) {
    std::uint64_t attempt_span = 0;
    if (tracer != nullptr) {
      attempt_span =
          tracer->open_span(logical->trace.trace, logical->trace.span,
                            app->name, "attempt", logical->executor, attempt + 1);
    }
    AppHandle h = ex->submit(app);
    // Safe to stamp after submit(): futures defer every wakeup through the
    // event queue, so the worker cannot have observed the record yet.
    h.record->trace = obs::TraceContext{logical->trace.trace, attempt_span};
    logical->tries = attempt + 1;
    try {
      AppValue v = co_await h.future;
      // Fold the successful attempt's observables into the logical record.
      logical->worker = h.record->worker;
      logical->started = h.record->started;
      logical->finished = h.record->finished;
      logical->cold_start = h.record->cold_start;
      logical->state = TaskRecord::State::kDone;
      logical->slo_miss = app->deadline.ns > 0 &&
                          logical->completion_time() > app->deadline;
      if (!app->memo_key.empty()) {
        memo_.emplace(std::make_pair(app->name, app->memo_key), v);
      }
      if (tracer != nullptr) tracer->close_span(attempt_span);
      if (completion_hist_ != nullptr) {
        completion_hist_->observe(logical->completion_time().seconds());
        queue_hist_->observe(logical->queue_time().seconds());
      }
      if (logical->slo_miss) {
        count("dfk_slo_misses_total");
        close_root("slo miss");
      } else {
        close_root("");
      }
      outer.set_value(std::move(v));
      co_return;
    } catch (const util::TaskTimeoutError& e) {
      // A walltime kill is final — retrying would only burn capacity
      // against the same deadline.
      logical->worker = h.record->worker;
      logical->finished = sim_.now();
      logical->state = TaskRecord::State::kFailed;
      logical->timed_out = true;
      logical->error = e.what();
      count("dfk_walltime_kills_total");
      if (tracer != nullptr) {
        tracer->annotate(attempt_span, e.what());
        tracer->close_span(attempt_span);
      }
      close_root("walltime kill");
      outer.set_exception(std::current_exception());
      co_return;
    } catch (const std::exception& e) {
      if (tracer != nullptr) {
        tracer->annotate(attempt_span, e.what());
        tracer->close_span(attempt_span);
      }
      if (attempt >= max_retries) {
        logical->worker = h.record->worker;
        logical->finished = sim_.now();
        logical->state = TaskRecord::State::kFailed;
        logical->error = e.what();
        count("dfk_failures_total");
        close_root(util::strf("failed after ", logical->tries, " attempts"));
        outer.set_exception(std::current_exception());
        co_return;
      }
      // Resubmit (Parsl logs and retries transparently) — the backoff pause
      // happens below, outside the handler (no co_await in a catch block).
      count("dfk_retries_total");
    }
    const util::Duration pause = backoff_delay(attempt + 1);
    if (pause.ns > 0) {
      logical->backoff_total += pause;
      count("dfk_backoff_seconds_total", pause.seconds());
      std::uint64_t backoff_span = 0;
      if (tracer != nullptr) {
        backoff_span =
            tracer->open_span(logical->trace.trace, logical->trace.span,
                              app->name, "backoff", "", attempt + 1);
      }
      co_await sim_.delay(pause);
      if (tracer != nullptr) tracer->close_span(backoff_span);
    }
  }
}

util::Duration DataFlowKernel::backoff_delay(int failed_attempts) {
  const RetryBackoff& b = cfg_.backoff;
  if (b.base.ns <= 0) return util::Duration{};
  double ns = static_cast<double>(b.base.ns) *
              std::pow(b.multiplier, failed_attempts - 1);
  ns = std::min(ns, static_cast<double>(b.cap.ns));
  if (b.jitter > 0) {
    ns *= 1.0 + b.jitter * backoff_rng_.next_double();
    ns = std::min(ns, static_cast<double>(b.cap.ns));
  }
  return util::Duration{static_cast<std::int64_t>(ns)};
}

void DataFlowKernel::resolve_task_metrics() {
  auto* tel = sim_.telemetry();
  if (tel == nullptr) return;  // don't latch — telemetry may install later
  obs_metrics_resolved_ = true;
  auto& m = tel->metrics();
  submits_counter_ = &m.counter("dfk_submits_total");
  completion_hist_ = &m.histogram("dfk_completion_seconds");
  queue_hist_ = &m.histogram("dfk_queue_seconds");
}

sim::Co<void> DataFlowKernel::wait_all_settled() {
  // New tasks may be submitted while we wait (workflows submit from task
  // callbacks), so loop until the snapshot stops growing.
  std::size_t waited = 0;
  while (waited < futures_.size()) {
    const auto f = futures_[waited];
    ++waited;
    try {
      (void)co_await f;
    } catch (...) {
      // Failures are reflected in the records; settling is all we need.
    }
  }
}

sim::Co<void> DataFlowKernel::shutdown() {
  co_await wait_all_settled();
  for (auto& [label, ex] : executors_) {
    co_await ex->shutdown();
  }
}

std::size_t DataFlowKernel::tasks_failed() const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r->state == TaskRecord::State::kFailed) ++n;
  }
  return n;
}

std::size_t DataFlowKernel::slo_misses() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += r->slo_miss ? 1 : 0;
  return n;
}

}  // namespace faaspart::faas
