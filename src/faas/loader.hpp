// ModelLoader — how app model weights get into device memory.
//
// DirectLoader reproduces the stock behaviour the paper measures in §6:
// every worker (re)start re-uploads the model at the device's effective
// load rate (~10 s for LLaMa-2 13B). The core module's WeightCache plugs in
// here to implement the §7 future-work optimization: weights survive worker
// restarts in a device-resident cache and re-attachment is nearly free.
#pragma once

#include "faas/app.hpp"
#include "gpu/device.hpp"
#include "sim/co.hpp"

namespace faaspart::faas {

class ModelLoader {
 public:
  virtual ~ModelLoader() = default;

  /// Makes `app`'s weights available to `ctx` on `dev`, charging whatever
  /// virtual time the strategy costs and allocating device memory as
  /// needed. Called once per (worker incarnation, app with model_bytes > 0).
  virtual sim::Co<void> load(gpu::Device& dev, gpu::ContextId ctx,
                             const AppDef& app) = 0;

  /// Notification that a worker context was destroyed (restart/shutdown);
  /// lets caching strategies keep or drop their device-side state.
  virtual void on_context_destroyed(gpu::Device& dev, gpu::ContextId ctx) {
    (void)dev;
    (void)ctx;
  }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Stock path: allocate in the worker's context and pay the full upload.
class DirectLoader final : public ModelLoader {
 public:
  sim::Co<void> load(gpu::Device& dev, gpu::ContextId ctx,
                     const AppDef& app) override;
  [[nodiscard]] const char* name() const override { return "direct"; }
};

}  // namespace faaspart::faas
