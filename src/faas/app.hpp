// Apps and task records — the faaspart analogue of Parsl's decorated Python
// functions ("apps") and task table.
//
// An app is a named coroutine body plus a cold-start profile. The §6
// decomposition of GPU cold starts maps directly onto AppDef fields:
//   (1) function initialization (download, decompress, import)
//         → AppDef::function_init, paid once per (worker, app);
//   (2) GPU context initialization
//         → GpuArchSpec::context_create, paid when the worker starts;
//   (3) application loading (model into video memory)
//         → AppDef::model_bytes via the ModelLoader, paid per worker unless
//           a weight cache (core module) already holds the model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>

#include "gpu/device.hpp"
#include "obs/context.hpp"
#include "sim/co.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace faaspart::faas {

/// Value an app returns (Parsl apps return arbitrary Python objects; the
/// workloads in this reproduction return nothing, a number, or a string).
using AppValue = std::variant<std::monostate, double, std::string>;

/// Execution-time environment handed to an app body.
class TaskContext {
 public:
  TaskContext(sim::Simulator& sim, util::Rng& rng, std::string worker_name,
              int cpu_cores, gpu::Device* device, gpu::ContextId gpu_ctx,
              obs::TraceContext trace = {})
      : sim_(sim),
        rng_(rng),
        worker_name_(std::move(worker_name)),
        cpu_cores_(cpu_cores),
        device_(device),
        gpu_ctx_(gpu_ctx),
        trace_(trace) {}

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }
  [[nodiscard]] const std::string& worker_name() const { return worker_name_; }
  [[nodiscard]] int cpu_cores() const { return cpu_cores_; }

  [[nodiscard]] bool has_accelerator() const { return device_ != nullptr; }
  /// The worker's device; throws util::StateError on a CPU-only worker.
  [[nodiscard]] gpu::Device& device();
  [[nodiscard]] gpu::ContextId gpu_context() const { return gpu_ctx_; }
  /// SMs this task may occupy (the partition the executor configured).
  [[nodiscard]] int sm_cap() const;

  /// Causal trace position of the attempt body; kernels launched through
  /// this context become its children.
  [[nodiscard]] obs::TraceContext trace() const { return trace_; }

  /// Launches a kernel on the worker's GPU context.
  sim::Future<> launch(gpu::KernelDesc kernel);

  /// Occupies the worker's CPU for `d` of virtual time (quantum-chemistry
  /// simulation steps, tokenization, ...).
  [[nodiscard]] sim::DelayAwaiter compute(util::Duration d) { return sim_.delay(d); }

 private:
  sim::Simulator& sim_;
  util::Rng& rng_;
  std::string worker_name_;
  int cpu_cores_;
  gpu::Device* device_;
  gpu::ContextId gpu_ctx_;
  obs::TraceContext trace_;
};

using AppBody = std::function<sim::Co<AppValue>(TaskContext&)>;

/// A registered function.
struct AppDef {
  std::string name;
  AppBody body;

  /// Cold-start cost (1): environment download/decompress/import, charged
  /// the first time this app runs on a given worker.
  util::Duration function_init{};

  /// Cold-start cost (3): model weights uploaded to device memory the first
  /// time the app runs on a worker (0 = no model). The effective rate is the
  /// device's model_load_bw (§6: ~10 s for LLaMa-2 13B).
  util::Bytes model_bytes = 0;

  /// Cache key for the weight cache; apps sharing a key share weights.
  /// Defaults to `name` when empty.
  std::string model_key;

  /// Scheduling class: higher-priority tasks leave the interchange first
  /// (FIFO within a class). Running tasks are never preempted.
  int priority = 0;

  /// Memoization key (Parsl's app caching): when non-empty, the
  /// DataFlowKernel returns the cached result of a previous *successful*
  /// execution with the same (name, memo_key) instead of re-running.
  std::string memo_key;

  /// Completion-time SLO measured from submission; 0 = none. A task that
  /// finishes later has TaskRecord::slo_miss set (it still succeeds).
  util::Duration deadline{};

  /// Per-attempt walltime limit; 0 = none. An attempt that exceeds it is
  /// killed: its in-flight kernels abort, the worker process dies (respawned
  /// cold, freeing the attempt's device allocations), and the task fails
  /// with util::TaskTimeoutError — which the DataFlowKernel treats as final.
  util::Duration timeout{};

  /// Per-app override of Config::retries; negative inherits the DFK config.
  int retries = -1;

  [[nodiscard]] const std::string& effective_model_key() const {
    return model_key.empty() ? name : model_key;
  }
};

/// Observable lifecycle of one submitted task.
struct TaskRecord {
  enum class State { kPending, kRunning, kDone, kFailed };

  std::uint64_t id = 0;
  std::string app;
  std::string executor;
  std::string worker;
  State state = State::kPending;
  util::TimePoint submitted{};
  util::TimePoint started{};   ///< body start (after cold-start charges)
  util::TimePoint finished{};
  util::Duration cold_start{}; ///< total cold-start overhead before the body
  int tries = 0;
  util::Duration backoff_total{};  ///< DFK retry backoff waited between attempts
  bool slo_miss = false;  ///< finished after the app's deadline
  bool memoized = false;  ///< served from the DataFlowKernel's memo table
  bool timed_out = false;  ///< killed by the per-attempt walltime limit
  std::string error;

  /// Causal trace position (obs layer). On a logical (DFK) record this is
  /// the root "task" span; on an executor attempt record it is the attempt
  /// span the executor parents its queue/cold/body spans under. Inactive
  /// (all zero) when telemetry is off.
  obs::TraceContext trace{};

  [[nodiscard]] util::Duration queue_time() const { return started - submitted - cold_start; }
  [[nodiscard]] util::Duration run_time() const { return finished - started; }
  [[nodiscard]] util::Duration completion_time() const { return finished - submitted; }
};

/// What submit() hands back: the value future plus the live task record.
struct AppHandle {
  sim::Future<AppValue> future;
  std::shared_ptr<TaskRecord> record;
};

}  // namespace faaspart::faas
