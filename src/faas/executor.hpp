// Executors — the pilot-job runtime that hosts workers and runs tasks.
//
// HighThroughputExecutor mirrors Parsl's architecture (§2.2.1): submitted
// tasks land in a central queue (the "interchange"), a dispatcher hands them
// to idle workers, and each worker is a long-lived process pinned to CPU
// cores and (optionally) one accelerator entry from the configuration.
//
// Worker ↔ accelerator binding follows the paper's extension: one worker per
// `available_accelerators` entry; the entry's GPU percentage (Listing 2) or
// MIG UUID (Listing 3) is fixed in the worker's environment before the
// process starts, so changing it requires a worker restart (§6) — exposed
// here as restart_worker(), which core::Reconfigurer uses and which charges
// the full process-respawn + context-init + model-reload path.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "faas/app.hpp"
#include "faas/loader.hpp"
#include "faas/provider.hpp"
#include "gpu/device.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"

namespace faaspart::obs {
class Counter;
class Histogram;
}  // namespace faaspart::obs

namespace faaspart::faas {

/// Resolved accelerator assignment for one worker slot (produced from the
/// config strings by core::GpuPartitioner).
struct WorkerBinding {
  gpu::Device* device = nullptr;
  gpu::ContextOptions ctx_opts;
  std::string accelerator;  ///< original reference string, for labels
};

class Executor {
 public:
  virtual ~Executor() = default;
  [[nodiscard]] virtual const std::string& label() const = 0;
  virtual AppHandle submit(std::shared_ptr<const AppDef> app) = 0;
  /// Drains queued/running tasks, then stops workers.
  virtual sim::Co<void> shutdown() = 0;
  [[nodiscard]] virtual std::size_t outstanding() const = 0;
};

class HighThroughputExecutor final : public Executor {
 public:
  struct Options {
    std::string label = "htex";
    /// CPU-only worker count, used when `bindings` is empty (Listing 1's
    /// max_workers).
    int cpu_workers = 1;
    int cpu_cores_per_worker = 1;
    /// One worker per binding (GPU executors).
    std::vector<WorkerBinding> bindings;
    std::uint64_t seed = 1;
  };

  /// Per-worker observable state.
  struct WorkerInfo {
    std::string name;
    std::string accelerator;   ///< empty for CPU workers
    bool alive = false;
    bool busy = false;
    bool retired = false;
    int restarts = 0;
    int crashes = 0;           ///< injected process deaths (fault layer)
    std::uint64_t tasks_done = 0;
    gpu::ContextId gpu_ctx = 0;  ///< 0 when no context is live
  };

  HighThroughputExecutor(sim::Simulator& sim, ExecutionProvider& provider,
                         Options opts, ModelLoader* loader = nullptr,
                         trace::Recorder* rec = nullptr);
  ~HighThroughputExecutor() override;

  /// Spawns the dispatcher and the worker processes. Idempotent guards: a
  /// second call throws util::StateError.
  void start();

  AppHandle submit(std::shared_ptr<const AppDef> app) override;
  sim::Co<void> shutdown() override;

  /// Restarts one worker, optionally with new context options (a new MPS
  /// percentage or MIG target) — the §6 reallocation path. The returned
  /// future completes when the worker is back up; the restart drains the
  /// worker's in-flight task first and wipes its warm state (function init
  /// and loaded models are re-charged).
  sim::Future<> restart_worker(std::size_t index,
                               std::optional<gpu::ContextOptions> new_opts);

  /// Tears the worker's process/context down and leaves it parked (it keeps
  /// accepting mail but runs nothing). Used by MIG re-layout, which needs
  /// *every* context off the device before the GPU reset; follow with
  /// restart_worker() to bring the worker back. Queued tasks for a parked
  /// worker wait in its inbox.
  sim::Future<> park_worker(std::size_t index);

  /// Scale-out: adds a worker at runtime (CPU-only when `binding` is empty).
  /// If the executor is already started, the worker boots immediately.
  /// Returns the new worker's index.
  std::size_t add_worker(std::optional<WorkerBinding> binding = std::nullopt);

  /// Scale-in: permanently retires a worker. It finishes any in-flight
  /// task, tears down its process/context and releases its CPU cores; work
  /// already assigned but not started bounces back through the dispatcher.
  /// The future completes when the worker is down.
  sim::Future<> retire_worker(std::size_t index);

  /// Workers that are not retired (the elastic controller's denominator).
  [[nodiscard]] std::size_t active_worker_count() const;

  /// Failure injection: the worker process dies at its next task boundary —
  /// the in-flight (or next) task's result is lost (the task fails with
  /// util::TaskFailedError) and the worker respawns cold (context recreated,
  /// function inits and model loads re-charged). Mirrors a worker crash
  /// whose result never reaches the interchange; DFK retries then re-execute
  /// elsewhere/again.
  void inject_worker_crash(std::size_t index);

  [[nodiscard]] const std::string& label() const override { return opts_.label; }
  [[nodiscard]] std::size_t outstanding() const override { return outstanding_; }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] WorkerInfo worker_info(std::size_t index) const;
  [[nodiscard]] std::size_t queue_depth() const { return central_.size(); }
  [[nodiscard]] std::uint64_t tasks_completed() const { return tasks_completed_; }
  /// Worker-process deaths delivered by the fault layer (crash_worker_now).
  [[nodiscard]] std::uint64_t crashes_injected() const { return crashes_injected_; }

 private:
  struct QueuedTask {
    std::shared_ptr<const AppDef> app;
    sim::Promise<AppValue> promise;
    std::shared_ptr<TaskRecord> record;
  };

  struct Msg {
    enum class Kind { kTask, kRestart, kPark, kStop } kind = Kind::kTask;
    QueuedTask task;                                // kTask
    std::optional<gpu::ContextOptions> new_opts;    // kRestart
    sim::Promise<> ack;                             // kRestart / kStop
  };

  struct Worker {
    std::string name;
    std::optional<WorkerBinding> binding;
    gpu::ContextId ctx = 0;
    bool ctx_live = false;
    bool alive = false;
    bool busy = false;
    bool retired = false;
    bool crash_pending = false;
    int restarts = 0;
    int crashes = 0;
    std::uint64_t tasks_done = 0;
    std::set<std::string> inited_apps;
    std::set<std::string> loaded_models;
    std::unique_ptr<sim::Mailbox<Msg>> inbox;
    util::Rng rng{0};
    trace::LaneId lane = 0;
  };

  std::size_t create_worker(std::optional<WorkerBinding> binding);
  sim::Co<void> dispatcher_main();
  sim::Co<void> worker_main(std::size_t index);
  sim::Co<void> worker_boot(Worker& w);
  void worker_teardown(Worker& w);
  sim::Co<void> run_task(Worker& w, QueuedTask task);
  /// Causal tracing: records the queue and cold-start intervals as closed
  /// spans under the attempt span and opens the "body" span whose id the
  /// TaskContext carries into kernel launches. Returns 0 when telemetry or
  /// tracing is off.
  std::uint64_t open_body_trace(const Worker& w, const AppDef& app,
                                const TaskRecord& rec, util::TimePoint t0);
  void close_body_trace(std::uint64_t span, const std::string& note);
  /// Per-task counters/histograms, driven off the settled TaskRecord.
  void note_task_metrics(const TaskRecord& rec);
  /// Resolves the per-task metric handles once (registry pointers are stable
  /// for the telemetry lifetime), so the submit/settle paths cost a cached
  /// pointer increment instead of a string-keyed registry lookup per task.
  void resolve_task_metrics();
  /// The walltime-bounded half of run_task: cold starts + body, settling
  /// `outcome` unless the deadline timer beat it to it.
  sim::Co<void> attempt_body(Worker& w, std::shared_ptr<const AppDef> app,
                             std::shared_ptr<TaskRecord> record,
                             util::TimePoint t0, sim::Promise<AppValue> outcome,
                             sim::Promise<> attempt_done);
  void note_task_settled();
  /// Registers fault-layer handlers (worker crashes, device errors, MPS
  /// daemon death); no-op when the simulator has no injector.
  void subscribe_faults();
  /// Kills worker `index` now: a busy (or about-to-be-busy) process loses
  /// its in-flight task (crash_pending), an idle one respawns cold
  /// immediately. Unlike inject_worker_crash(), this models the moment of
  /// death rather than arming the next task boundary.
  void crash_worker_now(std::size_t index);

  sim::Simulator& sim_;
  ExecutionProvider& provider_;
  Options opts_;
  ModelLoader* loader_;          // may be null → owned default DirectLoader
  std::unique_ptr<ModelLoader> default_loader_;
  trace::Recorder* rec_;

  sim::PriorityMailbox<QueuedTask> central_;
  sim::Mailbox<std::size_t> idle_;
  std::vector<std::unique_ptr<Worker>> workers_;
  util::Rng seeder_{1};

  bool started_ = false;
  bool stopping_ = false;
  std::size_t outstanding_ = 0;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t crashes_injected_ = 0;
  std::uint64_t next_task_id_ = 1;
  sim::Gate drained_;
  std::vector<std::uint64_t> fault_subs_;
  /// Interchange queue-depth source in the telemetry sampler (kNoSource-style
  /// sentinel when telemetry is off).
  std::size_t obs_queue_source_ = static_cast<std::size_t>(-1);
  // Cached per-task metric handles (see resolve_task_metrics()). All set
  // together; attempts_counter_ == nullptr means telemetry is off.
  obs::Counter* attempts_counter_ = nullptr;
  obs::Counter* tasks_done_counter_ = nullptr;
  obs::Counter* tasks_failed_counter_ = nullptr;
  obs::Histogram* run_seconds_hist_ = nullptr;
  obs::Counter* cold_starts_counter_ = nullptr;
  obs::Counter* cold_start_seconds_counter_ = nullptr;
  bool obs_metrics_resolved_ = false;
};

/// Parsl also exposes Python's ThreadPoolExecutor for lightweight CPU tasks;
/// this analogue runs up to `max_threads` bodies concurrently with no
/// process cold start and no accelerator access.
class ThreadPoolExecutor final : public Executor {
 public:
  ThreadPoolExecutor(sim::Simulator& sim, std::string label, int max_threads,
                     std::uint64_t seed = 1);

  AppHandle submit(std::shared_ptr<const AppDef> app) override;
  sim::Co<void> shutdown() override;
  [[nodiscard]] const std::string& label() const override { return label_; }
  [[nodiscard]] std::size_t outstanding() const override { return outstanding_; }

 private:
  sim::Co<void> run_one(std::shared_ptr<const AppDef> app,
                        sim::Promise<AppValue> promise,
                        std::shared_ptr<TaskRecord> record);

  sim::Simulator& sim_;
  std::string label_;
  sim::Resource threads_;
  util::Rng rng_;
  std::size_t outstanding_ = 0;
  std::uint64_t next_task_id_ = 1;
  sim::Gate drained_;
  bool stopping_ = false;
};

}  // namespace faaspart::faas
