// Execution providers — where worker processes come from.
//
// The paper's testbed uses Parsl's LocalProvider (§2.2.1): workers are
// processes on the local node. LocalProvider models the node's CPU core
// pool (24 Xeon cores in §5.1) and the cost of spawning a Python worker.
#pragma once

#include <string>

#include "sim/sync.hpp"
#include "util/units.hpp"

namespace faaspart::faas {

class ExecutionProvider {
 public:
  virtual ~ExecutionProvider() = default;

  /// Shared CPU core pool workers pin cores from.
  [[nodiscard]] virtual sim::Resource& cpu_cores() = 0;

  /// Cost of spawning one worker process (fork + interpreter + imports).
  [[nodiscard]] virtual util::Duration worker_launch_cost() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

class LocalProvider final : public ExecutionProvider {
 public:
  LocalProvider(sim::Simulator& sim, int cores,
                util::Duration launch_cost = util::milliseconds(750))
      : cores_(sim, cores, "cpu-cores"), launch_cost_(launch_cost) {}

  [[nodiscard]] sim::Resource& cpu_cores() override { return cores_; }
  [[nodiscard]] util::Duration worker_launch_cost() const override { return launch_cost_; }
  [[nodiscard]] std::string name() const override { return "local"; }

 private:
  sim::Resource cores_;
  util::Duration launch_cost_;
};

}  // namespace faaspart::faas
