// Configuration structs mirroring the paper's Parsl listings.
//
// Listing 1 (baseline): a CPU executor with max_workers, and a GPU executor
// with available_accelerators.
// Listing 2 (this paper's extension): available_accelerators may repeat a
// GPU id, and a parallel gpu_percentages list gives each worker slot its
// CUDA_MPS_ACTIVE_THREAD_PERCENTAGE.
// Listing 3: available_accelerators holds MIG instance UUIDs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace faaspart::faas {

struct HtexConfig {
  std::string label;
  std::string address = "localhost";

  /// CPU worker count when no accelerators are listed; ignored otherwise
  /// (one worker is deployed per accelerator entry, as Parsl does).
  int max_workers = 1;

  /// GPU indices ("0", "1", "cuda:0") or MIG UUIDs ("MIG-..."); entries may
  /// repeat a device to multiplex it (Listing 2).
  std::vector<std::string> available_accelerators;

  /// Parallel to available_accelerators: the GPU percentage for each worker
  /// slot (our MPS extension, §4.1). Empty = no caps. Values in (0, 100].
  std::vector<int> gpu_percentages;

  /// CPU cores pinned per worker.
  int cpu_cores_per_worker = 1;
};

/// Exponential backoff between DFK retry attempts (the analogue of Parsl's
/// retry_handler). The n-th resubmission (n = failed attempts so far, from 1)
/// waits min(cap, base * multiplier^(n-1)), optionally stretched by a
/// uniform jitter draw and clamped to cap again. base = 0 keeps the default
/// behaviour: immediate resubmission, no rng draws.
struct RetryBackoff {
  util::Duration base{};
  double multiplier = 2.0;
  util::Duration cap = util::seconds(60);
  double jitter = 0.0;  ///< delay *= 1 + jitter * U[0,1)
  std::uint64_t seed = 7;
};

struct Config {
  std::string run_dir = "runinfo";
  /// DataFlowKernel resubmission count on task failure (Listing 1: retries=1).
  int retries = 0;
  std::vector<HtexConfig> executors;
  RetryBackoff backoff;
};

}  // namespace faaspart::faas
