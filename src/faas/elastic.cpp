#include "faas/elastic.hpp"

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace faaspart::faas {

ElasticController::ElasticController(sim::Simulator& sim,
                                     HighThroughputExecutor& executor,
                                     ElasticOptions opts)
    : sim_(sim), executor_(executor), opts_(opts) {
  FP_CHECK_MSG(opts_.min_workers >= 1, "min_workers must be >= 1");
  FP_CHECK_MSG(opts_.max_workers >= opts_.min_workers,
               "max_workers below min_workers");
  FP_CHECK_MSG(opts_.interval.ns > 0, "control interval must be positive");
}

std::size_t ElasticController::busy_workers() const {
  std::size_t busy = 0;
  for (std::size_t i = 0; i < executor_.worker_count(); ++i) {
    const auto info = executor_.worker_info(i);
    if (!info.retired && info.busy) ++busy;
  }
  return busy;
}

std::size_t ElasticController::pick_idle_worker() const {
  for (std::size_t i = executor_.worker_count(); i-- > 0;) {
    const auto info = executor_.worker_info(i);
    if (!info.retired && info.alive && !info.busy) return i;
  }
  return static_cast<std::size_t>(-1);
}

double ElasticController::queue_signal(std::size_t instantaneous) const {
  if (opts_.smooth_samples <= 0) return static_cast<double>(instantaneous);
  auto* tel = sim_.telemetry();
  if (tel == nullptr) return static_cast<double>(instantaneous);
  const auto smoothed = tel->sampler().recent_queue_depth(
      "queue:" + executor_.label(),
      static_cast<std::size_t>(opts_.smooth_samples));
  return smoothed.value_or(static_cast<double>(instantaneous));
}

sim::Co<void> ElasticController::run(util::TimePoint deadline) {
  auto* tel = sim_.telemetry();
  const auto count = [this, tel](const char* name) {
    if (tel != nullptr) {
      tel->metrics()
          // faaspart-lint: allow(O1) -- cold path: scaling decisions fire
          // once per poll interval, not per task
          .counter(name, {{"executor", executor_.label()}})
          .add();
    }
  };
  while (sim_.now() + opts_.interval <= deadline) {
    co_await sim_.delay(opts_.interval);

    const auto active = executor_.active_worker_count();
    const auto queued = executor_.queue_depth();
    const auto busy = busy_workers();

    if (queue_signal(queued) >
            opts_.scale_out_queue_per_worker * static_cast<double>(active) &&
        static_cast<int>(active) < opts_.max_workers) {
      (void)executor_.add_worker();
      ++scale_outs_;
      count("autoscale_scale_outs_total");
      continue;
    }

    if (queued == 0 &&
        static_cast<int>(active) > opts_.min_workers &&
        active - busy >= static_cast<std::size_t>(opts_.scale_in_idle_threshold)) {
      const std::size_t victim = pick_idle_worker();
      if (victim != static_cast<std::size_t>(-1)) {
        (void)executor_.retire_worker(victim);
        ++scale_ins_;
        count("autoscale_scale_ins_total");
      }
    }
  }
}

}  // namespace faaspart::faas
