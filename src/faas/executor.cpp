#include "faas/executor.hpp"

#include <set>

#include "faults/faults.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace faaspart::faas {

namespace {

/// The tracer iff telemetry is installed, tracing is on, and the record is
/// part of a trace — the single gate every causal-span site goes through.
obs::Tracer* tracer_for(sim::Simulator& sim, const TaskRecord& rec) {
  if (!rec.trace.active()) return nullptr;
  auto* tel = sim.telemetry();
  return tel != nullptr ? tel->tracer() : nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// TaskContext (declared in app.hpp; implemented here to keep app.hpp light)
// ---------------------------------------------------------------------------

gpu::Device& TaskContext::device() {
  if (device_ == nullptr) {
    throw util::StateError(util::strf("worker '", worker_name_,
                                      "' has no accelerator binding"));
  }
  return *device_;
}

int TaskContext::sm_cap() const {
  if (device_ == nullptr) return 0;
  return device_->context(gpu_ctx_).sm_cap();
}

sim::Future<> TaskContext::launch(gpu::KernelDesc kernel) {
  obs::Tracer* tracer = nullptr;
  if (trace_.active()) {
    if (auto* tel = sim_.telemetry()) tracer = tel->tracer();
  }
  if (tracer == nullptr) return device().launch(gpu_ctx_, std::move(kernel));
  const auto span = tracer->open_span(trace_.trace, trace_.span, kernel.name,
                                      "kernel", worker_name_);
  auto fut = device().launch(gpu_ctx_, std::move(kernel));
  fut.on_ready([tracer, span, fut] {
    if (fut.error() != nullptr) tracer->annotate(span, "aborted");
    tracer->close_span(span);
  });
  return fut;
}

// ---------------------------------------------------------------------------
// HighThroughputExecutor
// ---------------------------------------------------------------------------

HighThroughputExecutor::HighThroughputExecutor(sim::Simulator& sim,
                                               ExecutionProvider& provider,
                                               Options opts, ModelLoader* loader,
                                               trace::Recorder* rec)
    : sim_(sim),
      provider_(provider),
      opts_(std::move(opts)),
      loader_(loader),
      rec_(rec),
      central_(sim),
      idle_(sim),
      drained_(sim) {
  if (loader_ == nullptr) {
    default_loader_ = std::make_unique<DirectLoader>();
    loader_ = default_loader_.get();
  }
  seeder_ = util::Rng(opts_.seed);

  if (!opts_.bindings.empty()) {
    // GPU executor: one worker per accelerator entry (Parsl's pinning).
    for (auto& binding : opts_.bindings) (void)create_worker(binding);
  } else {
    FP_CHECK_MSG(opts_.cpu_workers >= 1, "executor needs at least one worker");
    for (int i = 0; i < opts_.cpu_workers; ++i) (void)create_worker(std::nullopt);
  }

  if (auto* tel = sim_.telemetry()) {
    obs::UtilizationSampler::Probes probes;
    probes.queue_depth = [this] {
      return static_cast<double>(central_.size());
    };
    obs_queue_source_ =
        tel->sampler().add_source("queue:" + opts_.label, std::move(probes));
  }
}

std::size_t HighThroughputExecutor::create_worker(
    std::optional<WorkerBinding> binding) {
  const std::size_t index = workers_.size();
  auto w = std::make_unique<Worker>();
  w->name = util::strf(opts_.label, "/worker", index);
  if (binding.has_value() && !binding->accelerator.empty()) {
    w->name += "@" + binding->accelerator;
  }
  w->binding = std::move(binding);
  w->inbox = std::make_unique<sim::Mailbox<Msg>>(sim_);
  w->rng = seeder_.fork();
  if (rec_ != nullptr) w->lane = rec_->add_lane(w->name);
  workers_.push_back(std::move(w));
  return index;
}

std::size_t HighThroughputExecutor::add_worker(
    std::optional<WorkerBinding> binding) {
  if (stopping_) throw util::StateError("executor is shutting down");
  const std::size_t index = create_worker(std::move(binding));
  if (started_) sim_.spawn(worker_main(index), workers_[index]->name);
  return index;
}

sim::Future<> HighThroughputExecutor::retire_worker(std::size_t index) {
  FP_CHECK_MSG(index < workers_.size(), "worker index out of range");
  FP_CHECK_MSG(started_, "executor not started");
  Worker& w = *workers_[index];
  FP_CHECK_MSG(!w.retired, "worker already retired");
  FP_CHECK_MSG(active_worker_count() > 1,
               "cannot retire the executor's last worker");
  w.retired = true;  // dispatcher drops this worker's stale idle tokens
  sim::Promise<> ack(sim_);
  Msg m;
  m.kind = Msg::Kind::kStop;
  m.ack = ack;
  w.inbox->put(std::move(m));
  return ack.future();
}

std::size_t HighThroughputExecutor::active_worker_count() const {
  std::size_t n = 0;
  for (const auto& w : workers_) n += w->retired ? 0 : 1;
  return n;
}

HighThroughputExecutor::~HighThroughputExecutor() {
  if (auto* fi = sim_.faults()) {
    for (const auto id : fault_subs_) fi->unsubscribe(id);
  }
  if (auto* tel = sim_.telemetry()) {
    tel->sampler().detach(obs_queue_source_);
  }
}

void HighThroughputExecutor::start() {
  if (started_) throw util::StateError("executor '" + opts_.label + "' already started");
  started_ = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    sim_.spawn(worker_main(i), workers_[i]->name);
  }
  sim_.spawn(dispatcher_main(), opts_.label + "/interchange");
  subscribe_faults();
}

void HighThroughputExecutor::subscribe_faults() {
  auto* fi = sim_.faults();
  if (fi == nullptr) return;
  fault_subs_.push_back(fi->subscribe(
      faults::FaultKind::kWorkerCrash, opts_.label,
      [this](const faults::FaultEvent& ev) {
        // An explicit worker index wins; otherwise the event's salt picks
        // uniformly among non-retired workers.
        if (ev.index >= 0) {
          if (static_cast<std::size_t>(ev.index) < workers_.size()) {
            crash_worker_now(static_cast<std::size_t>(ev.index));
          }
          return;
        }
        std::vector<std::size_t> eligible;
        for (std::size_t i = 0; i < workers_.size(); ++i) {
          if (!workers_[i]->retired) eligible.push_back(i);
        }
        if (eligible.empty()) return;
        crash_worker_now(eligible[ev.salt % eligible.size()]);
      }));
  // Device-level faults kill every worker process bound to the device (a
  // reset destroys their contexts); MPS daemon death spares MIG-bound
  // workers — instances do not go through the control daemon.
  std::set<gpu::Device*> devices;
  for (const auto& w : workers_) {
    if (w->binding.has_value() && w->binding->device != nullptr) {
      devices.insert(w->binding->device);
    }
  }
  for (gpu::Device* dev : devices) {
    const std::string key = util::strf("gpu:", dev->index());
    fault_subs_.push_back(fi->subscribe(
        faults::FaultKind::kDeviceError, key,
        [this, dev](const faults::FaultEvent&) {
          for (std::size_t i = 0; i < workers_.size(); ++i) {
            const Worker& w = *workers_[i];
            if (w.binding.has_value() && w.binding->device == dev) {
              crash_worker_now(i);
            }
          }
        }));
    fault_subs_.push_back(fi->subscribe(
        faults::FaultKind::kMpsDaemonDeath, key,
        [this, dev](const faults::FaultEvent&) {
          for (std::size_t i = 0; i < workers_.size(); ++i) {
            const Worker& w = *workers_[i];
            if (w.binding.has_value() && w.binding->device == dev &&
                !w.binding->ctx_opts.instance.has_value()) {
              crash_worker_now(i);
            }
          }
        }));
  }
}

void HighThroughputExecutor::crash_worker_now(std::size_t index) {
  Worker& w = *workers_[index];
  if (w.retired) return;
  ++crashes_injected_;
  ++w.crashes;
  if (auto* tel = sim_.telemetry()) {
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: runs only when a worker
        // crashes under fault injection
        .counter("htex_crash_respawns_total", {{"executor", opts_.label}})
        .add();
  }
  FP_LOG_DEBUG("worker '" << w.name << "' killed by fault injection");
  if (w.busy || !w.alive || !w.inbox->empty()) {
    // A task is in flight (or imminent in the inbox): the process dies
    // before its result leaves — run_task fails the task and worker_main
    // respawns the process cold.
    w.crash_pending = true;
    return;
  }
  // Idle process dies now: respawn cold immediately (dropped ack — nobody
  // waits on an unplanned death), so the next task pays only the cold start.
  sim::Promise<> ack(sim_);
  Msg m;
  m.kind = Msg::Kind::kRestart;
  m.ack = ack;
  w.inbox->put(std::move(m));
}

AppHandle HighThroughputExecutor::submit(std::shared_ptr<const AppDef> app) {
  FP_CHECK_MSG(app != nullptr && static_cast<bool>(app->body), "empty app");
  if (stopping_) {
    throw util::StateError("executor '" + opts_.label + "' is shutting down");
  }
  auto record = std::make_shared<TaskRecord>();
  record->id = next_task_id_++;
  record->app = app->name;
  record->executor = opts_.label;
  record->submitted = sim_.now();
  if (!obs_metrics_resolved_) resolve_task_metrics();
  if (attempts_counter_ != nullptr) attempts_counter_->add();
  sim::Promise<AppValue> promise(sim_);
  auto future = promise.future();
  future.on_ready([this] { note_task_settled(); });
  ++outstanding_;
  const int priority = app->priority;
  central_.put(QueuedTask{std::move(app), std::move(promise), record}, priority);
  return AppHandle{std::move(future), std::move(record)};
}

void HighThroughputExecutor::note_task_settled() {
  FP_CHECK(outstanding_ > 0);
  --outstanding_;
  ++tasks_completed_;
  if (stopping_ && outstanding_ == 0) drained_.open();
}

sim::Co<void> HighThroughputExecutor::dispatcher_main() {
  while (true) {
    QueuedTask task;
    try {
      task = co_await central_.get();
    } catch (const util::StateError&) {
      break;  // closed and drained — shutdown
    }
    // Drop stale idle tokens of retired workers (scale-in).
    std::size_t w = co_await idle_.get();
    while (workers_[w]->retired) w = co_await idle_.get();
    Msg m;
    m.kind = Msg::Kind::kTask;
    m.task = std::move(task);
    workers_[w]->inbox->put(std::move(m));
  }
}

sim::Co<void> HighThroughputExecutor::worker_boot(Worker& w) {
  const util::TimePoint boot_start = sim_.now();
  // (process spawn + interpreter + imports) then CUDA context init (§6).
  co_await sim_.delay(provider_.worker_launch_cost());
  if (w.binding.has_value()) {
    gpu::Device& dev = *w.binding->device;
    co_await sim_.delay(dev.arch().context_create);
    w.ctx = dev.create_context(w.name, w.binding->ctx_opts);
    w.ctx_live = true;
  }
  w.alive = true;
  if (auto* tel = sim_.telemetry()) {
    const obs::Labels labels{{"executor", opts_.label}};
    // faaspart-lint: allow(O1) -- cold path: a boot pays hundreds of ms of
    // simulated init, so the registry lookup is invisible next to it
    tel->metrics().counter("htex_worker_boots_total", labels).add();
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: same boot event as above
        .counter("htex_worker_boot_seconds_total", labels)
        .add((sim_.now() - boot_start).seconds());
  }
}

void HighThroughputExecutor::worker_teardown(Worker& w) {
  w.alive = false;
  if (w.ctx_live) {
    gpu::Device& dev = *w.binding->device;
    loader_->on_context_destroyed(dev, w.ctx);
    dev.destroy_context(w.ctx);
    w.ctx_live = false;
    w.ctx = 0;
  }
  // A fresh process has no warm state: function inits and model loads are
  // re-charged after a restart (this is the §6 reallocation cost).
  w.inited_apps.clear();
  w.loaded_models.clear();
}

sim::Co<void> HighThroughputExecutor::worker_main(std::size_t index) {
  Worker& w = *workers_[index];
  auto core_lease =
      co_await provider_.cpu_cores().acquire(opts_.cpu_cores_per_worker);
  co_await worker_boot(w);
  idle_.put(index);

  // Tasks assigned (via a stale idle token) while the worker is parked wait
  // here and run right after the next boot.
  std::deque<QueuedTask> backlog;
  // faaspart-lint: allow(C2) -- the lambda is a named local of this worker
  // coroutine and every drain_one() call is co_awaited to completion before
  // the worker loop (and thus the lambda) can go away
  const auto drain_one = [&](QueuedTask task) -> sim::Co<void> {
    w.busy = true;
    co_await run_task(w, std::move(task));
    w.busy = false;
    ++w.tasks_done;
    idle_.put(index);
  };

  while (true) {
    Msg m = co_await w.inbox->get();
    if (m.kind == Msg::Kind::kStop) {
      worker_teardown(w);
      m.ack.set_value();
      break;
    }
    if (m.kind == Msg::Kind::kPark) {
      worker_teardown(w);
      m.ack.set_value();
      continue;
    }
    if (m.kind == Msg::Kind::kRestart) {
      worker_teardown(w);
      if (m.new_opts.has_value() && w.binding.has_value()) {
        w.binding->ctx_opts = *m.new_opts;
      }
      co_await worker_boot(w);
      ++w.restarts;
      m.ack.set_value();
      while (!backlog.empty()) {
        QueuedTask t = std::move(backlog.front());
        backlog.pop_front();
        co_await drain_one(std::move(t));
      }
      continue;  // idle tokens track task capacity; restart consumed none
    }
    if (w.binding.has_value() && !w.ctx_live) {
      backlog.push_back(std::move(m.task));  // parked — run after restart
      continue;
    }
    co_await drain_one(std::move(m.task));
    if (w.crash_pending) {
      // The process died before delivering the result (run_task already
      // failed the task). Respawn cold.
      w.crash_pending = false;
      worker_teardown(w);
      co_await worker_boot(w);
      ++w.restarts;
    }
  }
}

sim::Co<void> HighThroughputExecutor::run_task(Worker& w, QueuedTask task) {
  const AppDef& app = *task.app;
  TaskRecord& rec = *task.record;
  rec.worker = w.name;
  rec.state = TaskRecord::State::kRunning;
  const util::TimePoint t0 = sim_.now();

  if (app.timeout.ns <= 0) {
    // No walltime bound: run inline (the common path, no extra coroutine).
    std::uint64_t body_span = 0;
    try {
      // Cold start (1): function initialization, once per worker incarnation.
      if (app.function_init.ns > 0 && w.inited_apps.count(app.name) == 0) {
        co_await sim_.delay(app.function_init);
        w.inited_apps.insert(app.name);
      }
      // Cold start (3): model upload, once per worker incarnation and model key.
      if (app.model_bytes > 0 && w.ctx_live &&
          w.loaded_models.count(app.effective_model_key()) == 0) {
        co_await loader_->load(*w.binding->device, w.ctx, app);
        w.loaded_models.insert(app.effective_model_key());
      }
      rec.cold_start = sim_.now() - t0;
      rec.started = sim_.now();
      body_span = open_body_trace(w, app, rec, t0);

      TaskContext tctx(sim_, w.rng, w.name, opts_.cpu_cores_per_worker,
                       w.binding.has_value() ? w.binding->device : nullptr, w.ctx,
                       obs::TraceContext{rec.trace.trace, body_span});
      AppValue value = co_await app.body(tctx);

      if (w.crash_pending) {
        // Injected failure: the process dies before the result leaves it.
        throw util::TaskFailedError(
            util::strf("worker '", w.name, "' crashed before returning"));
      }

      rec.finished = sim_.now();
      rec.state = TaskRecord::State::kDone;
      close_body_trace(body_span, "");
      if (rec_ != nullptr) {
        if (rec.cold_start.ns > 0) {
          rec_->record(w.lane, app.name, "cold:" + app.name, t0, rec.started);
        }
        rec_->record(w.lane, app.name, "task:" + app.name, rec.started, rec.finished);
      }
      note_task_metrics(rec);
      task.promise.set_value(std::move(value));
    } catch (const std::exception& e) {
      rec.finished = sim_.now();
      rec.state = TaskRecord::State::kFailed;
      rec.error = e.what();
      close_body_trace(body_span, rec.error);
      note_task_metrics(rec);
      FP_LOG_DEBUG("task " << rec.id << " (" << app.name << ") failed: " << e.what());
      task.promise.set_exception(std::current_exception());
    }
    co_return;
  }

  // Walltime-bounded attempt: the body runs in a sibling coroutine while a
  // deadline timer races it for `outcome`. On timeout the worker process is
  // killed (SIGKILL model): its in-flight kernels are aborted and the process
  // respawns cold, which frees anything the attempt allocated.
  sim::Promise<AppValue> outcome(sim_);
  sim::Promise<> attempt_done(sim_);
  auto outcome_f = outcome.future();
  auto attempt_done_f = attempt_done.future();
  sim_.spawn(attempt_body(w, task.app, task.record, t0, outcome, attempt_done),
             w.name + "/attempt");
  const auto timer = sim_.schedule_in(
      app.timeout, [this, &w, app_name = app.name, timeout = app.timeout,
                    outcome]() mutable {
        if (outcome.future().ready()) return;
        auto error = std::make_exception_ptr(util::TaskTimeoutError(
            util::strf(app_name, " on '", w.name, "' exceeded its ",
                       timeout.seconds(), " s walltime")));
        // Abort kernels BEFORE settling the outcome: the aborts' dispatch
        // callbacks run at an earlier event sequence than anything the
        // settled future wakes, so no phantom in-flight work survives.
        if (w.ctx_live && w.binding.has_value()) {
          (void)w.binding->device->abort_context_kernels(w.ctx, error);
        }
        outcome.set_exception(error);
      });

  bool timed_out = false;
  std::exception_ptr error;
  AppValue value;
  try {
    value = co_await outcome_f;
  } catch (...) {
    error = std::current_exception();
  }
  sim_.cancel(timer);
  rec.finished = sim_.now();
  if (error == nullptr) {
    rec.state = TaskRecord::State::kDone;
    if (rec_ != nullptr) {
      if (rec.cold_start.ns > 0) {
        rec_->record(w.lane, app.name, "cold:" + app.name, t0, rec.started);
      }
      rec_->record(w.lane, app.name, "task:" + app.name, rec.started, rec.finished);
    }
    note_task_metrics(rec);
    task.promise.set_value(std::move(value));
  } else {
    rec.state = TaskRecord::State::kFailed;
    try {
      std::rethrow_exception(error);
    } catch (const util::TaskTimeoutError& e) {
      timed_out = true;
      rec.timed_out = true;
      rec.error = e.what();
    } catch (const std::exception& e) {
      rec.error = e.what();
    }
    FP_LOG_DEBUG("task " << rec.id << " (" << app.name << ") failed: " << rec.error);
    if (timed_out) {
      // The walltime kill is a SIGKILL: the process dies, its context is
      // destroyed on respawn (releasing any half-loaded model memory).
      w.crash_pending = true;
    }
    note_task_metrics(rec);
    task.promise.set_exception(error);
  }
  // Hold the worker until the attempt coroutine unwinds — it may still be
  // sleeping inside a cold-start delay after a timeout.
  co_await attempt_done_f;
}

sim::Co<void> HighThroughputExecutor::attempt_body(
    Worker& w, std::shared_ptr<const AppDef> app,
    std::shared_ptr<TaskRecord> record, util::TimePoint t0,
    sim::Promise<AppValue> outcome, sim::Promise<> attempt_done) {
  std::uint64_t body_span = 0;
  try {
    if (app->function_init.ns > 0 && w.inited_apps.count(app->name) == 0) {
      co_await sim_.delay(app->function_init);
      if (outcome.future().ready()) {  // killed mid-init: no warm state
        attempt_done.set_value();
        co_return;
      }
      w.inited_apps.insert(app->name);
    }
    if (app->model_bytes > 0 && w.ctx_live &&
        w.loaded_models.count(app->effective_model_key()) == 0) {
      co_await loader_->load(*w.binding->device, w.ctx, *app);
      if (outcome.future().ready()) {  // killed mid-load: allocation freed by
        attempt_done.set_value();      // the respawn's destroy_context
        co_return;
      }
      w.loaded_models.insert(app->effective_model_key());
    }
    record->cold_start = sim_.now() - t0;
    record->started = sim_.now();
    body_span = open_body_trace(w, *app, *record, t0);

    TaskContext tctx(sim_, w.rng, w.name, opts_.cpu_cores_per_worker,
                     w.binding.has_value() ? w.binding->device : nullptr, w.ctx,
                     obs::TraceContext{record->trace.trace, body_span});
    AppValue value = co_await app->body(tctx);

    if (!outcome.future().ready()) {
      if (w.crash_pending) {
        close_body_trace(body_span, "worker crashed before returning");
        outcome.set_exception(std::make_exception_ptr(util::TaskFailedError(
            util::strf("worker '", w.name, "' crashed before returning"))));
      } else {
        close_body_trace(body_span, "");
        outcome.set_value(std::move(value));
      }
    } else {
      // The walltime timer already settled the attempt; the body's late
      // result is discarded, exactly like output after a SIGKILL.
      close_body_trace(body_span, "walltime kill (result discarded)");
    }
  } catch (const std::exception& e) {
    if (!outcome.future().ready()) {
      outcome.set_exception(std::current_exception());
    }
    close_body_trace(body_span, e.what());
  }
  attempt_done.set_value();
}

std::uint64_t HighThroughputExecutor::open_body_trace(const Worker& w,
                                                      const AppDef& app,
                                                      const TaskRecord& rec,
                                                      util::TimePoint t0) {
  auto* tracer = tracer_for(sim_, rec);
  if (tracer == nullptr) return 0;
  if (t0 > rec.submitted) {
    tracer->add_closed(rec.trace.trace, rec.trace.span, app.name, "queue",
                       rec.submitted, t0, opts_.label);
  }
  if (rec.started > t0) {
    tracer->add_closed(rec.trace.trace, rec.trace.span, app.name, "cold", t0,
                       rec.started, w.name);
  }
  return tracer->open_span(rec.trace.trace, rec.trace.span, app.name, "body",
                           w.name);
}

void HighThroughputExecutor::close_body_trace(std::uint64_t span,
                                              const std::string& note) {
  if (span == 0) return;
  if (auto* tel = sim_.telemetry()) {
    if (auto* tracer = tel->tracer()) {
      if (!note.empty()) tracer->annotate(span, note);
      tracer->close_span(span);
    }
  }
}

void HighThroughputExecutor::note_task_metrics(const TaskRecord& rec) {
  if (!obs_metrics_resolved_) resolve_task_metrics();
  if (attempts_counter_ == nullptr) return;
  if (rec.state == TaskRecord::State::kDone) {
    tasks_done_counter_->add();
    run_seconds_hist_->observe(rec.run_time().seconds());
  } else {
    tasks_failed_counter_->add();
  }
  if (rec.cold_start.ns > 0) {
    cold_starts_counter_->add();
    cold_start_seconds_counter_->add(rec.cold_start.seconds());
  }
}

void HighThroughputExecutor::resolve_task_metrics() {
  auto* tel = sim_.telemetry();
  if (tel == nullptr) return;  // don't latch — telemetry may install later
  obs_metrics_resolved_ = true;
  const obs::Labels labels{{"executor", opts_.label}};
  auto& m = tel->metrics();
  attempts_counter_ = &m.counter("htex_attempts_total", labels);
  tasks_done_counter_ = &m.counter("htex_tasks_done_total", labels);
  tasks_failed_counter_ = &m.counter("htex_tasks_failed_total", labels);
  run_seconds_hist_ = &m.histogram("htex_task_run_seconds", labels);
  cold_starts_counter_ = &m.counter("htex_cold_starts_total", labels);
  cold_start_seconds_counter_ = &m.counter("htex_cold_start_seconds_total", labels);
}

sim::Future<> HighThroughputExecutor::restart_worker(
    std::size_t index, std::optional<gpu::ContextOptions> new_opts) {
  FP_CHECK_MSG(index < workers_.size(), "worker index out of range");
  FP_CHECK_MSG(started_, "executor not started");
  sim::Promise<> ack(sim_);
  Msg m;
  m.kind = Msg::Kind::kRestart;
  m.new_opts = new_opts;
  m.ack = ack;
  workers_[index]->inbox->put(std::move(m));
  return ack.future();
}

void HighThroughputExecutor::inject_worker_crash(std::size_t index) {
  FP_CHECK_MSG(index < workers_.size(), "worker index out of range");
  workers_[index]->crash_pending = true;
}

sim::Future<> HighThroughputExecutor::park_worker(std::size_t index) {
  FP_CHECK_MSG(index < workers_.size(), "worker index out of range");
  FP_CHECK_MSG(started_, "executor not started");
  sim::Promise<> ack(sim_);
  Msg m;
  m.kind = Msg::Kind::kPark;
  m.ack = ack;
  workers_[index]->inbox->put(std::move(m));
  return ack.future();
}

HighThroughputExecutor::WorkerInfo HighThroughputExecutor::worker_info(
    std::size_t index) const {
  FP_CHECK_MSG(index < workers_.size(), "worker index out of range");
  const Worker& w = *workers_[index];
  WorkerInfo info;
  info.name = w.name;
  info.accelerator = w.binding.has_value() ? w.binding->accelerator : "";
  info.alive = w.alive;
  info.busy = w.busy;
  info.retired = w.retired;
  info.restarts = w.restarts;
  info.crashes = w.crashes;
  info.tasks_done = w.tasks_done;
  info.gpu_ctx = w.ctx_live ? w.ctx : 0;
  return info;
}

sim::Co<void> HighThroughputExecutor::shutdown() {
  FP_CHECK_MSG(started_, "shutdown of an executor that never started");
  stopping_ = true;
  if (outstanding_ > 0) {
    co_await drained_.wait();
  }
  central_.close();
  std::vector<sim::Future<>> acks;
  for (auto& w : workers_) {
    if (w->retired) continue;  // already stopped by retire_worker()
    sim::Promise<> p(sim_);
    Msg m;
    m.kind = Msg::Kind::kStop;
    m.ack = p;
    w->inbox->put(std::move(m));
    acks.push_back(p.future());
  }
  co_await sim::when_all(std::move(acks));
}

// ---------------------------------------------------------------------------
// ThreadPoolExecutor
// ---------------------------------------------------------------------------

ThreadPoolExecutor::ThreadPoolExecutor(sim::Simulator& sim, std::string label,
                                       int max_threads, std::uint64_t seed)
    : sim_(sim),
      label_(std::move(label)),
      threads_(sim, max_threads, label_ + "-threads"),
      rng_(seed),
      drained_(sim) {}

AppHandle ThreadPoolExecutor::submit(std::shared_ptr<const AppDef> app) {
  FP_CHECK_MSG(app != nullptr && static_cast<bool>(app->body), "empty app");
  if (stopping_) throw util::StateError("executor '" + label_ + "' is shutting down");
  auto record = std::make_shared<TaskRecord>();
  record->id = next_task_id_++;
  record->app = app->name;
  record->executor = label_;
  record->submitted = sim_.now();
  sim::Promise<AppValue> promise(sim_);
  auto future = promise.future();
  future.on_ready([this] {
    --outstanding_;
    if (stopping_ && outstanding_ == 0) drained_.open();
  });
  ++outstanding_;
  sim_.spawn(run_one(app, promise, record), label_ + "/task");
  return AppHandle{std::move(future), std::move(record)};
}

sim::Co<void> ThreadPoolExecutor::run_one(std::shared_ptr<const AppDef> app,
                                          sim::Promise<AppValue> promise,
                                          std::shared_ptr<TaskRecord> record) {
  auto lease = co_await threads_.acquire(1);
  record->started = sim_.now();
  record->state = TaskRecord::State::kRunning;
  record->worker = label_;
  TaskContext tctx(sim_, rng_, label_, 1, nullptr, 0);
  try {
    AppValue v = co_await app->body(tctx);
    record->finished = sim_.now();
    record->state = TaskRecord::State::kDone;
    promise.set_value(std::move(v));
  } catch (const std::exception&) {
    record->finished = sim_.now();
    record->state = TaskRecord::State::kFailed;
    promise.set_exception(std::current_exception());
  }
}

sim::Co<void> ThreadPoolExecutor::shutdown() {
  stopping_ = true;
  if (outstanding_ > 0) co_await drained_.wait();
}

}  // namespace faaspart::faas
