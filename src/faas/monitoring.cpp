#include "faas/monitoring.hpp"

#include <filesystem>
#include <fstream>

#include "trace/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::faas {

namespace {

const char* state_name(TaskRecord::State s) {
  switch (s) {
    case TaskRecord::State::kPending: return "pending";
    case TaskRecord::State::kRunning: return "running";
    case TaskRecord::State::kDone: return "done";
    case TaskRecord::State::kFailed: return "failed";
  }
  return "?";
}

}  // namespace

std::vector<AppSummary> Monitoring::app_summaries() const {
  std::map<std::string, AppSummary> by_app;
  std::map<std::string, std::vector<double>> runs;
  std::map<std::string, std::vector<double>> queues;
  for (const auto& r : dfk_.records()) {
    AppSummary& s = by_app[r->app];
    s.app = r->app;
    ++s.submitted;
    if (r->tries > 1) s.retries += static_cast<std::size_t>(r->tries - 1);
    if (r->timed_out) ++s.walltime_kills;
    s.backoff_total += r->backoff_total;
    if (r->state == TaskRecord::State::kDone) {
      ++s.done;
      if (r->slo_miss) ++s.slo_misses;
      if (r->memoized) ++s.memoized;
      runs[r->app].push_back(r->run_time().seconds());
      queues[r->app].push_back(r->queue_time().seconds());
      s.cold_start_total += r->cold_start;
    } else if (r->state == TaskRecord::State::kFailed) {
      ++s.failed;
    }
  }
  std::vector<AppSummary> out;
  for (auto& [app, s] : by_app) {
    s.run_time = trace::summarize(std::move(runs[app]));
    s.queue_time = trace::summarize(std::move(queues[app]));
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<WorkerSummary> Monitoring::worker_summaries() const {
  std::map<std::string, WorkerSummary> by_worker;
  for (const auto& r : dfk_.records()) {
    if (r->state != TaskRecord::State::kDone || r->worker.empty()) continue;
    WorkerSummary& s = by_worker[r->worker];
    s.worker = r->worker;
    ++s.tasks;
    s.busy += r->run_time();
  }
  std::vector<WorkerSummary> out;
  out.reserve(by_worker.size());
  for (auto& [w, s] : by_worker) out.push_back(std::move(s));
  return out;
}

std::vector<std::string> Monitoring::export_csv() const {
  namespace fs = std::filesystem;
  fs::create_directories(run_dir_);
  std::vector<std::string> written;

  {
    const std::string path = (fs::path(run_dir_) / "tasks.csv").string();
    std::ofstream os(path);
    if (!os) throw util::Error("cannot write " + path);
    trace::CsvWriter csv(os);
    csv.row({"id", "app", "executor", "worker", "state", "tries",
             "submitted_s", "started_s", "finished_s", "cold_start_s",
             "error", "backoff_s", "timed_out"});
    for (const auto& r : dfk_.records()) {
      csv.row({std::to_string(r->id), r->app, r->executor, r->worker,
               state_name(r->state), std::to_string(r->tries),
               util::fixed(r->submitted.seconds(), 6),
               util::fixed(r->started.seconds(), 6),
               util::fixed(r->finished.seconds(), 6),
               util::fixed(r->cold_start.seconds(), 6), r->error,
               util::fixed(r->backoff_total.seconds(), 6),
               r->timed_out ? "1" : "0"});
    }
    written.push_back(path);
  }

  if (rec_ != nullptr) {
    const std::string path = (fs::path(run_dir_) / "spans.csv").string();
    std::ofstream os(path);
    if (!os) throw util::Error("cannot write " + path);
    trace::CsvWriter csv(os);
    csv.row({"lane", "name", "category", "start_s", "end_s"});
    for (const auto& s : rec_->spans()) {
      csv.row({rec_->lane_name(s.lane), s.name, s.category,
               util::fixed(s.start.seconds(), 6),
               util::fixed(s.end.seconds(), 6)});
    }
    written.push_back(path);
  }
  return written;
}

}  // namespace faaspart::faas
