// ElasticController — Parsl's scaling "strategy" for an executor: watch the
// queue, add CPU workers under backlog, retire idle ones when the burst
// passes. (GPU workers stay static — their count is the partitioning
// decision the core module owns; elasticity here is about the CPU side of
// §2.1's "rapid spin up and down of function instances".)
#pragma once

#include "faas/executor.hpp"

namespace faaspart::faas {

struct ElasticOptions {
  int min_workers = 1;
  int max_workers = 8;
  util::Duration interval = util::seconds(5);  ///< control period
  /// Scale out by one when queued tasks per active worker exceed this.
  double scale_out_queue_per_worker = 2.0;
  /// Scale in by one when the queue is empty and at least this many workers
  /// sit idle.
  int scale_in_idle_threshold = 2;
  /// When > 0 and an obs::Telemetry is installed, the scale-out signal is
  /// the mean of the last N sampler snapshots of the executor's queue depth
  /// ("queue:<label>") instead of the instantaneous value — one noisy spike
  /// no longer triggers a worker. 0 keeps the instantaneous signal.
  int smooth_samples = 0;
};

class ElasticController {
 public:
  ElasticController(sim::Simulator& sim, HighThroughputExecutor& executor,
                    ElasticOptions opts = {});

  /// The control loop; spawn on the simulator. Runs until `deadline`.
  sim::Co<void> run(util::TimePoint deadline);

  [[nodiscard]] int scale_outs() const { return scale_outs_; }
  [[nodiscard]] int scale_ins() const { return scale_ins_; }

 private:
  [[nodiscard]] std::size_t busy_workers() const;
  /// Highest-indexed active idle worker, or npos.
  [[nodiscard]] std::size_t pick_idle_worker() const;
  /// Scale-out signal: the sampler-smoothed queue depth when configured and
  /// available, the instantaneous depth otherwise.
  [[nodiscard]] double queue_signal(std::size_t instantaneous) const;

  sim::Simulator& sim_;
  HighThroughputExecutor& executor_;
  ElasticOptions opts_;
  int scale_outs_ = 0;
  int scale_ins_ = 0;
};

}  // namespace faaspart::faas
