#include "faas/loader.hpp"

namespace faaspart::faas {

sim::Co<void> DirectLoader::load(gpu::Device& dev, gpu::ContextId ctx,
                                 const AppDef& app) {
  if (app.model_bytes <= 0) co_return;
  // Allocation is instantaneous; the upload pays the deserialization-limited
  // model_load_bw of the part (§6).
  (void)dev.alloc(ctx, app.model_bytes, "model:" + app.effective_model_key());
  const double rate = dev.arch().model_load_bw;
  co_await dev.simulator().delay(
      util::from_seconds(static_cast<double>(app.model_bytes) / rate));
}

}  // namespace faaspart::faas
