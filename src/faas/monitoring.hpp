// Monitoring — the analogue of Parsl's monitoring database (Listing 1's
// `log_dir: Path to store monitoring DB and parsl logs`).
//
// Snapshots the DataFlowKernel's task table and the trace recorder into CSV
// files under the configured run_dir, and answers the summary queries an
// operator dashboard would ask (per-app latency, per-worker load, failure
// counts).
#pragma once

#include <map>
#include <string>

#include "faas/dfk.hpp"
#include "trace/recorder.hpp"
#include "trace/stats.hpp"

namespace faaspart::faas {

struct AppSummary {
  std::string app;
  std::size_t submitted = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t slo_misses = 0;
  std::size_t memoized = 0;
  std::size_t retries = 0;         ///< extra attempts beyond the first
  std::size_t walltime_kills = 0;  ///< tasks killed by their walltime
  trace::Summary run_time;        ///< seconds, completed tasks
  trace::Summary queue_time;      ///< seconds
  util::Duration cold_start_total{};
  util::Duration backoff_total{};  ///< time spent in retry backoff pauses
};

struct WorkerSummary {
  std::string worker;
  std::size_t tasks = 0;
  util::Duration busy{};
};

class Monitoring {
 public:
  /// `run_dir` is created on demand when exporting.
  Monitoring(const DataFlowKernel& dfk, const trace::Recorder* rec,
             std::string run_dir)
      : dfk_(dfk), rec_(rec), run_dir_(std::move(run_dir)) {}

  /// Per-app aggregates over everything submitted so far.
  [[nodiscard]] std::vector<AppSummary> app_summaries() const;

  /// Per-worker task counts and busy time.
  [[nodiscard]] std::vector<WorkerSummary> worker_summaries() const;

  /// Writes <run_dir>/tasks.csv (one row per task) and, when a recorder is
  /// attached, <run_dir>/spans.csv. Returns the paths written.
  std::vector<std::string> export_csv() const;

  [[nodiscard]] const std::string& run_dir() const { return run_dir_; }

 private:
  const DataFlowKernel& dfk_;
  const trace::Recorder* rec_;
  std::string run_dir_;
};

}  // namespace faaspart::faas
