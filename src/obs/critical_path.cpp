#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string_view>
#include <utility>

#include "trace/table.hpp"
#include "util/strings.hpp"

namespace faaspart::obs {

namespace {

/// Overlap priority: when two segments cover the same instant, the most
/// specific one wins (execution beats the cold start that contains it, the
/// endpoint queue beats the WAN window it sits inside, and so on). 0 means
/// structural — never attributed directly.
int segment_priority(const char* segment) {
  const std::string_view s = segment;
  if (s == "exec") return 70;
  if (s == "cold") return 60;
  if (s == "equeue") return 50;
  if (s == "backoff") return 40;
  if (s == "wan") return 30;
  if (s == "squeue") return 20;
  if (s == "shed") return 10;
  return 0;
}

struct Interval {
  std::int64_t start;
  std::int64_t end;
  int priority;
  const char* segment;
};

}  // namespace

const char* segment_for_kind(const std::string& kind) {
  if (kind == "body") return "exec";
  if (kind == "cold") return "cold";
  if (kind == "queue") return "equeue";
  if (kind == "backoff") return "backoff";
  if (kind == "wan-out" || kind == "wan-back") return "wan";
  if (kind == "squeue") return "squeue";
  if (kind == "shed") return "shed";
  // request/task/attempt are structural containers; kernels run inside the
  // body span, which already owns their time.
  return "";
}

util::Duration RequestBreakdown::attributed() const {
  util::Duration named{};
  for (const auto& [segment, d] : segments) {
    if (segment != "other") named += d;
  }
  return named;
}

double RequestBreakdown::coverage() const {
  if (total.ns <= 0) return 1.0;
  return static_cast<double>(attributed().ns) / static_cast<double>(total.ns);
}

std::vector<RequestBreakdown> analyze_requests(
    const std::vector<CausalSpan>& spans) {
  // Children by parent id; spans_ ids are 1-based and dense, but offline
  // reconstructions may be sparse, so index through a map.
  std::map<std::uint64_t, std::vector<const CausalSpan*>> children;
  std::vector<const CausalSpan*> roots;
  for (const CausalSpan& s : spans) {
    if (s.parent == 0) {
      roots.push_back(&s);
    } else {
      children[s.parent].push_back(&s);
    }
  }

  std::vector<RequestBreakdown> out;
  for (const CausalSpan* root : roots) {
    if (root->open) continue;  // never settled — a crashed run's residue
    RequestBreakdown b;
    b.trace = root->trace;
    b.root_span = root->id;
    b.name = root->name;
    b.tenant = root->tenant;
    b.site = root->site;
    b.note = root->note;
    b.start = root->start;
    b.total = root->end - root->start;

    // Collect the tree's segment intervals, clipped to the root extent.
    std::vector<Interval> intervals;
    std::vector<const CausalSpan*> frontier{root};
    while (!frontier.empty()) {
      const CausalSpan* s = frontier.back();
      frontier.pop_back();
      const auto it = children.find(s->id);
      if (it != children.end()) {
        for (const CausalSpan* c : it->second) frontier.push_back(c);
      }
      if (s == root) continue;
      const char* segment = segment_for_kind(s->kind);
      const int priority = segment_priority(segment);
      if (priority == 0) continue;
      const std::int64_t lo = std::max(s->start.ns, root->start.ns);
      const std::int64_t hi = std::min(s->end.ns, root->end.ns);
      if (hi > lo) intervals.push_back({lo, hi, priority, segment});
    }

    // Priority sweep over the elementary slices between interval bounds:
    // each instant goes to exactly one segment, so the decomposition sums
    // to the end-to-end latency by construction.
    std::vector<std::int64_t> bounds{root->start.ns, root->end.ns};
    for (const Interval& iv : intervals) {
      bounds.push_back(iv.start);
      bounds.push_back(iv.end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    util::Duration covered{};
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      const std::int64_t lo = bounds[i];
      const std::int64_t hi = bounds[i + 1];
      if (lo < root->start.ns || hi > root->end.ns) continue;
      const Interval* best = nullptr;
      for (const Interval& iv : intervals) {
        if (iv.start <= lo && hi <= iv.end &&
            (best == nullptr || iv.priority > best->priority)) {
          best = &iv;
        }
      }
      if (best != nullptr) {
        b.segments[best->segment] += util::Duration{hi - lo};
        covered += util::Duration{hi - lo};
      }
    }
    if (b.total > covered) b.segments["other"] += b.total - covered;
    out.push_back(std::move(b));
  }

  std::sort(out.begin(), out.end(),
            [](const RequestBreakdown& a, const RequestBreakdown& b) {
              return a.root_span < b.root_span;
            });
  return out;
}

namespace {

double nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(q * n);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

std::vector<GroupBreakdown> aggregate_breakdowns(
    const std::vector<RequestBreakdown>& requests, GroupBy by) {
  std::map<std::string, std::vector<const RequestBreakdown*>> groups;
  for (const RequestBreakdown& r : requests) {
    const std::string* key = &r.name;
    if (by == GroupBy::kTenant) key = &r.tenant;
    if (by == GroupBy::kSite) key = &r.site;
    groups[key->empty() ? "-" : *key].push_back(&r);
  }

  std::vector<GroupBreakdown> out;
  for (const auto& [key, members] : groups) {
    GroupBreakdown g;
    g.key = key;
    g.requests = members.size();
    std::vector<double> totals;
    totals.reserve(members.size());
    double sum = 0;
    for (const RequestBreakdown* r : members) {
      totals.push_back(r->total.seconds());
      sum += r->total.seconds();
      for (const auto& [segment, d] : r->segments) g.segments[segment] += d;
      g.min_coverage = std::min(g.min_coverage, r->coverage());
    }
    std::sort(totals.begin(), totals.end());
    g.mean_s = sum / static_cast<double>(members.size());
    g.p50_s = nearest_rank(totals, 0.50);
    g.p99_s = nearest_rank(totals, 0.99);
    for (const RequestBreakdown* r : members) {
      if (r->total.seconds() < g.p99_s) continue;
      ++g.tail_requests;
      for (const auto& [segment, d] : r->segments) g.tail_segments[segment] += d;
    }
    out.push_back(std::move(g));
  }
  return out;
}

namespace {

/// "exec 62% · cold 21% · wan 9%" — top-3 shares of a segment sum.
std::string top_shares(const std::map<std::string, util::Duration>& segments) {
  util::Duration total{};
  for (const auto& [segment, d] : segments) total += d;
  if (total.ns <= 0) return "-";
  std::vector<std::pair<std::string, util::Duration>> ranked(segments.begin(),
                                                             segments.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.ns != b.second.ns ? a.second.ns > b.second.ns
                                      : a.first < b.first;
  });
  std::string out;
  int shown = 0;
  for (const auto& [segment, d] : ranked) {
    if (shown == 3 || d.ns <= 0) break;
    const double share =
        100.0 * static_cast<double>(d.ns) / static_cast<double>(total.ns);
    if (!out.empty()) out += " · ";
    out += segment + " " + util::fixed(share, 0) + "%";
    ++shown;
  }
  return out.empty() ? "-" : out;
}

}  // namespace

std::string render_critical_path(const std::vector<GroupBreakdown>& groups,
                                 const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  trace::Table table({"group", "requests", "mean (s)", "p50 (s)", "p99 (s)",
                      "all requests", "p99 tail", "named"});
  for (const GroupBreakdown& g : groups) {
    table.add_row({g.key, std::to_string(g.requests), util::fixed(g.mean_s, 3),
                   util::fixed(g.p50_s, 3), util::fixed(g.p99_s, 3),
                   top_shares(g.segments), top_shares(g.tail_segments),
                   util::fixed(100.0 * g.min_coverage, 1) + "%"});
  }
  table.print(os);
  os << "segments: squeue=service fair queue, wan=dispatch/result WAN legs, "
        "equeue=endpoint executor queue,\n  cold=cold start, exec=body "
        "execution, backoff=retry pauses; `named` is the worst per-request\n"
        "  fraction of end-to-end latency attributed to named segments.\n";
  return os.str();
}

}  // namespace faaspart::obs
