// Virtual-time utilization sampler — the in-sim analogue of polling DCGM /
// `nvidia-smi` at a fixed cadence.
//
// Sources register three probes (cumulative busy time, instantaneous queue
// depth, instantaneous memory in use); every `period` the sampler snapshots
// each source into a time series of per-window utilization. The tick is a
// *weak* simulator event, so a sampler never keeps run() alive — it simply
// stops observing when the workload drains.
//
// Window accounting is exact: utilization is (busy-delta / window), and
// finish()/detach() flush a final partial window, so the utilization
// integral over a source's series equals the engine's busy time (the
// acceptance bar is agreement with trace::Recorder::busy_time within 1%;
// this construction is exact up to float rounding). The autoscaler and the
// exporters both read the same series.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace faaspart::sim {
class Simulator;
}  // namespace faaspart::sim

namespace faaspart::obs {

class Gauge;
class MetricsRegistry;

struct PartitionSample {
  util::TimePoint at{};     ///< window end
  double utilization = 0;   ///< busy fraction over the window [0, 1]
  double queue_depth = 0;   ///< instantaneous at window end
  util::Bytes memory = 0;   ///< instantaneous at window end
};

class UtilizationSampler {
 public:
  using SourceId = std::size_t;
  static constexpr SourceId kNoSource = static_cast<SourceId>(-1);

  /// Probes a partition exposes; any may be empty.
  struct Probes {
    std::function<util::Duration()> busy;  ///< cumulative busy integral
    std::function<double()> queue_depth;
    std::function<util::Bytes()> memory;
  };

  struct Series {
    std::string name;
    std::vector<PartitionSample> samples;
    double busy_integral_s = 0;   ///< sum of busy deltas seen (seconds)
    util::Bytes memory_peak = 0;
    bool detached = false;
  };

  /// `metrics` (optional) receives partition_utilization /
  /// partition_queue_depth gauges on every sample. period.ns == 0 disables
  /// ticking; sources can still register and be flushed by finish().
  UtilizationSampler(sim::Simulator& sim, util::Duration period,
                     MetricsRegistry* metrics = nullptr);
  ~UtilizationSampler();

  UtilizationSampler(const UtilizationSampler&) = delete;
  UtilizationSampler& operator=(const UtilizationSampler&) = delete;

  /// Registers a partition. Sampling of this source starts now.
  SourceId add_source(std::string name, Probes probes);

  /// Flushes a final partial window for the source and stops probing it.
  /// Partitions call this from their destructors (MIG destroy, device
  /// teardown) so the sampler never holds dangling probes.
  void detach(SourceId id);

  /// Flushes a final partial window for every attached source and stops the
  /// periodic tick. Idempotent; called by Telemetry before exporting.
  void finish();

  [[nodiscard]] util::Duration period() const { return period_; }
  [[nodiscard]] std::size_t tick_count() const { return ticks_; }
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] const Series* find(const std::string& name) const;

  /// Mean of the last `n` queue-depth samples of a source (the smoothed
  /// signal the autoscaler consumes); nullopt when the source is unknown or
  /// has no samples yet.
  [[nodiscard]] std::optional<double> recent_queue_depth(
      const std::string& name, std::size_t n) const;

  /// timeseries.csv: at_s,partition,utilization,queue_depth,memory_bytes.
  void write_csv(std::ostream& os) const;

 private:
  struct State {
    Probes probes;
    util::TimePoint window_start{};
    util::Duration busy_seen{};  ///< probe value at window_start
    // Gauge handles resolved once at add_source (registry pointers are
    // stable), so the per-tick cost is two stores, not two map lookups.
    Gauge* util_gauge = nullptr;
    Gauge* queue_gauge = nullptr;
  };

  void tick();
  void flush(SourceId id);
  void arm();

  sim::Simulator& sim_;
  util::Duration period_{};
  MetricsRegistry* metrics_ = nullptr;
  std::vector<Series> series_;
  std::vector<State> states_;
  std::uint64_t tick_event_ = 0;
  std::size_t ticks_ = 0;
  bool finished_ = false;
};

}  // namespace faaspart::obs
