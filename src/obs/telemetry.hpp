// The telemetry hub: one object that owns the metrics registry, the causal
// tracer, and the utilization sampler, and installs itself on the Simulator
// so every layer can reach it through a single nullable pointer
// (sim.telemetry()). Constructed before the devices/executors it observes
// and destroyed after them, mirroring faults::FaultInjector.
//
//   sim::Simulator sim;
//   obs::Telemetry tel(sim);          // opt in (one flag in the benches)
//   ... build testbed, run ...
//   tel.finish();                     // flush partial sampler windows
//   tel.export_all("runinfo/obs");    // metrics.prom, trace.json, timeseries.csv
//   obs::write_dashboard(std::cout, tel);
#pragma once

#include <string>
#include <vector>

#include <memory>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "obs/tracer.hpp"
#include "util/units.hpp"

namespace faaspart::sim {
class Simulator;
}  // namespace faaspart::sim

namespace faaspart::trace {
class Recorder;
}  // namespace faaspart::trace

namespace faaspart::obs {

struct TelemetryOptions {
  /// Sampler cadence — 50 ms of virtual time, i.e. DCGM's default polling
  /// class. 0 disables periodic sampling (sources still flush at finish()).
  util::Duration sample_period = util::milliseconds(50);
  /// Causal span collection; metrics stay on when this is off.
  bool tracing = true;
  /// Post-mortem flight recorder; off by default — most runs only want
  /// metrics + spans, incident studies opt in.
  bool flight = false;
  /// Ring size per flight-recorder key when `flight` is on.
  std::size_t flight_capacity = 128;
};

class Telemetry {
 public:
  explicit Telemetry(sim::Simulator& sim, TelemetryOptions opts = {});
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const TelemetryOptions& options() const { return opts_; }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] UtilizationSampler& sampler() { return sampler_; }
  [[nodiscard]] const UtilizationSampler& sampler() const { return sampler_; }

  /// Null when options().tracing is false — span call sites skip work.
  [[nodiscard]] Tracer* tracer() { return opts_.tracing ? &tracer_ : nullptr; }
  [[nodiscard]] const Tracer* tracer() const {
    return opts_.tracing ? &tracer_ : nullptr;
  }

  /// Always present; the serving layer feeds it for configured functions.
  /// Alerts automatically trigger a flight-recorder dump when one is on.
  [[nodiscard]] SloMonitor& slo() { return slo_; }
  [[nodiscard]] const SloMonitor& slo() const { return slo_; }

  /// Null when options().flight is false — recording sites skip work.
  [[nodiscard]] FlightRecorder* flight() { return flight_.get(); }
  [[nodiscard]] const FlightRecorder* flight() const { return flight_.get(); }

  /// Flushes sampler windows and stops the periodic tick. Idempotent; call
  /// after the run drains and before exporting.
  void finish();

  /// Writes metrics.prom (Prometheus text), trace.json (enriched Chrome
  /// trace; pass the run's Recorder for resource lanes, or null),
  /// timeseries.csv, and — when the flight recorder is on — flight.fdump
  /// into `dir` (created if missing). Returns the paths.
  std::vector<std::string> export_all(const std::string& dir,
                                      const trace::Recorder* rec = nullptr);

 private:
  sim::Simulator& sim_;
  TelemetryOptions opts_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  UtilizationSampler sampler_;
  SloMonitor slo_;
  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace faaspart::obs
