// Post-mortem flight recorder — bounded rings of recent events per key
// (endpoint name, "service", a device), dumped when something goes wrong.
//
// The recorder is always cheap: record() appends into a fixed-capacity ring
// (old events fall off the front), and nothing is formatted until a dump is
// taken. Dumps are triggered by the layers that detect trouble — the fault
// injector on every delivered fault, the SLO monitor when a burn-rate alert
// fires — and snapshot every ring merged into one time-ordered event list,
// so the artifact reads as "the last N things each site saw before the
// incident". write() emits the versioned .fdump text format that
// tools/obs-query loads back (obsquery::load_fdump).
//
// Everything here runs in virtual time and never schedules events, so an
// enabled recorder cannot perturb a run (pinned with the other zero-residue
// properties in tests/test_obs_flight.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace faaspart::sim {
class Simulator;
}  // namespace faaspart::sim

namespace faaspart::obs {

struct FlightEvent {
  util::TimePoint at{};
  std::uint64_t seq = 0;  ///< global record order (ties in virtual time)
  std::string key;        ///< which ring: endpoint name, "service", ...
  std::string kind;       ///< dispatch|shed|settle|fault|alert|...
  std::string message;
  std::uint64_t trace = 0;  ///< causal trace id; 0 when n/a
};

/// One snapshot, taken at dump() time.
struct FlightDump {
  util::TimePoint at{};
  std::string reason;  ///< "fault:wan-partition", "slo:fn-1-llama", ...
  std::vector<FlightEvent> events;  ///< merged rings, (at, seq) order
};

class FlightRecorder {
 public:
  /// `capacity_per_key` bounds each ring; `max_dumps` bounds the dump list
  /// (later triggers still count via dumps_taken() but stop snapshotting —
  /// an incident storm must not grow memory without bound).
  explicit FlightRecorder(sim::Simulator& sim, std::size_t capacity_per_key = 128,
                          std::size_t max_dumps = 32);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends an event to `key`'s ring, evicting the oldest past capacity.
  void record(const std::string& key, const std::string& kind,
              const std::string& message, std::uint64_t trace = 0);

  /// Snapshots every ring into a new dump (until max_dumps). Returns the
  /// dump index, or -1 when the dump list is full.
  int dump(const std::string& reason);

  [[nodiscard]] std::size_t capacity_per_key() const { return capacity_; }
  [[nodiscard]] std::uint64_t events_recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t events_evicted() const { return evicted_; }
  [[nodiscard]] std::size_t dumps_taken() const { return dumps_taken_; }
  [[nodiscard]] const std::vector<FlightDump>& dumps() const { return dumps_; }
  /// Live ring contents for one key, oldest first ({} for unknown keys).
  [[nodiscard]] std::vector<FlightEvent> ring(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Writes every dump in the versioned .fdump text format.
  void write(std::ostream& os) const;

 private:
  sim::Simulator& sim_;
  std::size_t capacity_;
  std::size_t max_dumps_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
  std::size_t dumps_taken_ = 0;
  std::map<std::string, std::deque<FlightEvent>> rings_;
  std::vector<FlightDump> dumps_;
};

/// Escapes tabs/newlines/backslashes for one .fdump field (reversed by
/// tools/obs-query's loader).
[[nodiscard]] std::string fdump_escape(const std::string& s);

}  // namespace faaspart::obs
