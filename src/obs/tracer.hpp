// Causal task tracer.
//
// trace::Recorder answers "what ran where" — spans live on resource lanes
// (workers, copy engines) and a retried task is three disjoint boxes. The
// Tracer answers "what happened to this task": every span carries a trace id
// and a parent span id, so one submit's retries, backoff pauses, queue
// waits, cold starts, and kernels form a single tree. The chrome exporter
// turns parent links into flow events; fault annotations land in `note`.
//
// Propagation rules (documented in DESIGN.md §7):
//   DFK opens the root "task" span at submit and one "attempt" span per
//   executor submission; the attempt's TraceContext is stamped into the
//   attempt's TaskRecord, the executor derives queue/cold/body children
//   from it, and TaskContext::launch() derives "kernel" children from the
//   body span. Span ids are global and never reused.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/context.hpp"
#include "util/units.hpp"

namespace faaspart::sim {
class Simulator;
}  // namespace faaspart::sim

namespace faaspart::obs {

struct CausalSpan {
  std::uint64_t trace = 0;   ///< which task tree this span belongs to
  std::uint64_t id = 0;      ///< global span id (1-based)
  std::uint64_t parent = 0;  ///< parent span id; 0 for trace roots
  std::string name;          ///< e.g. the app or kernel name
  /// request|squeue|wan-out|wan-back|task|attempt|queue|cold|body|kernel|
  /// backoff|shed — the span taxonomy (DESIGN.md §12) — plus the control-
  /// plane kinds repartition|plan|apply emitted by the online Repartitioner
  /// (DESIGN.md §13): one repartition root per optimizer cycle, a plan child
  /// for the probe+plan decision and one apply child per relayouted device.
  std::string kind;
  std::string site;          ///< where it ran (executor, worker, device)
  std::string tenant;        ///< SLO-class label; set on request roots
  int attempt = 0;           ///< 1-based attempt number; 0 when n/a
  util::TimePoint start{};
  util::TimePoint end{};
  std::string note;  ///< annotations: errors, fault hits, memo, slo
  bool open = true;  ///< still running (close_span not yet called)
};

class Tracer {
 public:
  explicit Tracer(sim::Simulator& sim) : sim_(sim) {}

  /// Allocates a fresh trace id (1-based).
  std::uint64_t begin_trace() { return next_trace_++; }

  /// Opens a span starting now. parent == 0 makes it a trace root.
  std::uint64_t open_span(std::uint64_t trace, std::uint64_t parent,
                          std::string name, std::string kind,
                          std::string site = "", int attempt = 0);

  /// Records an already-finished span (used for intervals only known in
  /// hindsight, like queue waits). Returns its id.
  std::uint64_t add_closed(std::uint64_t trace, std::uint64_t parent,
                           std::string name, std::string kind,
                           util::TimePoint start, util::TimePoint end,
                           std::string site = "", int attempt = 0);

  /// Ends a span at the current instant. id == 0 is a no-op so call sites
  /// can hold "maybe traced" ids unconditionally.
  void close_span(std::uint64_t id);

  /// Appends a note ("; "-joined) to a span. id == 0 is a no-op.
  void annotate(std::uint64_t id, const std::string& note);

  /// Tags a span with its tenant / SLO-class label. id == 0 is a no-op.
  void set_tenant(std::uint64_t id, std::string tenant);

  [[nodiscard]] const std::vector<CausalSpan>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t trace_count() const { return next_trace_ - 1; }

  /// Spans of one trace, in id (creation) order.
  [[nodiscard]] std::vector<const CausalSpan*> trace_spans(
      std::uint64_t trace) const;

 private:
  sim::Simulator& sim_;
  std::uint64_t next_trace_ = 1;
  std::vector<CausalSpan> spans_;  // index = id - 1
};

/// Closes a span when the scope exits (lint rule O2's preferred shape for
/// synchronous spans; spans that outlive a scope — request roots settled
/// from callbacks — hold the raw id and close explicitly). A null tracer or
/// zero id makes every operation a no-op, so guards can wrap "maybe traced"
/// paths unconditionally.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->close_span(id_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Appends a note to the guarded span (e.g. an error on the way out).
  void annotate(const std::string& note) {
    if (tracer_ != nullptr) tracer_->annotate(id_, note);
  }

  /// Detaches without closing (ownership handed to an async continuation).
  std::uint64_t release() {
    const auto id = id_;
    id_ = 0;
    return id;
  }

 private:
  Tracer* tracer_;
  std::uint64_t id_;
};

}  // namespace faaspart::obs
