#include "obs/sampler.hpp"

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::obs {

UtilizationSampler::UtilizationSampler(sim::Simulator& sim,
                                       util::Duration period,
                                       MetricsRegistry* metrics)
    : sim_(sim), period_(period), metrics_(metrics) {
  FP_CHECK_MSG(period_.ns >= 0, "negative sample period");
  if (period_.ns > 0) arm();
}

UtilizationSampler::~UtilizationSampler() {
  if (tick_event_ != 0) sim_.cancel(tick_event_);
}

void UtilizationSampler::arm() {
  tick_event_ = sim_.schedule_weak_in(period_, [this] { tick(); });
}

UtilizationSampler::SourceId UtilizationSampler::add_source(std::string name,
                                                            Probes probes) {
  const SourceId id = series_.size();
  Series s;
  s.name = std::move(name);
  series_.push_back(std::move(s));
  State st;
  st.probes = std::move(probes);
  st.window_start = sim_.now();
  st.busy_seen = st.probes.busy ? st.probes.busy() : util::Duration{};
  if (metrics_ != nullptr) {
    const Labels labels{{"partition", series_[id].name}};
    if (st.probes.busy) {
      st.util_gauge = &metrics_->gauge("partition_utilization", labels);
    }
    if (st.probes.queue_depth) {
      st.queue_gauge = &metrics_->gauge("partition_queue_depth", labels);
    }
  }
  states_.push_back(std::move(st));
  return id;
}

void UtilizationSampler::flush(SourceId id) {
  auto& series = series_[id];
  auto& st = states_[id];
  const util::TimePoint now = sim_.now();
  const util::Duration window = now - st.window_start;
  if (window.ns <= 0) return;

  PartitionSample sample;
  sample.at = now;
  if (st.probes.busy) {
    const util::Duration busy_now = st.probes.busy();
    const util::Duration delta = busy_now - st.busy_seen;
    sample.utilization = delta / window;
    series.busy_integral_s += delta.seconds();
    st.busy_seen = busy_now;
  }
  if (st.probes.queue_depth) sample.queue_depth = st.probes.queue_depth();
  if (st.probes.memory) {
    sample.memory = st.probes.memory();
    if (sample.memory > series.memory_peak) series.memory_peak = sample.memory;
  }
  st.window_start = now;
  series.samples.push_back(sample);

  if (st.util_gauge != nullptr) st.util_gauge->set(sample.utilization);
  if (st.queue_gauge != nullptr) st.queue_gauge->set(sample.queue_depth);
}

void UtilizationSampler::tick() {
  tick_event_ = 0;
  if (finished_) return;
  ++ticks_;
  for (SourceId id = 0; id < series_.size(); ++id) {
    if (!series_[id].detached) flush(id);
  }
  arm();
}

void UtilizationSampler::detach(SourceId id) {
  if (id == kNoSource) return;
  FP_CHECK_MSG(id < series_.size(), "detach of unknown sampler source");
  if (series_[id].detached) return;
  flush(id);
  series_[id].detached = true;
  states_[id].probes = Probes{};
}

void UtilizationSampler::finish() {
  if (finished_) return;
  for (SourceId id = 0; id < series_.size(); ++id) {
    if (!series_[id].detached) flush(id);
  }
  finished_ = true;
  if (tick_event_ != 0) {
    sim_.cancel(tick_event_);
    tick_event_ = 0;
  }
}

const UtilizationSampler::Series* UtilizationSampler::find(
    const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::optional<double> UtilizationSampler::recent_queue_depth(
    const std::string& name, std::size_t n) const {
  const Series* s = find(name);
  if (s == nullptr || s->samples.empty() || n == 0) return std::nullopt;
  const std::size_t take = std::min(n, s->samples.size());
  double sum = 0;
  for (std::size_t i = s->samples.size() - take; i < s->samples.size(); ++i) {
    sum += s->samples[i].queue_depth;
  }
  return sum / static_cast<double>(take);
}

void UtilizationSampler::write_csv(std::ostream& os) const {
  trace::CsvWriter csv(os);
  csv.row({"at_s", "partition", "utilization", "queue_depth", "memory_bytes"});
  for (const auto& s : series_) {
    for (const auto& p : s.samples) {
      csv.row({util::fixed(p.at.seconds(), 6), s.name,
               util::fixed(p.utilization, 6), util::fixed(p.queue_depth, 2),
               std::to_string(p.memory)});
    }
  }
}

}  // namespace faaspart::obs
