// Critical-path analyzer — "where did this request's latency go?"
//
// Operates on a plain vector of CausalSpans (live from a Tracer, or
// reconstructed offline by tools/obs-query from a Chrome trace), so the same
// decomposition runs inside a bench and against an exported artifact.
//
// Each request tree's root span ("request" for cluster submissions, "task"
// for direct DFK submissions) covers the whole submit→settle interval. The
// analyzer partitions that interval across named segments by a priority
// sweep: every descendant span maps to a segment (service queue, WAN legs,
// endpoint queue, cold start, execution, retry backoff, shed), overlapping
// segments resolve to the most specific one, and time no segment covers is
// attributed to "other". Time is attributed exactly once, so the per-request
// segment durations sum to the end-to-end latency — coverage() reports the
// named (non-"other") fraction, and the acceptance bar is >= 95% of every
// request's latency landing in named segments (tests/test_cluster_obs.cpp).
//
// Aggregation answers the operator question "where did p99 go": group
// requests by function, tenant, or routing site, take each group's p99
// end-to-end latency, and compare mean segment shares between the whole
// group and its tail (requests at or above p99).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "util/units.hpp"

namespace faaspart::obs {

/// One request's latency decomposition.
struct RequestBreakdown {
  std::uint64_t trace = 0;
  std::uint64_t root_span = 0;
  std::string name;    ///< function / app name (root span name)
  std::string tenant;  ///< root span tenant ("" when untagged)
  std::string site;    ///< root span site (routing policy or executor label)
  std::string note;    ///< root span note (outcome annotations)
  util::TimePoint start{};
  util::Duration total{};  ///< end-to-end latency (root span extent)
  /// Named-segment durations, e.g. {"squeue", "wan", "equeue", "cold",
  /// "exec", "backoff", "shed"}; holds "other" for unattributed time.
  std::map<std::string, util::Duration> segments;

  /// Time attributed to named (non-"other") segments.
  [[nodiscard]] util::Duration attributed() const;
  /// attributed() / total in [0, 1]; 1.0 for zero-length requests.
  [[nodiscard]] double coverage() const;
};

/// Segment a span kind contributes to, or "" for structural kinds
/// (request/task/attempt containers) that never receive time directly.
[[nodiscard]] const char* segment_for_kind(const std::string& kind);

/// Decomposes every request tree in `spans`. Roots are spans with
/// parent == 0; still-open roots (crashed runs) are skipped. Results are in
/// root-span-id (creation) order, so output is deterministic.
[[nodiscard]] std::vector<RequestBreakdown> analyze_requests(
    const std::vector<CausalSpan>& spans);

enum class GroupBy { kFunction, kTenant, kSite };

/// One group's aggregated decomposition.
struct GroupBreakdown {
  std::string key;
  std::size_t requests = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  /// Summed segment durations over all requests / over the p99 tail
  /// (requests with total >= the group p99).
  std::map<std::string, util::Duration> segments;
  std::map<std::string, util::Duration> tail_segments;
  std::size_t tail_requests = 0;
  double min_coverage = 1.0;  ///< worst per-request named coverage
};

/// Groups breakdowns by function name, tenant, or site (empty keys become
/// "-"); groups are sorted by key.
[[nodiscard]] std::vector<GroupBreakdown> aggregate_breakdowns(
    const std::vector<RequestBreakdown>& requests, GroupBy by);

/// Renders the "where did p99 go" table: one row per group with p50/p99 and
/// the tail's top segment shares.
[[nodiscard]] std::string render_critical_path(
    const std::vector<GroupBreakdown>& groups, const std::string& title);

}  // namespace faaspart::obs
