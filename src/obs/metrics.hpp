// Metrics registry: named counters, gauges, and log-bucketed histograms.
//
// The registry is the numeric half of the telemetry layer (the causal half
// lives in tracer.hpp). Instrumentation sites reach it through
// sim::Simulator::telemetry() — a single pointer null-check — so a run
// without telemetry pays nothing, and hot paths cache the returned
// Counter*/Gauge*/Histogram* handles, which stay stable for the registry's
// lifetime.
//
// Metric identity is (name, labels). Labels follow the Prometheus model:
// a small ordered set of key/value pairs baked into the series identity,
// e.g. kernel_launches_total{policy="mps"}.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace faaspart::obs {

/// Label set for one series. Kept sorted by key on registration so that
/// {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value (events, seconds-of-X accumulated).
class Counter {
 public:
  void add(double n = 1.0) { v_ += n; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0;
};

/// Point-in-time value (queue depth, memory in use). set_max() turns a
/// gauge into a high-water mark.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  void set_max(double v) {
    if (v > v_) v_ = v;
  }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0;
};

/// Log-bucketed histogram for latency-like observations in seconds.
///
/// Buckets are exponential (factor 2 from 1 µs), covering 1e-6 s to ~6.9e4 s
/// with 37 bounds plus an overflow bucket — coarse enough to be cheap,
/// fine enough that interpolated p50/p95/p99 land within a factor-2 bucket
/// of the truth, which is what capacity decisions need.
class Histogram {
 public:
  Histogram();

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
  }

  /// Interpolated quantile estimate, q in [0, 1]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  /// Upper bounds of the finite buckets (ascending); buckets() has one more
  /// entry — the +Inf overflow bucket — and holds per-bucket (not
  /// cumulative) counts.
  [[nodiscard]] const std::vector<double>& bounds() const;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Owns every series of a run. Lookup creates on first use; returned
/// references stay valid until the registry is destroyed. Iteration is in
/// (name, labels) order, so exports are deterministic.
class MetricsRegistry {
 public:
  using Key = std::pair<std::string, Labels>;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  [[nodiscard]] const std::map<Key, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<Key, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<Key, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

  [[nodiscard]] std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// "name" or "name{k=\"v\",...}" — the exposition identity of a series.
  static std::string series_id(const Key& key);

 private:
  /// Throws util::ConfigError when `name` is already registered with a
  /// different metric type — the classic Prometheus type-clash bug.
  void check_type(const std::string& name, const char* type);

  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, const char*> types_;  // name -> registered type
};

}  // namespace faaspart::obs
