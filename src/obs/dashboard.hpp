// Terminal summary dashboard: the "watch nvidia-smi + the scheduler log"
// view of a finished run, rendered as tables and sparklines.
#pragma once

#include <ostream>
#include <string>

namespace faaspart::obs {

class Telemetry;

void write_dashboard(std::ostream& os, const Telemetry& telemetry,
                     const std::string& title = "telemetry");

}  // namespace faaspart::obs
