#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::obs {

namespace {

// Shared bucket ladder: 1e-6 s doubling 36 times (~6.9e4 s). One static
// copy; every histogram indexes into it.
const std::vector<double>& bucket_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    double v = 1e-6;
    for (int i = 0; i < 37; ++i) {
      b.push_back(v);
      v *= 2;
    }
    return b;
  }();
  return bounds;
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

Histogram::Histogram() : buckets_(bucket_bounds().size() + 1, 0) {}

const std::vector<double>& Histogram::bounds() const { return bucket_bounds(); }

void Histogram::observe(double v) {
  const auto& bounds = bucket_bounds();
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v < min_) min_ = v;
  if (count_ == 1 || v > max_) max_ = v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  const auto& bounds = bucket_bounds();
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(below + in_bucket) >= target) {
      if (i >= bounds.size()) return max_;  // overflow bucket
      const double lo = std::max(i == 0 ? 0.0 : bounds[i - 1], min_);
      const double hi = std::min(bounds[i], max_);
      const double frac =
          (target - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    below += in_bucket;
  }
  return max_;
}

void MetricsRegistry::check_type(const std::string& name, const char* type) {
  const auto [it, inserted] = types_.emplace(name, type);
  if (!inserted && std::string(it->second) != type) {
    throw util::ConfigError(util::strf("metric '", name, "' registered as ",
                                       it->second, ", requested as ", type));
  }
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  check_type(name, "counter");
  auto& slot = counters_[Key{name, sorted(labels)}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  check_type(name, "gauge");
  auto& slot = gauges_[Key{name, sorted(labels)}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  check_type(name, "histogram");
  auto& slot = histograms_[Key{name, sorted(labels)}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::series_id(const Key& key) {
  if (key.second.empty()) return key.first;
  std::string out = key.first + "{";
  for (std::size_t i = 0; i < key.second.size(); ++i) {
    if (i > 0) out += ",";
    out += key.second[i].first + "=\"" + key.second[i].second + "\"";
  }
  out += "}";
  return out;
}

}  // namespace faaspart::obs
