#include "obs/tracer.hpp"

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace faaspart::obs {

std::uint64_t Tracer::open_span(std::uint64_t trace, std::uint64_t parent,
                                std::string name, std::string kind,
                                std::string site, int attempt) {
  FP_CHECK_MSG(trace != 0, "span opened without a trace id");
  CausalSpan s;
  s.trace = trace;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.name = std::move(name);
  s.kind = std::move(kind);
  s.site = std::move(site);
  s.attempt = attempt;
  s.start = sim_.now();
  s.end = s.start;  // grows on close; exporters treat open spans as instants
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

std::uint64_t Tracer::add_closed(std::uint64_t trace, std::uint64_t parent,
                                 std::string name, std::string kind,
                                 util::TimePoint start, util::TimePoint end,
                                 std::string site, int attempt) {
  FP_CHECK_MSG(end >= start, "causal span ends before it starts");
  const auto id =
      open_span(trace, parent, std::move(name), std::move(kind),
                std::move(site), attempt);
  auto& s = spans_[id - 1];
  s.start = start;
  s.end = end;
  s.open = false;
  return id;
}

void Tracer::close_span(std::uint64_t id) {
  if (id == 0) return;
  FP_CHECK_MSG(id <= spans_.size(), "close of unknown span");
  auto& s = spans_[id - 1];
  if (!s.open) return;  // idempotent — late closers after an error path
  s.end = sim_.now();
  s.open = false;
}

void Tracer::annotate(std::uint64_t id, const std::string& note) {
  if (id == 0) return;
  FP_CHECK_MSG(id <= spans_.size(), "annotate of unknown span");
  auto& s = spans_[id - 1];
  if (!s.note.empty()) s.note += "; ";
  s.note += note;
}

void Tracer::set_tenant(std::uint64_t id, std::string tenant) {
  if (id == 0) return;
  FP_CHECK_MSG(id <= spans_.size(), "set_tenant of unknown span");
  spans_[id - 1].tenant = std::move(tenant);
}

std::vector<const CausalSpan*> Tracer::trace_spans(std::uint64_t trace) const {
  std::vector<const CausalSpan*> out;
  for (const auto& s : spans_) {
    if (s.trace == trace) out.push_back(&s);
  }
  return out;
}

}  // namespace faaspart::obs
