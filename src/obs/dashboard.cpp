#include "obs/dashboard.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace faaspart::obs {

namespace {

// Eight-level block sparkline of a utilization series, resampled to fit.
std::string sparkline(const std::vector<PartitionSample>& samples,
                      std::size_t width = 40) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  if (samples.empty()) return "";
  std::string out;
  const std::size_t n = std::min(width, samples.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Mean utilization over this cell's slice of the series.
    const std::size_t lo = i * samples.size() / n;
    const std::size_t hi = std::max(lo + 1, (i + 1) * samples.size() / n);
    double sum = 0;
    for (std::size_t j = lo; j < hi; ++j) sum += samples[j].utilization;
    const double v = std::clamp(sum / static_cast<double>(hi - lo), 0.0, 1.0);
    out += kBlocks[static_cast<std::size_t>(v * 8.0 + 0.5)];
  }
  return out;
}

}  // namespace

void write_dashboard(std::ostream& os, const Telemetry& telemetry,
                     const std::string& title) {
  const auto& metrics = telemetry.metrics();
  os << "== " << title << " ==\n";

  if (!metrics.counters().empty()) {
    trace::Table t({"counter", "value"});
    for (const auto& [key, c] : metrics.counters()) {
      t.add_row({MetricsRegistry::series_id(key), util::fixed(c->value(), 0)});
    }
    os << "\n";
    t.print(os);
  }

  if (!metrics.gauges().empty()) {
    trace::Table t({"gauge", "value"});
    for (const auto& [key, g] : metrics.gauges()) {
      t.add_row({MetricsRegistry::series_id(key), util::fixed(g->value(), 3)});
    }
    os << "\n";
    t.print(os);
  }

  if (!metrics.histograms().empty()) {
    trace::Table t({"histogram", "count", "mean", "p50", "p95", "p99"});
    for (const auto& [key, h] : metrics.histograms()) {
      t.add_row({MetricsRegistry::series_id(key),
                 std::to_string(h->count()), util::fixed(h->mean(), 4),
                 util::fixed(h->p50(), 4), util::fixed(h->p95(), 4),
                 util::fixed(h->p99(), 4)});
    }
    os << "\n";
    t.print(os);
  }

  const auto& sampler = telemetry.sampler();
  bool any_samples = false;
  for (const auto& s : sampler.series()) {
    if (!s.samples.empty()) any_samples = true;
  }
  if (any_samples) {
    trace::Table t({"partition", "samples", "mean util", "peak util",
                    "peak mem", "utilization"});
    for (const auto& s : sampler.series()) {
      if (s.samples.empty()) continue;
      double peak = 0;
      const double span_s =
          (s.samples.back().at - s.samples.front().at).seconds() +
          sampler.period().seconds();
      for (const auto& p : s.samples) peak = std::max(peak, p.utilization);
      const double mean = span_s > 0 ? s.busy_integral_s / span_s : 0;
      t.add_row({s.name, std::to_string(s.samples.size()),
                 util::fixed(mean, 3), util::fixed(peak, 3),
                 util::format_bytes(s.memory_peak), sparkline(s.samples)});
    }
    os << "\n";
    t.print(os);
  }

  if (const auto* tracer = telemetry.tracer();
      tracer != nullptr && !tracer->spans().empty()) {
    os << "\ncausal traces: " << tracer->trace_count() << " tasks, "
       << tracer->spans().size() << " spans\n";
  }

  const SloMonitor& slo = telemetry.slo();
  if (!slo.alerts().empty()) {
    trace::Table t(
        {"slo alert", "key", "tenant", "at (s)", "burn long", "burn short"});
    for (const SloAlert& a : slo.alerts()) {
      t.add_row({a.firing ? "fire" : "clear", a.key,
                 a.tenant.empty() ? "-" : a.tenant,
                 util::fixed(a.at.seconds(), 3), util::fixed(a.burn_long, 2),
                 util::fixed(a.burn_short, 2)});
    }
    os << "\n";
    t.print(os);
  }

  if (const auto* fr = telemetry.flight()) {
    os << "\nflight recorder: " << fr->events_recorded() << " events across "
       << fr->keys().size() << " rings, " << fr->dumps().size() << " dumps ("
       << fr->dumps_taken() << " triggers)\n";
  }
}

}  // namespace faaspart::obs
