// TraceContext: the 16 bytes that ride along with a task so its whole story
// — submit, queue, cold start, body, kernels, retries — forms one connected
// tree in the causal tracer. Deliberately header-only and dependency-free:
// faas::TaskRecord embeds one by value whether or not telemetry is
// installed.
#pragma once

#include <cstdint>

namespace faaspart::obs {

struct TraceContext {
  /// Trace (logical task) id; 0 means "not traced" and downstream layers
  /// skip span creation entirely.
  std::uint64_t trace = 0;
  /// Span under which downstream layers open their children.
  std::uint64_t span = 0;

  [[nodiscard]] bool active() const { return trace != 0; }
};

}  // namespace faaspart::obs
