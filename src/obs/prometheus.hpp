// Prometheus text exposition (version 0.0.4) for a MetricsRegistry, plus a
// minimal line parser used by tests (and any in-repo tool) to prove the
// output round-trips: write_prometheus() -> parse_prometheus_text() must
// recover every sample.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace faaspart::obs {

class MetricsRegistry;

/// Writes every series with # HELP / # TYPE headers. Histograms expand into
/// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
void write_prometheus(std::ostream& os, const MetricsRegistry& registry);

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Parses exposition text into flat samples. Comment (#) and blank lines are
/// skipped; anything else malformed (bad metric name, unterminated label
/// string, non-numeric value) throws util::Error.
std::vector<PromSample> parse_prometheus_text(const std::string& text);

}  // namespace faaspart::obs
