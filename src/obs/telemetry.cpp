#include "obs/telemetry.hpp"

#include <filesystem>
#include <fstream>

#include "obs/chrome.hpp"
#include "obs/prometheus.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::obs {

Telemetry::Telemetry(sim::Simulator& sim, TelemetryOptions opts)
    : sim_(sim),
      opts_(opts),
      tracer_(sim),
      sampler_(sim, opts.sample_period, &metrics_),
      slo_(sim, &metrics_) {
  FP_CHECK_MSG(sim_.telemetry() == nullptr,
               "a Telemetry is already installed on this simulator");
  if (opts_.flight) {
    flight_ = std::make_unique<FlightRecorder>(sim, opts_.flight_capacity);
    // A burn-rate alert is exactly the "something went wrong" moment the
    // flight recorder exists for: snapshot the rings at the transition.
    slo_.set_alert_hook([this](const SloAlert& alert) {
      flight_->record("slo", alert.firing ? "alert-fire" : "alert-clear",
                      util::strf(alert.key, " burn long=",
                                 util::fixed(alert.burn_long, 2),
                                 " short=", util::fixed(alert.burn_short, 2)));
      if (alert.firing) flight_->dump(util::strf("slo:", alert.key));
    });
  }
  sim_.install_telemetry(this);
}

Telemetry::~Telemetry() { sim_.install_telemetry(nullptr); }

void Telemetry::finish() { sampler_.finish(); }

std::vector<std::string> Telemetry::export_all(const std::string& dir,
                                               const trace::Recorder* rec) {
  finish();
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;

  const auto open = [&](const char* file) {
    const std::string path = (std::filesystem::path(dir) / file).string();
    std::ofstream os(path);
    if (!os) throw util::Error(util::strf("cannot write ", path));
    paths.push_back(path);
    return os;
  };

  {
    auto os = open("metrics.prom");
    write_prometheus(os, metrics_);
  }
  {
    auto os = open("trace.json");
    write_enriched_chrome_trace(os, rec, tracer(), &sampler_);
  }
  {
    auto os = open("timeseries.csv");
    sampler_.write_csv(os);
  }
  if (flight_ != nullptr) {
    auto os = open("flight.fdump");
    flight_->write(os);
  }
  return paths;
}

}  // namespace faaspart::obs
