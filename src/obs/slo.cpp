#include "obs/slo.hpp"

#include <algorithm>
#include <utility>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace faaspart::obs {

SloMonitor::SloMonitor(sim::Simulator& sim, MetricsRegistry* metrics)
    : sim_(sim), metrics_(metrics) {}

void SloMonitor::configure(const std::string& key, SloTarget target) {
  FP_CHECK_MSG(target.target > 0.0 && target.target < 1.0,
               "SLO target must be a fraction in (0, 1)");
  FP_CHECK_MSG(target.short_window <= target.long_window,
               "SLO short window must not exceed the long window");
  State& st = states_[key];
  st.target = std::move(target);
  if (metrics_ != nullptr && st.latency == nullptr) {
    const Labels labels{{"function", key}, {"tenant", st.target.tenant}};
    st.latency = &metrics_->histogram("slo_latency_seconds", labels);
    st.good = &metrics_->counter("slo_good_total", labels);
    st.bad = &metrics_->counter("slo_breach_total", labels);
  }
}

bool SloMonitor::configured(const std::string& key) const {
  return states_.count(key) != 0;
}

const SloTarget* SloMonitor::target(const std::string& key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? nullptr : &it->second.target;
}

void SloMonitor::record_latency(const std::string& key, util::Duration latency,
                                bool good) {
  const auto it = states_.find(key);
  if (it == states_.end()) return;
  State& st = it->second;
  if (st.latency != nullptr) {
    st.latency->observe(latency.seconds());
    (good ? st.good : st.bad)->add();
  }
  note_outcome(key, st, !good);
}

void SloMonitor::record_shed(const std::string& key,
                             const std::string& reason) {
  const auto it = states_.find(key);
  if (it == states_.end()) return;
  State& st = it->second;
  if (metrics_ != nullptr) {
    Counter*& handle = st.shed[reason];  // cold path: one lookup per reason
    if (handle == nullptr) {
      handle = &metrics_->counter("slo_shed_total",
                                  {{"function", key}, {"reason", reason}});
    }
    handle->add();
  }
  note_outcome(key, st, /*is_bad=*/true);
}

void SloMonitor::note_outcome(const std::string& key, State& st, bool is_bad) {
  const util::TimePoint now = sim_.now();
  st.window.push_back({now.ns, is_bad});
  st.bad_long_n += is_bad;
  ++st.short_n;
  st.short_bad_n += is_bad;

  // Virtual time is monotone, so both window boundaries only move forward:
  // each outcome enters each tally once and leaves it once — O(1) amortized.
  const std::int64_t short_lo = now.ns - st.target.short_window.ns;
  while (st.short_pos < st.window.size() &&
         st.window[st.short_pos].at_ns < short_lo) {
    --st.short_n;
    st.short_bad_n -= st.window[st.short_pos].bad;
    ++st.short_pos;
  }
  const std::int64_t long_lo = now.ns - st.target.long_window.ns;
  while (!st.window.empty() && st.window.front().at_ns < long_lo) {
    st.bad_long_n -= st.window.front().bad;
    if (st.short_pos == 0) {  // still inside the short tally: evict there too
      --st.short_n;
      st.short_bad_n -= st.window.front().bad;
    } else {
      --st.short_pos;
    }
    st.window.pop_front();
  }

  const double budget = 1.0 - st.target.target;
  const auto frac = [](std::size_t bad, std::size_t n) {
    return n == 0 ? 0.0 : static_cast<double>(bad) / static_cast<double>(n);
  };
  st.burn_long = frac(st.bad_long_n, st.window.size()) / budget;
  st.burn_short = frac(st.short_bad_n, st.short_n) / budget;

  bool transition = false;
  if (!st.firing) {
    transition = st.window.size() >= st.target.min_samples &&
                 st.burn_long >= st.target.burn_threshold &&
                 st.burn_short >= st.target.burn_threshold;
  } else {
    // Hysteresis: a firing alert clears only once the sustained burn falls
    // below half the threshold, so it doesn't flap at the boundary.
    transition = st.burn_long < st.target.burn_threshold / 2.0;
  }
  if (!transition) return;
  st.firing = !st.firing;

  SloAlert alert;
  alert.at = now;
  alert.key = key;
  alert.tenant = st.target.tenant;
  alert.firing = st.firing;
  alert.burn_long = st.burn_long;
  alert.burn_short = st.burn_short;
  alerts_.push_back(alert);
  if (metrics_ != nullptr) {
    // Transitions are rare by construction (hysteresis), so the label
    // lookup here is off the hot path.
    metrics_
        ->counter("slo_alerts_total",
                  {{"function", key}, {"state", st.firing ? "fire" : "clear"}})
        .add();
  }
  if (hook_) hook_(alerts_.back());
}

bool SloMonitor::firing(const std::string& key) const {
  const auto it = states_.find(key);
  return it != states_.end() && it->second.firing;
}

double SloMonitor::burn_long(const std::string& key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? 0.0 : it->second.burn_long;
}

double SloMonitor::burn_short(const std::string& key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? 0.0 : it->second.burn_short;
}

}  // namespace faaspart::obs
