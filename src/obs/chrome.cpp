#include "obs/chrome.hpp"

#include <limits>
#include <map>

#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "trace/chrometrace.hpp"
#include "trace/recorder.hpp"
#include "util/strings.hpp"

namespace faaspart::obs {

namespace {

using trace::write_json_string;

double to_us(util::TimePoint t) { return static_cast<double>(t.ns) / 1e3; }
double to_us(util::Duration d) { return static_cast<double>(d.ns) / 1e3; }

}  // namespace

void write_enriched_chrome_trace(std::ostream& os, const trace::Recorder* rec,
                                 const Tracer* tracer,
                                 const UtilizationSampler* sampler,
                                 const std::string& process_name) {
  // Full double precision: µs timestamps late in a long run would otherwise
  // truncate to 6 significant digits, and obs-query's offline reconstruction
  // (tools/obsquery/loader.cpp) must re-quantize them to exact nanoseconds.
  const auto saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto begin = [&]() -> std::ostream& {
    if (!first) os << ",";
    first = false;
    os << "{";
    return os;
  };
  const auto meta_process = [&](int pid, const std::string& name) {
    begin() << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
            << ",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
  };
  const auto meta_thread = [&](int pid, std::uint64_t tid,
                               const std::string& name) {
    begin() << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
            << ",\"tid\":" << tid << ",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
  };

  // -- pid 1: resource lanes (what ran where) -------------------------------
  if (rec != nullptr) {
    meta_process(1, process_name + " / resources");
    for (trace::LaneId l = 0; l < rec->lane_count(); ++l) {
      meta_thread(1, l + 1, rec->lane_name(l));
    }
    for (const auto& s : rec->spans()) {
      begin() << "\"name\":";
      write_json_string(os, s.name);
      os << ",\"cat\":";
      write_json_string(os, s.category);
      os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.lane + 1
         << ",\"ts\":" << to_us(s.start) << ",\"dur\":" << to_us(s.end - s.start)
         << "}";
    }
  }

  // -- pid 2: causal task trees (what happened to each task) ----------------
  if (tracer != nullptr && !tracer->spans().empty()) {
    meta_process(2, process_name + " / tasks");
    // Name each task row after its root span.
    std::map<std::uint64_t, std::string> root_names;
    for (const auto& s : tracer->spans()) {
      if (s.parent == 0 && root_names.find(s.trace) == root_names.end()) {
        root_names.emplace(s.trace, s.name);
      }
    }
    for (const auto& [trace_id, name] : root_names) {
      meta_thread(2, trace_id, util::strf("task ", trace_id, ": ", name));
    }
    for (const auto& s : tracer->spans()) {
      begin() << "\"name\":";
      write_json_string(os, s.kind + ":" + s.name);
      os << ",\"cat\":";
      write_json_string(os, s.kind);
      os << ",\"ph\":\"X\",\"pid\":2,\"tid\":" << s.trace
         << ",\"ts\":" << to_us(s.start) << ",\"dur\":" << to_us(s.end - s.start)
         << ",\"args\":{";
      os << "\"span\":" << s.id << ",\"parent\":" << s.parent;
      if (s.attempt > 0) os << ",\"attempt\":" << s.attempt;
      if (!s.site.empty()) {
        os << ",\"site\":";
        write_json_string(os, s.site);
      }
      if (!s.tenant.empty()) {
        os << ",\"tenant\":";
        write_json_string(os, s.tenant);
      }
      if (!s.note.empty()) {
        os << ",\"note\":";
        write_json_string(os, s.note);
      }
      os << "}}";
    }
    // Flow events along every parent→child edge; the child's span id is the
    // flow id. The start point is clamped into the parent slice so viewers
    // bind it to the right box.
    for (const auto& s : tracer->spans()) {
      if (s.parent == 0 || s.parent > tracer->spans().size()) continue;
      const auto& p = tracer->spans()[s.parent - 1];
      util::TimePoint from = s.start;
      if (from > p.end) from = p.end;
      if (from < p.start) from = p.start;
      begin() << "\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":"
              << s.id << ",\"pid\":2,\"tid\":" << p.trace
              << ",\"ts\":" << to_us(from) << "}";
      begin() << "\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":"
              << "\"e\",\"id\":" << s.id << ",\"pid\":2,\"tid\":" << s.trace
              << ",\"ts\":" << to_us(s.start) << "}";
    }
  }

  // -- pid 3: sampled per-partition utilization counters --------------------
  if (sampler != nullptr) {
    bool any = false;
    for (const auto& series : sampler->series()) {
      if (!series.samples.empty()) any = true;
    }
    if (any) meta_process(3, process_name + " / partitions");
    for (const auto& series : sampler->series()) {
      for (const auto& p : series.samples) {
        begin() << "\"name\":";
        write_json_string(os, "util:" + series.name);
        os << ",\"ph\":\"C\",\"pid\":3,\"ts\":" << to_us(p.at)
           << ",\"args\":{\"utilization\":" << p.utilization
           << ",\"queue_depth\":" << p.queue_depth << "}}";
      }
    }
  }

  os << "]}";
  os.precision(saved_precision);
}

}  // namespace faaspart::obs
