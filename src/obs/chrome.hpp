// Enriched Chrome-trace export: resource lanes + causal task trees + sampled
// utilization counters in one chrome://tracing / ui.perfetto.dev file.
//
// Layout:
//   pid 1 — the trace::Recorder lanes, exactly as trace::write_chrome_trace;
//   pid 2 — one tid per causal trace (logical task): the root "task" span,
//           its attempts, and each attempt's queue/cold/body/kernel children
//           as nested "X" slices, with flow events ("s"/"f", cat "causal")
//           drawn along every parent→child edge — a retried task renders as
//           arrows from the root to each attempt;
//   pid 3 — "C" counter tracks from the utilization sampler's series.
#pragma once

#include <ostream>
#include <string>

namespace faaspart::trace {
class Recorder;
}  // namespace faaspart::trace

namespace faaspart::obs {

class Tracer;
class UtilizationSampler;

/// Any of `rec`, `tracer`, `sampler` may be null; the corresponding section
/// is omitted. The output is a single valid-JSON object.
void write_enriched_chrome_trace(std::ostream& os, const trace::Recorder* rec,
                                 const Tracer* tracer,
                                 const UtilizationSampler* sampler,
                                 const std::string& process_name = "faaspart");

}  // namespace faaspart::obs
