// SLO monitors — per-function/tenant SLI recording and multi-window
// burn-rate alerting, entirely in virtual time.
//
// Each configured key (a cluster function id) gets an SLI stream: the
// serving layer reports every settled request (latency + good/bad against
// the completion objective) and every shed. The monitor keeps a sliding
// window of outcomes and evaluates the SRE-style multi-window burn rate on
// every record:
//
//     burn = (bad fraction over window) / (1 - target)
//
// i.e. how many times faster than sustainable the error budget is burning.
// An alert fires when BOTH the long window (sustained, not one blip) and
// the short window (still happening now) burn at or above the threshold;
// it clears with hysteresis once the long-window burn drops below half the
// threshold. Evaluation is purely event-driven — no timers, no simulator
// events — so an installed monitor can never perturb virtual time, and the
// alert sequence is a deterministic function of the workload (pinned in
// tests/test_obs_slo.cpp).
//
// SLIs also land in the metrics registry (latency histograms, goodput /
// breach / shed-by-reason counters — shed reasons spelled via
// federation::shed_reason_name, see admission.hpp), and an alert hook lets
// the Telemetry hub chain breaches into the flight recorder's dump trigger.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace faaspart::sim {
class Simulator;
}  // namespace faaspart::sim

namespace faaspart::obs {

/// One key's objective and alerting policy.
struct SloTarget {
  std::string tenant;          ///< SLO-class label for grouping ("" = none)
  util::Duration objective{};  ///< completion-latency SLO; 0 = goodput only
  double target = 0.99;        ///< good-outcome fraction the SLO promises
  util::Duration long_window = util::seconds(60);
  util::Duration short_window = util::seconds(5);
  double burn_threshold = 2.0;  ///< alert at >= this burn on both windows
  std::size_t min_samples = 10; ///< long-window outcomes before alerting
};

/// An alert transition (fire or clear), emitted into virtual time.
struct SloAlert {
  util::TimePoint at{};
  std::string key;
  std::string tenant;
  bool firing = false;  ///< true on fire, false on clear
  double burn_long = 0;
  double burn_short = 0;
};

class SloMonitor {
 public:
  using AlertHook = std::function<void(const SloAlert&)>;

  /// `metrics` (optional) receives the SLI series; null keeps the monitor
  /// purely in-memory (unit tests).
  explicit SloMonitor(sim::Simulator& sim, MetricsRegistry* metrics = nullptr);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Registers (or replaces) a key's target. Records for unconfigured keys
  /// are dropped — the serving layer configures every function it serves.
  void configure(const std::string& key, SloTarget target);
  [[nodiscard]] bool configured(const std::string& key) const;
  [[nodiscard]] const SloTarget* target(const std::string& key) const;

  /// Reports a settled request. `good` = completed within the objective.
  void record_latency(const std::string& key, util::Duration latency,
                      bool good);

  /// Reports a shed request (always burns budget); `reason` is the
  /// canonical shed-reason spelling (federation::shed_reason_name).
  void record_shed(const std::string& key, const std::string& reason);

  /// Called on every fire/clear, after the alert is appended to alerts().
  void set_alert_hook(AlertHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] const std::vector<SloAlert>& alerts() const { return alerts_; }
  [[nodiscard]] bool firing(const std::string& key) const;
  /// Burn rates over the configured windows at the last record ({0,0}
  /// before any outcome).
  [[nodiscard]] double burn_long(const std::string& key) const;
  [[nodiscard]] double burn_short(const std::string& key) const;
  [[nodiscard]] std::size_t keys_configured() const { return states_.size(); }

 private:
  struct Outcome {
    std::int64_t at_ns;
    bool bad;
  };

  struct State {
    SloTarget target;
    std::deque<Outcome> window;  ///< pruned to long_window on every record
    // Incremental window tallies, so each record is O(1) amortized instead
    // of a full window rescan (the scan made sustained load quadratic and
    // blew the <2% metrics-only budget bench/obs_overhead gates).
    std::size_t bad_long_n = 0;   ///< bad outcomes currently in the window
    std::size_t short_n = 0;      ///< outcomes within short_window of now
    std::size_t short_bad_n = 0;  ///< bad outcomes within short_window
    std::size_t short_pos = 0;    ///< window index of the short-window start
    bool firing = false;
    double burn_long = 0;
    double burn_short = 0;
    // Cached SLI handles (rule O1): resolved once at configure().
    Histogram* latency = nullptr;
    Counter* good = nullptr;
    Counter* bad = nullptr;
    std::map<std::string, Counter*> shed;  ///< by canonical reason
  };

  void note_outcome(const std::string& key, State& st, bool is_bad);

  sim::Simulator& sim_;
  MetricsRegistry* metrics_;
  std::map<std::string, State> states_;
  std::vector<SloAlert> alerts_;
  AlertHook hook_;
};

}  // namespace faaspart::obs
