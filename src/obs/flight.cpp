#include "obs/flight.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace faaspart::obs {

FlightRecorder::FlightRecorder(sim::Simulator& sim, std::size_t capacity_per_key,
                               std::size_t max_dumps)
    : sim_(sim), capacity_(capacity_per_key), max_dumps_(max_dumps) {
  FP_CHECK_MSG(capacity_ > 0, "flight recorder ring capacity must be positive");
}

void FlightRecorder::record(const std::string& key, const std::string& kind,
                            const std::string& message, std::uint64_t trace) {
  auto& ring = rings_[key];
  if (ring.size() == capacity_) {
    ring.pop_front();
    ++evicted_;
  }
  FlightEvent ev;
  ev.at = sim_.now();
  ev.seq = next_seq_++;
  ev.key = key;
  ev.kind = kind;
  ev.message = message;
  ev.trace = trace;
  ring.push_back(std::move(ev));
  ++recorded_;
}

int FlightRecorder::dump(const std::string& reason) {
  ++dumps_taken_;
  if (dumps_.size() >= max_dumps_) return -1;
  FlightDump d;
  d.at = sim_.now();
  d.reason = reason;
  for (const auto& [key, ring] : rings_) {
    d.events.insert(d.events.end(), ring.begin(), ring.end());
  }
  std::sort(d.events.begin(), d.events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.at.ns != b.at.ns ? a.at.ns < b.at.ns : a.seq < b.seq;
            });
  dumps_.push_back(std::move(d));
  return static_cast<int>(dumps_.size()) - 1;
}

std::vector<FlightEvent> FlightRecorder::ring(const std::string& key) const {
  const auto it = rings_.find(key);
  if (it == rings_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> FlightRecorder::keys() const {
  std::vector<std::string> out;
  out.reserve(rings_.size());
  for (const auto& [key, ring] : rings_) out.push_back(key);
  return out;
}

std::string fdump_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void FlightRecorder::write(std::ostream& os) const {
  os << "fdump v1\n";
  for (std::size_t i = 0; i < dumps_.size(); ++i) {
    const FlightDump& d = dumps_[i];
    os << "dump " << i + 1 << " at_ns " << d.at.ns << " events "
       << d.events.size() << " reason " << fdump_escape(d.reason) << "\n";
    for (const FlightEvent& ev : d.events) {
      os << ev.at.ns << '\t' << ev.seq << '\t' << fdump_escape(ev.key) << '\t'
         << fdump_escape(ev.kind) << '\t' << ev.trace << '\t'
         << fdump_escape(ev.message) << '\n';
    }
    os << "end\n";
  }
}

}  // namespace faaspart::obs
