#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::obs {

namespace {

void write_label_value(std::ostream& os, const std::string& v) {
  os << '"';
  for (const char c : v) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// Writes `name{k="v",...}` with an optional extra label appended (used for
/// histogram `le`).
void write_series(std::ostream& os, const std::string& name,
                  const Labels& labels, const std::string& extra_key = "",
                  const std::string& extra_value = "") {
  os << name;
  if (labels.empty() && extra_key.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << '=';
    write_label_value(os, v);
  }
  if (!extra_key.empty()) {
    if (!first) os << ',';
    os << extra_key << '=';
    write_label_value(os, extra_value);
  }
  os << '}';
}

void write_value(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  os << tmp.str();
}

void write_header(std::ostream& os, std::string& last_family,
                  const std::string& name, const char* type) {
  if (name == last_family) return;
  last_family = name;
  os << "# HELP " << name << " faaspart " << type << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

bool valid_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
  throw util::Error(util::strf("prometheus parse: line ", line_no, ": ", why));
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  std::string last_family;
  for (const auto& [key, counter] : registry.counters()) {
    write_header(os, last_family, key.first, "counter");
    write_series(os, key.first, key.second);
    os << ' ';
    write_value(os, counter->value());
    os << '\n';
  }
  for (const auto& [key, gauge] : registry.gauges()) {
    write_header(os, last_family, key.first, "gauge");
    write_series(os, key.first, key.second);
    os << ' ';
    write_value(os, gauge->value());
    os << '\n';
  }
  for (const auto& [key, hist] : registry.histograms()) {
    write_header(os, last_family, key.first, "histogram");
    const auto& bounds = hist->bounds();
    const auto& buckets = hist->buckets();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += buckets[i];
      write_series(os, key.first + "_bucket", key.second, "le",
                   util::strf(bounds[i]));
      os << ' ' << cumulative << '\n';
    }
    write_series(os, key.first + "_bucket", key.second, "le", "+Inf");
    os << ' ' << hist->count() << '\n';
    write_series(os, key.first + "_sum", key.second);
    os << ' ';
    write_value(os, hist->sum());
    os << '\n';
    write_series(os, key.first + "_count", key.second);
    os << ' ' << hist->count() << '\n';
  }
}

std::vector<PromSample> parse_prometheus_text(const std::string& text) {
  std::vector<PromSample> out;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size() || line[i] == '#') continue;

    PromSample sample;
    const std::size_t name_start = i;
    while (i < line.size() && valid_name_char(line[i], i == name_start)) ++i;
    if (i == name_start) parse_fail(line_no, "expected metric name");
    sample.name = line.substr(name_start, i - name_start);

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (true) {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
        if (i < line.size() && line[i] == '}') {
          ++i;
          break;
        }
        const std::size_t key_start = i;
        while (i < line.size() && valid_name_char(line[i], i == key_start)) ++i;
        if (i == key_start) parse_fail(line_no, "expected label name");
        const std::string key = line.substr(key_start, i - key_start);
        if (i >= line.size() || line[i] != '=') {
          parse_fail(line_no, "expected '=' after label name");
        }
        ++i;
        if (i >= line.size() || line[i] != '"') {
          parse_fail(line_no, "expected '\"' opening label value");
        }
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            if (i >= line.size()) parse_fail(line_no, "dangling escape");
            switch (line[i]) {
              case 'n': value += '\n'; break;
              case '\\': value += '\\'; break;
              case '"': value += '"'; break;
              default: parse_fail(line_no, "unknown escape in label value");
            }
          } else {
            value += line[i];
          }
          ++i;
        }
        if (i >= line.size()) parse_fail(line_no, "unterminated label value");
        ++i;  // closing quote
        sample.labels.emplace(key, std::move(value));
        if (i < line.size() && line[i] == ',') ++i;
      }
    }

    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == line.size()) parse_fail(line_no, "missing sample value");
    const std::string value_str = line.substr(i);
    if (value_str == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str()) parse_fail(line_no, "non-numeric value");
      while (*end != '\0') {
        if (!std::isspace(static_cast<unsigned char>(*end))) {
          parse_fail(line_no, "trailing junk after value");
        }
        ++end;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace faaspart::obs
