#include "serve/balance.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "gpu/kernel.hpp"
#include "gpu/mig.hpp"
#include "util/error.hpp"

namespace faaspart::serve {

std::vector<core::ProfileScore> prefill_profile_scores(
    const gpu::GpuArchSpec& arch, const workloads::LlamaSpec& spec,
    const workloads::LlamaRunConfig& run, const WorkloadShape& shape) {
  const util::Bytes footprint = workloads::llama_memory_footprint(spec, run);
  const int prompt = std::max(1, static_cast<int>(shape.mean_prompt));
  const util::Bytes transient_kv =
      workloads::llama_kv_bytes_per_token(spec, run) * prompt;
  std::vector<core::ProfileScore> scores;
  for (const gpu::MigProfile& p : gpu::mig_profiles(arch)) {
    if (p.memory(arch) < footprint + transient_kv) continue;
    const gpu::KernelDesc k = workloads::llama_prefill_kernel(spec, run, prompt);
    const gpu::KernelGrant grant{p.sms(arch)};
    const double t = gpu::solo_service_time(arch, k, grant).seconds();
    if (t <= 0) continue;
    scores.push_back(core::ProfileScore{p.name, t, 1.0 / t});
  }
  return scores;
}

std::vector<core::ProfileScore> decode_profile_scores(
    const gpu::GpuArchSpec& arch, const workloads::LlamaSpec& spec,
    const workloads::LlamaRunConfig& run, const EngineConfig& engine,
    const WorkloadShape& shape) {
  workloads::LlamaRunConfig kv_run = run;
  kv_run.model_kv_cache = true;
  const util::Bytes footprint = workloads::llama_memory_footprint(spec, kv_run);
  const double kv_tok =
      static_cast<double>(workloads::llama_kv_bytes_per_token(spec, kv_run));
  const double mean_output = std::max(1.0, shape.mean_output);
  const double context_end = std::max(1.0, shape.mean_prompt) + mean_output;
  // Mid-flight context: what a steady-state batch slot actually streams.
  const int context_mid = std::max(
      1, static_cast<int>(shape.mean_prompt + mean_output / 2.0));
  std::vector<core::ProfileScore> scores;
  for (const gpu::MigProfile& p : gpu::mig_profiles(arch)) {
    if (p.memory(arch) <= footprint) continue;
    const double kv_capacity =
        static_cast<double>(p.memory(arch) - footprint) *
        engine.admit_watermark;
    const int fit = static_cast<int>(kv_capacity / (kv_tok * context_end));
    if (fit < 1) continue;
    const int batch = std::clamp(fit, 1, engine.max_batch);
    const std::vector<int> positions(static_cast<std::size_t>(batch),
                                     context_mid);
    const gpu::KernelDesc k =
        workloads::llama_batched_decode_kernel(spec, kv_run, positions);
    const gpu::KernelGrant grant{p.sms(arch)};
    const double step =
        gpu::solo_service_time(arch, k, grant).seconds() +
        engine.iteration_gap.seconds();
    if (step <= 0) continue;
    const double latency = mean_output * step;
    scores.push_back(
        core::ProfileScore{p.name, latency, batch / latency});
  }
  return scores;
}

namespace {

core::FleetPlan current_pool_plan(const gpu::GpuArchSpec& arch,
                                  const DisaggConfig& cfg) {
  std::vector<std::pair<std::string, std::string>> assignments;
  for (int i = 0; i < cfg.prefill.instances; ++i) {
    assignments.emplace_back("prefill", cfg.prefill.profile);
  }
  for (int i = 0; i < cfg.decode.instances; ++i) {
    assignments.emplace_back("decode", cfg.decode.profile);
  }
  core::FleetPlan plan;
  plan.gpus.push_back(core::layout_from_profiles(arch, assignments));
  return plan;
}

/// Dominant profile and placement count of `function` in a one-GPU plan.
PoolSpec pool_from_plan(const core::FleetPlan& plan,
                        const std::string& function) {
  std::map<std::string, int> by_profile;
  int total = 0;
  for (const core::GpuLayout& gpu : plan.gpus) {
    for (const core::Placement& pl : gpu.placements) {
      if (pl.function != function) continue;
      ++by_profile[pl.profile];
      ++total;
    }
  }
  PoolSpec spec;
  spec.instances = total;
  int best = 0;
  for (const auto& [profile, count] : by_profile) {
    if (count > best) {
      best = count;
      spec.profile = profile;
    }
  }
  return spec;
}

}  // namespace

PoolPlan plan_pools(const gpu::GpuArchSpec& arch, const DisaggConfig& cfg,
                    const WorkloadShape& shape,
                    const core::PlannerOptions& opts) {
  std::vector<core::FunctionDemand> demands;
  {
    core::FunctionDemand d;
    d.name = "prefill";
    d.rate_hz = shape.rate_hz;
    d.memory = workloads::llama_memory_footprint(cfg.spec, cfg.run);
    d.scores = prefill_profile_scores(arch, cfg.spec, cfg.run, shape);
    demands.push_back(std::move(d));
  }
  {
    core::FunctionDemand d;
    d.name = "decode";
    d.rate_hz = shape.rate_hz;
    d.memory = workloads::llama_memory_footprint(cfg.spec, cfg.run);
    d.scores = decode_profile_scores(arch, cfg.spec, cfg.run, cfg.engine, shape);
    demands.push_back(std::move(d));
  }

  const core::FleetPlan current = current_pool_plan(arch, cfg);
  PoolPlan out;
  out.result = core::plan_fleet(arch, 1, demands, current, opts);
  out.prefill = pool_from_plan(out.result.plan, "prefill");
  out.decode = pool_from_plan(out.result.plan, "decode");
  if (out.prefill.instances < 1 || out.decode.instances < 1) {
    // A starved pool is not a disaggregated layout; keep what we have.
    out.prefill = cfg.prefill;
    out.decode = cfg.decode;
    out.result.apply = false;
    out.result.reason = "plan starves a pool; keeping the current layout";
  }
  return out;
}

PoolBalancer::PoolBalancer(DisaggLlmServer& server, Options opts)
    : server_(server), opts_(opts) {
  FP_CHECK_MSG(opts_.interval.ns > 0, "balancer: interval must be positive");
  FP_CHECK_MSG(opts_.horizon.ns > 0, "balancer: horizon must be positive");
}

void PoolBalancer::start() {
  FP_CHECK_MSG(!started_, "balancer started twice");
  started_ = true;
  last_submitted_ = server_.stats().submitted;
  server_.sim().spawn(loop(), server_.name() + "/balancer");
}

sim::Co<void> PoolBalancer::loop() {
  sim::Simulator& sim = server_.sim();
  const util::TimePoint deadline = sim.now() + opts_.horizon;
  for (;;) {
    co_await sim.delay(opts_.interval);
    if (sim.now() >= deadline) break;
    const std::uint64_t submitted = server_.stats().submitted;
    const double rate = static_cast<double>(submitted - last_submitted_) /
                        opts_.interval.seconds();
    last_submitted_ = submitted;
    if (rate < opts_.min_rate_hz) continue;
    ++stats_.ticks;
    WorkloadShape shape;
    shape.rate_hz = rate;
    shape.mean_prompt = opts_.mean_prompt;
    shape.mean_output = opts_.mean_output;
    const PoolPlan plan = plan_pools(server_.device().arch(), server_.config(),
                                     shape, opts_.planner);
    ++stats_.plans;
    if (!plan.result.apply) continue;
    if (plan.prefill == server_.prefill_spec() &&
        plan.decode == server_.decode_spec()) {
      continue;
    }
    co_await server_.relayout(plan.prefill, plan.decode);
    ++stats_.applies;
  }
}

}  // namespace faaspart::serve
