#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::serve {

ServingEngine::ServingEngine(sim::Simulator& sim, gpu::Device& dev,
                             EngineConfig cfg, gpu::ContextOptions copts,
                             std::string name)
    : sim_(sim),
      dev_(dev),
      cfg_(std::move(cfg)),
      name_(std::move(name)),
      pager_([&] {
        // A serving engine without KV accounting would let the pager admit
        // fiction; force the flag before anything derives bytes from it.
        cfg_.run.model_kv_cache = true;
        FP_CHECK_MSG(cfg_.page_tokens > 0, "engine: page_tokens must be positive");
        FP_CHECK_MSG(cfg_.max_batch > 0, "engine: max_batch must be positive");
        FP_CHECK_MSG(cfg_.token_budget > 0, "engine: token_budget must be positive");
        ctx_ = dev_.create_context(name_, copts);
        weights_alloc_ = dev_.alloc(
            ctx_, workloads::llama_memory_footprint(cfg_.spec, cfg_.run),
            "weights");
        gpu::MemoryPool& pool = copts.instance
                                    ? *dev_.instance(*copts.instance).memory
                                    : dev_.memory();
        util::Bytes kv_capacity = pool.free_bytes();
        if (cfg_.kv_reserve > 0) kv_capacity = std::min(kv_capacity, cfg_.kv_reserve);
        if (kv_capacity > 0) kv_alloc_ = dev_.alloc(ctx_, kv_capacity, "kv-pool");
        gpu::KvPagerConfig pcfg;
        pcfg.page_tokens = cfg_.page_tokens;
        pcfg.bytes_per_token =
            workloads::llama_kv_bytes_per_token(cfg_.spec, cfg_.run);
        pcfg.capacity = kv_capacity;
        pcfg.admit_watermark = cfg_.admit_watermark;
        return gpu::KvPager(pcfg);
      }()),
      work_gate_(sim, false),
      idle_gate_(sim, true),
      stopped_gate_(sim, false) {}

ServingEngine::~ServingEngine() = default;

void ServingEngine::start() {
  FP_CHECK_MSG(!started_, "engine started twice");
  started_ = true;
  sim_.spawn(run_loop(), name_ + "/loop");
}

sim::Future<RequestOutcome> ServingEngine::submit(LlmRequest req) {
  auto r = std::make_unique<ServedRequest>();
  if (req.id == 0) req.id = next_request_id_++;
  req.prompt_tokens = std::max(1, req.prompt_tokens);
  req.max_new_tokens = std::max(1, req.max_new_tokens);
  r->req = req;
  r->submitted = sim_.now();
  r->done = sim::Promise<RequestOutcome>(sim_);
  sim::Future<RequestOutcome> fut = r->done.future();
  enqueue(std::move(r));
  return fut;
}

void ServingEngine::enqueue(ServedRequestPtr r) {
  FP_CHECK_MSG(r && r->req.id != 0, "enqueue of an unidentified request");
  FP_CHECK_MSG(r->done.valid(), "enqueue of a promiseless request");
  if (stop_requested_ || loop_exited_) {
    settle_shed(sim_, *r, kReasonQueueFull);
    ++stats_.sheds;
    record(EngineEventKind::kShed, r->req.id, 0);
    return;
  }
  auto seq = std::make_unique<Seq>();
  seq->r = std::move(r);
  waiting_.push_back(std::move(seq));
  idle_gate_.close();
  work_gate_.open();
}

bool ServingEngine::adopt_prefilled(ServedRequestPtr& r) {
  FP_CHECK_MSG(r && r->req.id != 0, "adopt of an unidentified request");
  const int context = r->context_tokens();
  if (stop_requested_ || loop_exited_ || !can_adopt(context)) return false;
  auto seq = std::make_unique<Seq>();
  seq->kv = pager_.create(util::strf("req-", r->req.id));
  // can_adopt() held under the watermark, which grow() does not even need.
  FP_CHECK(pager_.grow(seq->kv, context));
  seq->position = context;
  seq->r = std::move(r);
  ++stats_.adopted;
  record(EngineEventKind::kAdmit, seq->r->req.id, context);
  waiting_.push_back(std::move(seq));
  idle_gate_.close();
  work_gate_.open();
  return true;
}

bool ServingEngine::can_adopt(int context_tokens) const {
  // +1: the adopted context must be able to append at least one token.
  return pager_.can_admit(context_tokens + 1);
}

void ServingEngine::request_stop() {
  stop_requested_ = true;
  work_gate_.open();  // wake an idle loop so it can exit
}

sim::Co<void> ServingEngine::stopped() { co_await stopped_gate_.wait(); }

sim::Co<void> ServingEngine::drained() { co_await idle_gate_.wait(); }

void ServingEngine::shutdown() {
  if (shut_down_) return;
  FP_CHECK_MSG(!started_ || loop_exited_, "shutdown of a running engine loop");
  FP_CHECK_MSG(idle(), "shutdown with queued or batched requests");
  dev_.destroy_context(ctx_);  // frees weights and the KV pool with it
  shut_down_ = true;
}

sim::Co<void> ServingEngine::run_loop() {
  for (;;) {
    if (waiting_.empty() && running_.empty()) {
      idle_gate_.open();
      if (stop_requested_) break;
      work_gate_.close();
      co_await work_gate_.wait();
      continue;
    }
    idle_gate_.close();
    ++stats_.iterations;
    co_await step();
  }
  loop_exited_ = true;
  stopped_gate_.open();
}

sim::Co<void> ServingEngine::step() {
  int iteration_tokens = 0;
  std::vector<Seq*> to_prefill = admit(iteration_tokens);

  // Inline prefill for newly admitted (or preempted-and-readmitted)
  // contexts. A device error fails the whole iteration: every batched
  // sequence is preempted and requeued or settled.
  for (Seq* s : to_prefill) {
    const int context = s->r->context_tokens();
    gpu::KernelDesc kernel =
        workloads::llama_prefill_kernel(cfg_.spec, cfg_.run, context);
    try {
      co_await dev_.launch(ctx_, kernel);
    } catch (const std::exception&) {
      fail_iteration(kReasonDeviceError);
      co_return;
    }
    s->position = context;
    stats_.prefill_tokens += static_cast<std::uint64_t>(context);
    record(EngineEventKind::kPrefill, s->r->req.id, context);
  }

  if (!running_.empty()) {
    ensure_decode_capacity();
  }
  if (!running_.empty()) {
    std::vector<int> positions;
    positions.reserve(running_.size());
    for (const SeqPtr& s : running_) {
      FP_CHECK_MSG(s->position >= s->r->context_tokens(),
                   "decode on an unprefilled sequence");
      FP_CHECK_MSG(pager_.live(s->kv) &&
                       pager_.tokens_of(s->kv) >= s->position + 1,
                   "decode on evicted KV");
      positions.push_back(s->position);
      record(EngineEventKind::kDecode, s->r->req.id, s->position);
    }
    gpu::KernelDesc kernel =
        workloads::llama_batched_decode_kernel(cfg_.spec, cfg_.run, positions);
    try {
      co_await dev_.launch(ctx_, kernel);
    } catch (const std::exception&) {
      fail_iteration(kReasonDeviceError);
      co_return;
    }
    const int batch = static_cast<int>(running_.size());
    ++stats_.decode_steps;
    stats_.decode_tokens += static_cast<std::uint64_t>(batch);
    stats_.peak_batch = std::max(stats_.peak_batch, batch);
    iteration_tokens += batch;

    std::size_t i = 0;
    while (i < running_.size()) {
      Seq& s = *running_[i];
      s.position += 1;
      ServedRequest& r = *s.r;
      r.generated += 1;
      if (!r.first_token) {
        r.first_token = true;
        r.first_token_at = sim_.now();
      }
      if (r.generated >= r.req.max_new_tokens) {
        complete(i);
      } else {
        ++i;
      }
    }
  }

  record(EngineEventKind::kIteration, 0, iteration_tokens);
  co_await sim_.delay(cfg_.iteration_gap);
  touch_idle_gates();
}

std::vector<ServingEngine::Seq*> ServingEngine::admit(int& iteration_tokens) {
  std::vector<Seq*> to_prefill;
  // Every already-batched sequence decodes one token this iteration.
  int committed = static_cast<int>(running_.size());
  while (!waiting_.empty() &&
         static_cast<int>(running_.size()) < cfg_.max_batch) {
    Seq& head = *waiting_.front();
    ServedRequest& r = *head.r;

    if (cfg_.queue_deadline.ns > 0 &&
        sim_.now() - r.submitted > cfg_.queue_deadline) {
      SeqPtr seq = std::move(waiting_.front());
      waiting_.pop_front();
      if (seq->kv != 0) pager_.release(seq->kv);
      record(EngineEventKind::kShed, seq->r->req.id, 0);
      settle_shed(sim_, *seq->r, kReasonExpired);
      ++stats_.sheds;
      continue;
    }

    const int context = r.context_tokens();
    const bool needs_prefill = !head.prefilled();
    if (needs_prefill) {
      FP_CHECK_MSG(cfg_.inline_prefill,
                   "raw context queued on a decode-only engine");
      if (context + 1 > cfg_.token_budget ||
          !pager_.can_ever_admit(context + 1)) {
        // This context can never be admitted; shed it rather than letting
        // FCFS head-of-line blocking become a livelock.
        SeqPtr seq = std::move(waiting_.front());
        waiting_.pop_front();
        if (seq->kv != 0) pager_.release(seq->kv);
        record(EngineEventKind::kShed, seq->r->req.id, 0);
        settle_shed(sim_, *seq->r, kReasonKvCapacity);
        ++stats_.sheds;
        continue;
      }
      if (!pager_.can_admit(context + 1)) break;  // wait for pages to free
    }
    const int cost = (needs_prefill ? context : 0) + 1;
    if (committed + cost > cfg_.token_budget) break;
    committed += cost;
    iteration_tokens += needs_prefill ? context : 0;

    SeqPtr seq = std::move(waiting_.front());
    waiting_.pop_front();
    if (needs_prefill) {
      if (seq->kv == 0) {
        seq->kv = pager_.create(util::strf("req-", seq->r->req.id));
      }
      // Reserve the context's pages NOW: the next waiter's watermark check
      // must see this admission as used pages, or a burst of co-arriving
      // contexts would all clear against the same free pool and overrun it
      // at prefill time.
      FP_CHECK(pager_.grow(seq->kv, context));
      to_prefill.push_back(seq.get());
    }
    ++stats_.admitted;
    record(EngineEventKind::kAdmit, seq->r->req.id, context);
    running_.push_back(std::move(seq));
  }
  return to_prefill;
}

void ServingEngine::ensure_decode_capacity() {
  std::size_t i = 0;
  while (i < running_.size()) {
    Seq& s = *running_[i];
    if (pager_.grow(s.kv, s.position + 1)) {
      ++i;
      continue;
    }
    // No free page: evict the most recently admitted sequence (LIFO — the
    // oldest work keeps its progress). When the starving sequence IS the
    // victim, it preempts itself.
    const std::size_t victim = running_.size() - 1;
    preempt_out(victim);
    // Retry the same index: either the victim freed pages for `s`, or `s`
    // itself left the batch and `i` now points at the next sequence (or
    // past the end).
  }
}

void ServingEngine::preempt_out(std::size_t index) {
  FP_CHECK(index < running_.size());
  SeqPtr seq = std::move(running_[index]);
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(index));
  const int freed = pager_.preempt(seq->kv);
  seq->position = 0;
  ++stats_.preemptions;
  record(EngineEventKind::kPreempt, seq->r->req.id, freed);
  requeue_or_shed(std::move(seq), kReasonKvCapacity, /*count_preemption=*/true);
}

void ServingEngine::requeue_or_shed(SeqPtr seq, const char* reason,
                                    bool count_preemption) {
  ServedRequest& r = *seq->r;
  if (count_preemption) {
    ++r.preemptions;
    if (r.preemptions > cfg_.max_preemptions) {
      pager_.release(seq->kv);
      record(EngineEventKind::kShed, r.req.id, 0);
      settle_shed(sim_, r, reason);
      ++stats_.sheds;
      return;
    }
  } else {
    ++r.fault_retries;
    if (r.fault_retries > cfg_.max_fault_retries) {
      pager_.release(seq->kv);
      record(EngineEventKind::kFail, r.req.id, 0);
      settle_failed(sim_, r, reason);
      ++stats_.failures;
      return;
    }
  }
  if (cfg_.inline_prefill) {
    // Keep the (now page-less) pager entry and resume at the queue head so
    // preempted work re-admits before new arrivals.
    waiting_.push_front(std::move(seq));
  } else {
    // Decode-only engine: the context must be re-prefilled elsewhere.
    pager_.release(seq->kv);
    seq->kv = 0;
    FP_CHECK_MSG(static_cast<bool>(cfg_.external_requeue),
                 "decode-only engine preempted without a requeue hook");
    cfg_.external_requeue(std::move(seq->r));
  }
}

void ServingEngine::fail_iteration(const char* reason) {
  ++stats_.device_errors;
  while (!running_.empty()) {
    SeqPtr seq = std::move(running_.back());
    running_.pop_back();
    const int freed = pager_.preempt(seq->kv);
    seq->position = 0;
    record(EngineEventKind::kPreempt, seq->r->req.id, freed);
    requeue_or_shed(std::move(seq), reason, /*count_preemption=*/false);
  }
  touch_idle_gates();
}

void ServingEngine::complete(std::size_t index) {
  FP_CHECK(index < running_.size());
  SeqPtr seq = std::move(running_[index]);
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(index));
  pager_.release(seq->kv);
  record(EngineEventKind::kComplete, seq->r->req.id, seq->r->generated);
  settle_completed(sim_, *seq->r);
  ++stats_.completions;
}

void ServingEngine::record(EngineEventKind kind, RequestId request, int tokens) {
  if (!cfg_.keep_log) return;
  log_.push_back(EngineEvent{stats_.iterations, kind, request, tokens});
}

void ServingEngine::touch_idle_gates() {
  if (waiting_.empty() && running_.empty()) idle_gate_.open();
}

}  // namespace faaspart::serve
