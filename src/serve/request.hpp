// Request/outcome types shared by the LLM serving engine (engine.hpp), the
// disaggregated server (disagg.hpp) and the bench harness (DESIGN.md §14).
//
// A ServedRequest is created once at the front door and settled exactly
// once — completed, shed (with a canonical reason string) or failed — no
// matter how many times it is preempted, re-prefilled or handed between
// pools along the way. The settle_* helpers enforce that single-settle
// invariant with FP_CHECK; the engine property suite re-checks it from the
// outside over generated workloads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace faaspart::serve {

using RequestId = std::uint64_t;

/// One completion request: a prompt to ingest and a token budget to decode.
struct LlmRequest {
  RequestId id = 0;  ///< 0 = assign at submit
  int prompt_tokens = 128;
  int max_new_tokens = 100;
};

enum class OutcomeKind {
  kCompleted,  ///< full `max_new_tokens` generated
  kShed,       ///< refused or evicted past its retry budget; reason says why
  kFailed,     ///< device fault exhausted the retry budget
};

[[nodiscard]] constexpr const char* outcome_kind_name(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kCompleted: return "completed";
    case OutcomeKind::kShed: return "shed";
    case OutcomeKind::kFailed: return "failed";
  }
  return "?";
}

// Canonical shed/fail reason spellings for this layer (federation's
// ShedReason spellings are reused where the cause matches its semantics).
inline constexpr const char* kReasonKvCapacity = "kv-capacity";
inline constexpr const char* kReasonQueueFull = "queue-full";
inline constexpr const char* kReasonExpired = "expired";
inline constexpr const char* kReasonRateLimit = "rate-limit";
inline constexpr const char* kReasonDeviceError = "device-error";

/// The settled result of one request.
struct RequestOutcome {
  OutcomeKind kind = OutcomeKind::kCompleted;
  std::string reason;        ///< empty for completed
  util::Duration ttft{};     ///< submit → first output token (completed only)
  util::Duration latency{};  ///< submit → settle
  int tokens_out = 0;        ///< output tokens actually generated
  int preemptions = 0;       ///< KV evictions suffered (recompute restarts)
  int handoffs = 0;          ///< prefill→decode pool transfers (disagg)
};

/// A request in flight. Owned by exactly one stage at a time (front-door
/// queue, prefill worker, decode engine) and moved between them.
struct ServedRequest {
  LlmRequest req;
  util::TimePoint submitted{};
  sim::Promise<RequestOutcome> done;
  bool settled = false;

  bool first_token = false;
  util::TimePoint first_token_at{};
  int generated = 0;     ///< output tokens produced so far (kept on preempt)
  int preemptions = 0;
  int fault_retries = 0;  ///< device-error evictions survived so far
  int handoffs = 0;

  /// Context the next prefill must (re)build: prompt plus already-generated
  /// tokens (recompute after a copy-free preemption).
  [[nodiscard]] int context_tokens() const {
    return req.prompt_tokens + generated;
  }
};

using ServedRequestPtr = std::unique_ptr<ServedRequest>;

namespace detail {
inline RequestOutcome outcome_base(const sim::Simulator& sim,
                                   const ServedRequest& r) {
  RequestOutcome out;
  out.latency = sim.now() - r.submitted;
  out.tokens_out = r.generated;
  out.preemptions = r.preemptions;
  out.handoffs = r.handoffs;
  return out;
}
}  // namespace detail

inline void settle_completed(const sim::Simulator& sim, ServedRequest& r) {
  FP_CHECK_MSG(!r.settled, "request settled twice");
  r.settled = true;
  RequestOutcome out = detail::outcome_base(sim, r);
  out.kind = OutcomeKind::kCompleted;
  out.ttft = r.first_token ? r.first_token_at - r.submitted : util::Duration{};
  r.done.set_value(std::move(out));
}

inline void settle_shed(const sim::Simulator& sim, ServedRequest& r,
                        std::string reason) {
  FP_CHECK_MSG(!r.settled, "request settled twice");
  r.settled = true;
  RequestOutcome out = detail::outcome_base(sim, r);
  out.kind = OutcomeKind::kShed;
  out.reason = std::move(reason);
  r.done.set_value(std::move(out));
}

inline void settle_failed(const sim::Simulator& sim, ServedRequest& r,
                          std::string reason) {
  FP_CHECK_MSG(!r.settled, "request settled twice");
  r.settled = true;
  RequestOutcome out = detail::outcome_base(sim, r);
  out.kind = OutcomeKind::kFailed;
  out.reason = std::move(reason);
  r.done.set_value(std::move(out));
}

}  // namespace faaspart::serve
