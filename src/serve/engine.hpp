// ServingEngine — iteration-level continuous batching over the LLaMa cost
// model (DESIGN.md §14).
//
// The engine owns one GPU context (whole device or one MIG instance), the
// model weights resident on it, and a KvPager carved out of the remaining
// HBM. Its loop is the vLLM-style scheduler reduced to the cost model:
//
//   per iteration:
//     1. admit waiting requests FCFS while the decode batch has room, the
//        iteration's token budget holds, and the pager admits the context
//        under its watermark;
//     2. run prefill for newly admitted contexts (inline mode — the
//        disaggregated decode pools instead adopt contexts prefilled
//        elsewhere via adopt_prefilled());
//     3. run ONE fused decode step for the whole batch
//        (llama_batched_decode_kernel: weights stream once per step, not
//        once per sequence — the continuous-batching win), append one token
//        per sequence, retire finished sequences;
//     4. pay one host-side iteration gap (batched sampling/detokenize).
//
// KV pressure is resolved by copy-free LIFO preemption: when a sequence
// cannot grow by one token, the most recently admitted sequence is evicted
// (pages returned, context recomputed on re-admission). A device error
// fails the in-flight launch; the engine reclaims every page and requeues
// or sheds the affected requests — settled exactly once either way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/device.hpp"
#include "gpu/kv_pager.hpp"
#include "serve/request.hpp"
#include "sim/co.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "workloads/llama.hpp"

namespace faaspart::serve {

struct EngineConfig {
  workloads::LlamaSpec spec = workloads::llama2_7b();
  /// model_kv_cache is forced on — a serving engine without KV accounting
  /// would let the pager admit fiction.
  workloads::LlamaRunConfig run = workloads::serving_config();

  int page_tokens = 16;
  /// Decode batch ceiling (sequences per iteration).
  int max_batch = 16;
  /// Per-iteration token budget: admitted prefill context tokens plus one
  /// decode token per batched sequence. Requests whose whole context
  /// exceeds it (or the pager watermark) are shed at admission — FCFS
  /// head-of-line blocking must never become a livelock.
  int token_budget = 768;
  double admit_watermark = 0.90;
  /// Host-side work per iteration (batched sampling, detokenize, queue
  /// bookkeeping). Replaces the per-token host gap of run-to-completion
  /// decode: the iteration loop pays it once per step, whatever the batch.
  util::Duration iteration_gap = util::milliseconds(5);
  /// Shed waiting requests older than this at admission time; 0 = none.
  util::Duration queue_deadline{};
  /// Evictions a request survives before it is shed ("kv-capacity").
  int max_preemptions = 3;
  /// Device faults a request survives before it fails ("device-error").
  int max_fault_retries = 2;
  /// True: the engine prefills admitted contexts itself (colocated mode).
  /// False: it only decodes; contexts arrive via adopt_prefilled() and
  /// preempted requests leave through `external_requeue` for re-prefill.
  bool inline_prefill = true;
  /// KV pool bytes; 0 = everything left in the context's memory pool after
  /// the weights.
  util::Bytes kv_reserve = 0;
  /// Record the per-iteration event log (tests; unbounded, off by default).
  bool keep_log = false;
  /// Disaggregation hook: receives preempted/faulted requests instead of
  /// the engine's own waiting queue when inline_prefill is false.
  std::function<void(ServedRequestPtr)> external_requeue;
};

struct EngineStats {
  std::uint64_t iterations = 0;
  std::uint64_t decode_steps = 0;
  std::uint64_t decode_tokens = 0;
  std::uint64_t prefill_tokens = 0;
  std::uint64_t admitted = 0;
  std::uint64_t adopted = 0;  ///< prefilled contexts accepted (disagg)
  std::uint64_t completions = 0;
  std::uint64_t sheds = 0;
  std::uint64_t failures = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t device_errors = 0;  ///< faulted iterations survived
  int peak_batch = 0;
};

enum class EngineEventKind {
  kAdmit,      ///< tokens = context to (re)build
  kPrefill,    ///< tokens = context tokens ingested
  kDecode,     ///< per sequence in the step; tokens = its context position
  kIteration,  ///< one per iteration; tokens = prefill + decode token total
  kPreempt,    ///< tokens = pages freed
  kComplete,
  kShed,
  kFail,
};

struct EngineEvent {
  std::uint64_t iteration = 0;
  EngineEventKind kind{};
  RequestId request = 0;  ///< 0 for kIteration
  int tokens = 0;
};

class ServingEngine {
 public:
  /// Creates the context, loads the weights and carves the KV pool. The
  /// loop starts on start().
  ServingEngine(sim::Simulator& sim, gpu::Device& dev, EngineConfig cfg,
                gpu::ContextOptions copts = {}, std::string name = "engine");
  ~ServingEngine();
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  void start();

  /// Colocated entry: queue for admission → prefill → decode.
  sim::Future<RequestOutcome> submit(LlmRequest req);
  /// Disaggregated entry for an externally owned request (promise made at
  /// the front door).
  void enqueue(ServedRequestPtr r);

  /// Disagg handoff: adopts a context prefilled elsewhere, reserving its KV
  /// pages now. False (request untouched) when the pager cannot admit it.
  [[nodiscard]] bool adopt_prefilled(ServedRequestPtr& r);
  /// Watermark-level admission probe for the disagg router.
  [[nodiscard]] bool can_adopt(int context_tokens) const;

  /// Queued + batched requests (the disagg router's load signal).
  [[nodiscard]] std::size_t load() const {
    return waiting_.size() + running_.size();
  }
  [[nodiscard]] bool idle() const { return load() == 0; }

  /// Finish everything queued, then stop the loop (new submits are shed
  /// with "queue-full"). stopped() completes when the loop has exited.
  void request_stop();
  [[nodiscard]] sim::Co<void> stopped();
  /// Completes whenever the engine has no queued or running work.
  [[nodiscard]] sim::Co<void> drained();

  /// Tears down the GPU context (requires an exited loop and no work) —
  /// the pool balancer calls this before destroying the MIG instance.
  void shutdown();

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<EngineEvent>& log() const { return log_; }
  [[nodiscard]] const gpu::KvPager& pager() const { return pager_; }
  [[nodiscard]] gpu::ContextId context() const { return ctx_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Seq {
    ServedRequestPtr r;
    gpu::KvSeqId kv = 0;
    int position = 0;  ///< context tokens resident in KV
    bool prefilled() const { return position >= r->context_tokens(); }
  };
  using SeqPtr = std::unique_ptr<Seq>;

  sim::Co<void> run_loop();
  sim::Co<void> step();
  /// Moves admissible waiting requests into the batch; returns the contexts
  /// needing prefill this iteration and charges them to `iteration_tokens`.
  std::vector<Seq*> admit(int& iteration_tokens);
  /// Ensures every batched sequence can append one token, evicting LIFO
  /// victims under pressure.
  void ensure_decode_capacity();
  void preempt_out(std::size_t index);
  void requeue_or_shed(SeqPtr seq, const char* reason, bool count_preemption);
  void fail_iteration(const char* reason);
  void complete(std::size_t index);
  void record(EngineEventKind kind, RequestId request, int tokens);
  void touch_idle_gates();

  sim::Simulator& sim_;
  gpu::Device& dev_;
  EngineConfig cfg_;
  std::string name_;
  gpu::ContextId ctx_ = 0;
  gpu::AllocationId weights_alloc_ = 0;
  gpu::AllocationId kv_alloc_ = 0;
  gpu::KvPager pager_;

  std::deque<SeqPtr> waiting_;
  std::vector<SeqPtr> running_;  ///< the decode batch, admission order

  bool started_ = false;
  bool stop_requested_ = false;
  bool loop_exited_ = false;
  bool shut_down_ = false;
  sim::Gate work_gate_;
  sim::Gate idle_gate_;
  sim::Gate stopped_gate_;

  RequestId next_request_id_ = 1;
  EngineStats stats_;
  std::vector<EngineEvent> log_;
};

}  // namespace faaspart::serve
