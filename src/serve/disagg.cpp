#include "serve/disagg.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::serve {

DisaggLlmServer::DisaggLlmServer(sim::Simulator& sim, gpu::Device& dev,
                                 DisaggConfig cfg, std::string name)
    : sim_(sim),
      dev_(dev),
      cfg_(std::move(cfg)),
      name_(std::move(name)),
      queue_gate_(sim, false),
      workers_dead_(sim, true) {
  cfg_.run.model_kv_cache = true;
  FP_CHECK_MSG(cfg_.prefill.instances > 0, "disagg: empty prefill pool");
  FP_CHECK_MSG(cfg_.decode.instances > 0, "disagg: empty decode pool");
  if (cfg_.cls.rate_hz > 0) {
    bucket_.emplace(cfg_.cls.rate_hz, std::max(1.0, cfg_.cls.burst), sim_.now());
  }
  dev_.enable_mig();
  build_pools();
}

DisaggLlmServer::~DisaggLlmServer() = default;

void DisaggLlmServer::build_pools() {
  const util::Bytes footprint =
      workloads::llama_memory_footprint(cfg_.spec, cfg_.run);
  for (int i = 0; i < cfg_.prefill.instances; ++i) {
    auto slot = std::make_unique<PrefillSlot>();
    slot->inst = dev_.create_instance(cfg_.prefill.profile);
    gpu::ContextOptions copts;
    copts.instance = slot->inst;
    slot->ctx = dev_.create_context(util::strf(name_, "/prefill", i), copts);
    slot->weights = dev_.alloc(slot->ctx, footprint, "weights");
    prefill_slots_.push_back(std::move(slot));
  }
  for (int i = 0; i < cfg_.decode.instances; ++i) {
    const gpu::InstanceId inst = dev_.create_instance(cfg_.decode.profile);
    decode_instances_.push_back(inst);
    EngineConfig e = cfg_.engine;
    e.spec = cfg_.spec;
    e.run = cfg_.run;
    e.inline_prefill = false;
    e.external_requeue = [this](ServedRequestPtr r) {
      requeue_front(std::move(r));
    };
    gpu::ContextOptions copts;
    copts.instance = inst;
    auto eng = std::make_unique<ServingEngine>(
        sim_, dev_, std::move(e), copts, util::strf(name_, "/decode", i));
    eng->start();
    decode_engines_.push_back(std::move(eng));
  }
  for (std::size_t i = 0; i < prefill_slots_.size(); ++i) {
    ++workers_live_;
    workers_dead_.close();
    sim_.spawn(worker(generation_, i), util::strf(name_, "/prefill", i));
  }
  if (!queue_.empty() && !paused_) queue_gate_.open();
}

sim::Co<void> DisaggLlmServer::teardown_pools() {
  // Stale the workers; parked ones wake, see the generation change and
  // exit, busy ones finish their in-flight prefill first.
  ++generation_;
  queue_gate_.open();
  co_await workers_dead_.wait();
  // Drain the decode engines: queued sequences finish decoding, preempted
  // ones re-queue here for re-prefill after the rebuild.
  for (auto& e : decode_engines_) e->request_stop();
  for (auto& e : decode_engines_) {
    co_await e->stopped();
    e->shutdown();
  }
  decode_engines_.clear();
  for (const gpu::InstanceId inst : decode_instances_) {
    dev_.destroy_instance(inst);
  }
  decode_instances_.clear();
  for (auto& slot : prefill_slots_) {
    dev_.destroy_context(slot->ctx);
    dev_.destroy_instance(slot->inst);
  }
  prefill_slots_.clear();
}

sim::Co<void> DisaggLlmServer::relayout(PoolSpec prefill, PoolSpec decode) {
  FP_CHECK_MSG(!paused_, "overlapping relayouts");
  FP_CHECK_MSG(prefill.instances > 0 && decode.instances > 0,
               "relayout to an empty pool");
  paused_ = true;
  co_await teardown_pools();
  co_await sim_.delay(dev_.arch().mig_reset);
  cfg_.prefill = std::move(prefill);
  cfg_.decode = std::move(decode);
  paused_ = false;
  build_pools();
  ++stats_.relayouts;
}

sim::Co<void> DisaggLlmServer::stop() {
  stop_requested_ = true;
  co_await teardown_pools();
  while (!queue_.empty()) {
    ServedRequestPtr r = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.shed_queue_full;
    settle_shed(sim_, *r, kReasonQueueFull);
  }
}

sim::Future<RequestOutcome> DisaggLlmServer::submit(LlmRequest req) {
  auto r = std::make_unique<ServedRequest>();
  if (req.id == 0) req.id = next_request_id_++;
  req.prompt_tokens = std::max(1, req.prompt_tokens);
  req.max_new_tokens = std::max(1, req.max_new_tokens);
  r->req = req;
  r->submitted = sim_.now();
  r->done = sim::Promise<RequestOutcome>(sim_);
  sim::Future<RequestOutcome> fut = r->done.future();
  ++stats_.submitted;
  if (stop_requested_) {
    ++stats_.shed_queue_full;
    settle_shed(sim_, *r, kReasonQueueFull);
  } else if (bucket_ && !bucket_->try_take(sim_.now())) {
    ++stats_.shed_rate_limit;
    settle_shed(sim_, *r, kReasonRateLimit);
  } else if (cfg_.cls.max_queue > 0 && queue_.size() >= cfg_.cls.max_queue) {
    ++stats_.shed_queue_full;
    settle_shed(sim_, *r, kReasonQueueFull);
  } else {
    queue_.push_back(std::move(r));
    if (!paused_) queue_gate_.open();
  }
  return fut;
}

void DisaggLlmServer::requeue_front(ServedRequestPtr r) {
  ++stats_.requeues;
  queue_.push_front(std::move(r));
  if (!paused_ && !stop_requested_) queue_gate_.open();
}

ServingEngine* DisaggLlmServer::pick_decode(int context_tokens) {
  ServingEngine* best = nullptr;
  for (const auto& e : decode_engines_) {
    if (!e->can_adopt(context_tokens)) continue;
    if (!best || e->load() < best->load()) best = e.get();
  }
  return best;
}

sim::Co<void> DisaggLlmServer::worker(int generation, std::size_t slot_index) {
  for (;;) {
    if (generation != generation_ || stop_requested_) break;
    if (paused_ || queue_.empty()) {
      queue_gate_.close();
      co_await queue_gate_.wait();
      continue;
    }
    ServedRequestPtr r = std::move(queue_.front());
    queue_.pop_front();
    co_await run_prefill(*prefill_slots_[slot_index], std::move(r));
  }
  if (--workers_live_ == 0) workers_dead_.open();
}

sim::Co<void> DisaggLlmServer::run_prefill(PrefillSlot& slot,
                                           ServedRequestPtr r) {
  const int context = r->context_tokens();
  const util::Bytes kv_bytes =
      workloads::llama_kv_bytes_per_token(cfg_.spec, cfg_.run) * context;

  // Transient prefill KV on this pool; the decode pool holds the durable
  // copy (reserved at adoption), so this frees at handoff.
  gpu::AllocationId kv = 0;
  bool faulted = false;
  bool oom = false;
  try {
    if (kv_bytes > 0) kv = dev_.alloc(slot.ctx, kv_bytes, "prefill-kv");
    gpu::KernelDesc kernel =
        workloads::llama_prefill_kernel(cfg_.spec, cfg_.run, context);
    co_await dev_.launch(slot.ctx, kernel);
  } catch (const util::OutOfMemoryError&) {
    oom = true;  // the prompt cannot fit this prefill instance, ever
  } catch (const std::exception&) {
    faulted = true;  // device error failed the launch; context survives
  }
  if (kv != 0) dev_.free(slot.ctx, kv);
  if (oom) {
    settle_shed(sim_, *r, kReasonKvCapacity);
    co_return;
  }
  if (faulted) {
    ++stats_.device_errors;
    ++r->fault_retries;
    if (r->fault_retries > cfg_.engine.max_fault_retries) {
      settle_failed(sim_, *r, kReasonDeviceError);
    } else {
      requeue_front(std::move(r));
    }
    co_return;
  }
  ++stats_.prefills;
  stats_.prefill_tokens += static_cast<std::uint64_t>(context);

  // KV handoff to the decode pool over the host link.
  const double bw =
      cfg_.handoff_bw > 0 ? cfg_.handoff_bw : dev_.arch().host_link_bw;
  util::Duration handoff = cfg_.handoff_latency;
  if (bw > 0 && kv_bytes > 0) {
    handoff = handoff + util::from_seconds(static_cast<double>(kv_bytes) / bw);
  }
  co_await sim_.delay(handoff);
  ++r->handoffs;
  ++stats_.handoffs;
  stats_.handoff_bytes += kv_bytes;

  for (int attempt = 0;; ++attempt) {
    if (stop_requested_) {
      ++stats_.shed_queue_full;
      settle_shed(sim_, *r, kReasonQueueFull);
      co_return;
    }
    if (paused_) {
      // Relayout in progress: the decode pool is draining. The prefilled
      // state is lost with its transient pool — recompute afterwards.
      requeue_front(std::move(r));
      co_return;
    }
    ServingEngine* engine = pick_decode(r->context_tokens());
    // faaspart-lint: allow(E1) -- adopt_prefilled(ServedRequestPtr&) moves
    // from r exactly when it returns true, so this co_return leaves with
    // ownership already transferred; the checker cannot see through the
    // out-parameter
    if (engine != nullptr && engine->adopt_prefilled(r)) co_return;
    ++stats_.adopt_rejects;
    if (attempt >= cfg_.max_adopt_retries) {
      settle_shed(sim_, *r, kReasonKvCapacity);
      co_return;
    }
    co_await sim_.delay(cfg_.adopt_retry_delay);
  }
}

faas::AppDef make_llm_serving_app(const std::string& name,
                                  DisaggLlmServer& server, LlmRequest shape) {
  faas::AppDef app;
  app.name = name;
  // The endpoint forwards to the serving tier; it needs no weights or GPU
  // context of its own on the routing worker.
  app.model_bytes = 0;
  // faaspart-lint: allow(C2) -- stored in AppDef::body for the app's whole
  // lifetime; the server reference must outlive the AppDef by contract
  app.body = [&server, shape](faas::TaskContext&) -> sim::Co<faas::AppValue> {
    sim::Future<RequestOutcome> fut = server.submit(shape);
    const RequestOutcome out = co_await fut;
    co_return faas::AppValue{static_cast<double>(out.tokens_out)};
  };
  return app;
}

}  // namespace faaspart::serve
