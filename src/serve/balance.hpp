// PoolBalancer — planner-driven online re-partitioning of the prefill and
// decode pools (DESIGN.md §14).
//
// The disaggregated server's two pools are just two "functions" to the
// partition planner: "prefill" demands the request arrival rate with
// compute-bound GEMM scores, "decode" demands the same rate with scores
// from the batched-decode step time and each profile's KV capacity (which
// caps the sustainable batch). plan_pools() feeds both to core::plan_fleet
// over one GPU and reads the pool shapes back out of the winning layout —
// the same reset-cost amortization that gates the cluster Repartitioner
// decides whether flipping the pools is worth a MIG reset.
//
// PoolBalancer is the thin online applier: every interval it estimates the
// arrival rate from the server's counters, replans, and calls
// DisaggLlmServer::relayout() when the planner says apply.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition_planner.hpp"
#include "serve/disagg.hpp"

namespace faaspart::serve {

/// The workload statistics the analytic pool scores need.
struct WorkloadShape {
  double rate_hz = 0;        ///< offered request rate
  double mean_prompt = 128;  ///< mean prompt tokens
  double mean_output = 100;  ///< mean output tokens
};

/// Analytic ProfileScores for the prefill pseudo-function: per-prompt GEMM
/// service time at each viable profile's SM count. Profiles that cannot
/// hold the weights plus one prompt's transient KV are omitted.
[[nodiscard]] std::vector<core::ProfileScore> prefill_profile_scores(
    const gpu::GpuArchSpec& arch, const workloads::LlamaSpec& spec,
    const workloads::LlamaRunConfig& run, const WorkloadShape& shape);

/// Analytic ProfileScores for the decode pseudo-function: the profile's KV
/// capacity bounds the decode batch, the batched step time at its SM count
/// gives per-request latency (mean_output iterations in the batch) and
/// throughput (batch / that). Profiles whose KV pool cannot hold even one
/// mean-length context are omitted.
[[nodiscard]] std::vector<core::ProfileScore> decode_profile_scores(
    const gpu::GpuArchSpec& arch, const workloads::LlamaSpec& spec,
    const workloads::LlamaRunConfig& run, const EngineConfig& engine,
    const WorkloadShape& shape);

struct PoolPlan {
  PoolSpec prefill;
  PoolSpec decode;
  core::PlanResult result;
};

/// Plans pool shapes for `shape` on one `arch` GPU, treating cfg's current
/// pools as the incumbent layout. result.apply is false (and the current
/// pools are echoed back) when the planner starves either pool or the gain
/// does not amortize the MIG reset.
[[nodiscard]] PoolPlan plan_pools(const gpu::GpuArchSpec& arch,
                                  const DisaggConfig& cfg,
                                  const WorkloadShape& shape,
                                  const core::PlannerOptions& opts = {});

class PoolBalancer {
 public:
  struct Options {
    util::Duration interval = util::from_seconds(30);
    /// Stop ticking this long after start(); must be positive so the
    /// balancer process cannot keep the simulation alive forever.
    util::Duration horizon = util::from_seconds(300);
    double mean_prompt = 128;
    double mean_output = 100;
    /// Below this observed rate there is no signal worth a replan.
    double min_rate_hz = 0.01;
    core::PlannerOptions planner;
  };

  struct Stats {
    std::uint64_t ticks = 0;    ///< intervals with enough signal to plan
    std::uint64_t plans = 0;    ///< planner invocations
    std::uint64_t applies = 0;  ///< relayouts actually driven
  };

  PoolBalancer(DisaggLlmServer& server, Options opts);

  void start();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  sim::Co<void> loop();

  DisaggLlmServer& server_;
  Options opts_;
  Stats stats_;
  bool started_ = false;
  std::uint64_t last_submitted_ = 0;
};

}  // namespace faaspart::serve
