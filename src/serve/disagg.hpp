// DisaggLlmServer — prefill/decode disaggregation (DESIGN.md §14).
//
// DistServe-style pool separation on one MIG-partitioned GPU: prompt
// ingestion (compute-bound GEMMs) runs on a pool of prefill instances,
// token generation (bandwidth-bound batched decode) on a pool of decode
// instances running ServingEngine in decode-only mode. The two phases stop
// interfering: a long prompt no longer stalls every co-resident decode
// iteration (TTFT and TPOT decouple).
//
// The handoff is the price: a prefilled context's KV pages move to the
// decode pool over the host link (arch.host_link_bw), modelled as a latency
// plus bytes/bandwidth delay before the decode engine adopts the sequence
// (adopt_prefilled reserves its pages on arrival). Decode-side preemptions
// flow back here for re-prefill (copy-free eviction means recompute).
//
// relayout() re-partitions the pools online — drain, MIG reset, rebuild —
// and is what the PoolBalancer (balance.hpp) drives from planner output.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faas/app.hpp"
#include "federation/admission.hpp"
#include "gpu/device.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "sim/co.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace faaspart::serve {

/// One pool's MIG shape: how many instances of which profile.
struct PoolSpec {
  std::string profile = "3g.40gb";
  int instances = 1;

  friend bool operator==(const PoolSpec&, const PoolSpec&) = default;
};

struct DisaggConfig {
  workloads::LlamaSpec spec = workloads::llama2_7b();
  workloads::LlamaRunConfig run = workloads::serving_config();
  /// Template for the decode engines (spec/run/inline_prefill/
  /// external_requeue are overridden per instance).
  EngineConfig engine;

  PoolSpec prefill{"3g.40gb", 1};
  PoolSpec decode{"4g.40gb", 1};

  /// KV handoff bandwidth, bytes/s; 0 = the device's host link (PCIe).
  double handoff_bw = 0;
  /// Fixed handoff cost (RPC + page-table install) per transfer.
  util::Duration handoff_latency = util::microseconds(200);

  /// Front-door admission: rate_hz/burst drive a token bucket ("rate-limit"
  /// sheds), max_queue caps the prefill queue ("queue-full" sheds).
  federation::FunctionClass cls;

  /// Adoption attempts before a prefilled context is shed ("kv-capacity").
  int max_adopt_retries = 8;
  util::Duration adopt_retry_delay = util::milliseconds(10);
};

struct DisaggStats {
  std::uint64_t submitted = 0;
  std::uint64_t shed_rate_limit = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t prefills = 0;
  std::uint64_t prefill_tokens = 0;
  std::uint64_t handoffs = 0;
  util::Bytes handoff_bytes = 0;
  std::uint64_t adopt_rejects = 0;  ///< adoption attempts the pagers refused
  std::uint64_t requeues = 0;       ///< contexts sent back for re-prefill
  std::uint64_t relayouts = 0;      ///< pool re-partitions applied
  std::uint64_t device_errors = 0;  ///< prefill-side faults survived
};

class DisaggLlmServer {
 public:
  /// Enables MIG (the device must have no live contexts), carves both pools
  /// and starts their engines and prefill workers — the server accepts
  /// submissions as soon as it is constructed.
  DisaggLlmServer(sim::Simulator& sim, gpu::Device& dev, DisaggConfig cfg,
                  std::string name = "disagg");
  ~DisaggLlmServer();
  DisaggLlmServer(const DisaggLlmServer&) = delete;
  DisaggLlmServer& operator=(const DisaggLlmServer&) = delete;

  sim::Future<RequestOutcome> submit(LlmRequest req);

  /// Re-partitions the pools: stops the prefill workers, drains and shuts
  /// down the decode engines, destroys every instance, pays the MIG reset,
  /// rebuilds with the new shapes. Requests keep queueing at the front door
  /// throughout; in-flight decode work finishes before the reset (nothing
  /// decodes mid-reset — chaos-tested).
  sim::Co<void> relayout(PoolSpec prefill, PoolSpec decode);

  /// Graceful stop: drains everything in the pools, then sheds what never
  /// reached one ("queue-full").
  sim::Co<void> stop();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] const DisaggStats& stats() const { return stats_; }
  [[nodiscard]] const DisaggConfig& config() const { return cfg_; }
  [[nodiscard]] const PoolSpec& prefill_spec() const { return cfg_.prefill; }
  [[nodiscard]] const PoolSpec& decode_spec() const { return cfg_.decode; }
  [[nodiscard]] gpu::Device& device() { return dev_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ServingEngine>>&
  decode_engines() const {
    return decode_engines_;
  }

 private:
  struct PrefillSlot {
    gpu::InstanceId inst = 0;
    gpu::ContextId ctx = 0;
    gpu::AllocationId weights = 0;
  };

  void build_pools();
  sim::Co<void> teardown_pools();
  sim::Co<void> worker(int generation, std::size_t slot_index);
  sim::Co<void> run_prefill(PrefillSlot& slot, ServedRequestPtr r);
  [[nodiscard]] ServingEngine* pick_decode(int context_tokens);
  void requeue_front(ServedRequestPtr r);

  sim::Simulator& sim_;
  gpu::Device& dev_;
  DisaggConfig cfg_;
  std::string name_;

  std::deque<ServedRequestPtr> queue_;  ///< awaiting (re-)prefill, FCFS
  sim::Gate queue_gate_;
  std::optional<federation::TokenBucket> bucket_;

  std::vector<std::unique_ptr<PrefillSlot>> prefill_slots_;
  std::vector<gpu::InstanceId> decode_instances_;
  std::vector<std::unique_ptr<ServingEngine>> decode_engines_;

  int generation_ = 0;  ///< bumped per relayout; stale workers exit
  int workers_live_ = 0;
  sim::Gate workers_dead_;
  bool paused_ = false;  ///< relayout in progress: workers park, adopts defer
  bool stop_requested_ = false;

  RequestId next_request_id_ = 1;
  DisaggStats stats_;
};

/// FaaS adapter: an app whose invocations forward into `server` and return
/// the generated token count — this is how the disaggregated endpoint plugs
/// into federation::ClusterService routing. The server must outlive the app.
faas::AppDef make_llm_serving_app(const std::string& name,
                                  DisaggLlmServer& server, LlmRequest shape);

}  // namespace faaspart::serve
