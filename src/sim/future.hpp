// Virtual-time futures.
//
// Future<T>/Promise<T> connect producers (sharing engines, executors) to
// consumers (coroutine processes or callback code). Completion wakes waiters
// through the event queue at the *current instant*, never inline — the event
// loop stays the only resumer of coroutines, which rules out reentrancy bugs
// by construction.
//
// Promise is copyable (shared state) so it can be captured in std::function
// callbacks; Future is copyable so several processes can await one result.
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "sim/co.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace faaspart::sim {

namespace detail {

template <typename T>
struct FutureState {
  Simulator* sim;
  std::optional<T> value;
  std::exception_ptr error;
  bool done = false;
  std::vector<std::coroutine_handle<>> waiters;
  std::vector<std::function<void()>> callbacks;

  explicit FutureState(Simulator& s) : sim(&s) {}

  void complete() {
    done = true;
    for (auto h : waiters) sim->schedule_now([h] { h.resume(); });
    waiters.clear();
    for (auto& cb : callbacks) sim->schedule_now(std::move(cb));
    callbacks.clear();
  }
};

// void uses the same shape with a unit payload.
struct Unit {};

}  // namespace detail

template <typename T>
class Future;

template <typename T = void>
class Promise {
  using Payload = std::conditional_t<std::is_void_v<T>, detail::Unit, T>;

 public:
  /// An empty Promise; using it before assignment from a real one is an
  /// FP_CHECK failure. Exists so structs holding a Promise stay
  /// default-constructible.
  Promise() = default;

  explicit Promise(Simulator& sim)
      : st_(std::make_shared<detail::FutureState<Payload>>(sim)) {}

  [[nodiscard]] bool valid() const { return st_ != nullptr; }

  [[nodiscard]] Future<T> future() const;

  template <typename U = T>
    requires(!std::is_void_v<U>)
  void set_value(U v) const {
    FP_CHECK_MSG(valid(), "empty promise");
    FP_CHECK_MSG(!st_->done, "promise completed twice");
    st_->value.emplace(std::move(v));
    st_->complete();
  }

  template <typename U = T>
    requires std::is_void_v<U>
  void set_value() const {
    FP_CHECK_MSG(valid(), "empty promise");
    FP_CHECK_MSG(!st_->done, "promise completed twice");
    st_->value.emplace();
    st_->complete();
  }

  void set_exception(std::exception_ptr e) const {
    FP_CHECK_MSG(valid(), "empty promise");
    FP_CHECK_MSG(!st_->done, "promise completed twice");
    FP_CHECK(e != nullptr);
    st_->error = e;
    st_->complete();
  }

 private:
  friend class Future<T>;
  std::shared_ptr<detail::FutureState<Payload>> st_;
};

template <typename T = void>
class Future {
  using Payload = std::conditional_t<std::is_void_v<T>, detail::Unit, T>;

 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::FutureState<Payload>> st) : st_(std::move(st)) {}

  [[nodiscard]] bool valid() const { return st_ != nullptr; }
  [[nodiscard]] bool ready() const { return st_ != nullptr && st_->done; }
  [[nodiscard]] bool failed() const { return ready() && st_->error != nullptr; }

  /// The completed value; requires ready() and !failed().
  template <typename U = T>
    requires(!std::is_void_v<U>)
  [[nodiscard]] const U& value() const {
    FP_CHECK_MSG(ready(), "Future::value before completion");
    if (st_->error) std::rethrow_exception(st_->error);
    return *st_->value;
  }

  [[nodiscard]] std::exception_ptr error() const {
    FP_CHECK(ready());
    return st_->error;
  }

  /// Runs `cb` (via the event queue) once the future completes; immediately
  /// scheduled if already complete.
  void on_ready(std::function<void()> cb) const {
    FP_CHECK(valid());
    if (st_->done) {
      st_->sim->schedule_now(std::move(cb));
    } else {
      st_->callbacks.push_back(std::move(cb));
    }
  }

  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<detail::FutureState<Payload>> st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) const { st->waiters.push_back(h); }
      T await_resume() const {
        if (st->error) std::rethrow_exception(st->error);
        if constexpr (!std::is_void_v<T>) return *st->value;
      }
    };
    FP_CHECK_MSG(valid(), "awaiting an empty Future");
    return Awaiter{st_};
  }

 private:
  std::shared_ptr<detail::FutureState<Payload>> st_;
};

template <typename T>
Future<T> Promise<T>::future() const {
  FP_CHECK_MSG(valid(), "empty promise");
  return Future<T>(st_);
}

/// Awaits every future in turn; completes when all have completed. If any
/// failed, rethrows the first failure encountered (after all are done).
template <typename T>
Co<void> when_all(std::vector<Future<T>> futures) {
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      co_await f;
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace faaspart::sim
