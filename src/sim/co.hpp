// Co<T> — a lazy, awaitable coroutine task for simulation processes.
//
// Modeled on the well-known task<> design (symmetric transfer at final
// suspend): a Co does not run until awaited; when it finishes, control
// transfers directly back to the awaiting coroutine. Ownership is simple and
// RAII: the Co object owns the coroutine frame and destroys it when the Co
// goes out of scope, which for `co_await child()` is the end of the full
// expression — after the result has been moved out.
//
// Simulation processes are Co<void> chains rooted at Simulator::spawn().
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "sim/arena.hpp"
#include "util/error.hpp"

namespace faaspart::sim {

template <typename T>
class Co;

namespace detail {

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation;  // who to resume when we finish

  // Coroutine frames come from the thread-local FrameArena: simulation
  // processes churn through frames of a handful of sizes, and the slab
  // recycler turns that churn into pointer pushes/pops instead of
  // malloc/free round trips (and, under the parallel runner, removes the
  // global allocator as a cross-thread contention point).
  static void* operator new(std::size_t n) {
    return FrameArena::local().allocate(n);
  }
  static void operator delete(void* p) { FrameArena::deallocate(p); }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
};

}  // namespace detail

/// Lazy coroutine task. Move-only.
template <typename T = void>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    std::variant<std::monostate, T, std::exception_ptr> result;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      result.template emplace<1>(std::forward<U>(v));
    }
    void unhandled_exception() { result.template emplace<2>(std::current_exception()); }
  };

  Co() = default;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const { return h_ != nullptr; }

  /// Awaiting a Co starts it (symmetric transfer into the child frame) and
  /// resumes the awaiter when the child completes. The child's return value
  /// is moved out; a stored exception is rethrown in the awaiter.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        auto& r = h.promise().result;
        if (r.index() == 2) std::rethrow_exception(std::get<2>(r));
        FP_CHECK_MSG(r.index() == 1, "Co<T> finished without a value");
        return std::move(std::get<1>(r));
      }
    };
    return Awaiter{h_};
  }

  /// Releases ownership of the frame (used by the spawn driver).
  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_ != nullptr) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_ = nullptr;
};

/// void specialization — same shape, no stored value.
template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    std::exception_ptr error;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Co() = default;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const { return h_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_ != nullptr) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_ = nullptr;
};

}  // namespace faaspart::sim
