// The discrete-event simulation core.
//
// A Simulator owns a virtual clock and an event queue ordered by
// (time, insertion sequence): events at equal timestamps run in FIFO order,
// which makes every run bit-for-bit deterministic. All higher layers — GPU
// sharing engines, the FaaS executor, workload processes — advance time only
// through this queue.
//
// Two programming styles are supported and freely mixed:
//   * callback events  — schedule_in()/schedule_at()/cancel(), used by the
//     sharing engines that need to re-plan in-flight work;
//   * coroutine processes — Co<void> chains rooted at spawn(), used by
//     workloads and the FaaS runtime, suspending on delay() and Futures.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/co.hpp"
#include "util/units.hpp"

namespace faaspart::faults {
class FaultInjector;
}  // namespace faaspart::faults

namespace faaspart::obs {
class Telemetry;
}  // namespace faaspart::obs

namespace faaspart::sim {

using util::Duration;
using util::TimePoint;

class Simulator;

/// Awaitable returned by Simulator::delay().
struct DelayAwaiter {
  Simulator& sim;
  Duration d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

// NOTE (GCC 12.x): do not build non-trivially-destructible *braced-init*
// temporaries inside a co_await expression, e.g.
//     co_await ctx.launch(gpu::KernelDesc{...});   // miscompiled by GCC 12
// GCC 12 fails to place such temporaries in the coroutine frame, so their
// destructor runs on reused stack memory after resumption (heap corruption).
// Bind them to a named local first:
//     gpu::KernelDesc k{...};
//     co_await ctx.launch(k);
// Function-return temporaries and lvalue copies are unaffected.
class Simulator {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  /// Destroys still-suspended spawned processes (their frames cascade down
  /// the await chain), so a torn-down simulation leaks nothing.
  ~Simulator();

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (must be >= now).
  EventId schedule_at(TimePoint t, Callback cb);

  /// Schedules `cb` after a non-negative delay.
  EventId schedule_in(Duration d, Callback cb);

  /// Schedules `cb` at the current instant, after already-queued events with
  /// the same timestamp.
  EventId schedule_now(Callback cb) { return schedule_in(Duration{0}, std::move(cb)); }

  /// Schedules a *weak* (observer) event. Weak events run in timestamp order
  /// like any other event while regular work remains, but do not keep the
  /// simulation alive: run() returns once only weak events are pending.
  /// Periodic samplers use these so instrumentation can tick forever without
  /// stalling queue drain — the in-sim analogue of a monitoring daemon that
  /// dies with the workload.
  EventId schedule_weak_at(TimePoint t, Callback cb);
  EventId schedule_weak_in(Duration d, Callback cb);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled (both are benign — cancellation is idempotent).
  bool cancel(EventId id);

  /// Runs the next event. Returns false when the queue is empty or only weak
  /// events remain.
  bool step();

  /// Runs until the queue drains. Rethrows the first exception that escaped
  /// a spawned process.
  void run();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(TimePoint t);

  /// Starts a detached simulation process at the current instant. The
  /// process runs synchronously until its first suspension point. An
  /// exception escaping the process is recorded and rethrown from run().
  void spawn(Co<void> proc, std::string name = "process");

  /// Suspends the awaiting coroutine for `d` of virtual time.
  [[nodiscard]] DelayAwaiter delay(Duration d) { return DelayAwaiter{*this, d}; }

  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }
  [[nodiscard]] std::size_t live_processes() const { return live_processes_; }

  struct ProcessFailure {
    std::string name;
    std::exception_ptr error;
  };
  [[nodiscard]] const std::vector<ProcessFailure>& failures() const { return failures_; }

  /// Optional fault-injection layer. faults::FaultInjector installs itself
  /// here on construction and uninstalls on destruction; consumers (Device,
  /// executors, endpoints) do a single null check, so a run without faults
  /// pays nothing.
  void install_faults(faults::FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] faults::FaultInjector* faults() const { return faults_; }

  /// Optional telemetry layer, mirroring the fault hook: obs::Telemetry
  /// installs itself on construction and uninstalls on destruction.
  /// Instrumentation sites null-check once, so an uninstrumented run pays a
  /// single pointer load.
  void install_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  [[nodiscard]] obs::Telemetry* telemetry() const { return telemetry_; }

 private:
  struct HeapEntry {
    TimePoint t;
    std::uint64_t seq;
    EventId id;
    bool operator>(const HeapEntry& o) const {
      return t > o.t || (t == o.t && seq > o.seq);
    }
  };

  struct Slot {
    Callback cb;
    bool weak = false;
  };

  EventId schedule_impl(TimePoint t, Callback cb, bool weak);
  bool step_impl(bool run_weak_only);
  void rethrow_failure_if_any();
  void reap_root(std::uint64_t id);
  friend struct RootReaper;  // defined in simulator.cpp

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_events_ = 0;  // scheduled and not yet run/cancelled
  std::size_t weak_events_ = 0;  // subset of live_events_ that is weak
  std::size_t live_processes_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, Slot> callbacks_;
  std::vector<ProcessFailure> failures_;
  std::size_t next_failure_to_rethrow_ = 0;

  // Root coroutine frames, owned by the simulator: reaped right after a
  // process finishes, destroyed wholesale (suspended mid-chain or not) when
  // the simulator goes away.
  std::uint64_t next_root_id_ = 1;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;

  faults::FaultInjector* faults_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace faaspart::sim
