// The discrete-event simulation core.
//
// A Simulator owns a virtual clock and an event queue ordered by
// (time, insertion sequence): events at equal timestamps run in FIFO order,
// which makes every run bit-for-bit deterministic. All higher layers — GPU
// sharing engines, the FaaS executor, workload processes — advance time only
// through this queue.
//
// Two programming styles are supported and freely mixed:
//   * callback events  — schedule_in()/schedule_at()/cancel(), used by the
//     sharing engines that need to re-plan in-flight work;
//   * coroutine processes — Co<void> chains rooted at spawn(), used by
//     workloads and the FaaS runtime, suspending on delay() and Futures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/co.hpp"
#include "sim/event_heap.hpp"
#include "util/units.hpp"

namespace faaspart::faults {
class FaultInjector;
}  // namespace faaspart::faults

namespace faaspart::obs {
class Telemetry;
}  // namespace faaspart::obs

namespace faaspart::sim {

using util::Duration;
using util::TimePoint;

class Simulator;

/// Awaitable returned by Simulator::delay().
struct DelayAwaiter {
  Simulator& sim;
  Duration d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

// NOTE (GCC 12.x): do not build non-trivially-destructible *braced-init*
// temporaries inside a co_await expression, e.g.
//     co_await ctx.launch(gpu::KernelDesc{...});   // miscompiled by GCC 12
// GCC 12 fails to place such temporaries in the coroutine frame, so their
// destructor runs on reused stack memory after resumption (heap corruption).
// Bind them to a named local first:
//     gpu::KernelDesc k{...};
//     co_await ctx.launch(k);
// Function-return temporaries and lvalue copies are unaffected.
class Simulator {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  /// Destroys still-suspended spawned processes (their frames cascade down
  /// the await chain), so a torn-down simulation leaks nothing.
  ~Simulator();

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (must be >= now).
  EventId schedule_at(TimePoint t, Callback cb);

  /// Schedules `cb` after a non-negative delay.
  EventId schedule_in(Duration d, Callback cb);

  /// Schedules `cb` at the current instant, after already-queued events with
  /// the same timestamp.
  EventId schedule_now(Callback cb) { return schedule_in(Duration{0}, std::move(cb)); }

  /// Schedules a *weak* (observer) event. Weak events run in timestamp order
  /// like any other event while regular work remains, but do not keep the
  /// simulation alive: run() returns once only weak events are pending.
  /// Periodic samplers use these so instrumentation can tick forever without
  /// stalling queue drain — the in-sim analogue of a monitoring daemon that
  /// dies with the workload.
  EventId schedule_weak_at(TimePoint t, Callback cb);
  EventId schedule_weak_in(Duration d, Callback cb);

  /// Outcome of a cancel() request, in decreasing order of "it worked":
  /// kCancelled   — the event was pending and is now removed;
  /// kAlreadyFired    — the event ran before the cancel arrived;
  /// kAlreadyCancelled — a previous cancel already removed it;
  /// kUnknown     — the id was never issued, or its slot has since been
  ///                recycled so its fate is no longer recorded.
  enum class CancelResult : std::uint8_t {
    kCancelled,
    kAlreadyFired,
    kAlreadyCancelled,
    kUnknown,
  };

  /// Cancels a pending event and reports what actually happened. All
  /// non-kCancelled outcomes are benign — cancellation is idempotent — but
  /// callers that must not race their own completion (engine replanning)
  /// can now tell "too late, it ran" from "already cancelled".
  CancelResult cancel_event(EventId id);

  /// Convenience form: true iff the event was pending and got cancelled.
  bool cancel(EventId id) {
    return cancel_event(id) == CancelResult::kCancelled;
  }

  /// Runs the next event. Returns false when the queue is empty or only weak
  /// events remain.
  bool step();

  /// Runs until the queue drains. Rethrows the first exception that escaped
  /// a spawned process.
  void run();

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(TimePoint t);

  /// Starts a detached simulation process at the current instant. The
  /// process runs synchronously until its first suspension point. An
  /// exception escaping the process is recorded and rethrown from run().
  void spawn(Co<void> proc, std::string name = "process");

  /// Suspends the awaiting coroutine for `d` of virtual time.
  [[nodiscard]] DelayAwaiter delay(Duration d) { return DelayAwaiter{*this, d}; }

  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }
  [[nodiscard]] std::size_t live_processes() const { return live_processes_; }

  struct ProcessFailure {
    std::string name;
    std::exception_ptr error;
  };
  [[nodiscard]] const std::vector<ProcessFailure>& failures() const { return failures_; }

  /// Optional fault-injection layer. faults::FaultInjector installs itself
  /// here on construction and uninstalls on destruction; consumers (Device,
  /// executors, endpoints) do a single null check, so a run without faults
  /// pays nothing.
  void install_faults(faults::FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] faults::FaultInjector* faults() const { return faults_; }

  /// Optional telemetry layer, mirroring the fault hook: obs::Telemetry
  /// installs itself on construction and uninstalls on destruction.
  /// Instrumentation sites null-check once, so an uninstrumented run pays a
  /// single pointer load.
  void install_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  [[nodiscard]] obs::Telemetry* telemetry() const { return telemetry_; }

 private:
  // Pending events live in a slab of slots; the indexed 4-ary EventHeap
  // orders the pending slots by (time, seq). An EventId encodes
  // (generation << 32 | slot): a slot's generation bumps every time the
  // event in it retires (fires or is cancelled), so stale ids can never
  // touch the slot's next occupant. Generations start at 1 so no valid id
  // is ever 0 — callers use 0 as a "no event" sentinel. Compared with the
  // old priority_queue + unordered_map design this removes the per-event
  // hash-map node allocation, the hash lookups on the pop path, and the
  // tombstones cancels used to leave in the queue.
  enum class Retire : std::uint8_t { kNone, kFired, kCancelled };

  struct EventSlot {
    Callback cb;
    std::uint32_t gen = 1;
    std::uint32_t next_free = EventHeap::kNpos;
    bool pending = false;
    bool weak = false;
    /// How the previous occupant (generation `gen - 1`) retired — the
    /// record cancel_event() consults to explain a stale id.
    Retire retired_how = Retire::kNone;
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  EventId schedule_impl(TimePoint t, Callback cb, bool weak);
  std::uint32_t acquire_slot();
  /// Marks `slot` retired (generation bump + free-list push) and returns
  /// its callback for the caller to run or drop.
  Callback retire_slot(std::uint32_t slot, Retire how);
  bool step_impl(bool run_weak_only);
  void rethrow_failure_if_any();
  void reap_root(std::uint64_t id);
  friend struct RootReaper;  // defined in simulator.cpp

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_events_ = 0;  // scheduled and not yet run/cancelled
  std::size_t weak_events_ = 0;  // subset of live_events_ that is weak
  std::size_t live_processes_ = 0;
  EventHeap heap_;
  std::vector<EventSlot> slots_;
  std::uint32_t free_head_ = EventHeap::kNpos;
  std::vector<ProcessFailure> failures_;
  std::size_t next_failure_to_rethrow_ = 0;

  // Root coroutine frames, owned by the simulator: reaped right after a
  // process finishes, destroyed wholesale (suspended mid-chain or not) when
  // the simulator goes away. An ordered map (rule D2): the destructor walks
  // it, and frame destructors can run user code, so teardown must happen in
  // spawn order — not in whatever order a hash table shook out.
  std::uint64_t next_root_id_ = 1;
  std::map<std::uint64_t, std::coroutine_handle<>> roots_;

  faults::FaultInjector* faults_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace faaspart::sim
