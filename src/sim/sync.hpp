// Coroutine synchronization primitives on virtual time.
//
//   Resource — counted resource pool (CPU cores, worker slots) with FIFO
//              waiters and RAII leases.
//   Mailbox  — unbounded producer/consumer channel (task queues).
//   Gate     — broadcast latch (open releases all waiters; reusable).
//
// All wakeups go through the simulator's event queue at the current instant,
// matching the Future discipline: only the event loop resumes coroutines.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "sim/co.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace faaspart::sim {

class Resource;

/// RAII grant of `count` units of a Resource. Move-only; releases on
/// destruction or explicit release(). A lease that outlives its Resource
/// (e.g. when a simulator tears down suspended processes after the Resource
/// is gone) releases into nothing, safely.
class ResourceLease {
 public:
  ResourceLease() = default;
  ResourceLease(std::shared_ptr<Resource*> res, std::int64_t count)
      : res_(std::move(res)), count_(count) {}
  ResourceLease(ResourceLease&& o) noexcept
      : res_(std::exchange(o.res_, nullptr)), count_(std::exchange(o.count_, 0)) {}
  ResourceLease& operator=(ResourceLease&& o) noexcept {
    if (this != &o) {
      release();
      res_ = std::exchange(o.res_, nullptr);
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }
  ResourceLease(const ResourceLease&) = delete;
  ResourceLease& operator=(const ResourceLease&) = delete;
  ~ResourceLease() { release(); }

  [[nodiscard]] bool held() const { return res_ != nullptr && *res_ != nullptr; }
  [[nodiscard]] std::int64_t count() const { return count_; }
  void release();

 private:
  std::shared_ptr<Resource*> res_;  // points to null once the Resource died
  std::int64_t count_ = 0;
};

/// Counted resource with strict FIFO admission: a large request at the head
/// of the queue blocks smaller later requests (no starvation).
class Resource {
 public:
  Resource(Simulator& sim, std::int64_t capacity, std::string name = "resource");
  ~Resource();
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t available() const { return available_; }
  [[nodiscard]] std::int64_t in_use() const { return capacity_ - available_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// co_await acquire(n) → ResourceLease.
  [[nodiscard]] Co<ResourceLease> acquire(std::int64_t n = 1);

  /// Non-blocking attempt; empty lease if it would have to wait.
  [[nodiscard]] ResourceLease try_acquire(std::int64_t n = 1);

 private:
  friend class ResourceLease;

  struct Waiter {
    std::int64_t n;
    std::coroutine_handle<> handle;
  };

  struct AcquireAwaiter {
    Resource& res;
    std::int64_t n;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  void release_units(std::int64_t n);
  void drain();

  Simulator& sim_;
  std::string name_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::deque<Waiter> waiters_;
  std::shared_ptr<Resource*> self_;  // nulled in the destructor
};

/// Unbounded channel. Multiple producers/consumers; consumers are woken in
/// FIFO order (a concurrently arriving consumer at the same instant may
/// overtake a woken one — acceptable for the symmetric consumers we model).
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(&sim) {}

  void put(T v) {
    FP_CHECK_MSG(!closed_, "put to a closed Mailbox");
    items_.push_back(std::move(v));
    wake_one();
  }

  /// Closes the channel: queued items can still be drained; a get() on an
  /// empty closed mailbox throws util::StateError.
  void close() {
    closed_ = true;
    // Wake everyone so blocked consumers observe the close.
    while (!waiters_.empty()) wake_one();
  }

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  [[nodiscard]] Co<T> get() {
    while (items_.empty()) {
      if (closed_) throw util::StateError("Mailbox closed and drained");
      co_await WaitAwaiter{*this};
    }
    T v = std::move(items_.front());
    items_.pop_front();
    co_return v;
  }

  /// Non-blocking: moves an item out if present.
  [[nodiscard]] bool try_get(T& out) {
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

 private:
  struct WaitAwaiter {
    Mailbox& mb;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { mb.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  void wake_one() {
    if (waiters_.empty()) return;
    const auto h = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_now([h] { h.resume(); });
  }

  Simulator* sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
  bool closed_ = false;
};

/// Unbounded channel whose items carry an integer priority: get() returns
/// the highest-priority item, FIFO within a priority class. Same wake
/// semantics as Mailbox.
template <typename T>
class PriorityMailbox {
 public:
  explicit PriorityMailbox(Simulator& sim) : sim_(&sim) {}

  void put(T v, int priority) {
    FP_CHECK_MSG(!closed_, "put to a closed PriorityMailbox");
    items_.emplace(Key{-priority, next_seq_++}, std::move(v));
    wake_one();
  }

  void close() {
    closed_ = true;
    while (!waiters_.empty()) wake_one();
  }

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  [[nodiscard]] Co<T> get() {
    while (items_.empty()) {
      if (closed_) throw util::StateError("PriorityMailbox closed and drained");
      co_await WaitAwaiter{*this};
    }
    auto it = items_.begin();
    T v = std::move(it->second);
    items_.erase(it);
    co_return v;
  }

 private:
  struct Key {
    int neg_priority;       // map orders ascending → highest priority first
    std::uint64_t seq;      // FIFO within a class
    auto operator<=>(const Key&) const = default;
  };

  struct WaitAwaiter {
    PriorityMailbox& mb;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { mb.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  void wake_one() {
    if (waiters_.empty()) return;
    const auto h = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_now([h] { h.resume(); });
  }

  Simulator* sim_;
  std::map<Key, T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

/// Broadcast latch. wait() passes immediately while open; open() releases
/// every current waiter; close() re-arms it.
class Gate {
 public:
  explicit Gate(Simulator& sim, bool open = false) : sim_(&sim), open_(open) {}

  [[nodiscard]] bool is_open() const { return open_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

  void open() {
    open_ = true;
    for (auto h : waiters_) sim_->schedule_now([h] { h.resume(); });
    waiters_.clear();
  }

  void close() { open_ = false; }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const noexcept { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) { gate.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator* sim_;
  bool open_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace faaspart::sim
