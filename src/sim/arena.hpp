// FrameArena — a size-classed slab recycler for coroutine frames.
//
// Simulation processes are short-lived Co<> chains: a llama completion
// allocates and frees thousands of identical frames, and under the parallel
// replication runner every worker thread does so concurrently — straight
// through the global allocator that is both a malloc/free round trip per
// frame and a point of cross-thread contention. The arena caches freed
// blocks on thread-local free lists keyed by power-of-two size class, so
// the steady state allocates nothing and touches no shared state.
//
// Safety properties (deliberately boring):
//   * every block is an ordinary ::operator new allocation with an 8-byte
//     header, so a block freed on a *different* thread than it was
//     allocated on is simply returned to the matching class of that
//     thread's arena — valid wherever it ends up;
//   * thread exit releases all cached blocks to the global allocator;
//   * oversized requests bypass the cache entirely (header tag kNoClass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace faaspart::sim {

class FrameArena {
 public:
  static constexpr std::uint64_t kNoClass = 0xffffffffffffffffull;
  static constexpr std::size_t kClasses = 9;      // 64 B … 16 KiB
  static constexpr std::size_t kMinBlock = 64;    // class 0
  static constexpr std::size_t kMaxBlock = kMinBlock << (kClasses - 1);

  struct Stats {
    std::uint64_t fresh = 0;     ///< blocks taken from ::operator new
    std::uint64_t reused = 0;    ///< blocks served from a free list
    std::uint64_t oversize = 0;  ///< requests beyond kMaxBlock
  };

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  ~FrameArena() {
    for (auto& head : free_) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(header_of(head));
        head = next;
      }
    }
  }

  /// The calling thread's arena.
  static FrameArena& local() {
    // faaspart-lint: allow(C1,S1) -- the whole point: one private arena per
    // runner worker means frame allocation never crosses threads, which is
    // exactly the isolation rules C1/S1 exist to protect; a PDES shard is a
    // thread, so thread_local is already per-domain
    thread_local FrameArena arena;
    return arena;
  }

  void* allocate(std::size_t n) {
    const std::size_t total = n + kHeaderSize;
    if (total > kMaxBlock) {
      ++stats_.oversize;
      auto* header = static_cast<Header*>(::operator new(total));
      header->cls = kNoClass;
      return header + 1;
    }
    const std::size_t cls = class_for(total);
    if (free_[cls] != nullptr) {
      ++stats_.reused;
      FreeBlock* block = free_[cls];
      free_[cls] = block->next;
      return block;
    }
    ++stats_.fresh;
    auto* header = static_cast<Header*>(::operator new(kMinBlock << cls));
    header->cls = cls;
    return header + 1;
  }

  /// Frees a pointer obtained from any FrameArena (any thread).
  static void deallocate(void* p) {
    Header* header = static_cast<Header*>(p) - 1;
    const std::uint64_t cls = header->cls;
    if (cls == kNoClass) {
      ::operator delete(header);
      return;
    }
    FrameArena& arena = local();
    auto* block = static_cast<FreeBlock*>(p);
    block->next = arena.free_[cls];
    arena.free_[cls] = block;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // 16 bytes so the payload keeps the default new alignment — coroutine
  // frames assume at least __STDCPP_DEFAULT_NEW_ALIGNMENT__.
  struct alignas(16) Header {
    std::uint64_t cls;
    std::uint64_t unused;
  };
  static constexpr std::size_t kHeaderSize = sizeof(Header);

  struct FreeBlock {
    FreeBlock* next;
  };

  static Header* header_of(void* p) {
    return static_cast<Header*>(static_cast<void*>(p)) - 1;
  }

  static std::size_t class_for(std::size_t total) {
    std::size_t cls = 0;
    std::size_t cap = kMinBlock;
    while (cap < total) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }

  FreeBlock* free_[kClasses] = {};
  Stats stats_;
};

}  // namespace faaspart::sim
