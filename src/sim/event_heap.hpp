// EventHeap — the simulator's timer wheel: an *indexed* 4-ary min-heap
// keyed by (time, insertion sequence).
//
// Why not std::priority_queue: the sharing engines replan in-flight work
// constantly (cancel a completion timer, schedule a later one), and a
// binary heap with lazy deletion leaves a tombstone per cancel that every
// later pop must sift past. Here each node carries the owning slab slot and
// a side table maps slot → heap position, so erase() removes the node in
// O(log n) and the heap never holds dead entries. The 4-ary layout halves
// tree depth versus binary and keeps the hot sift-down loop inside one or
// two cache lines of children per level — the classic d-ary trade (cheaper
// pops for slightly costlier pushes) that wins on pop/erase-heavy
// simulation workloads.
//
// Ordering is strict weak on (t, seq): equal timestamps pop in insertion
// order, which is what makes simulation runs bit-for-bit deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace faaspart::sim {

class EventHeap {
 public:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  struct Node {
    util::TimePoint t;
    std::uint64_t seq;
    std::uint32_t slot;  ///< owning slab slot (dense, reused)
  };

  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// The minimum node. Precondition: !empty().
  [[nodiscard]] const Node& top() const { return nodes_.front(); }

  [[nodiscard]] bool contains(std::uint32_t slot) const {
    return slot < pos_.size() && pos_[slot] != kNpos;
  }

  void push(util::TimePoint t, std::uint64_t seq, std::uint32_t slot) {
    if (slot >= pos_.size()) pos_.resize(slot + 1, kNpos);
    nodes_.push_back(Node{t, seq, slot});
    sift_up(nodes_.size() - 1);
  }

  /// Removes and returns the slot of the minimum node. Precondition:
  /// !empty().
  std::uint32_t pop() {
    const std::uint32_t slot = nodes_.front().slot;
    remove_at(0);
    return slot;
  }

  /// Removes the node owned by `slot`, if present. O(log n), no tombstone.
  bool erase(std::uint32_t slot) {
    if (!contains(slot)) return false;
    remove_at(pos_[slot]);
    return true;
  }

  void clear() {
    nodes_.clear();
    pos_.clear();
  }

 private:
  static bool less(const Node& a, const Node& b) {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  }

  void place(std::size_t i, const Node& n) {
    nodes_[i] = n;
    pos_[n.slot] = static_cast<std::uint32_t>(i);
  }

  void remove_at(std::size_t i) {
    pos_[nodes_[i].slot] = kNpos;
    const Node last = nodes_.back();
    nodes_.pop_back();
    if (i == nodes_.size()) return;  // removed the tail
    place(i, last);
    // The hole filler can be out of order in either direction.
    if (i > 0 && less(nodes_[i], nodes_[(i - 1) >> 2])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  }

  void sift_up(std::size_t i) {
    Node n = nodes_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!less(n, nodes_[parent])) break;
      place(i, nodes_[parent]);
      i = parent;
    }
    place(i, n);
  }

  void sift_down(std::size_t i) {
    Node n = nodes_[i];
    const std::size_t size = nodes_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= size) break;
      const std::size_t last_child =
          first_child + 4 <= size ? first_child + 4 : size;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less(nodes_[c], nodes_[best])) best = c;
      }
      if (!less(nodes_[best], n)) break;
      place(i, nodes_[best]);
      i = best;
    }
    place(i, n);
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pos_;  ///< slot → index in nodes_, kNpos if out
};

}  // namespace faaspart::sim
