#include "sim/sync.hpp"

namespace faaspart::sim {

void ResourceLease::release() {
  if (res_ == nullptr) return;
  const auto res = std::exchange(res_, nullptr);
  const std::int64_t n = std::exchange(count_, 0);
  if (*res != nullptr) (*res)->release_units(n);
}

Resource::Resource(Simulator& sim, std::int64_t capacity, std::string name)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(capacity),
      available_(capacity),
      self_(std::make_shared<Resource*>(this)) {
  FP_CHECK_MSG(capacity > 0, "Resource capacity must be positive");
}

Resource::~Resource() { *self_ = nullptr; }

Co<ResourceLease> Resource::acquire(std::int64_t n) {
  FP_CHECK_MSG(n > 0, "acquire count must be positive");
  FP_CHECK_MSG(n <= capacity_, "acquire exceeds total capacity of " + name_);
  // Fast path keeps FIFO: only bypass the queue when nobody is waiting.
  if (waiters_.empty() && available_ >= n) {
    available_ -= n;
    co_return ResourceLease(self_, n);
  }
  co_await AcquireAwaiter{*this, n};
  co_return ResourceLease(self_, n);
}

ResourceLease Resource::try_acquire(std::int64_t n) {
  FP_CHECK_MSG(n > 0, "acquire count must be positive");
  if (waiters_.empty() && available_ >= n) {
    available_ -= n;
    return ResourceLease(self_, n);
  }
  return {};
}

void Resource::AcquireAwaiter::await_suspend(std::coroutine_handle<> h) {
  res.waiters_.push_back(Waiter{n, h});
}

void Resource::release_units(std::int64_t n) {
  available_ += n;
  FP_CHECK_MSG(available_ <= capacity_, "Resource over-release on " + name_);
  drain();
}

void Resource::drain() {
  // Grant strictly from the front; a blocked head blocks everyone behind it.
  while (!waiters_.empty() && waiters_.front().n <= available_) {
    const Waiter w = waiters_.front();
    waiters_.pop_front();
    available_ -= w.n;
    sim_.schedule_now([h = w.handle] { h.resume(); });
  }
}

}  // namespace faaspart::sim
