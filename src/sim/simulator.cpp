#include "sim/simulator.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace faaspart::sim {

void DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  FP_CHECK_MSG(d.ns >= 0, "negative delay");
  sim.schedule_in(d, [h] { h.resume(); });
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != EventHeap::kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

Simulator::Callback Simulator::retire_slot(std::uint32_t slot, Retire how) {
  EventSlot& s = slots_[slot];
  Callback cb = std::move(s.cb);
  s.cb = nullptr;
  s.pending = false;
  if (s.weak) --weak_events_;
  s.weak = false;
  s.retired_how = how;
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_events_;
  return cb;
}

Simulator::EventId Simulator::schedule_impl(TimePoint t, Callback cb,
                                            bool weak) {
  FP_CHECK_MSG(t >= now_, "event scheduled in the past");
  FP_CHECK_MSG(static_cast<bool>(cb), "null event callback");
  const std::uint32_t slot = acquire_slot();
  EventSlot& s = slots_[slot];
  const EventId id = (static_cast<EventId>(s.gen) << 32) | slot;
  s.cb = std::move(cb);
  s.pending = true;
  s.weak = weak;
  heap_.push(t, next_seq_++, slot);
  ++live_events_;
  if (weak) ++weak_events_;
  return id;
}

Simulator::EventId Simulator::schedule_at(TimePoint t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*weak=*/false);
}

Simulator::EventId Simulator::schedule_in(Duration d, Callback cb) {
  FP_CHECK_MSG(d.ns >= 0, "negative delay");
  return schedule_impl(now_ + d, std::move(cb), /*weak=*/false);
}

Simulator::EventId Simulator::schedule_weak_at(TimePoint t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*weak=*/true);
}

Simulator::EventId Simulator::schedule_weak_in(Duration d, Callback cb) {
  FP_CHECK_MSG(d.ns >= 0, "negative delay");
  return schedule_impl(now_ + d, std::move(cb), /*weak=*/true);
}

Simulator::CancelResult Simulator::cancel_event(EventId id) {
  const std::uint32_t slot = slot_of(id);
  const std::uint32_t gen = gen_of(id);
  if (slot >= slots_.size() || gen == 0) return CancelResult::kUnknown;
  EventSlot& s = slots_[slot];
  if (s.pending && s.gen == gen) {
    heap_.erase(slot);  // O(log n), no tombstone left behind
    (void)retire_slot(slot, Retire::kCancelled);
    return CancelResult::kCancelled;
  }
  // Only the most recently retired occupant's fate is recorded; once the
  // slot moved on past that generation the answer is honest ignorance.
  if (s.gen == gen + 1) {
    switch (s.retired_how) {
      case Retire::kFired: return CancelResult::kAlreadyFired;
      case Retire::kCancelled: return CancelResult::kAlreadyCancelled;
      case Retire::kNone: break;
    }
  }
  return CancelResult::kUnknown;
}

bool Simulator::step() { return step_impl(/*run_weak_only=*/false); }

bool Simulator::step_impl(bool run_weak_only) {
  if (heap_.empty()) return false;
  // With nothing but weak observers pending, the simulation is done:
  // samplers would tick forever against a finished workload.
  if (!run_weak_only && live_events_ == weak_events_) return false;
  const EventHeap::Node top = heap_.top();
  FP_CHECK(top.t >= now_);
  heap_.pop();
  now_ = top.t;
  Callback cb = retire_slot(top.slot, Retire::kFired);
  ++processed_;
  cb();
  return true;
}

void Simulator::run() {
  // A process may have failed synchronously (before its first suspension),
  // leaving nothing in the queue — surface that too.
  rethrow_failure_if_any();
  while (step()) rethrow_failure_if_any();
}

void Simulator::run_until(TimePoint t) {
  FP_CHECK_MSG(t >= now_, "run_until into the past");
  rethrow_failure_if_any();
  // The heap holds no cancelled entries, so the head is always a real event.
  while (!heap_.empty() && heap_.top().t <= t) {
    // Weak events inside the horizon still run: a bounded run_until() is a
    // live observation window, not a drain.
    step_impl(/*run_weak_only=*/true);
    rethrow_failure_if_any();
  }
  now_ = t;
}

void Simulator::rethrow_failure_if_any() {
  // Each failure is rethrown exactly once; all stay inspectable via
  // failures().
  if (next_failure_to_rethrow_ >= failures_.size()) return;
  const std::size_t i = next_failure_to_rethrow_++;
  std::rethrow_exception(failures_[i].error);
}

// Lets the root-wrapper coroutine call the private reap hook.
struct RootReaper {
  static void reap(Simulator& sim, std::uint64_t id) {
    // Deferred: the wrapper is still running; it suspends at its final
    // suspend point right after this, and the scheduled event destroys it.
    sim.schedule_now([&sim, id] { sim.reap_root(id); });
  }
};

namespace {

// Root driver: runs the top-level Co<void>, funnels escaped exceptions into
// the simulator's failure list, and asks to be reaped when done. The frame
// parks at final_suspend until the simulator destroys it (via the reap
// event, or wholesale in ~Simulator for processes that never finish).
Co<void> root_wrapper(Simulator* sim, std::uint64_t id, std::size_t* live,
                      Co<void> proc, std::string name,
                      std::vector<Simulator::ProcessFailure>* failures) {
  ++*live;
  try {
    co_await std::move(proc);
  } catch (...) {
    FP_LOG_DEBUG("process '" << name << "' terminated with exception");
    failures->push_back({std::move(name), std::current_exception()});
  }
  --*live;
  RootReaper::reap(*sim, id);
}

}  // namespace

void Simulator::spawn(Co<void> proc, std::string name) {
  FP_CHECK_MSG(proc.valid(), "spawn of empty Co<void>");
  const std::uint64_t id = next_root_id_++;
  Co<void> root = root_wrapper(this, id, &live_processes_, std::move(proc),
                               std::move(name), &failures_);
  const auto handle = root.release();  // ownership moves to roots_
  roots_.emplace(id, handle);
  handle.resume();  // run synchronously to the first suspension
}

void Simulator::reap_root(std::uint64_t id) {
  const auto it = roots_.find(id);
  if (it == roots_.end()) return;
  it->second.destroy();
  roots_.erase(it);
}

Simulator::~Simulator() {
  // Destroy still-suspended process chains. Their frame destructors may
  // interact with sync primitives (releasing leases, waking waiters) — the
  // wakeups land in the queue and are simply never run.
  for (auto& [id, handle] : roots_) handle.destroy();
  roots_.clear();
}

}  // namespace faaspart::sim
