#include "sim/simulator.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace faaspart::sim {

void DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  FP_CHECK_MSG(d.ns >= 0, "negative delay");
  sim.schedule_in(d, [h] { h.resume(); });
}

Simulator::EventId Simulator::schedule_impl(TimePoint t, Callback cb,
                                            bool weak) {
  FP_CHECK_MSG(t >= now_, "event scheduled in the past");
  FP_CHECK_MSG(static_cast<bool>(cb), "null event callback");
  const EventId id = next_id_++;
  heap_.push(HeapEntry{t, next_seq_++, id});
  callbacks_.emplace(id, Slot{std::move(cb), weak});
  ++live_events_;
  if (weak) ++weak_events_;
  return id;
}

Simulator::EventId Simulator::schedule_at(TimePoint t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*weak=*/false);
}

Simulator::EventId Simulator::schedule_in(Duration d, Callback cb) {
  FP_CHECK_MSG(d.ns >= 0, "negative delay");
  return schedule_impl(now_ + d, std::move(cb), /*weak=*/false);
}

Simulator::EventId Simulator::schedule_weak_at(TimePoint t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*weak=*/true);
}

Simulator::EventId Simulator::schedule_weak_in(Duration d, Callback cb) {
  FP_CHECK_MSG(d.ns >= 0, "negative delay");
  return schedule_impl(now_ + d, std::move(cb), /*weak=*/true);
}

bool Simulator::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  if (it->second.weak) --weak_events_;
  callbacks_.erase(it);
  --live_events_;
  // The heap entry stays behind and is skipped lazily in step().
  return true;
}

bool Simulator::step() { return step_impl(/*run_weak_only=*/false); }

bool Simulator::step_impl(bool run_weak_only) {
  while (!heap_.empty()) {
    // With nothing but weak observers pending, the simulation is done:
    // samplers would tick forever against a finished workload.
    if (!run_weak_only && live_events_ == weak_events_) return false;
    const HeapEntry top = heap_.top();
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // cancelled — discard the stale heap entry
      continue;
    }
    FP_CHECK(top.t >= now_);
    heap_.pop();
    now_ = top.t;
    if (it->second.weak) --weak_events_;
    Callback cb = std::move(it->second.cb);
    callbacks_.erase(it);
    --live_events_;
    ++processed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  // A process may have failed synchronously (before its first suspension),
  // leaving nothing in the queue — surface that too.
  rethrow_failure_if_any();
  while (step()) rethrow_failure_if_any();
}

void Simulator::run_until(TimePoint t) {
  FP_CHECK_MSG(t >= now_, "run_until into the past");
  rethrow_failure_if_any();
  while (!heap_.empty()) {
    // Skip stale (cancelled) entries so the horizon check sees a real event.
    if (callbacks_.find(heap_.top().id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (heap_.top().t > t) break;
    // Weak events inside the horizon still run: a bounded run_until() is a
    // live observation window, not a drain.
    step_impl(/*run_weak_only=*/true);
    rethrow_failure_if_any();
  }
  now_ = t;
}

void Simulator::rethrow_failure_if_any() {
  // Each failure is rethrown exactly once; all stay inspectable via
  // failures().
  if (next_failure_to_rethrow_ >= failures_.size()) return;
  const std::size_t i = next_failure_to_rethrow_++;
  std::rethrow_exception(failures_[i].error);
}

// Lets the root-wrapper coroutine call the private reap hook.
struct RootReaper {
  static void reap(Simulator& sim, std::uint64_t id) {
    // Deferred: the wrapper is still running; it suspends at its final
    // suspend point right after this, and the scheduled event destroys it.
    sim.schedule_now([&sim, id] { sim.reap_root(id); });
  }
};

namespace {

// Root driver: runs the top-level Co<void>, funnels escaped exceptions into
// the simulator's failure list, and asks to be reaped when done. The frame
// parks at final_suspend until the simulator destroys it (via the reap
// event, or wholesale in ~Simulator for processes that never finish).
Co<void> root_wrapper(Simulator* sim, std::uint64_t id, std::size_t* live,
                      Co<void> proc, std::string name,
                      std::vector<Simulator::ProcessFailure>* failures) {
  ++*live;
  try {
    co_await std::move(proc);
  } catch (...) {
    FP_LOG_DEBUG("process '" << name << "' terminated with exception");
    failures->push_back({std::move(name), std::current_exception()});
  }
  --*live;
  RootReaper::reap(*sim, id);
}

}  // namespace

void Simulator::spawn(Co<void> proc, std::string name) {
  FP_CHECK_MSG(proc.valid(), "spawn of empty Co<void>");
  const std::uint64_t id = next_root_id_++;
  Co<void> root = root_wrapper(this, id, &live_processes_, std::move(proc),
                               std::move(name), &failures_);
  const auto handle = root.release();  // ownership moves to roots_
  roots_.emplace(id, handle);
  handle.resume();  // run synchronously to the first suspension
}

void Simulator::reap_root(std::uint64_t id) {
  const auto it = roots_.find(id);
  if (it == roots_.end()) return;
  it->second.destroy();
  roots_.erase(it);
}

Simulator::~Simulator() {
  // Destroy still-suspended process chains. Their frame destructors may
  // interact with sync primitives (releasing leases, waking waiters) — the
  // wakeups land in the queue and are simply never run.
  for (auto& [id, handle] : roots_) handle.destroy();
  roots_.clear();
}

}  // namespace faaspart::sim
