// format_smi — an `nvidia-smi`-style textual snapshot of the node's GPUs:
// per-device memory/policy/context rows plus a MIG-instance table when any
// device is partitioned. Meant for examples and operator-facing logs.
#pragma once

#include <string>

#include "nvml/manager.hpp"

namespace faaspart::nvml {

std::string format_smi(const DeviceManager& manager);

}  // namespace faaspart::nvml
