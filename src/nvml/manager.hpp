// Management facade over the simulated GPUs — the analogue of the
// NVML / nvidia-smi surface the paper's executor drives.
//
// DeviceManager owns the node's devices and answers nvidia-smi-style
// queries; MIG reconfiguration goes through timed operations that charge
// the §6 overheads (GPU reset: 1–2 s) on the virtual clock.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gpu/device.hpp"
#include "sim/co.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"

namespace faaspart::nvml {

/// One row of `nvidia-smi`-style status output.
struct DeviceStatus {
  int index = 0;
  std::string name;
  bool mig_enabled = false;
  std::size_t contexts = 0;
  util::Bytes memory_used = 0;
  util::Bytes memory_total = 0;
  std::string sharing_policy;
  std::vector<std::string> mig_instances;  // UUIDs
};

class DeviceManager {
 public:
  explicit DeviceManager(sim::Simulator& sim, trace::Recorder* rec = nullptr);

  /// Registers a device; the sharing policy starts as the NVIDIA default
  /// (time-slicing). Returns the device index.
  int add_device(gpu::GpuArchSpec arch);

  [[nodiscard]] gpu::Device& device(int index);
  [[nodiscard]] const gpu::Device& device(int index) const;
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  [[nodiscard]] DeviceStatus status(int index) const;
  [[nodiscard]] std::vector<DeviceStatus> status_all() const;

  /// Finds the device hosting a MIG instance UUID; throws NotFoundError.
  [[nodiscard]] int device_of_instance(const std::string& uuid) const;

  /// Timed MIG reconfiguration: enables MIG mode (if needed), destroys any
  /// existing instances, and creates one instance per profile name, charging
  /// the GPU-reset cost on the virtual clock (§6). Requires zero contexts.
  /// Returns the created UUIDs.
  sim::Co<std::vector<std::string>> configure_mig(int index,
                                                  std::vector<std::string> profiles);

  /// Timed MIG teardown back to non-MIG mode (also a GPU reset).
  sim::Co<void> clear_mig(int index);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] trace::Recorder* recorder() { return rec_; }

 private:
  sim::Simulator& sim_;
  trace::Recorder* rec_;
  std::vector<std::unique_ptr<gpu::Device>> devices_;
};

}  // namespace faaspart::nvml
