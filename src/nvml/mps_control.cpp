#include "nvml/mps_control.hpp"

#include "sched/timeshare.hpp"
#include "util/error.hpp"

namespace faaspart::nvml {

void MpsControl::start(sched::MpsOptions opts) {
  if (running_) throw util::StateError("MPS daemon already running");
  // set_engine_factory enforces the no-live-clients rule.
  device_.set_engine_factory(sched::mps_factory(opts));
  running_ = true;
}

void MpsControl::stop() {
  if (!running_) throw util::StateError("MPS daemon not running");
  device_.set_engine_factory(sched::timeshare_factory());
  running_ = false;
}

}  // namespace faaspart::nvml
