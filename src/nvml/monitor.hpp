// UtilizationMonitor — the `nvidia-smi dmon` analogue: samples a device's
// utilization and memory occupancy on a fixed period into a time series
// (the data behind utilization plots like the paper's Fig 3 discussion).
#pragma once

#include <ostream>
#include <vector>

#include "nvml/manager.hpp"
#include "sim/co.hpp"
#include "trace/stats.hpp"

namespace faaspart::nvml {

struct UtilizationSample {
  util::TimePoint at{};        ///< end of the sampling window
  double utilization = 0;      ///< busy fraction over the window, SM-weighted
  util::Bytes memory_used = 0; ///< device (or summed instance) occupancy
};

class UtilizationMonitor {
 public:
  UtilizationMonitor(DeviceManager& manager, int device_index,
                     util::Duration period);

  /// Sampling loop; spawn on the simulator, runs until `deadline`.
  sim::Co<void> run(util::TimePoint deadline);

  [[nodiscard]] const std::vector<UtilizationSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] trace::Summary utilization_summary() const;
  [[nodiscard]] util::Bytes peak_memory() const;

  /// "timestamp_s,utilization,memory_used_bytes" rows.
  void write_csv(std::ostream& os) const;

 private:
  DeviceManager& manager_;
  int device_;
  util::Duration period_;
  std::vector<UtilizationSample> samples_;
};

}  // namespace faaspart::nvml
