#include "nvml/manager.hpp"

#include "sched/timeshare.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::nvml {

DeviceManager::DeviceManager(sim::Simulator& sim, trace::Recorder* rec)
    : sim_(sim), rec_(rec) {}

int DeviceManager::add_device(gpu::GpuArchSpec arch) {
  const int index = static_cast<int>(devices_.size());
  devices_.push_back(std::make_unique<gpu::Device>(
      sim_, std::move(arch), index, sched::timeshare_factory(), rec_));
  return index;
}

gpu::Device& DeviceManager::device(int index) {
  if (index < 0 || static_cast<std::size_t>(index) >= devices_.size()) {
    throw util::NotFoundError(util::strf("GPU index ", index));
  }
  return *devices_[static_cast<std::size_t>(index)];
}

const gpu::Device& DeviceManager::device(int index) const {
  if (index < 0 || static_cast<std::size_t>(index) >= devices_.size()) {
    throw util::NotFoundError(util::strf("GPU index ", index));
  }
  return *devices_[static_cast<std::size_t>(index)];
}

DeviceStatus DeviceManager::status(int index) const {
  const gpu::Device& dev = device(index);
  DeviceStatus st;
  st.index = index;
  st.name = dev.arch().name;
  st.mig_enabled = dev.mig_enabled();
  st.contexts = dev.context_count();
  st.memory_total = dev.arch().memory;
  st.sharing_policy = dev.engine().policy_name();
  if (dev.mig_enabled()) {
    util::Bytes used = 0;
    for (const auto id : dev.instance_ids()) {
      const auto& inst = dev.instance(id);
      used += inst.memory->used();
      st.mig_instances.push_back(inst.uuid);
    }
    st.memory_used = used;
  } else {
    st.memory_used = dev.memory().used();
  }
  return st;
}

std::vector<DeviceStatus> DeviceManager::status_all() const {
  std::vector<DeviceStatus> out;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    out.push_back(status(static_cast<int>(i)));
  }
  return out;
}

int DeviceManager::device_of_instance(const std::string& uuid) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const auto& dev = *devices_[i];
    for (const auto id : dev.instance_ids()) {
      if (dev.instance(id).uuid == uuid) return static_cast<int>(i);
    }
  }
  throw util::NotFoundError(util::strf("MIG instance '", uuid, "'"));
}

sim::Co<std::vector<std::string>> DeviceManager::configure_mig(
    int index, std::vector<std::string> profiles) {
  gpu::Device& dev = device(index);
  // The reset itself fails fast if clients are still attached — check first
  // so the caller does not pay the reset delay for an invalid request.
  if (dev.context_count() > 0) {
    throw util::StateError(util::strf("configure_mig on GPU", index, " with ",
                                      dev.context_count(), " live context(s)"));
  }
  // GPU reset (§6: adds 1–2 s and interferes with everything on the GPU).
  co_await sim_.delay(dev.arch().mig_reset);
  if (dev.mig_enabled()) {
    for (const auto id : dev.instance_ids()) dev.destroy_instance(id);
  } else {
    dev.enable_mig();
  }
  std::vector<std::string> uuids;
  uuids.reserve(profiles.size());
  for (const auto& p : profiles) {
    const auto id = dev.create_instance(p);
    uuids.push_back(dev.instance(id).uuid);
  }
  co_return uuids;
}

sim::Co<void> DeviceManager::clear_mig(int index) {
  gpu::Device& dev = device(index);
  if (!dev.mig_enabled()) co_return;
  co_await sim_.delay(dev.arch().mig_reset);
  dev.disable_mig();
}

}  // namespace faaspart::nvml
