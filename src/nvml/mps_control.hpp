// MpsControl — the nvidia-cuda-mps-control daemon for one device.
//
// Operational semantics from the paper (§4.1, Table 1):
//   * the daemon must be started on the compute node *before* any function
//     with GPU code runs — starting it swaps the device's sharing policy to
//     MPS, which requires that no client contexts exist;
//   * each client's CUDA_MPS_ACTIVE_THREAD_PERCENTAGE is read once, when
//     its process (context) starts — changing an allocation requires a
//     process restart (§6);
//   * stopping the daemon returns the device to default time-slicing.
#pragma once

#include "gpu/device.hpp"
#include "sched/mps.hpp"
#include "util/units.hpp"

namespace faaspart::nvml {

class MpsControl {
 public:
  explicit MpsControl(gpu::Device& device) : device_(device) {}

  [[nodiscard]] bool running() const { return running_; }

  /// Starts the daemon (throws util::StateError if clients exist or it is
  /// already running).
  void start(sched::MpsOptions opts = {});

  /// Stops the daemon; the device reverts to default time-sharing.
  void stop();

  /// Daemon spin-up cost, charged by the FaaS partitioner when it brings a
  /// node up (the paper launches mps-control through Parsl bash ops).
  [[nodiscard]] util::Duration startup_cost() const { return util::milliseconds(400); }

  [[nodiscard]] gpu::Device& device() { return device_; }

 private:
  gpu::Device& device_;
  bool running_ = false;
};

}  // namespace faaspart::nvml
