#include "nvml/smi.hpp"

#include <sstream>

#include "trace/table.hpp"
#include "util/strings.hpp"

namespace faaspart::nvml {

std::string format_smi(const DeviceManager& manager) {
  std::ostringstream os;
  os << "+-- faaspart-smi " << std::string(60, '-') << "+\n";

  trace::Table devices({"GPU", "name", "policy", "MIG", "memory", "ctxs"});
  bool any_mig = false;
  for (std::size_t i = 0; i < manager.device_count(); ++i) {
    const auto st = manager.status(static_cast<int>(i));
    any_mig = any_mig || st.mig_enabled;
    devices.add_row({std::to_string(st.index), st.name, st.sharing_policy,
                     st.mig_enabled ? "on" : "off",
                     util::strf(util::format_bytes(st.memory_used), " / ",
                                util::format_bytes(st.memory_total)),
                     std::to_string(st.contexts)});
  }
  devices.print(os);

  if (any_mig) {
    os << "\nMIG instances:\n";
    trace::Table instances({"GPU", "UUID", "profile", "SMs", "memory"});
    for (std::size_t i = 0; i < manager.device_count(); ++i) {
      const auto& dev = manager.device(static_cast<int>(i));
      if (!dev.mig_enabled()) continue;
      for (const auto id : dev.instance_ids()) {
        const auto& inst = dev.instance(id);
        instances.add_row(
            {std::to_string(i), inst.uuid, inst.profile.name,
             std::to_string(inst.profile.sms(dev.arch())),
             util::strf(util::format_bytes(inst.memory->used()), " / ",
                        util::format_bytes(inst.memory->capacity()))});
      }
    }
    instances.print(os);
  }
  os << "+" << std::string(77, '-') << "+\n";
  return os.str();
}

}  // namespace faaspart::nvml
