#include "nvml/monitor.hpp"

#include "trace/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::nvml {

UtilizationMonitor::UtilizationMonitor(DeviceManager& manager, int device_index,
                                       util::Duration period)
    : manager_(manager), device_(device_index), period_(period) {
  FP_CHECK_MSG(period.ns > 0, "sampling period must be positive");
  (void)manager_.device(device_index);  // validates the index
}

sim::Co<void> UtilizationMonitor::run(util::TimePoint deadline) {
  auto& sim = manager_.simulator();
  util::Duration prev_busy = manager_.device(device_).busy_time();
  while (sim.now() + period_ <= deadline) {
    co_await sim.delay(period_);
    const gpu::Device& dev = manager_.device(device_);
    UtilizationSample s;
    s.at = sim.now();
    // Live busy-time delta — sees in-flight kernels, unlike the recorder.
    const util::Duration busy = dev.busy_time();
    s.utilization = (busy - prev_busy) / period_;
    prev_busy = busy;
    if (dev.mig_enabled()) {
      for (const auto id : dev.instance_ids()) {
        s.memory_used += dev.instance(id).memory->used();
      }
    } else {
      s.memory_used = dev.memory().used();
    }
    samples_.push_back(s);
  }
}

trace::Summary UtilizationMonitor::utilization_summary() const {
  std::vector<double> xs;
  xs.reserve(samples_.size());
  for (const auto& s : samples_) xs.push_back(s.utilization);
  return trace::summarize(std::move(xs));
}

util::Bytes UtilizationMonitor::peak_memory() const {
  util::Bytes peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.memory_used);
  return peak;
}

void UtilizationMonitor::write_csv(std::ostream& os) const {
  trace::CsvWriter csv(os);
  csv.row({"timestamp_s", "utilization", "memory_used_bytes"});
  for (const auto& s : samples_) {
    csv.row({util::fixed(s.at.seconds(), 3), util::fixed(s.utilization, 4),
             std::to_string(s.memory_used)});
  }
}

}  // namespace faaspart::nvml
