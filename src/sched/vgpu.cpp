#include "sched/vgpu.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace faaspart::sched {

VgpuEngine::VgpuEngine(gpu::EngineEnv env, VgpuOptions opts)
    : SharingEngine(std::move(env)), opts_(opts) {
  FP_CHECK_MSG(opts_.slots >= 1, "vGPU needs at least one slot");
  FP_CHECK_MSG(opts_.slots <= env_.sms, "more vGPU slots than SMs");
  slot_sms_ = std::max(1, env_.sms / opts_.slots);
  slot_bw_ = env_.bw_peak / opts_.slots;
  slots_.resize(static_cast<std::size_t>(opts_.slots));
}

int VgpuEngine::assign_slot(gpu::ContextId ctx) {
  const auto it = pinned_.find(ctx);
  if (it != pinned_.end()) return it->second;
  const int slot = next_slot_;
  next_slot_ = (next_slot_ + 1) % opts_.slots;
  pinned_.emplace(ctx, slot);
  return slot;
}

int VgpuEngine::slot_of(gpu::ContextId ctx) const {
  const auto it = pinned_.find(ctx);
  return it == pinned_.end() ? -1 : it->second;
}

void VgpuEngine::submit(gpu::KernelJob job) {
  const int slot = assign_slot(job.ctx);
  slots_[static_cast<std::size_t>(slot)].queue.push_back(std::move(job));
  if (!slots_[static_cast<std::size_t>(slot)].busy) start_next(slot);
}

void VgpuEngine::start_next(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.queue.empty()) {
    s.busy = false;
    return;
  }
  s.busy = true;
  gpu::KernelJob job = std::move(s.queue.front());
  s.queue.pop_front();

  const gpu::KernelTiming t =
      gpu::kernel_timing(env_.arch, job.kernel, gpu::KernelGrant{slot_sms_});
  const double rate = std::min(t.solo_bw, slot_bw_);
  const util::Duration mem =
      util::from_seconds(static_cast<double>(t.bytes) / rate);
  const util::Duration dur =
      env_.arch.kernel_launch_overhead + std::max(t.compute, mem);

  const util::TimePoint start = env_.sim->now();
  note_running_delta(+1);
  env_.sim->schedule_in(dur, [this, job, start, slot]() {
    note_running_delta(-1);
    record_span(job, start, env_.sim->now());
    job.done.set_value();
    start_next(slot);
  });
}

std::size_t VgpuEngine::active() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.busy ? 1 : 0;
  return n;
}

std::size_t VgpuEngine::queued() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.queue.size();
  return n;
}

gpu::EngineFactory vgpu_factory(VgpuOptions opts) {
  return [opts](gpu::EngineEnv env) -> std::unique_ptr<gpu::SharingEngine> {
    return std::make_unique<VgpuEngine>(std::move(env), opts);
  };
}

}  // namespace faaspart::sched
