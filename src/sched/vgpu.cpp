#include "sched/vgpu.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace faaspart::sched {

VgpuEngine::VgpuEngine(gpu::EngineEnv env, VgpuOptions opts)
    : SharingEngine(std::move(env)), opts_(opts) {
  FP_CHECK_MSG(opts_.slots >= 1, "vGPU needs at least one slot");
  FP_CHECK_MSG(opts_.slots <= env_.sms, "more vGPU slots than SMs");
  slot_sms_ = std::max(1, env_.sms / opts_.slots);
  slot_bw_ = env_.bw_peak / opts_.slots;
  slots_.resize(static_cast<std::size_t>(opts_.slots));
}

int VgpuEngine::assign_slot(gpu::ContextId ctx) {
  const auto it = pinned_.find(ctx);
  if (it != pinned_.end()) return it->second;
  const int slot = next_slot_;
  next_slot_ = (next_slot_ + 1) % opts_.slots;
  pinned_.emplace(ctx, slot);
  return slot;
}

int VgpuEngine::slot_of(gpu::ContextId ctx) const {
  const auto it = pinned_.find(ctx);
  return it == pinned_.end() ? -1 : it->second;
}

void VgpuEngine::submit(gpu::KernelJob job) {
  note_launch();
  const int slot = assign_slot(job.ctx);
  slots_[static_cast<std::size_t>(slot)].queue.push_back(std::move(job));
  if (!slots_[static_cast<std::size_t>(slot)].running) start_next(slot);
}

void VgpuEngine::start_next(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.queue.empty()) return;
  gpu::KernelJob job = std::move(s.queue.front());
  s.queue.pop_front();

  const gpu::KernelTiming t =
      gpu::kernel_timing(env_.arch, job.kernel, gpu::KernelGrant{slot_sms_});
  const double rate = std::min(t.solo_bw, slot_bw_);
  const util::Duration mem =
      util::from_seconds(static_cast<double>(t.bytes) / rate);
  const util::Duration dur =
      env_.arch.kernel_launch_overhead + std::max(t.compute, mem);

  const util::TimePoint start = env_.sim->now();
  note_running_delta(+1);
  s.running.emplace(Inflight{std::move(job), start, 0});
  s.running->event = env_.sim->schedule_in(dur, [this, slot]() {
    Slot& sl = slots_[static_cast<std::size_t>(slot)];
    Inflight fin = std::move(*sl.running);
    sl.running.reset();
    note_running_delta(-1);
    record_span(fin.job, fin.start, env_.sim->now());
    fin.job.done.set_value();
    start_next(slot);
  });
}

void VgpuEngine::fail_running(Slot& s, std::exception_ptr error) {
  Inflight fin = std::move(*s.running);
  s.running.reset();
  (void)env_.sim->cancel(fin.event);
  note_running_delta(-1);
  fin.job.done.set_exception(error);
}

std::size_t VgpuEngine::abort_all(std::exception_ptr error) {
  std::size_t n = 0;
  for (auto& s : slots_) {
    n += s.queue.size();
    for (auto& job : s.queue) job.done.set_exception(error);
    s.queue.clear();
    if (s.running) {
      fail_running(s, error);
      ++n;
    }
  }
  note_aborts(n);
  return n;
}

std::size_t VgpuEngine::abort_context(gpu::ContextId ctx,
                                      std::exception_ptr error) {
  const int slot = slot_of(ctx);
  if (slot < 0) return 0;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  std::size_t n = 0;
  for (auto it = s.queue.begin(); it != s.queue.end();) {
    if (it->ctx == ctx) {
      it->done.set_exception(error);
      it = s.queue.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  if (s.running && s.running->job.ctx == ctx) {
    fail_running(s, error);
    ++n;
    start_next(slot);  // a slot-mate's queued kernel takes over
  }
  note_aborts(n);
  return n;
}

std::size_t VgpuEngine::active() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.running ? 1 : 0;
  return n;
}

std::size_t VgpuEngine::queued() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.queue.size();
  return n;
}

gpu::EngineFactory vgpu_factory(VgpuOptions opts) {
  return [opts](gpu::EngineEnv env) -> std::unique_ptr<gpu::SharingEngine> {
    return std::make_unique<VgpuEngine>(std::move(env), opts);
  };
}

}  // namespace faaspart::sched
