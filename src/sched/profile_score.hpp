// ProfileScore — predicted per-instance performance of one function on one
// MIG profile, the output of a sched::MpsProbe co-run probe (or an analytic
// model) and the input of core::PartitionPlanner.
//
// It lives in sched/, with the probe that produces it, so that the probe
// does not have to include the planner: sched sits below core in the
// layering DAG (.faaspart-lint), and the planner re-exports the type as
// core::ProfileScore for its own callers.
#pragma once

#include <string>

namespace faaspart::sched {

struct ProfileScore {
  std::string profile;       ///< MIG profile name, e.g. "3g.40gb" or "3g"
  double latency_s = 0;      ///< predicted per-request latency on the profile
  double throughput_hz = 0;  ///< predicted sustainable request rate
};

}  // namespace faaspart::sched
