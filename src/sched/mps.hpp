// MpsEngine — CUDA Multi-Process Service semantics (Table 1, rows 2–3).
//
// Kernels from different clients execute *concurrently* as long as SMs are
// free. Each client's kernels are limited to its SM cap (the
// CUDA_MPS_ACTIVE_THREAD_PERCENTAGE the executor sets before the worker
// starts); a kernel occupies min(cap, width) SMs.
//
// Memory bandwidth is processor-shared: every running kernel has an
// intrinsic demand rate (from the roofline model); when the sum of demands
// exceeds the envelope's peak, rates scale down proportionally, and a small
// interference factor models cache/DRAM-bank contention between co-running
// clients even below peak. The engine replans in-flight kernels whenever
// the running set changes — kernels drain their remaining bytes at the new
// rates (this is what makes 4-way LLaMa-2 multiplexing land at ~2.5× rather
// than 4× throughput, Fig 4).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "gpu/engine.hpp"

namespace faaspart::sched {

struct MpsOptions {
  /// Per-co-runner slowdown of memory throughput: with n concurrently
  /// draining kernels each rate is divided by (1 + alpha * (n - 1)).
  double interference_alpha = 0.12;
  /// When true (default MPS without percentages), a job whose client has no
  /// cap may use the whole envelope, subject to free SMs at admission.
  bool allow_uncapped = true;
};

class MpsEngine final : public gpu::SharingEngine {
 public:
  MpsEngine(gpu::EngineEnv env, MpsOptions opts)
      : SharingEngine(std::move(env)), opts_(opts) {}

  [[nodiscard]] const char* policy_name() const override { return "mps"; }
  void submit(gpu::KernelJob job) override;
  [[nodiscard]] std::size_t active() const override { return running_.size(); }
  [[nodiscard]] std::size_t queued() const override { return queue_.size(); }
  std::size_t abort_all(std::exception_ptr error) override;
  std::size_t abort_context(gpu::ContextId ctx, std::exception_ptr error) override;

  /// SMs currently occupied by running kernels.
  [[nodiscard]] int sms_in_use() const { return sms_in_use_; }

 private:
  struct Pending {
    gpu::KernelJob job;
    util::TimePoint since{};  ///< enqueue time — SM-cap throttle accounting
  };

  struct Running {
    gpu::KernelJob job;
    int sms = 0;                  ///< SMs occupied until completion
    util::TimePoint start{};
    util::TimePoint compute_end{};
    double demand = 0;            ///< intrinsic drain rate, B/s
    double remaining_bytes = 0;
    double rate = 0;              ///< current (contended) drain rate
    util::TimePoint last_advance{};
    sim::Simulator::EventId event = 0;
  };

  void try_admit();
  void admit(gpu::KernelJob job);
  void complete(std::uint64_t rid);
  /// Removes a running kernel without completing it (abort paths).
  void evict(std::map<std::uint64_t, Running>::iterator it,
             std::exception_ptr error);
  /// Advances byte drains to `now`, recomputes contended rates, and
  /// reschedules every running kernel's completion event.
  void replan();
  [[nodiscard]] int effective_sms(const gpu::KernelJob& job) const;

  MpsOptions opts_;
  std::deque<Pending> queue_;
  std::map<std::uint64_t, Running> running_;
  std::uint64_t next_rid_ = 1;
  int sms_in_use_ = 0;
};

gpu::EngineFactory mps_factory(MpsOptions opts = {});

}  // namespace faaspart::sched
