// MpsProbe — MISO-style MIG-profile prediction via MPS co-run probes
// (PAPERS.md: MISO; DESIGN.md §13).
//
// Reconfiguring MIG to measure a function on every candidate profile costs a
// GPU reset per trial. MISO's shortcut: run the function under an MPS
// active-thread percentage shaped like the candidate profile's SM share,
// next to a background co-runner occupying the rest of the device, and
// predict MIG performance from that — no reset, one short probe per profile.
//
// Each probe is its own tiny private Simulator + Device: fully seeded and
// deterministic, virtual-time only, never touching the serving fleet. The
// measured co-run latency captures launch overhead, compute scaling under
// the SM cap and MPS contention; because MPS does not slice memory
// bandwidth the way MIG does, the probe takes the max of the measured
// latency and the analytic bandwidth-slice floor (roofline drain time at the
// profile's HBM slice share) — without that correction MPS systematically
// flatters small-memory profiles for bandwidth-bound kernels.
#pragma once

#include <vector>

#include "sched/profile_score.hpp"
#include "gpu/kernel.hpp"
#include "gpu/mig.hpp"

namespace faaspart::sched {

struct ProbeOptions {
  /// Foreground requests measured per candidate profile.
  int requests = 6;
  /// Staggers the background co-runner's start so fg/bg kernels do not run
  /// in lockstep; same seed, same probe scores.
  std::uint64_t seed = 1;
  /// Host-side gap between foreground requests (decode loop, scheduling).
  util::Duration host_gap = util::microseconds(50);
};

class MpsProbe {
 public:
  explicit MpsProbe(gpu::GpuArchSpec arch, ProbeOptions opts = {});

  /// Scores every MIG profile of the arch for a function whose request is
  /// the `kernels` sequence. `background` is the co-runner's kernel mix
  /// (defaults to the function's own kernels — self-interference, the
  /// conservative choice). Deterministic: same inputs, same scores.
  [[nodiscard]] std::vector<ProfileScore> score_function(
      const std::vector<gpu::KernelDesc>& kernels,
      const std::vector<gpu::KernelDesc>& background = {}) const;

 private:
  [[nodiscard]] ProfileScore score_profile(
      const gpu::MigProfile& profile,
      const std::vector<gpu::KernelDesc>& kernels,
      const std::vector<gpu::KernelDesc>& background) const;

  gpu::GpuArchSpec arch_;
  ProbeOptions opts_;
};

}  // namespace faaspart::sched
