#include "sched/probe.hpp"

#include <algorithm>

#include "gpu/device.hpp"
#include "sched/mps.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace faaspart::sched {

namespace {

sim::Co<void> run_foreground(sim::Simulator& sim, gpu::Device& dev,
                             gpu::ContextId ctx,
                             const std::vector<gpu::KernelDesc>& kernels,
                             int requests, util::Duration gap,
                             util::Duration& total, bool& done) {
  for (int i = 0; i < requests; ++i) {
    const util::TimePoint start = sim.now();
    for (const auto& k : kernels) {
      auto fut = dev.launch(ctx, k);
      co_await fut;
    }
    total += sim.now() - start;
    if (gap.ns > 0) co_await sim.delay(gap);
  }
  done = true;
}

sim::Co<void> run_background(sim::Simulator& sim, gpu::Device& dev,
                             gpu::ContextId ctx,
                             const std::vector<gpu::KernelDesc>& kernels,
                             util::Duration offset, const bool& done) {
  if (offset.ns > 0) co_await sim.delay(offset);
  while (!done) {
    for (const auto& k : kernels) {
      if (done) break;
      auto fut = dev.launch(ctx, k);
      co_await fut;
    }
  }
}

}  // namespace

MpsProbe::MpsProbe(gpu::GpuArchSpec arch, ProbeOptions opts)
    : arch_(std::move(arch)), opts_(opts) {
  FP_CHECK_MSG(opts_.requests > 0, "probe needs at least one request");
}

ProfileScore MpsProbe::score_profile(
    const gpu::MigProfile& profile, const std::vector<gpu::KernelDesc>& kernels,
    const std::vector<gpu::KernelDesc>& background) const {
  sim::Simulator sim;
  gpu::Device dev(sim, arch_, /*index=*/0, mps_factory());

  const double fg_pct = std::clamp(
      100.0 * profile.sms(arch_) / arch_.total_sms, 1.0, 100.0);
  gpu::ContextOptions fg_opts;
  fg_opts.active_thread_percentage = fg_pct;
  const gpu::ContextId fg = dev.create_context("probe-fg", fg_opts);

  util::Duration total{};
  bool done = false;
  sim.spawn(run_foreground(sim, dev, fg, kernels, opts_.requests,
                           opts_.host_gap, total, done),
            "probe-fg");
  if (fg_pct <= 99.0) {
    gpu::ContextOptions bg_opts;
    bg_opts.active_thread_percentage = 100.0 - fg_pct;
    const gpu::ContextId bg = dev.create_context("probe-bg", bg_opts);
    const util::Duration offset{
        opts_.host_gap.ns > 0
            ? static_cast<std::int64_t>(opts_.seed %
                                        static_cast<std::uint64_t>(opts_.host_gap.ns))
            : 0};
    sim.spawn(run_background(sim, dev, bg, background, offset, done),
              "probe-bg");
  }
  sim.run();

  const double measured_s =
      total.seconds() / static_cast<double>(opts_.requests);

  // Analytic bandwidth-slice floor: on the MIG instance the request's bytes
  // drain at the profile's HBM slice share, not the whole device's.
  double floor_s = 0;
  const int grant_sms = std::max(1, profile.sms(arch_));
  for (const auto& k : kernels) {
    const gpu::KernelTiming t =
        gpu::kernel_timing(arch_, k, gpu::KernelGrant{grant_sms});
    const double slice_share = static_cast<double>(profile.mem_slices) /
                               static_cast<double>(arch_.mem_slices);
    const double slice_bw = std::max(1.0, t.solo_bw * slice_share);
    const double mem_s = static_cast<double>(t.bytes) / slice_bw;
    floor_s += arch_.kernel_launch_overhead.seconds() +
               std::max(t.compute.seconds(), mem_s);
  }

  ProfileScore score;
  score.profile = profile.name;
  score.latency_s = std::max(measured_s, floor_s);
  score.throughput_hz = score.latency_s > 0 ? 1.0 / score.latency_s : 0.0;
  return score;
}

std::vector<ProfileScore> MpsProbe::score_function(
    const std::vector<gpu::KernelDesc>& kernels,
    const std::vector<gpu::KernelDesc>& background) const {
  FP_CHECK_MSG(!kernels.empty(), "probe needs kernels");
  const std::vector<gpu::KernelDesc>& bg =
      background.empty() ? kernels : background;
  std::vector<ProfileScore> scores;
  for (const auto& profile : gpu::mig_profiles(arch_)) {
    scores.push_back(score_profile(profile, kernels, bg));
  }
  return scores;
}

}  // namespace faaspart::sched
