// TimeShareEngine — the NVIDIA default when multiple processes use a GPU
// without MPS or MIG (Table 1, row 1).
//
// Kernels from all clients execute one at a time in submission order; each
// gets the whole envelope while it runs, and the hardware pays a context
// switch when consecutive kernels come from different clients. A kernel
// narrower than the device leaves the remaining SMs idle — this is exactly
// the "low hardware utilization when an application cannot saturate the
// GPU" drawback the paper calls out.
#pragma once

#include <deque>
#include <optional>

#include "gpu/engine.hpp"

namespace faaspart::sched {

class TimeShareEngine final : public gpu::SharingEngine {
 public:
  explicit TimeShareEngine(gpu::EngineEnv env) : SharingEngine(std::move(env)) {}

  [[nodiscard]] const char* policy_name() const override { return "timeshare"; }
  void submit(gpu::KernelJob job) override;
  [[nodiscard]] std::size_t active() const override { return inflight_ ? 1 : 0; }
  [[nodiscard]] std::size_t queued() const override { return queue_.size(); }
  std::size_t abort_all(std::exception_ptr error) override;
  std::size_t abort_context(gpu::ContextId ctx, std::exception_ptr error) override;

 private:
  /// The one kernel currently executing, with its completion event so abort
  /// paths can cancel it.
  struct Inflight {
    gpu::KernelJob job;
    util::TimePoint start{};
    sim::Simulator::EventId event = 0;
  };

  void start_next();
  void fail_inflight(std::exception_ptr error);

  std::deque<gpu::KernelJob> queue_;
  std::optional<Inflight> inflight_;
  gpu::ContextId last_ctx_ = 0;
  bool have_last_ = false;
};

/// Factory for Device / nvml: the out-of-the-box sharing policy.
gpu::EngineFactory timeshare_factory();

}  // namespace faaspart::sched
