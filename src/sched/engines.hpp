// Umbrella header for the concrete sharing policies.
#pragma once

#include "sched/mps.hpp"      // IWYU pragma: export
#include "sched/timeshare.hpp"  // IWYU pragma: export
#include "sched/vgpu.hpp"     // IWYU pragma: export
