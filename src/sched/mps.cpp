#include "sched/mps.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace faaspart::sched {

int MpsEngine::effective_sms(const gpu::KernelJob& job) const {
  int cap = job.sm_cap;
  if (cap <= 0) {
    FP_CHECK_MSG(opts_.allow_uncapped, "uncapped client on a capped MPS engine");
    cap = env_.sms;
  }
  cap = std::min(cap, env_.sms);
  return std::max(1, std::min(cap, job.kernel.width_sms));
}

void MpsEngine::submit(gpu::KernelJob job) {
  note_launch();
  queue_.push_back(Pending{std::move(job), env_.sim->now()});
  try_admit();
}

void MpsEngine::try_admit() {
  bool admitted = false;
  // FIFO admission: the head waits for SMs; later jobs do not jump it (this
  // mirrors the hardware work scheduler filling SMs in launch order).
  while (!queue_.empty()) {
    const int need = effective_sms(queue_.front().job);
    if (sms_in_use_ + need > env_.sms) break;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    note_throttle(env_.sim->now() - p.since, p.job.sm_cap);
    admit(std::move(p.job));
    admitted = true;
  }
  if (admitted) replan();
}

void MpsEngine::admit(gpu::KernelJob job) {
  Running r;
  r.sms = effective_sms(job);
  const gpu::KernelTiming t =
      gpu::kernel_timing(env_.arch, job.kernel, gpu::KernelGrant{r.sms});
  const util::TimePoint now = env_.sim->now();
  r.start = now;
  r.compute_end = now + env_.arch.kernel_launch_overhead + t.compute;
  r.demand = t.solo_bw;
  r.remaining_bytes = static_cast<double>(t.bytes);
  // The memory drain also starts after the launch overhead; last_advance in
  // the future makes replan() hold the bytes until then.
  r.last_advance = now + env_.arch.kernel_launch_overhead;
  r.job = std::move(job);
  sms_in_use_ += r.sms;
  note_running_delta(+1);
  const std::uint64_t rid = next_rid_++;
  running_.emplace(rid, std::move(r));
  // replan() (called by try_admit) assigns the rate and completion event.
}

void MpsEngine::replan() {
  const util::TimePoint now = env_.sim->now();

  // 1. Drain bytes at the old rates up to now. A last_advance in the future
  //    means the kernel is still in its launch window — nothing drains yet.
  for (auto& [rid, r] : running_) {
    if (now <= r.last_advance) continue;
    const double dt = (now - r.last_advance).seconds();
    r.remaining_bytes = std::max(0.0, r.remaining_bytes - r.rate * dt);
    r.last_advance = now;
  }

  // 2. Recompute contended rates.
  double total_demand = 0;
  std::size_t draining = 0;
  for (const auto& [rid, r] : running_) {
    if (r.remaining_bytes > 0) {
      total_demand += r.demand;
      ++draining;
    }
  }
  const double overload =
      total_demand > env_.bw_peak ? env_.bw_peak / total_demand : 1.0;
  const double interference =
      1.0 / (1.0 + opts_.interference_alpha *
                       static_cast<double>(draining > 0 ? draining - 1 : 0));

  // 3. Reschedule completions.
  for (auto& [rid, r] : running_) {
    r.rate = std::max(1.0, r.demand * overload * interference);
    util::TimePoint finish = r.compute_end;
    if (r.remaining_bytes > 0) {
      const util::TimePoint drain_from = std::max(now, r.last_advance);
      const util::TimePoint drain_end =
          drain_from + util::from_seconds(r.remaining_bytes / r.rate);
      finish = std::max(finish, drain_end);
    }
    finish = std::max(finish, now);
    if (r.event != 0) env_.sim->cancel(r.event);
    r.event = env_.sim->schedule_at(finish, [this, rid = rid] { complete(rid); });
  }
}

void MpsEngine::complete(std::uint64_t rid) {
  const auto it = running_.find(rid);
  FP_CHECK(it != running_.end());
  Running r = std::move(it->second);
  running_.erase(it);
  sms_in_use_ -= r.sms;
  note_running_delta(-1);
  record_span(r.job, r.start, env_.sim->now());
  r.job.done.set_value();
  // Admission first (freed SMs may admit queued work), then replan picks up
  // both the departure and any admissions in one pass.
  const std::size_t before = running_.size();
  try_admit();
  if (running_.size() == before) replan();  // departure-only: rates improved
}

void MpsEngine::evict(std::map<std::uint64_t, Running>::iterator it,
                      std::exception_ptr error) {
  Running r = std::move(it->second);
  running_.erase(it);
  if (r.event != 0) (void)env_.sim->cancel(r.event);
  sms_in_use_ -= r.sms;
  note_running_delta(-1);
  r.job.done.set_exception(error);
}

std::size_t MpsEngine::abort_all(std::exception_ptr error) {
  std::size_t n = queue_.size() + running_.size();
  for (auto& p : queue_) p.job.done.set_exception(error);
  queue_.clear();
  while (!running_.empty()) evict(running_.begin(), error);
  note_aborts(n);
  return n;
}

std::size_t MpsEngine::abort_context(gpu::ContextId ctx,
                                     std::exception_ptr error) {
  std::size_t n = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->job.ctx == ctx) {
      it->job.done.set_exception(error);
      it = queue_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  bool evicted = false;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->second.job.ctx == ctx) {
      evict(it++, error);
      evicted = true;
      ++n;
    } else {
      ++it;
    }
  }
  if (evicted) {
    // Same shape as complete(): freed SMs may admit queued work; a
    // departure-only change still improves the survivors' rates.
    const std::size_t before = running_.size();
    try_admit();
    if (running_.size() == before) replan();
  }
  note_aborts(n);
  return n;
}

gpu::EngineFactory mps_factory(MpsOptions opts) {
  return [opts](gpu::EngineEnv env) -> std::unique_ptr<gpu::SharingEngine> {
    return std::make_unique<MpsEngine>(std::move(env), opts);
  };
}

}  // namespace faaspart::sched
