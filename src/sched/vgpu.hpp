// VgpuEngine — NVIDIA vGPU-style sharing (Table 1, row 5).
//
// The envelope is divided into N *homogeneous* slots (the defining vGPU
// restriction) and each client context is pinned to one slot for its
// lifetime, like a VM with a fixed vGPU profile. Within a slot, kernels
// serialize; slots do not share SMs or bandwidth with each other.
// Reconfiguring the slot count requires a VM restart — modeled by the same
// "no live contexts" rule the other policies use.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "gpu/engine.hpp"

namespace faaspart::sched {

struct VgpuOptions {
  int slots = 2;  ///< homogeneous division of the envelope
};

class VgpuEngine final : public gpu::SharingEngine {
 public:
  VgpuEngine(gpu::EngineEnv env, VgpuOptions opts);

  [[nodiscard]] const char* policy_name() const override { return "vgpu"; }
  void submit(gpu::KernelJob job) override;
  [[nodiscard]] std::size_t active() const override;
  [[nodiscard]] std::size_t queued() const override;
  std::size_t abort_all(std::exception_ptr error) override;
  std::size_t abort_context(gpu::ContextId ctx, std::exception_ptr error) override;

  [[nodiscard]] int slots() const { return opts_.slots; }
  /// Slot a context is pinned to, or -1 if it has not launched yet.
  [[nodiscard]] int slot_of(gpu::ContextId ctx) const;

 private:
  /// The kernel executing in a slot, with its completion event so abort
  /// paths can cancel it.
  struct Inflight {
    gpu::KernelJob job;
    util::TimePoint start{};
    sim::Simulator::EventId event = 0;
  };
  struct Slot {
    std::optional<Inflight> running;
    std::deque<gpu::KernelJob> queue;
  };

  void start_next(int slot);
  void fail_running(Slot& s, std::exception_ptr error);
  int assign_slot(gpu::ContextId ctx);

  VgpuOptions opts_;
  int slot_sms_;
  double slot_bw_;
  std::vector<Slot> slots_;
  std::map<gpu::ContextId, int> pinned_;
  int next_slot_ = 0;
};

gpu::EngineFactory vgpu_factory(VgpuOptions opts);

}  // namespace faaspart::sched
