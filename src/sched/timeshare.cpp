#include "sched/timeshare.hpp"

#include <algorithm>
#include <memory>

namespace faaspart::sched {

void TimeShareEngine::submit(gpu::KernelJob job) {
  queue_.push_back(std::move(job));
  if (!busy_) start_next();
}

void TimeShareEngine::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  gpu::KernelJob job = std::move(queue_.front());
  queue_.pop_front();

  util::Duration switch_cost{0};
  if (have_last_ && job.ctx != last_ctx_) switch_cost = env_.arch.context_switch;
  last_ctx_ = job.ctx;
  have_last_ = true;

  // Exclusive access: the kernel gets the whole envelope (time-sharing does
  // not enforce MPS-style caps), limited only by its own saturation width.
  const gpu::KernelTiming t =
      gpu::kernel_timing(env_.arch, job.kernel, gpu::KernelGrant{env_.sms});
  const double rate = std::min(t.solo_bw, env_.bw_peak);
  const util::Duration mem =
      util::from_seconds(static_cast<double>(t.bytes) / rate);
  const util::Duration dur =
      switch_cost + env_.arch.kernel_launch_overhead + std::max(t.compute, mem);

  const util::TimePoint start = env_.sim->now();
  note_running_delta(+1);
  env_.sim->schedule_in(dur, [this, job, start]() {
    note_running_delta(-1);
    record_span(job, start, env_.sim->now());
    job.done.set_value();
    start_next();
  });
}

gpu::EngineFactory timeshare_factory() {
  return [](gpu::EngineEnv env) -> std::unique_ptr<gpu::SharingEngine> {
    return std::make_unique<TimeShareEngine>(std::move(env));
  };
}

}  // namespace faaspart::sched
