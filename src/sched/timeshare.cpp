#include "sched/timeshare.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace faaspart::sched {

void TimeShareEngine::submit(gpu::KernelJob job) {
  note_launch();
  queue_.push_back(std::move(job));
  if (!inflight_) start_next();
}

void TimeShareEngine::start_next() {
  if (queue_.empty()) return;
  gpu::KernelJob job = std::move(queue_.front());
  queue_.pop_front();

  util::Duration switch_cost{0};
  if (have_last_ && job.ctx != last_ctx_) switch_cost = env_.arch.context_switch;
  last_ctx_ = job.ctx;
  have_last_ = true;

  // Exclusive access: the kernel gets the whole envelope (time-sharing does
  // not enforce MPS-style caps), limited only by its own saturation width.
  const gpu::KernelTiming t =
      gpu::kernel_timing(env_.arch, job.kernel, gpu::KernelGrant{env_.sms});
  const double rate = std::min(t.solo_bw, env_.bw_peak);
  const util::Duration mem =
      util::from_seconds(static_cast<double>(t.bytes) / rate);
  const util::Duration dur =
      switch_cost + env_.arch.kernel_launch_overhead + std::max(t.compute, mem);

  const util::TimePoint start = env_.sim->now();
  note_running_delta(+1);
  inflight_.emplace(Inflight{std::move(job), start, 0});
  inflight_->event = env_.sim->schedule_in(dur, [this]() {
    Inflight fin = std::move(*inflight_);
    inflight_.reset();
    note_running_delta(-1);
    record_span(fin.job, fin.start, env_.sim->now());
    fin.job.done.set_value();
    start_next();
  });
}

void TimeShareEngine::fail_inflight(std::exception_ptr error) {
  Inflight fin = std::move(*inflight_);
  inflight_.reset();
  (void)env_.sim->cancel(fin.event);
  note_running_delta(-1);
  fin.job.done.set_exception(error);
}

std::size_t TimeShareEngine::abort_all(std::exception_ptr error) {
  std::size_t n = queue_.size();
  for (auto& job : queue_) job.done.set_exception(error);
  queue_.clear();
  if (inflight_) {
    fail_inflight(error);
    ++n;
  }
  note_aborts(n);
  return n;
}

std::size_t TimeShareEngine::abort_context(gpu::ContextId ctx,
                                           std::exception_ptr error) {
  std::size_t n = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->ctx == ctx) {
      it->done.set_exception(error);
      it = queue_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  if (inflight_ && inflight_->job.ctx == ctx) {
    fail_inflight(error);
    ++n;
    start_next();  // other clients' queued kernels keep flowing
  }
  note_aborts(n);
  return n;
}

gpu::EngineFactory timeshare_factory() {
  return [](gpu::EngineEnv env) -> std::unique_ptr<gpu::SharingEngine> {
    return std::make_unique<TimeShareEngine>(std::move(env));
  };
}

}  // namespace faaspart::sched
