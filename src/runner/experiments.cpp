#include "runner/experiments.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "core/partitioner.hpp"
#include "faas/dfk.hpp"
#include "federation/repartition.hpp"
#include "faas/provider.hpp"
#include "gpu/device.hpp"
#include "nvml/manager.hpp"
#include "obs/critical_path.hpp"
#include "obs/telemetry.hpp"
#include "runner/runner.hpp"
#include "scenario/driver.hpp"
#include "scenario/synthesize.hpp"
#include "sched/engines.hpp"
#include "sched/probe.hpp"
#include "trace/recorder.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"
#include "workloads/dnn.hpp"
#include "workloads/llama.hpp"
#include "workloads/serving.hpp"

namespace faaspart::runner {

using namespace util::literals;

// -- Fig 2 ------------------------------------------------------------------

std::vector<Fig2Point> fig2_points() {
  std::vector<Fig2Point> points;
  for (const int sms : {2, 5, 10, 15, 20, 27, 40, 54, 81, 108}) {
    points.push_back(Fig2Point{sms});
  }
  return points;
}

namespace {

/// Runs one fp32 completion with an SM cap on `shards` fresh A100-40GBs;
/// returns the virtual completion latency.
util::Duration fig2_completion(const workloads::LlamaSpec& spec, int shards,
                               int sm_cap, int tokens) {
  sim::Simulator sim;
  const auto arch = gpu::arch::a100_sxm4_40gb();
  const auto cfg = workloads::fig2_config(shards);
  const double pct = 100.0 * sm_cap / arch.total_sms;

  // Tensor parallelism: each shard device runs the same kernel sequence;
  // a step completes when every shard finishes (plus per-layer syncs,
  // which llama_completion charges through cfg).
  std::vector<std::unique_ptr<gpu::Device>> devs;
  std::vector<gpu::ContextId> ctxs;
  for (int s = 0; s < shards; ++s) {
    devs.push_back(std::make_unique<gpu::Device>(sim, arch, s,
                                                 sched::mps_factory()));
    ctxs.push_back(devs.back()->create_context(
        "llama", {.active_thread_percentage = pct}));
  }
  // Drive the primary shard's completion; secondary shards mirror each
  // kernel. With identical grants they finish simultaneously, so awaiting
  // the primary suffices for timing.
  sim.spawn(workloads::llama_completion(sim, *devs[0], ctxs[0], spec, cfg,
                                        {32, tokens}));
  for (int s = 1; s < shards; ++s) {
    sim.spawn(workloads::llama_completion(sim, *devs[s], ctxs[s], spec, cfg,
                                          {32, tokens}));
  }
  sim.run();
  return sim.now() - util::TimePoint{};
}

}  // namespace

Fig2Result run_fig2_point(const Fig2Point& point) {
  Fig2Result r;
  r.point = point;
  r.t7_s = fig2_completion(workloads::llama2_7b(), 1, point.sms, point.tokens)
               .seconds();
  r.t13_s = fig2_completion(workloads::llama2_13b(), 2, point.sms, point.tokens)
                .seconds();
  return r;
}

std::string render_fig2(const std::vector<Fig2Result>& results) {
  std::ostringstream os;
  trace::print_banner(os,
                      "Fig 2: LLaMa-2 inference run-time vs granted SMs (fp32)");

  const int tokens = results.empty() ? 27 : results.front().point.tokens;
  const auto cpu = gpu::arch::xeon_testbed();
  const double cpu7 =
      workloads::llama_cpu_completion_time(workloads::llama2_7b(), cpu, tokens)
          .seconds();
  const double cpu13 =
      workloads::llama_cpu_completion_time(workloads::llama2_13b(), cpu, tokens)
          .seconds();

  trace::Table table({"SMs", "7B 1xA100 (s)", "13B 2xA100 (s)",
                      "7B speedup vs CPU", "13B speedup vs CPU"});
  double t7_full = 0;
  double t7_at20 = 0;
  for (const auto& r : results) {
    if (r.point.sms == 108) t7_full = r.t7_s;
    if (r.point.sms == 20) t7_at20 = r.t7_s;
    table.add_row({std::to_string(r.point.sms), util::fixed(r.t7_s, 2),
                   util::fixed(r.t13_s, 2),
                   util::fixed(cpu7 / r.t7_s, 1) + "x",
                   util::fixed(cpu13 / r.t13_s, 1) + "x"});
  }
  table.print(os);

  os << "\nCPU baselines (paper: ~180 s and ~360 s): 7B "
     << util::fixed(cpu7, 0) << " s, 13B " << util::fixed(cpu13, 0) << " s\n";
  if (t7_full > 0 && t7_at20 > 0) {
    os << "Knee check: latency at 20 SMs is within "
       << util::fixed(100.0 * (t7_at20 / t7_full - 1.0), 1)
       << "% of the full-GPU latency -- more than ~20 SMs buys nothing"
          " (the paper's observation).\n";
  }
  return os.str();
}

// -- Fig 4 ------------------------------------------------------------------

std::vector<Fig4Point> fig4_points() {
  std::vector<Fig4Point> points;
  points.push_back(Fig4Point{workloads::MultiplexMode::kSingle, 1});
  for (const auto mode :
       {workloads::MultiplexMode::kTimeshare, workloads::MultiplexMode::kMps,
        workloads::MultiplexMode::kMig}) {
    for (int procs = 2; procs <= 4; ++procs) {
      points.push_back(Fig4Point{mode, procs});
    }
  }
  return points;
}

workloads::MultiplexRunResult run_fig4_point(const Fig4Point& point) {
  workloads::MultiplexRunConfig cfg;
  cfg.processes = point.processes;
  cfg.mode = point.mode;
  cfg.total_completions = point.total_completions;
  cfg.seed = point.seed;
  return run_multiplex_experiment(cfg);
}

std::string render_fig4(
    const std::vector<workloads::MultiplexRunResult>& results) {
  std::ostringstream os;
  trace::print_banner(os,
                      "Fig 4: time to complete 100 LLaMa-2 7B text completions "
                      "(A100-80GB, virtual time)");

  const double base = results.front().batch.makespan.seconds();
  trace::Table table({"processes", "mode", "completion time (s)",
                      "vs 1 process", "throughput (tasks/s)", "GPU util"});
  for (const auto& r : results) {
    const double t = r.batch.makespan.seconds();
    table.add_row({std::to_string(r.config.processes),
                   workloads::multiplex_mode_name(r.config.mode),
                   util::fixed(t, 1),
                   util::fixed(100.0 * (1.0 - t / base), 1) + "%",
                   util::fixed(r.batch.throughput(), 3),
                   util::fixed(100.0 * r.gpu_utilization, 1) + "%"});
  }
  table.print(os);

  os << "\nPaper's headline: 4-way MPS multiplexing cuts task completion"
        " time by up to ~60% and raises throughput ~2.5x vs one model"
        " per GPU; MPS edges out MIG at 3-4 processes because its"
        " partitions are finer (1/3 vs 2/7, 1/4 vs 1/7 of the GPU).\n";
  return os.str();
}

// -- Table 1 ----------------------------------------------------------------

std::vector<std::string> table1_points() {
  return {"timeshare", "mps-default", "mps-percentage", "mig", "vgpu"};
}

namespace {

faas::AppDef table1_resnet_app(const std::string& name) {
  faas::AppDef app;
  app.name = name;
  app.function_init = 500_ms;
  app.model_bytes = 2 * util::GB;  // weights + runtime
  app.model_key = "resnet50";
  const auto kernels = workloads::models::resnet50().inference_kernels(8);
  // faaspart-lint: allow(C2) -- the lambda is stored in AppDef::body for the
  // app's whole lifetime; every coroutine it starts finishes while the
  // owning AppDef (and so the captures) is still alive
  app.body = [kernels](faas::TaskContext& ctx) -> sim::Co<faas::AppValue> {
    for (const auto& k : kernels) co_await ctx.launch(k);
    co_return faas::AppValue{};
  };
  return app;
}

}  // namespace

Table1Result run_table1_point(const std::string& technique,
                              const Table1Options& opts) {
  sim::Simulator sim;
  trace::Recorder rec;
  nvml::DeviceManager mgr(sim, &rec);
  const int gpu = mgr.add_device(gpu::arch::a100_80gb());
  faas::LocalProvider provider(sim, 24);
  core::GpuPartitioner part(mgr);
  faas::DataFlowKernel dfk(sim, faas::Config{});

  faas::HtexConfig htex;
  htex.label = "gpu";
  if (technique == "timeshare") {
    htex.available_accelerators = {"0", "0", "0"};
  } else if (technique == "mps-default") {
    part.mps(gpu).start();  // daemon up, no per-client caps
    htex.available_accelerators = {"0", "0", "0"};
  } else if (technique == "mps-percentage") {
    htex.available_accelerators = {"0", "0", "0"};
    htex.gpu_percentages = {30, 30, 40};
  } else if (technique == "mig") {
    gpu::Device& dev = mgr.device(gpu);
    dev.enable_mig();
    for (const char* p : {"2g.20gb", "2g.20gb", "3g.40gb"}) {
      htex.available_accelerators.push_back(
          dev.instance(dev.create_instance(p)).uuid);
    }
  } else if (technique == "vgpu") {
    mgr.device(gpu).set_engine_factory(sched::vgpu_factory({.slots = 3}));
    htex.available_accelerators = {"0", "0", "0"};
  }
  dfk.add_executor(part.build_executor(sim, provider, htex, nullptr, &rec));

  // Mixed tenant set: two ResNet-50 serving tenants (open loop, offered load
  // high enough to saturate a time-shared GPU) and one LLaMa chatbot
  // (closed loop) — saturation is where the techniques' utilization and
  // throughput separate, which is the paper's Table 1 comparison.
  const util::Duration window = opts.window;
  auto r1 = std::make_shared<std::vector<faas::AppHandle>>();
  auto r2 = std::make_shared<std::vector<faas::AppHandle>>();
  workloads::spawn_open_loop(sim, dfk, "gpu", table1_resnet_app("resnet-a"),
                             12.0, window, 11, r1);
  workloads::spawn_open_loop(sim, dfk, "gpu", table1_resnet_app("resnet-b"),
                             12.0, window, 13, r2);
  auto llama = std::make_shared<workloads::BatchRunResult>();
  workloads::spawn_closed_loop_batch(
      sim, dfk, "gpu",
      workloads::make_llama_completion_app("llama-chat", workloads::llama2_7b(),
                                           workloads::serving_config(),
                                           {64, 20}),
      1, opts.llama_completions, llama);
  sim.run();

  Table1Result out;
  out.technique = technique;
  const auto end = rec.last_end();
  const auto begin = rec.first_start();
  out.gpu_util = mgr.device(gpu).measured_utilization(begin, end);
  std::vector<double> resnet_lat;
  std::size_t tasks = 0;
  for (const auto* handles : {r1.get(), r2.get()}) {
    for (const auto& h : *handles) {
      if (h.record->state != faas::TaskRecord::State::kDone) continue;
      resnet_lat.push_back(h.record->run_time().millis());
      ++tasks;
    }
  }
  tasks += llama->tasks;
  out.throughput = static_cast<double>(tasks) / (end - begin).seconds();
  out.resnet_p95_ms = trace::summarize(std::move(resnet_lat)).p95;
  out.llama_mean_s = llama->latency.mean;

  static const std::map<std::string, std::pair<std::string, std::string>> props{
      {"timeshare", {"none needed", "none"}},
      {"mps-default", {"no caps to change", "none (shared memory)"}},
      {"mps-percentage", {"process restart", "compute only"}},
      {"mig", {"GPU reset + restart", "compute + memory"}},
      {"vgpu", {"VM restart", "slot-level"}},
  };
  out.reconfigure = props.at(technique).first;
  out.isolation = props.at(technique).second;
  return out;
}

std::string render_table1(const std::vector<Table1Result>& results) {
  std::ostringstream os;
  trace::print_banner(os,
                      "Table 1: multiplexing techniques on a mixed tenant set");
  os << "workload: 2x ResNet-50 serving (Poisson 4 req/s each, batch 8)"
        " + 1 LLaMa-2 7B chatbot, one A100-80GB, 120 s window\n\n";

  trace::Table table({"technique", "GPU util", "tasks/s", "ResNet p95 (ms)",
                      "LLaMa mean (s)", "reconfiguration", "isolation"});
  for (const auto& r : results) {
    table.add_row({r.technique, util::fixed(100.0 * r.gpu_util, 1) + "%",
                   util::fixed(r.throughput, 2), util::fixed(r.resnet_p95_ms, 1),
                   util::fixed(r.llama_mean_s, 2), r.reconfigure, r.isolation});
  }
  table.print(os);

  os << "\nHow to read this against the paper's Table 1: under"
        " time-sharing the device reports busy while each narrow kernel"
        " wastes the other ~88 SMs (\"Low\" utilization) -- visible as"
        " the worst tail latency. Spatial partitioning (MPS percentage,"
        " MIG, vGPU) runs tenants concurrently, cutting ResNet p95 by"
        " ~6x. MIG buys full compute+memory isolation at the price of"
        " coarse slices (lower throughput) and reset-based"
        " reconfiguration; vGPU is spatial but locked to homogeneous"
        " slots; only MPS offers fine-grained, per-process splits.\n";
  return os.str();
}

// -- Chaos soak -------------------------------------------------------------

namespace {

using workloads::MultiplexMode;
using workloads::MultiplexRunConfig;
using workloads::MultiplexRunResult;

MultiplexRunConfig chaos_base_config(const ChaosSoakOptions& opts,
                                     MultiplexMode mode) {
  MultiplexRunConfig cfg;
  cfg.processes = opts.processes;
  cfg.mode = mode;
  cfg.total_completions = opts.completions;
  return cfg;
}

MultiplexRunConfig chaos_config(const ChaosSoakOptions& opts,
                                MultiplexMode mode, double crash_rate_hz,
                                util::Duration horizon) {
  MultiplexRunConfig cfg = chaos_base_config(opts, mode);
  cfg.retries = 6;
  cfg.retry_backoff_base = util::milliseconds(200);
  cfg.allow_failures = true;
  if (crash_rate_hz > 0) {
    cfg.faults.worker_crash_rate_hz = crash_rate_hz;
    cfg.faults.device_error_rate_hz = crash_rate_hz / 4.0;
    cfg.faults.horizon = util::TimePoint{} + horizon;
  }
  return cfg;
}

}  // namespace

ChaosSoakReport run_chaos_soak(const ChaosSoakOptions& opts) {
  std::ostringstream os;
  trace::print_banner(os,
                      "Chaos soak: Fig-4 workload (4-way LLaMa-2 7B, A100-80GB) "
                      "under increasing fault rates");

  const MultiplexMode modes[] = {MultiplexMode::kTimeshare, MultiplexMode::kMps,
                                 MultiplexMode::kMig};

  // -- 1. Fault layer off == baseline, exactly -----------------------------
  // Six independent runs (plain + chaos-at-rate-0 per mode), one runner
  // batch; pairs are compared after the merge.
  os << "\n[1] zero-cost when disabled (rate 0 vs plain Fig-4 run)\n";
  const auto phase1 = run_points<MultiplexRunResult>(
      6,
      [&](int p) {
        const MultiplexMode mode = modes[p / 2];
        MultiplexRunConfig cfg = (p % 2 == 0)
                                     ? chaos_base_config(opts, mode)
                                     : chaos_config(opts, mode, 0.0, {});
        cfg.capture_chrome_trace = true;
        return run_multiplex_experiment(cfg);
      },
      opts.jobs);
  bool zero_cost_ok = true;
  double baseline_makespan[3] = {};
  for (int m = 0; m < 3; ++m) {
    const auto& base = phase1[static_cast<std::size_t>(2 * m)];
    const auto& quiet = phase1[static_cast<std::size_t>(2 * m + 1)];
    baseline_makespan[m] = base.batch.makespan.seconds();
    const bool same = base.batch.makespan.ns == quiet.batch.makespan.ns &&
                      base.chrome_trace == quiet.chrome_trace;
    zero_cost_ok = zero_cost_ok && same;
    os << "  " << workloads::multiplex_mode_name(modes[m]) << ": baseline "
       << util::fixed(baseline_makespan[m], 1) << " s, chaos-at-rate-0 "
       << util::fixed(quiet.batch.makespan.seconds(), 1) << " s — "
       << (same ? "identical (trace byte-equal)" : "MISMATCH") << "\n";
  }

  // -- 2. Fault-rate sweep --------------------------------------------------
  // All gated rows plus the extreme-churn rows are independent once the
  // baselines are known: 12 runs, one batch.
  os << "\n[2] completion-time inflation under worker-crash storms\n";
  const double rates[] = {0.005, 0.01, 0.02, 0.05};  // 0.05 = stress row
  const auto sweep = run_points<MultiplexRunResult>(
      12,
      [&](int p) {
        const int m = p % 3;
        const double rate = rates[p / 3];
        // Bound the Poisson processes well past the longest expected run.
        const auto horizon =
            util::from_seconds(baseline_makespan[m] * 4.0 + 60.0);
        return run_multiplex_experiment(
            chaos_config(opts, modes[m], rate, horizon));
      },
      opts.jobs);
  const auto add_sweep_row = [&](trace::Table& out, int p) {
    const MultiplexRunResult& r = sweep[static_cast<std::size_t>(p)];
    const int m = p % 3;
    out.add_row({workloads::multiplex_mode_name(modes[m]),
                 util::fixed(rates[p / 3], 3),
                 util::fixed(r.batch.makespan.seconds(), 1),
                 util::fixed(100.0 * (r.batch.makespan.seconds() /
                                      baseline_makespan[m] - 1.0), 1) + "%",
                 std::to_string(r.retries_used),
                 std::to_string(r.failures),
                 std::to_string(r.faults_injected)});
  };
  trace::Table table({"mode", "crash rate (Hz)", "completion (s)", "inflation",
                      "retries", "failures", "faults"});
  bool ordering_ok = true;
  for (int rate_idx = 0; rate_idx < 3; ++rate_idx) {
    double completion[3] = {};
    for (int m = 0; m < 3; ++m) {
      add_sweep_row(table, rate_idx * 3 + m);
      completion[m] =
          sweep[static_cast<std::size_t>(rate_idx * 3 + m)].batch.makespan.seconds();
    }
    // Paper ordering at 4 processes: MPS <= MIG <= timeshare (indices 1,2,0).
    ordering_ok = ordering_ok && completion[1] <= completion[2] &&
                  completion[2] <= completion[0];
  }
  table.print(os);
  os << "  mode ordering MPS <= MIG <= timeshare preserved: "
     << (ordering_ok ? "yes" : "NO") << "\n";

  // Extreme churn, reported but not gated: every crash re-pays a model
  // reload, and MIG slices HBM bandwidth hard, so its reloads cost several
  // times more than MPS/timeshare ones — past ~0.05 Hz that recovery tax can
  // push MIG behind even plain timesharing.
  os << "\n[2b] extreme churn (informational, no ordering gate)\n";
  trace::Table stress({"mode", "crash rate (Hz)", "completion (s)", "inflation",
                       "retries", "failures", "faults"});
  for (int m = 0; m < 3; ++m) add_sweep_row(stress, 9 + m);
  stress.print(os);

  // -- 3. Deterministic replay ---------------------------------------------
  os << "\n[3] deterministic replay of a chaotic run\n";
  MultiplexRunConfig replay = chaos_config(
      opts, MultiplexMode::kMps, 0.02,
      util::from_seconds(baseline_makespan[1] * 4.0 + 60.0));
  replay.capture_chrome_trace = true;
  const auto replays = run_points<MultiplexRunResult>(
      2, [&](int) { return run_multiplex_experiment(replay); }, opts.jobs);
  const bool replay_ok =
      replays[0].chrome_trace == replays[1].chrome_trace &&
      replays[0].batch.makespan.ns == replays[1].batch.makespan.ns;
  os << "  two consecutive runs, seed " << replay.seed << " / fault seed "
     << replay.faults.seed << ": "
     << (replay_ok ? "byte-identical chrome traces" : "DIVERGED") << " ("
     << replays[0].faults_injected << " faults, " << replays[0].retries_used
     << " retries)\n";

  ChaosSoakReport report;
  report.pass = zero_cost_ok && ordering_ok && replay_ok;
  os << "\nchaos soak: " << (report.pass ? "PASS" : "FAIL") << "\n";
  report.text = os.str();
  return report;
}

// -- Cluster serving --------------------------------------------------------

std::vector<ClusterServingPoint> cluster_serving_points(
    const ClusterServingOptions& opts) {
  std::vector<ClusterServingPoint> points;
  for (const auto policy :
       {federation::ClusterPolicy::kRoundRobin,
        federation::ClusterPolicy::kLeastLoaded,
        federation::ClusterPolicy::kSticky,
        federation::ClusterPolicy::kSloAware}) {
    for (const double mult : {0.5, 1.0, 2.0}) {
      ClusterServingPoint p;
      p.policy = policy;
      p.rate_mult = mult;
      p.opts = opts;
      points.push_back(p);
    }
  }
  return points;
}

namespace {

sim::Co<void> drain_cluster(sim::Simulator& sim,
                            federation::ClusterService& cluster,
                            util::Duration window) {
  co_await sim.delay(window + util::milliseconds(1));
  co_await cluster.shutdown();
}

}  // namespace

ClusterServingResult run_cluster_serving_point(const ClusterServingPoint& point) {
  const ClusterServingOptions& o = point.opts;
  sim::Simulator sim;
  // Opt-in observability: installed before anything that instruments
  // (configure_function wires SLO monitors at configure time) and declared
  // first so it is destroyed last.
  std::unique_ptr<obs::Telemetry> tel;
  if (o.observability) {
    obs::TelemetryOptions topts;
    topts.flight = o.flight;
    topts.tracing = o.obs_tracing;
    tel = std::make_unique<obs::Telemetry>(sim, topts);
  }
  // One Recorder per endpoint feeds measured_utilization; declared before
  // the service so they outlive the endpoints that reference them.
  std::vector<std::unique_ptr<trace::Recorder>> recorders;
  federation::ComputeService service(sim);

  // The per-endpoint cache holds the LLaMa weights plus headroom but not
  // both models' working sets — so where the router sends each function
  // decides how often weights reload, which is the sticky-vs-blind contrast
  // the bench table reports.
  const util::Bytes llama_bytes = workloads::llama_memory_footprint(
      workloads::llama2_7b(), workloads::serving_config());
  const util::Bytes cache_cap = llama_bytes + 1 * util::GB;

  for (int i = 0; i < o.endpoints; ++i) {
    federation::Endpoint::Options eo;
    eo.name = util::strf("ep-", i < 10 ? "0" : "", i);
    eo.cpu_cores = 8;
    eo.rtt = util::milliseconds(10 + 10 * (i % 4));  // WAN tiers: 10..40 ms
    eo.gpus = {gpu::arch::a100_80gb()};
    recorders.push_back(std::make_unique<trace::Recorder>());
    auto ep = std::make_unique<federation::Endpoint>(sim, eo, recorders.back().get());
    ep->enable_weight_cache(120_ms, cache_cap);
    faas::HtexConfig tenant;
    tenant.label = "llama";
    tenant.available_accelerators = {"0"};
    tenant.gpu_percentages = {50};
    ep->add_gpu_executor(tenant);
    tenant.label = "resnet";
    ep->add_gpu_executor(tenant);
    if (o.autoscale) {
      ep->enable_autoscaler({{"llama", 50}, {"resnet", 50}},
                            util::TimePoint{} + o.window,
                            {.interval = 30_s, .min_percentage = 20,
                             .min_delta = 20, .ewma_alpha = 0.5});
    }
    service.register_endpoint(std::move(ep));
  }

  const std::string llama_fn = service.register_function(
      workloads::make_llama_completion_app("llama-7b", workloads::llama2_7b(),
                                           workloads::serving_config(),
                                           {32, 8}));
  const std::string resnet_fn =
      service.register_function(table1_resnet_app("resnet-serve"));

  federation::ClusterService cluster(sim, service, {.policy = point.policy});
  {
    federation::FunctionClass llama_cls;
    llama_cls.tenant = "llm";
    llama_cls.weight = 2.0;
    llama_cls.rate_hz = 1.25 * o.llama_rate_hz;
    llama_cls.burst = 16;
    llama_cls.max_queue = 64;
    llama_cls.deadline = 75_s;
    llama_cls.service_estimate = 2_s;
    cluster.configure_function(llama_fn, llama_cls);
    federation::FunctionClass resnet_cls;
    resnet_cls.tenant = "vision";
    resnet_cls.weight = 1.0;
    resnet_cls.rate_hz = 1.25 * o.resnet_rate_hz;
    resnet_cls.burst = 32;
    resnet_cls.max_queue = 256;
    resnet_cls.deadline = 20_s;
    resnet_cls.service_estimate = 200_ms;
    cluster.configure_function(resnet_fn, resnet_cls);
  }

  auto llama_handles = std::make_shared<std::vector<faas::AppHandle>>();
  auto resnet_handles = std::make_shared<std::vector<faas::AppHandle>>();
  workloads::spawn_open_loop_fn(
      sim, o.llama_rate_hz * point.rate_mult, o.window, o.seed * 7919 + 11,
      [&cluster, llama_fn, llama_handles] {
        llama_handles->push_back(cluster.submit(llama_fn, "llama"));
      });
  workloads::spawn_open_loop_fn(
      sim, o.resnet_rate_hz * point.rate_mult, o.window, o.seed * 7919 + 13,
      [&cluster, resnet_fn, resnet_handles] {
        resnet_handles->push_back(cluster.submit(resnet_fn, "resnet"));
      });
  sim.spawn(drain_cluster(sim, cluster, o.window), "drain");
  sim.run();

  ClusterServingResult r;
  r.point = point;
  const federation::ClusterStats& st = cluster.stats();
  r.offered = st.submitted;
  r.admitted = st.admitted;
  r.shed = st.shed;
  r.shed_rate = st.submitted > 0
                    ? static_cast<double>(st.shed) / static_cast<double>(st.submitted)
                    : 0.0;
  std::vector<double> completions;
  std::size_t done = 0;
  for (const auto* handles : {llama_handles.get(), resnet_handles.get()}) {
    for (const auto& h : *handles) {
      if (h.record->state != faas::TaskRecord::State::kDone) continue;
      completions.push_back(h.record->completion_time().seconds());
      ++done;
    }
  }
  r.throughput = static_cast<double>(done) / o.window.seconds();
  const trace::Summary sum = trace::summarize(std::move(completions));
  r.p50_s = sum.p50;
  r.p95_s = sum.p95;
  r.p99_s = sum.p99;
  double util_total = 0;
  std::uint64_t reloads = 0;
  for (const auto& name : service.endpoint_names()) {
    federation::Endpoint& ep = service.endpoint(name);
    util_total += ep.devices().device(0).measured_utilization(
        util::TimePoint{}, util::TimePoint{} + o.window);
    reloads += ep.weight_cache()->misses();
  }
  r.gpu_util = util_total / std::max(1, o.endpoints);
  r.weight_reloads = reloads;
  r.sticky_hit_rate =
      st.dispatched > 0
          ? static_cast<double>(st.sticky_hits) / static_cast<double>(st.dispatched)
          : 0.0;
  if (tel != nullptr) {
    tel->finish();
    if (const auto* tracer = tel->tracer()) {  // null in metrics-only mode
      const auto breakdowns = obs::analyze_requests(tracer->spans());
      r.traced_requests = breakdowns.size();
      r.min_coverage = breakdowns.empty() ? 0.0 : 1.0;
      for (const auto& b : breakdowns) {
        r.min_coverage = std::min(r.min_coverage, b.coverage());
      }
      const auto groups =
          obs::aggregate_breakdowns(breakdowns, obs::GroupBy::kFunction);
      r.critical_path_text = obs::render_critical_path(
          groups, util::strf("where did p99 go — policy ",
                             federation::to_string(point.policy), ", ",
                             point.rate_mult, "x offered load"));
    }
    r.slo_alerts = tel->slo().alerts().size();
    if (!o.obs_export_dir.empty()) tel->export_all(o.obs_export_dir);
  }
  return r;
}

// -- Scenario serving -------------------------------------------------------

std::vector<ScenarioServingPoint> scenario_serving_points(
    const ScenarioServingOptions& opts) {
  std::vector<ScenarioServingPoint> points;
  for (const auto policy :
       {federation::ClusterPolicy::kRoundRobin,
        federation::ClusterPolicy::kLeastLoaded,
        federation::ClusterPolicy::kSticky,
        federation::ClusterPolicy::kSloAware}) {
    ScenarioServingPoint p;
    p.policy = policy;
    p.opts = opts;
    points.push_back(p);
  }
  return points;
}

ScenarioServingResult run_scenario_serving_point(
    const ScenarioServingPoint& point) {
  const ScenarioServingOptions& o = point.opts;
  sim::Simulator sim;
  federation::ComputeService service(sim);
  for (int i = 0; i < o.endpoints; ++i) {
    federation::Endpoint::Options eo;
    eo.name = util::strf("ep-", i < 10 ? "0" : "", i);
    eo.rtt = util::milliseconds(10 + 10 * (i % 4));  // WAN tiers: 10..40 ms
    auto ep = std::make_unique<federation::Endpoint>(sim, eo);
    ep->add_cpu_executor("cpu", o.workers_per_endpoint);
    service.register_endpoint(std::move(ep));
  }
  federation::ClusterService cluster(sim, service, {.policy = point.policy});

  // The shared trace: same seed for all four policies, so the only varying
  // input across the sweep is the routing decision itself.
  scenario::SynthesisSpec spec;
  spec.seed = o.seed;
  spec.functions = o.functions;
  spec.zipf_s = 1.0;
  spec.base_rate_hz = o.base_rate_hz;
  spec.phases = scenario::diurnal_burst_phases(o.phase_len);
  {
    scenario::TenantSpec interactive;
    interactive.name = "interactive";
    interactive.weight = 2.0;
    interactive.deadline = 3_s;
    interactive.service_estimate = 120_ms;
    interactive.max_queue = 64;
    scenario::TenantSpec batch;
    batch.name = "batch";
    batch.weight = 1.0;
    batch.deadline = 15_s;
    batch.service_estimate = 400_ms;
    batch.rate_headroom = 1.5;
    batch.burst_seconds = 4.0;
    batch.max_queue = 128;
    spec.tenants = {interactive, batch};
  }
  scenario::Trace trace = scenario::synthesize(spec);
  const util::Duration horizon = trace.horizon;

  const scenario::ReplayReport rep = scenario::replay_trace(
      sim, cluster, std::move(trace),
      [](const scenario::TraceFunction& f) {
        faas::AppDef app;
        // A per-(worker, function) import cost gives warm routing something
        // to win: blind policies pay it on every endpoint they touch.
        app.function_init = 300_ms;
        const util::Duration mean = f.cls.service_estimate;
        // faaspart-lint: allow(C2) -- the lambda is stored in AppDef::body
        // for the run's whole lifetime; `mean` is captured by value.
        app.body = [mean](faas::TaskContext& ctx) -> sim::Co<faas::AppValue> {
          co_await ctx.compute(ctx.rng().lognormal_duration(mean, 0.3));
          co_return faas::AppValue{1.0};
        };
        return app;
      },
      "cpu");

  ScenarioServingResult r;
  r.point = point;
  r.offered = rep.submitted;
  r.completed = rep.completed;
  r.shed = rep.shed;
  r.shed_rate = rep.submitted > 0 ? static_cast<double>(rep.shed) /
                                        static_cast<double>(rep.submitted)
                                  : 0.0;
  r.throughput = static_cast<double>(rep.completed) / horizon.seconds();
  r.p50_s = rep.completion.p50;
  r.p95_s = rep.completion.p95;
  r.p99_s = rep.completion.p99;
  r.digest = rep.digest;
  return r;
}

std::string render_scenario_serving(
    const std::vector<ScenarioServingResult>& results) {
  std::ostringstream os;
  trace::print_banner(
      os, "Scenario serving: trace-driven diurnal/bursty load (.fstrace)");
  if (!results.empty()) {
    const ScenarioServingOptions& o = results.front().point.opts;
    os << "fleet: " << o.endpoints << " CPU endpoints x "
       << o.workers_per_endpoint << " workers, WAN RTT tiers 10..40 ms\n"
       << "trace: seed " << o.seed << ", " << o.functions
       << " functions (Zipf s=1, interactive/batch tenants), "
       << util::fixed(o.base_rate_hz, 0)
       << " req/s base over trough/ramp/peak/flash-crowd phases of "
       << util::fixed(o.phase_len.seconds(), 0) << " s\n\n";
  }
  trace::Table table({"policy", "offered", "shed", "tasks/s", "p50 (s)",
                      "p95 (s)", "p99 (s)", "digest"});
  for (const auto& r : results) {
    table.add_row({federation::to_string(r.point.policy),
                   std::to_string(r.offered),
                   util::fixed(100.0 * r.shed_rate, 1) + "%",
                   util::fixed(r.throughput, 1), util::fixed(r.p50_s, 2),
                   util::fixed(r.p95_s, 2), util::fixed(r.p99_s, 2),
                   r.digest});
  }
  table.print(os);
  os << "\nHow to read this: the four policies replay the *same* .fstrace"
        " arrivals — a diurnal ramp into a flash-crowd phase with ON/OFF"
        " bursts, Zipf function popularity, and per-tenant admission"
        " classes. The digest column is the replay-outcome hash the"
        " determinism goldens pin across --jobs tiers; policies differ in"
        " how much of the flash crowd they complete (tasks/s), how much"
        " admission control sheds, and where the interactive tail lands.\n";
  return os.str();
}

// -- Repartition ablation ---------------------------------------------------

std::vector<std::string> repartition_modes() {
  return {"static-balanced", "static-llama", "static-resnet", "online"};
}

std::vector<RepartitionPoint> repartition_points(const RepartitionOptions& opts) {
  std::vector<RepartitionPoint> points;
  for (const auto& mode : repartition_modes()) {
    points.push_back(RepartitionPoint{mode, opts});
  }
  return points;
}

namespace {

constexpr const char* kLlamaFn = "llama-7b";
constexpr const char* kResnetFn = "resnet-score";
/// One vision request scores a batch of 256 frames — offline/batch scoring,
/// heavy enough that a saturated phase needs most of the fleet's SMs (a
/// batch-8 serving request is so cheap a single 1g slice absorbs any
/// plausible rate, which would leave the planner nothing to trade).
constexpr int kResnetBatch = 256;

faas::AppDef repartition_resnet_app(const std::string& name) {
  faas::AppDef app;
  app.name = name;
  app.function_init = 500_ms;
  app.model_bytes = 2 * util::GB;  // weights + runtime
  app.model_key = "resnet50";
  const auto kernels =
      workloads::models::resnet50().inference_kernels(kResnetBatch);
  // faaspart-lint: allow(C2) -- the lambda is stored in AppDef::body for the
  // app's whole lifetime; every coroutine it starts finishes while the
  // owning AppDef (and so the captures) is still alive
  app.body = [kernels](faas::TaskContext& ctx) -> sim::Co<faas::AppValue> {
    for (const auto& k : kernels) co_await ctx.launch(k);
    co_return faas::AppValue{};
  };
  return app;
}

/// The per-endpoint static MIG layout a mode starts from (and, for static
/// modes, keeps): (executor label, profile) pairs. Each tilted mode gives
/// its function full-GPU slices on as many devices as its heavy phase
/// needs (two cover llama_hot, three cover resnet_hot) — the best static
/// answer for that phase, and the layout the online planner should
/// rediscover on its own when the phase arrives.
std::vector<std::pair<std::string, std::string>> repartition_layout(
    const std::string& mode, int endpoint_index) {
  if (mode == "static-llama" && endpoint_index < 2) {
    return {{"llama", "7g.80gb"}};
  }
  if (mode == "static-resnet" && endpoint_index < 3) {
    return {{"resnet", "7g.80gb"}};
  }
  return {{"llama", "3g.40gb"}, {"resnet", "3g.40gb"}};
}

/// The shifting-mix trace: llama-heavy for one phase, resnet-heavy for the
/// next. Poisson arrivals per (function, phase), deterministic in the seed.
scenario::Trace repartition_trace(const RepartitionOptions& o) {
  scenario::Trace t;
  t.seed = o.seed;
  t.horizon = o.phase + o.phase;
  {
    scenario::TraceFunction llama;
    llama.name = kLlamaFn;
    llama.tenant = "llm";
    llama.cls.weight = 2.0;
    llama.cls.rate_hz = 1.25 * std::max(o.llama_hot_hz, o.llama_cold_hz);
    llama.cls.burst = 16;
    llama.cls.max_queue = 64;
    llama.cls.deadline = 20_s;
    llama.cls.service_estimate = 2_s;
    scenario::TraceFunction resnet;
    resnet.name = kResnetFn;
    resnet.tenant = "vision";
    resnet.cls.weight = 1.0;
    resnet.cls.rate_hz = 1.25 * std::max(o.resnet_hot_hz, o.resnet_cold_hz);
    resnet.cls.burst = 32;
    resnet.cls.max_queue = 256;
    resnet.cls.deadline = 8_s;
    resnet.cls.service_estimate = 300_ms;
    t.catalog = {llama, resnet};
  }
  const auto arrivals = [&t](const std::string& fn, double rate_hz,
                             util::TimePoint from, util::TimePoint to,
                             std::uint64_t seed) {
    if (rate_hz <= 0) return;
    util::Rng rng(seed);
    util::TimePoint at = from;
    for (;;) {
      at = at + rng.exponential_duration(util::from_seconds(1.0 / rate_hz));
      if (!(at < to)) break;
      t.events.push_back(scenario::TraceEvent{at, fn});
    }
  };
  const util::TimePoint start{};
  const util::TimePoint flip = start + o.phase;
  const util::TimePoint end = start + t.horizon;
  arrivals(kLlamaFn, o.llama_hot_hz, start, flip, o.seed * 7919 + 11);
  arrivals(kLlamaFn, o.llama_cold_hz, flip, end, o.seed * 7919 + 13);
  arrivals(kResnetFn, o.resnet_cold_hz, start, flip, o.seed * 7919 + 17);
  arrivals(kResnetFn, o.resnet_hot_hz, flip, end, o.seed * 7919 + 19);
  std::stable_sort(t.events.begin(), t.events.end(),
                   [](const scenario::TraceEvent& a, const scenario::TraceEvent& b) {
                     return a.at < b.at;
                   });
  return t;
}

/// MpsProbe scores for the llama completion request. The probe measures the
/// kernel chain (prefill + 8 decode steps); a served completion additionally
/// pays the profile-independent host gap per output token, so fold that in
/// before the planner treats 1/latency as per-instance capacity.
std::vector<core::ProfileScore> repartition_llama_scores(
    const gpu::GpuArchSpec& arch) {
  const workloads::LlamaSpec spec = workloads::llama2_7b();
  const workloads::LlamaRunConfig cfg = workloads::serving_config();
  std::vector<gpu::KernelDesc> kernels;
  kernels.push_back(workloads::llama_prefill_kernel(spec, cfg, 32));
  for (int i = 0; i < 8; ++i) {
    kernels.push_back(workloads::llama_decode_kernel(spec, cfg));
  }
  sched::MpsProbe probe(arch);
  std::vector<core::ProfileScore> scores = probe.score_function(kernels);
  const double host_s = 8 * cfg.host_gap_per_token.seconds();
  for (auto& s : scores) {
    s.latency_s += host_s;
    s.throughput_hz = 1.0 / s.latency_s;
  }
  return scores;
}

std::vector<core::ProfileScore> repartition_resnet_scores(
    const gpu::GpuArchSpec& arch) {
  sched::MpsProbe probe(arch);
  return probe.score_function(
      workloads::models::resnet50().inference_kernels(kResnetBatch));
}

}  // namespace

RepartitionResult run_repartition_point(const RepartitionPoint& point) {
  const RepartitionOptions& o = point.opts;
  const bool online = point.mode == "online";
  const util::Duration horizon = o.phase + o.phase;
  const gpu::GpuArchSpec arch = gpu::arch::a100_80gb();

  sim::Simulator sim;
  std::unique_ptr<obs::Telemetry> tel;
  if (o.observability) tel = std::make_unique<obs::Telemetry>(sim);
  std::vector<std::unique_ptr<trace::Recorder>> recorders;
  federation::ComputeService service(sim);

  for (int i = 0; i < o.endpoints; ++i) {
    federation::Endpoint::Options eo;
    eo.name = util::strf("ep-", i < 10 ? "0" : "", i);
    eo.cpu_cores = 8;
    eo.rtt = util::milliseconds(10 + 10 * (i % 4));  // WAN tiers: 10..40 ms
    eo.gpus = {arch};
    recorders.push_back(std::make_unique<trace::Recorder>());
    auto ep = std::make_unique<federation::Endpoint>(sim, eo,
                                                     recorders.back().get());
    ep->enable_weight_cache();
    gpu::Device& dev = ep->devices().device(0);
    dev.enable_mig();
    for (const auto& [label, profile] : repartition_layout(point.mode, i)) {
      faas::HtexConfig tenant;
      tenant.label = label;
      tenant.available_accelerators = {
          dev.instance(dev.create_instance(profile)).uuid};
      ep->add_gpu_executor(tenant);
    }
    service.register_endpoint(std::move(ep));
  }

  federation::ClusterService cluster(
      sim, service, {.policy = federation::ClusterPolicy::kLeastLoaded});
  scenario::TraceDriver driver(sim, cluster, repartition_trace(o));
  driver.bind_all(
      [](const scenario::TraceFunction& f) {
        if (f.name == kLlamaFn) {
          return workloads::make_llama_completion_app(
              f.name, workloads::llama2_7b(), workloads::serving_config(),
              {32, 8});
        }
        return repartition_resnet_app(f.name);
      },
      [](const scenario::TraceFunction& f) {
        return std::string(f.name == kLlamaFn ? "llama" : "resnet");
      });
  const std::string llama_id = driver.function_id(kLlamaFn);
  const std::string resnet_id = driver.function_id(kResnetFn);

  // Tilted static modes: half the fleet hosts only one function — tell the
  // router, which otherwise assumes every endpoint serves the catalog.
  for (int i = 0; i < o.endpoints; ++i) {
    bool has_llama = false;
    bool has_resnet = false;
    for (const auto& [label, profile] : repartition_layout(point.mode, i)) {
      has_llama = has_llama || label == "llama";
      has_resnet = has_resnet || label == "resnet";
    }
    federation::Endpoint& ep =
        service.endpoint(util::strf("ep-", i < 10 ? "0" : "", i));
    if (!has_llama) ep.set_serving(llama_id, false);
    if (!has_resnet) ep.set_serving(resnet_id, false);
  }

  // The optimizer rides on the balanced layout (every endpoint has both
  // executors, the Repartitioner contract); the disabled instance on
  // static-balanced doubles as the zero-interaction-when-off check.
  std::unique_ptr<federation::Repartitioner> repart;
  if (point.mode == "static-balanced" || online) {
    std::vector<federation::RepartitionTenant> tenants(2);
    tenants[0].function_id = llama_id;
    tenants[0].executor_label = "llama";
    tenants[0].memory = workloads::llama_memory_footprint(
        workloads::llama2_7b(), workloads::serving_config());
    tenants[0].scores = repartition_llama_scores(arch);
    tenants[0].initial_profile = "3g.40gb";
    tenants[1].function_id = resnet_id;
    tenants[1].executor_label = "resnet";
    tenants[1].memory = 3 * util::GB;  // weights + runtime + activations
    tenants[1].scores = repartition_resnet_scores(arch);
    tenants[1].initial_profile = "3g.40gb";
    federation::RepartitionerOptions ro;
    ro.interval = o.interval;
    ro.enabled = online;
    // Drain + MIG reset + worker restarts + weight re-upload on the moved
    // tenants; amortized over well under a phase, so a mix flip repays the
    // resets but measurement jitter cannot trigger churn.
    ro.planner.reset_cost_s = 5.0;
    ro.planner.horizon_s = 90.0;
    ro.planner.min_gain_hz = 0.1;
    repart = std::make_unique<federation::Repartitioner>(
        sim, cluster, std::move(tenants), ro);
    for (const auto& name : service.endpoint_names()) {
      repart->add_endpoint(service.endpoint(name));
    }
    sim.spawn(repart->run(util::TimePoint{} + horizon), "repartitioner");
  }

  driver.start();
  sim.spawn(drain_cluster(sim, cluster, horizon + util::seconds(60)), "drain");
  sim.run();

  RepartitionResult r;
  r.point = point;
  const scenario::ReplayReport rep = driver.report();
  r.offered = rep.submitted;
  r.completed = rep.completed;
  r.shed = rep.shed;
  r.failed = rep.failed;
  r.throughput = static_cast<double>(rep.completed) / horizon.seconds();
  r.p50_s = rep.completion.p50;
  r.p95_s = rep.completion.p95;
  r.p99_s = rep.completion.p99;
  r.digest = rep.digest;

  std::map<std::string, util::Duration> deadlines;
  for (const auto& f : driver.trace().catalog) deadlines[f.name] = f.cls.deadline;
  std::size_t met = 0;
  for (const auto& h : driver.handles()) {
    if (h.record->state != faas::TaskRecord::State::kDone) continue;
    if (h.record->completion_time() <= deadlines.at(h.record->app)) ++met;
  }
  r.slo_attainment = rep.submitted > 0
                         ? static_cast<double>(met) /
                               static_cast<double>(rep.submitted)
                         : 0.0;

  double util_total = 0;
  for (const auto& name : service.endpoint_names()) {
    util_total += service.endpoint(name).devices().device(0).measured_utilization(
        util::TimePoint{}, util::TimePoint{} + horizon);
  }
  r.gpu_util = util_total / std::max(1, o.endpoints);
  if (repart != nullptr) {
    r.plans = repart->plans();
    r.applies = repart->applies();
    for (const auto& c : repart->cycles()) {
      r.relayouts += static_cast<std::size_t>(c.endpoints_changed);
      r.degraded += static_cast<std::size_t>(c.degraded);
    }
  }
  r.mid_reset_dispatches = cluster.stats().mid_reset_dispatches;
  if (tel != nullptr) tel->finish();
  return r;
}

std::string render_repartition(const std::vector<RepartitionResult>& results) {
  std::ostringstream os;
  trace::print_banner(
      os, "Repartition ablation: online MIG replanning vs static layouts");
  if (!results.empty()) {
    const RepartitionOptions& o = results.front().point.opts;
    os << "fleet: " << o.endpoints
       << "x A100-80GB MIG endpoints (llama + resnet tenants)\n"
       << "traffic: phase 1 (" << util::fixed(o.phase.seconds(), 0)
       << " s) llama-heavy " << util::fixed(o.llama_hot_hz, 1) << "/"
       << util::fixed(o.resnet_cold_hz, 1)
       << " req/s, phase 2 resnet-heavy " << util::fixed(o.llama_cold_hz, 1)
       << "/" << util::fixed(o.resnet_hot_hz, 1) << " req/s\n"
       << "online: MpsProbe scores -> PartitionPlanner every "
       << util::fixed(o.interval.seconds(), 0)
       << " s -> live relayout through the Reconfigurer\n\n";
  }
  trace::Table table({"mode", "offered", "shed", "tasks/s", "SLO att",
                      "p95 (s)", "GPU util", "plans", "applies", "relayouts",
                      "mid-reset", "digest"});
  for (const auto& r : results) {
    table.add_row({r.point.mode, std::to_string(r.offered),
                   util::fixed(100.0 * static_cast<double>(r.shed) /
                                   static_cast<double>(std::max<std::size_t>(
                                       r.offered, 1)),
                               1) +
                       "%",
                   util::fixed(r.throughput, 2),
                   util::fixed(100.0 * r.slo_attainment, 1) + "%",
                   util::fixed(r.p95_s, 2),
                   util::fixed(100.0 * r.gpu_util, 1) + "%",
                   std::to_string(r.plans), std::to_string(r.applies),
                   std::to_string(r.relayouts),
                   std::to_string(r.mid_reset_dispatches), r.digest});
  }
  table.print(os);

  os << "\nHow to read this: the traffic mix flips halfway through the"
        " trace, so each static layout fits one phase and loses the other"
        " — balanced saturates on the llama surge, the tilted layouts"
        " starve whichever function they displaced. The online mode starts"
        " balanced and lets the profile->predict->reconfigure loop chase"
        " the mix: MPS co-run probes score each function per MIG profile,"
        " the planner packs profiles fleet-wide and applies only plans"
        " whose predicted gain amortizes the GPU resets, and the"
        " Repartitioner rolls accepted plans out endpoint by endpoint"
        " while routing steers around the mid-reset device (the mid-reset"
        " column must read 0). The digest column is the replay-outcome"
        " hash the determinism goldens pin across --jobs tiers.\n";
  return os.str();
}

std::string render_cluster_serving(
    const std::vector<ClusterServingResult>& results) {
  std::ostringstream os;
  trace::print_banner(
      os, "Cluster serving: routing policies on a federated GPU fleet");
  if (!results.empty()) {
    const ClusterServingOptions& o = results.front().point.opts;
    os << "fleet: " << o.endpoints
       << "x A100-80GB endpoints, each a 50/50 MPS llama/resnet tenant pair"
       << (o.autoscale ? " with a per-endpoint autoscaler" : "")
       << ",\n       capacity-limited weight cache (one resident model)\n"
       << "offered at 1x: LLaMa-2 7B chat " << util::fixed(o.llama_rate_hz, 1)
       << " req/s + ResNet-50 batch-8 " << util::fixed(o.resnet_rate_hz, 1)
       << " req/s, " << util::fixed(o.window.seconds(), 0)
       << " s Poisson window\n\n";
  }
  trace::Table table({"policy", "rate", "offered", "shed", "tasks/s",
                      "p50 (s)", "p95 (s)", "p99 (s)", "GPU util", "reloads",
                      "warm disp"});
  for (const auto& r : results) {
    table.add_row({federation::to_string(r.point.policy),
                   util::fixed(r.point.rate_mult, 2) + "x",
                   std::to_string(r.offered),
                   util::fixed(100.0 * r.shed_rate, 1) + "%",
                   util::fixed(r.throughput, 1), util::fixed(r.p50_s, 2),
                   util::fixed(r.p95_s, 2), util::fixed(r.p99_s, 2),
                   util::fixed(100.0 * r.gpu_util, 1) + "%",
                   std::to_string(r.weight_reloads),
                   util::fixed(100.0 * r.sticky_hit_rate, 1) + "%"});
  }
  table.print(os);

  os << "\nHow to read this: every request pays admission control (token"
        " bucket + queue cap + deadline), weighted fair queueing across the"
        " two functions, then policy routing with per-endpoint dispatch"
        " credits. Blind policies (round-robin) spread each model across"
        " the fleet, so the capacity-limited caches thrash — the `reloads`"
        " column counts those weight uploads. Sticky and slo-aware routing"
        " keep each function on endpoints that already hold its weights"
        " (high `warm disp`), and at 2x saturation the shed column shows"
        " load shedding trading completed volume for a bounded p99.\n";
  return os.str();
}

}  // namespace faaspart::runner
