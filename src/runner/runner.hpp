// The parallel replication runner.
//
// Every figure/table bench is the same shape: a grid of *independent*
// replication points (seed × sharing mode × SM percentage × fleet size),
// each of which builds its own Simulator (plus FaultInjector/Telemetry when
// asked) and runs to completion. The runner shards those points across a
// work-stealing thread pool and merges results **in canonical point
// order**, so the merged output is byte-identical no matter how many
// workers ran it — determinism comes from the merge order plus each
// point's self-contained virtual testbed, never from scheduling luck.
//
// The pool is deliberately simple: indices are dealt round-robin into
// per-worker deques; an idle worker takes from the front of its own deque
// and steals from the back of a victim's. The task set is fixed up front
// (no task spawns tasks), so a worker that finds every deque empty can
// simply retire.
#pragma once

#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace faaspart::runner {

/// Resolves a --jobs request to a worker count: values >= 1 pass through,
/// anything else (0, negative) means "one worker per hardware thread".
int effective_jobs(int requested);

/// Result of scanning a bench CLI for `--jobs N` / `--jobs=N`. The flag is
/// removed from argv (argc updated); unrelated arguments are left alone.
struct JobsFlag {
  int jobs = 0;  ///< 0 = default (hardware concurrency)
  bool ok = true;
  std::string error;
};
JobsFlag parse_jobs_flag(int& argc, char** argv);

namespace detail {
/// Type-erased core: runs body(i) for every i in [0, n) on `jobs` workers.
/// Exceptions are captured per index; after the pool drains, the one with
/// the smallest index is rethrown (canonical, jobs-independent).
void run_indexed(int n, const std::function<void(int)>& body, int jobs);
}  // namespace detail

/// Runs fn(i) for each point index in [0, n) across the pool and returns
/// the results in index order.
template <typename R, typename Fn>
std::vector<R> run_points(int n, Fn&& fn, int jobs = 0) {
  std::vector<std::optional<R>> slots(static_cast<std::size_t>(n > 0 ? n : 0));
  detail::run_indexed(
      n, [&](int i) { slots[static_cast<std::size_t>(i)].emplace(fn(i)); },
      jobs);
  std::vector<R> results;
  results.reserve(slots.size());
  for (auto& s : slots) results.push_back(std::move(*s));
  return results;
}

/// Void-returning form for callers that sink results themselves.
inline void for_each_point(int n, const std::function<void(int)>& body,
                           int jobs = 0) {
  detail::run_indexed(n, body, jobs);
}

}  // namespace faaspart::runner
