// Canonical experiment point sets + per-point drivers for the paper's
// figure/table sweeps, shared by the bench mains and the determinism test
// battery.
//
// Each `run_*_point` builds a fresh, self-contained virtual testbed (its
// own Simulator, and FaultInjector/Telemetry when configured) and is safe
// to run on any worker thread of the replication runner. Each `render_*`
// takes results **in canonical point order** and produces the bench's
// complete stdout text — so `render(run_points(...))` is byte-identical
// for --jobs 1 and --jobs 8, which is exactly what the golden tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "federation/cluster.hpp"
#include "util/units.hpp"
#include "workloads/multiplex_experiment.hpp"

namespace faaspart::runner {

// -- Fig 2: LLaMa-2 inference run-time vs granted SMs -----------------------

struct Fig2Point {
  int sms;          ///< CUDA MPS SM grant (out of 108 on A100)
  int tokens = 27;  ///< completion length; 27 ≈ the paper's 20 words
};

/// The paper's sweep: 2..108 SMs, 27-token completions.
std::vector<Fig2Point> fig2_points();

struct Fig2Result {
  Fig2Point point;
  double t7_s = 0;   ///< 7B on one A100-40GB
  double t13_s = 0;  ///< 13B tensor-parallel on two A100-40GBs
};

Fig2Result run_fig2_point(const Fig2Point& point);

std::string render_fig2(const std::vector<Fig2Result>& results);

// -- Fig 4: time for the 100-completion batch, 1–4 processes ----------------

struct Fig4Point {
  workloads::MultiplexMode mode = workloads::MultiplexMode::kSingle;
  int processes = 1;
  int total_completions = 100;
  std::uint64_t seed = 1;
};

/// Canonical order: the 1-process baseline, then timeshare/mps/mig × 2–4.
std::vector<Fig4Point> fig4_points();

workloads::MultiplexRunResult run_fig4_point(const Fig4Point& point);

/// `results[0]` must be the 1-process baseline (fig4_points() order).
std::string render_fig4(const std::vector<workloads::MultiplexRunResult>& results);

// -- Table 1: multiplexing techniques on a mixed tenant set -----------------

struct Table1Options {
  /// Open-loop offered-load window for the two ResNet serving tenants.
  util::Duration window = util::seconds(60);
  /// Closed-loop LLaMa chatbot batch size.
  int llama_completions = 8;
};

/// Canonical technique order: timeshare, mps-default, mps-percentage, mig,
/// vgpu.
std::vector<std::string> table1_points();

struct Table1Result {
  std::string technique;
  double gpu_util = 0;
  double throughput = 0;  ///< tasks/s over the measured window
  double resnet_p95_ms = 0;
  double llama_mean_s = 0;
  std::string reconfigure;
  std::string isolation;
};

Table1Result run_table1_point(const std::string& technique,
                              const Table1Options& opts = {});

std::string render_table1(const std::vector<Table1Result>& results);

// -- Chaos soak: the Fig-4 workload under increasing fault rates ------------

struct ChaosSoakOptions {
  int jobs = 0;          ///< runner width for each phase (0 = hw threads)
  int processes = 4;     ///< concurrent model instances
  int completions = 40;  ///< batch size per run
};

struct ChaosSoakReport {
  std::string text;  ///< the full bench stdout
  bool pass = false;
};

/// Runs all three chaos-soak phases (zero-cost-when-disabled, fault-rate
/// sweep, deterministic replay), parallelizing the independent runs inside
/// each phase; phase boundaries are data dependencies (sweep horizons come
/// from phase-1 baselines). The report text is byte-identical across jobs.
ChaosSoakReport run_chaos_soak(const ChaosSoakOptions& opts = {});

// -- Cluster serving: routing policies on a federated GPU fleet -------------

struct ClusterServingOptions {
  int endpoints = 16;  ///< A100-80GB sites, each a llama + resnet MPS tenant pair
  util::Duration window = util::seconds(120);  ///< open-loop offered-load window
  /// Offered load at rate_mult = 1 (≈ fleet saturation for the defaults).
  double llama_rate_hz = 8.0;
  double resnet_rate_hz = 48.0;
  /// Per-endpoint autoscaler driving the Reconfigurer between the tenants.
  bool autoscale = true;
  std::uint64_t seed = 1;
  /// Install a Telemetry hub (tracing + SLO monitors; flight recorder when
  /// `flight` is set) on the point's simulator. Off by default — the sweep
  /// must stay byte-identical to an un-instrumented run.
  bool observability = false;
  bool flight = false;
  /// Span collection within the Telemetry hub. Metrics + SLO monitors stay
  /// on when this is false — the "metrics-only" tier bench/obs_overhead
  /// holds to the <2% host-overhead budget.
  bool obs_tracing = true;
  /// When observability is on and this is non-empty, export metrics.prom /
  /// trace.json / timeseries.csv (and flight.fdump) here after the run.
  std::string obs_export_dir;
};

struct ClusterServingPoint {
  federation::ClusterPolicy policy = federation::ClusterPolicy::kRoundRobin;
  double rate_mult = 1.0;  ///< arrival-rate multiplier vs the options' base
  ClusterServingOptions opts;
};

/// Canonical order: policy (round-robin, least-loaded, sticky, slo-aware)
/// major, rate multiplier (0.5, 1, 2) minor.
std::vector<ClusterServingPoint> cluster_serving_points(
    const ClusterServingOptions& opts = {});

struct ClusterServingResult {
  ClusterServingPoint point;
  std::size_t offered = 0;    ///< requests submitted to the cluster
  std::size_t admitted = 0;
  std::size_t shed = 0;
  double shed_rate = 0;       ///< shed / offered
  double throughput = 0;      ///< completed requests per second of window
  double p50_s = 0;           ///< admitted-request completion times
  double p95_s = 0;
  double p99_s = 0;
  double gpu_util = 0;        ///< fleet mean over the window
  std::uint64_t weight_reloads = 0;  ///< weight-cache misses fleet-wide
  double sticky_hit_rate = 0;        ///< dispatches landing on cached weights
  // Filled only when the point ran with observability on:
  std::string critical_path_text;  ///< "where did p99 go" table
  std::size_t traced_requests = 0;
  double min_coverage = 0;  ///< worst per-request named-segment coverage
  std::size_t slo_alerts = 0;
};

ClusterServingResult run_cluster_serving_point(const ClusterServingPoint& point);

std::string render_cluster_serving(const std::vector<ClusterServingResult>& results);

// -- Scenario serving: trace-driven diurnal/bursty load, Zipf popularity ----

struct ScenarioServingOptions {
  int endpoints = 16;  ///< CPU serving sites across four WAN RTT tiers
  int workers_per_endpoint = 4;
  /// Catalog size; popularity is Zipf(s=1) over it, tenants alternate
  /// interactive/batch in rank order.
  int functions = 6;
  /// Aggregate arrival rate at phase multiplier 1 (the four-phase diurnal
  /// shape runs 0.3x → 0.7x → 1x → 2x with ON/OFF bursts on the last).
  double base_rate_hz = 120.0;
  util::Duration phase_len = util::seconds(30);
  std::uint64_t seed = 1;
};

struct ScenarioServingPoint {
  federation::ClusterPolicy policy = federation::ClusterPolicy::kRoundRobin;
  ScenarioServingOptions opts;
};

/// Canonical order: the four routing policies over one shared trace (same
/// seed ⇒ byte-identical arrivals for every policy).
std::vector<ScenarioServingPoint> scenario_serving_points(
    const ScenarioServingOptions& opts = {});

struct ScenarioServingResult {
  ScenarioServingPoint point;
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  double shed_rate = 0;
  double throughput = 0;  ///< completed per second of trace horizon
  double p50_s = 0;       ///< completed-request submit→finish
  double p95_s = 0;
  double p99_s = 0;
  /// Outcome digest from scenario::ReplayReport — the determinism goldens
  /// pin it across --jobs tiers.
  std::string digest;
};

ScenarioServingResult run_scenario_serving_point(
    const ScenarioServingPoint& point);

std::string render_scenario_serving(
    const std::vector<ScenarioServingResult>& results);

// -- Repartition ablation: online MIG replanning vs static layouts ----------
//
// A small MIG fleet serves a two-function mix (LLaMa-2 7B completions +
// ResNet-50 batch-8) whose composition flips halfway through the trace:
// phase 1 is llama-heavy, phase 2 resnet-heavy. Three static layouts
// (balanced, llama-tilted, resnet-tilted) each fit one phase and lose the
// other; the online mode starts balanced and lets the Repartitioner
// (MpsProbe scores -> PartitionPlanner -> live relayout) chase the mix.

struct RepartitionOptions {
  int endpoints = 4;  ///< A100-80GB sites, one GPU each, llama+resnet tenants
  /// Length of each traffic phase; the trace horizon is two phases.
  util::Duration phase = util::seconds(240);
  // Offered load (fleet-wide Poisson): each function has a heavy and a light
  // phase, sized against the probed per-instance capacities (llama 7B
  // completion: 0.50 Hz on 3g, 0.69 Hz on 7g; resnet batch-256 scoring:
  // 3.45 Hz on 3g, 8.4 Hz on 7g) so the heavy side saturates the balanced
  // layout but fits the matching tilt.
  double llama_hot_hz = 2.3;
  double llama_cold_hz = 0.45;
  double resnet_cold_hz = 5.0;
  double resnet_hot_hz = 16.0;
  /// Repartitioner replanning period (online mode only).
  util::Duration interval = util::seconds(20);
  std::uint64_t seed = 1;
  /// Install a Telemetry hub (repartition/plan/apply control-plane spans).
  /// Off by default — the sweep must stay byte-identical without it.
  bool observability = false;
};

/// Canonical order: static-balanced, static-llama, static-resnet, online.
std::vector<std::string> repartition_modes();

struct RepartitionPoint {
  std::string mode;
  RepartitionOptions opts;
};

std::vector<RepartitionPoint> repartition_points(
    const RepartitionOptions& opts = {});

struct RepartitionResult {
  RepartitionPoint point;
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  double throughput = 0;      ///< completed per second of trace horizon
  /// Requests finishing within their class deadline, over *offered* — shed
  /// and failed requests count as misses, so layouts can't shed their way
  /// to a good tail.
  double slo_attainment = 0;
  double p50_s = 0;           ///< completed-request submit→finish
  double p95_s = 0;
  double p99_s = 0;
  double gpu_util = 0;        ///< fleet mean over the horizon
  // Online-mode optimizer activity (zero for static modes):
  std::size_t plans = 0;      ///< optimizer cycles run
  std::size_t applies = 0;    ///< cycles whose plan was applied
  std::size_t relayouts = 0;  ///< endpoint relayouts across all applies
  std::size_t degraded = 0;   ///< relayouts that fell back to MPS/timeshare
  /// Dispatches that reached an endpoint mid-relayout — must be zero (the
  /// no-dispatch-mid-reset invariant, also property-tested).
  std::size_t mid_reset_dispatches = 0;
  /// Replay-outcome digest (scenario::ReplayReport) — the determinism
  /// goldens pin it across --jobs tiers and with observability toggled.
  std::string digest;
};

RepartitionResult run_repartition_point(const RepartitionPoint& point);

std::string render_repartition(const std::vector<RepartitionResult>& results);

// -- LLM serving: continuous batching + disaggregation vs run-to-completion -

struct LlmServingOptions {
  /// Poisson arrival window; every mode sees the same pre-generated arrival
  /// sequence (times, prompt/output lengths), then drains to completion.
  util::Duration window = util::seconds(600);
  /// Offered rate at rate_mult = 1, chosen at the run-to-completion
  /// baseline's capacity (~4 MPS workers × ~0.1 completions/s for the fp16
  /// 7B paragraph mix) so 1× saturates it and 2× drowns it while the
  /// batched engines still have headroom.
  double saturation_hz = 0.40;
  double rate_mult = 1.0;
  /// TTFT SLO for goodput: completions whose first token arrived within it.
  util::Duration ttft_slo = util::seconds(10);
  /// Run-to-completion baseline width (MPS co-located workers, each with
  /// its own weights — four fp16 7B instances fill the A100-80GB).
  int rtc_workers = 4;
  std::uint64_t seed = 1;
  /// Install a Telemetry hub. Off by default; the sweep digest must be
  /// byte-identical either way (pinned in test_runner_determinism).
  bool observability = false;
};

/// Canonical order: rtc, continuous, disagg, disagg-balance.
std::vector<std::string> llm_serving_modes();

struct LlmServingPoint {
  std::string mode;
  double rate_mult = 1.0;
  LlmServingOptions opts;
};

/// Canonical order: for each mode, rate_mult 0.5, 1, 2.
std::vector<LlmServingPoint> llm_serving_points(
    const LlmServingOptions& opts = {});

struct LlmServingResult {
  LlmServingPoint point;
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  /// Completions whose TTFT met the SLO, per second of arrival window —
  /// the headline serving metric (late first tokens don't count).
  double goodput_hz = 0;
  double throughput_hz = 0;   ///< all completions over the window
  double tokens_per_s = 0;    ///< output tokens over the window
  double ttft_p50_s = 0;
  double ttft_p99_s = 0;
  double tpot_p50_ms = 0;     ///< (latency - ttft)/(tokens - 1), completed
  double tpot_p99_ms = 0;
  double latency_p99_s = 0;
  std::size_t preemptions = 0;  ///< KV evictions summed over outcomes
  std::size_t handoffs = 0;     ///< prefill→decode transfers (disagg)
  std::size_t relayouts = 0;    ///< pool re-partitions (disagg-balance)
  int peak_kv_pages = 0;        ///< max pages in use across engines
  /// fnv1a over per-request outcome lines, submit order — byte-identical
  /// across --jobs tiers and with observability toggled.
  std::string digest;
};

LlmServingResult run_llm_serving_point(const LlmServingPoint& point);

std::string render_llm_serving(const std::vector<LlmServingResult>& results);

}  // namespace faaspart::runner
