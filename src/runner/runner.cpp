#include "runner/runner.hpp"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "util/strings.hpp"

namespace faaspart::runner {

int effective_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

JobsFlag parse_jobs_flag(int& argc, char** argv) {
  JobsFlag flag;
  const auto parse_value = [&](const char* text) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
      flag.ok = false;
      flag.error = util::strf("invalid --jobs value '", text, "'");
      return;
    }
    flag.jobs = static_cast<int>(v);
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        flag.ok = false;
        flag.error = "--jobs needs a value";
        break;
      }
      parse_value(argv[++i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      parse_value(arg.c_str() + 7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flag;
}

namespace detail {
namespace {

// A worker's deque plus its lock. Contention is negligible — tasks are
// whole simulations, and steals happen only when a worker runs dry.
struct WorkQueue {
  std::mutex m;
  std::deque<int> q;
};

}  // namespace

void run_indexed(int n, const std::function<void(int)>& body, int jobs) {
  if (n <= 0) return;
  jobs = effective_jobs(jobs);
  if (jobs > n) jobs = n;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  const auto run_one = [&](int idx) {
    try {
      body(idx);
    } catch (...) {
      errors[static_cast<std::size_t>(idx)] = std::current_exception();
    }
  };

  if (jobs == 1) {
    // Inline on the calling thread: no pool, identical semantics.
    for (int i = 0; i < n; ++i) run_one(i);
  } else {
    // Canonical deal: point i starts in deque i % jobs. The deal is part of
    // the contract only in that it balances load — results never depend on
    // which worker ran a point.
    std::vector<WorkQueue> queues(static_cast<std::size_t>(jobs));
    for (int i = 0; i < n; ++i) {
      queues[static_cast<std::size_t>(i % jobs)].q.push_back(i);
    }

    const auto worker = [&](int self) {
      for (;;) {
        int idx = -1;
        {
          WorkQueue& own = queues[static_cast<std::size_t>(self)];
          std::lock_guard<std::mutex> lock(own.m);
          if (!own.q.empty()) {
            idx = own.q.front();
            own.q.pop_front();
          }
        }
        if (idx < 0) {
          // Steal from the back of the first non-empty victim. The task set
          // is fixed, so finding every deque empty means we are done.
          for (int k = 1; k < jobs && idx < 0; ++k) {
            WorkQueue& victim =
                queues[static_cast<std::size_t>((self + k) % jobs)];
            std::lock_guard<std::mutex> lock(victim.m);
            if (!victim.q.empty()) {
              idx = victim.q.back();
              victim.q.pop_back();
            }
          }
          if (idx < 0) return;
        }
        run_one(idx);
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs - 1));
    for (int w = 1; w < jobs; ++w) threads.emplace_back(worker, w);
    worker(0);
    for (auto& t : threads) t.join();
  }

  // First failure in canonical point order, independent of thread count.
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace detail
}  // namespace faaspart::runner
