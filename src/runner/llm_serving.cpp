// LLM serving sweep: run-to-completion MPS co-location vs continuous
// batching, prefill/decode disaggregation, and planner-balanced pools
// (DESIGN.md §14). Every mode replays the same pre-generated Poisson
// arrival sequence at 0.5/1/2× the run-to-completion baseline's saturation
// rate, then drains; goodput counts completions whose TTFT met the SLO.
#include "runner/experiments.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>

#include "gpu/device.hpp"
#include "obs/telemetry.hpp"
#include "scenario/trace.hpp"
#include "sched/engines.hpp"
#include "serve/balance.hpp"
#include "serve/disagg.hpp"
#include "serve/engine.hpp"
#include "sim/simulator.hpp"
#include "trace/stats.hpp"
#include "trace/table.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workloads/llama.hpp"

namespace faaspart::runner {

namespace {

struct Arrival {
  util::Duration at{};
  int prompt = 0;
  int output = 0;
};

// Paragraph-chat mix (§5.2 flavour): mean prompt ≈ 173, mean output ≈ 91.
constexpr int kPrompts[] = {64, 128, 256, 512};
constexpr double kPromptW[] = {0.3, 0.4, 0.2, 0.1};
constexpr int kOutputs[] = {32, 64, 128, 256};
constexpr double kOutputW[] = {0.25, 0.4, 0.25, 0.1};
constexpr double kMeanPrompt = 172.8;
constexpr double kMeanOutput = 91.2;

int pick_weighted(util::Rng& rng, const int (&values)[4],
                  const double (&weights)[4]) {
  const double u = rng.uniform(0.0, 1.0);
  double acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc += weights[i];
    if (u < acc) return values[i];
  }
  return values[3];
}

std::vector<Arrival> make_arrivals(const LlmServingOptions& o,
                                   double rate_mult) {
  // Same seed ⇒ same arrival sequence for every mode at this rate.
  util::Rng rng(o.seed ^ 0x11a5e471ULL);
  const double rate = o.saturation_hz * rate_mult;
  std::vector<Arrival> out;
  util::Duration t{};
  for (;;) {
    t += util::from_seconds(rng.exponential(1.0 / rate));
    if (t > o.window) break;
    Arrival a;
    a.at = t;
    a.prompt = pick_weighted(rng, kPrompts, kPromptW);
    a.output = pick_weighted(rng, kOutputs, kOutputW);
    out.push_back(a);
  }
  return out;
}

/// Replays `arrivals` against `submit_one` at their due times.
sim::Co<void> drive_arrivals(sim::Simulator& sim,
                             const std::vector<Arrival>& arrivals,
                             const std::function<void(const Arrival&)>& submit_one) {
  const util::TimePoint t0 = sim.now();
  for (const Arrival& a : arrivals) {
    const util::TimePoint due = t0 + a.at;
    if (due > sim.now()) co_await sim.delay(due - sim.now());
    submit_one(a);
  }
}

/// The run-to-completion baseline: N MPS-co-located workers, each owning a
/// resident fp16 7B instance (four fill the A100-80GB — the §5.2 layout),
/// FIFO over a shared queue, one completion at a time per worker: prefill,
/// then one decode kernel + host gap per output token.
class RtcServer {
 public:
  RtcServer(sim::Simulator& sim, gpu::Device& dev,
            workloads::LlamaSpec spec, workloads::LlamaRunConfig run,
            int workers)
      : sim_(sim), dev_(dev), spec_(std::move(spec)), run_(run),
        queue_gate_(sim, false) {
    const util::Bytes footprint =
        workloads::llama_memory_footprint(spec_, run_);
    for (int i = 0; i < workers; ++i) {
      const gpu::ContextId ctx =
          dev_.create_context(util::strf("rtc", i), gpu::ContextOptions{});
      dev_.alloc(ctx, footprint, "weights");
      contexts_.push_back(ctx);
    }
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
      sim_.spawn(worker(i), util::strf("rtc-worker", i));
    }
  }

  sim::Future<serve::RequestOutcome> submit(serve::LlmRequest req) {
    auto r = std::make_unique<serve::ServedRequest>();
    if (req.id == 0) req.id = next_id_++;
    r->req = req;
    r->submitted = sim_.now();
    r->done = sim::Promise<serve::RequestOutcome>(sim_);
    sim::Future<serve::RequestOutcome> fut = r->done.future();
    queue_.push_back(std::move(r));
    queue_gate_.open();
    return fut;
  }

 private:
  sim::Co<void> worker(std::size_t index) {
    for (;;) {
      if (queue_.empty()) {
        queue_gate_.close();
        co_await queue_gate_.wait();
        continue;
      }
      serve::ServedRequestPtr r = std::move(queue_.front());
      queue_.pop_front();
      co_await run_one(contexts_[index], std::move(r));
    }
  }

  sim::Co<void> run_one(gpu::ContextId ctx, serve::ServedRequestPtr r) {
    gpu::KernelDesc prefill =
        workloads::llama_prefill_kernel(spec_, run_, r->req.prompt_tokens);
    co_await dev_.launch(ctx, prefill);
    for (int t = 0; t < r->req.max_new_tokens; ++t) {
      gpu::KernelDesc decode = workloads::llama_decode_kernel_at(
          spec_, run_, r->req.prompt_tokens + t);
      co_await dev_.launch(ctx, decode);
      r->generated += 1;
      if (!r->first_token) {
        r->first_token = true;
        r->first_token_at = sim_.now();
      }
      co_await sim_.delay(run_.host_gap_per_token);
    }
    settle_completed(sim_, *r);
  }

  sim::Simulator& sim_;
  gpu::Device& dev_;
  workloads::LlamaSpec spec_;
  workloads::LlamaRunConfig run_;
  std::vector<gpu::ContextId> contexts_;
  std::deque<serve::ServedRequestPtr> queue_;
  sim::Gate queue_gate_;
  serve::RequestId next_id_ = 1;
};

}  // namespace

std::vector<std::string> llm_serving_modes() {
  return {"rtc", "continuous", "disagg", "disagg-balance"};
}

std::vector<LlmServingPoint> llm_serving_points(const LlmServingOptions& opts) {
  std::vector<LlmServingPoint> points;
  for (const std::string& mode : llm_serving_modes()) {
    for (const double mult : {0.5, 1.0, 2.0}) {
      LlmServingPoint p;
      p.mode = mode;
      p.rate_mult = mult;
      p.opts = opts;
      p.opts.rate_mult = mult;
      points.push_back(std::move(p));
    }
  }
  return points;
}

LlmServingResult run_llm_serving_point(const LlmServingPoint& point) {
  const LlmServingOptions& o = point.opts;
  sim::Simulator sim;
  std::unique_ptr<obs::Telemetry> tel;
  if (o.observability) tel = std::make_unique<obs::Telemetry>(sim);
  gpu::Device dev(sim, gpu::arch::a100_80gb(), 0, sched::mps_factory());

  const workloads::LlamaSpec spec = workloads::llama2_7b();
  const workloads::LlamaRunConfig run = workloads::serving_config();
  const std::vector<Arrival> arrivals = make_arrivals(o, point.rate_mult);

  std::vector<sim::Future<serve::RequestOutcome>> futures;
  futures.reserve(arrivals.size());

  std::unique_ptr<RtcServer> rtc;
  std::unique_ptr<serve::ServingEngine> engine;
  std::unique_ptr<serve::DisaggLlmServer> disagg;
  std::unique_ptr<serve::PoolBalancer> balancer;

  std::function<void(const Arrival&)> submit_one;
  if (point.mode == "rtc") {
    rtc = std::make_unique<RtcServer>(sim, dev, spec, run, o.rtc_workers);
    submit_one = [&](const Arrival& a) {
      futures.push_back(rtc->submit(serve::LlmRequest{0, a.prompt, a.output}));
    };
  } else if (point.mode == "continuous") {
    serve::EngineConfig ecfg;
    ecfg.spec = spec;
    ecfg.run = run;
    engine = std::make_unique<serve::ServingEngine>(sim, dev, ecfg);
    engine->start();
    submit_one = [&](const Arrival& a) {
      futures.push_back(
          engine->submit(serve::LlmRequest{0, a.prompt, a.output}));
    };
  } else {
    serve::DisaggConfig dcfg;
    dcfg.spec = spec;
    dcfg.run = run;
    if (point.mode == "disagg-balance") {
      // Deliberately broken start: a 2g.20gb decode pool holds the weights
      // with ~25 MB to spare — not one context's KV — so every adoption is
      // refused and requests shed until the balancer re-partitions. The
      // planner sees decode demand unsatisfiable on 2g (no viable score)
      // and must flip the pools to fix it.
      dcfg.prefill = serve::PoolSpec{"4g.40gb", 1};
      dcfg.decode = serve::PoolSpec{"2g.20gb", 1};
    } else {
      dcfg.prefill = serve::PoolSpec{"3g.40gb", 1};
      dcfg.decode = serve::PoolSpec{"4g.40gb", 1};
    }
    disagg = std::make_unique<serve::DisaggLlmServer>(sim, dev, dcfg);
    if (point.mode == "disagg-balance") {
      serve::PoolBalancer::Options bopts;
      bopts.interval = util::seconds(60);
      bopts.horizon = o.window;
      bopts.mean_prompt = kMeanPrompt;
      bopts.mean_output = kMeanOutput;
      balancer = std::make_unique<serve::PoolBalancer>(*disagg, bopts);
      balancer->start();
    }
    submit_one = [&](const Arrival& a) {
      futures.push_back(
          disagg->submit(serve::LlmRequest{0, a.prompt, a.output}));
    };
  }

  sim.spawn(drive_arrivals(sim, arrivals, submit_one), "arrivals");
  sim.run();

  LlmServingResult r;
  r.point = point;
  r.offered = futures.size();
  const double window_s = o.window.seconds();
  std::vector<double> ttfts, tpots_ms, latencies;
  std::size_t good = 0;
  std::uint64_t tokens_out = 0;
  std::ostringstream hashed;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::RequestOutcome& out = futures[i].value();
    hashed << i << '|' << serve::outcome_kind_name(out.kind) << '|'
           << out.reason << '|' << out.ttft.ns << '|' << out.latency.ns << '|'
           << out.tokens_out << '\n';
    r.preemptions += static_cast<std::size_t>(out.preemptions);
    r.handoffs += static_cast<std::size_t>(out.handoffs);
    switch (out.kind) {
      case serve::OutcomeKind::kCompleted: {
        ++r.completed;
        tokens_out += static_cast<std::uint64_t>(out.tokens_out);
        ttfts.push_back(out.ttft.seconds());
        latencies.push_back(out.latency.seconds());
        if (out.ttft <= o.ttft_slo) ++good;
        if (out.tokens_out > 1) {
          tpots_ms.push_back(1e3 * (out.latency - out.ttft).seconds() /
                             (out.tokens_out - 1));
        }
        break;
      }
      case serve::OutcomeKind::kShed: ++r.shed; break;
      case serve::OutcomeKind::kFailed: ++r.failed; break;
    }
  }
  r.goodput_hz = static_cast<double>(good) / window_s;
  r.throughput_hz = static_cast<double>(r.completed) / window_s;
  r.tokens_per_s = static_cast<double>(tokens_out) / window_s;
  const trace::Summary st = trace::summarize(std::move(ttfts));
  r.ttft_p50_s = st.p50;
  r.ttft_p99_s = st.p99;
  const trace::Summary sp = trace::summarize(std::move(tpots_ms));
  r.tpot_p50_ms = sp.p50;
  r.tpot_p99_ms = sp.p99;
  r.latency_p99_s = trace::summarize(std::move(latencies)).p99;
  if (engine) {
    r.peak_kv_pages = engine->pager().stats().peak_pages_in_use;
  }
  if (disagg) {
    r.relayouts = disagg->stats().relayouts;
    for (const auto& e : disagg->decode_engines()) {
      r.peak_kv_pages =
          std::max(r.peak_kv_pages, e->pager().stats().peak_pages_in_use);
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(scenario::fnv1a(hashed.str())));
  r.digest = buf;
  return r;
}

std::string render_llm_serving(const std::vector<LlmServingResult>& results) {
  std::ostringstream os;
  trace::print_banner(
      os, "LLM serving: continuous batching + disaggregation vs RTC");
  if (!results.empty()) {
    const LlmServingOptions& o = results.front().point.opts;
    os << "workload: fp16 llama2-7b paragraph chat (mean prompt "
       << util::fixed(kMeanPrompt, 0) << ", mean output "
       << util::fixed(kMeanOutput, 0) << " tokens), Poisson "
       << util::fixed(o.saturation_hz, 2) << " req/s at 1x over "
       << util::fixed(o.window.seconds(), 0) << " s, TTFT SLO "
       << util::fixed(o.ttft_slo.seconds(), 0) << " s, seed " << o.seed
       << "\n\n";
  }
  trace::Table table({"mode", "rate", "offered", "done", "shed", "goodput/s",
                      "tok/s", "ttft p50", "ttft p99", "tpot p99 ms",
                      "preempt", "handoff", "relayout", "digest"});
  for (const auto& r : results) {
    table.add_row({r.point.mode, util::fixed(r.point.rate_mult, 1) + "x",
                   std::to_string(r.offered), std::to_string(r.completed),
                   std::to_string(r.shed), util::fixed(r.goodput_hz, 3),
                   util::fixed(r.tokens_per_s, 1),
                   util::fixed(r.ttft_p50_s, 2), util::fixed(r.ttft_p99_s, 2),
                   util::fixed(r.tpot_p99_ms, 0),
                   std::to_string(r.preemptions), std::to_string(r.handoffs),
                   std::to_string(r.relayouts), r.digest});
  }
  table.print(os);
  os << "\nHow to read this: all modes replay the same arrival sequence."
        " rtc is the paper's Sec 5.2 co-location — four MPS workers each"
        " decoding one request at a time, streaming every weight per token."
        " continuous fuses the whole batch into one decode step per"
        " iteration over a paged KV cache; disagg moves prefill to its own"
        " MIG pool so prompts stop stalling decode iterations (KV pages"
        " hand off over the host link); disagg-balance starts with a decode"
        " pool too small to hold even one context's KV and lets the"
        " partition planner repartition it (relayout column) — the early"
        " sheds are the window before the first plan lands. Goodput counts"
        " completions whose first token"
        " met the SLO, over the arrival window.\n";
  return os.str();
}

}  // namespace faaspart::runner
