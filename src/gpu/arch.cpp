#include "gpu/arch.hpp"

using namespace faaspart::util::literals;

namespace faaspart::gpu::arch {

GpuArchSpec a100_sxm4_40gb() {
  GpuArchSpec s;
  s.name = "A100-SXM4-40GB";
  s.total_sms = 108;
  s.fp32_flops = 19.5e12;
  s.memory = 40 * util::GB;
  s.mem_bw = 1555e9;
  s.host_link_bw = 25e9;   // PCIe 4.0 x16 effective
  s.model_load_bw = 5e9;   // deserialization-limited (§6)
  s.kernel_launch_overhead = 8_us;
  s.context_create = 250_ms;
  s.context_switch = 50_us;
  s.mig_reset = 1500_ms;
  s.mig_capable = true;
  s.mig_slices = 7;
  s.sms_per_slice = 14;  // 98 of 108 SMs are usable under MIG
  s.mem_slices = 8;
  return s;
}

GpuArchSpec a100_80gb() {
  GpuArchSpec s = a100_sxm4_40gb();
  s.name = "A100-80GB";
  s.memory = 80 * util::GB;
  s.mem_bw = 1935e9;  // HBM2e
  return s;
}

GpuArchSpec h100_80gb() {
  GpuArchSpec s;
  s.name = "H100-80GB";
  s.total_sms = 132;
  s.fp32_flops = 67e12;
  s.memory = 80 * util::GB;
  s.mem_bw = 3350e9;
  s.host_link_bw = 64e9;
  s.model_load_bw = 8e9;
  s.kernel_launch_overhead = 6_us;
  s.context_create = 220_ms;
  s.context_switch = 40_us;
  s.mig_reset = 1200_ms;
  s.mig_capable = true;
  s.mig_slices = 7;
  s.sms_per_slice = 16;
  s.mem_slices = 8;
  return s;
}

GpuArchSpec mi210() {
  GpuArchSpec s;
  s.name = "MI210";
  s.total_sms = 104;  // compute units
  s.fp32_flops = 22.6e12;
  s.memory = 64 * util::GB;
  s.mem_bw = 1638e9;
  s.host_link_bw = 32e9;
  s.model_load_bw = 5e9;
  s.kernel_launch_overhead = 10_us;
  s.context_create = 300_ms;
  s.context_switch = 60_us;
  s.mig_capable = false;  // CU masking exists, but no MIG equivalent (Table 1)
  return s;
}

GpuArchSpec a30() {
  GpuArchSpec s;
  s.name = "A30";
  s.total_sms = 56;
  s.fp32_flops = 10.3e12;
  s.memory = 24 * util::GB;
  s.mem_bw = 933e9;
  s.host_link_bw = 25e9;
  s.model_load_bw = 5e9;
  s.kernel_launch_overhead = 8_us;
  s.context_create = 250_ms;
  s.context_switch = 50_us;
  s.mig_reset = 1500_ms;
  s.mig_capable = true;
  s.mig_slices = 4;
  s.sms_per_slice = 14;
  s.mem_slices = 4;
  return s;
}

CpuSpec xeon_testbed() {
  CpuSpec c;
  c.name = "Xeon-2.2GHz-24c";
  c.cores = 24;
  // ~2.2 GHz * 16 fp32 lanes (AVX-512 FMA, derated): sustained ~35 GFLOP/s/core.
  c.flops_per_core = 35e9;
  c.mem_bw = 120e9;
  return c;
}

}  // namespace faaspart::gpu::arch
