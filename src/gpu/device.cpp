#include "gpu/device.hpp"

#include <algorithm>
#include <cmath>

#include "faults/faults.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::gpu {

Device::Device(sim::Simulator& sim, GpuArchSpec arch, int index,
               EngineFactory make_engine, trace::Recorder* rec)
    : sim_(sim),
      arch_(std::move(arch)),
      index_(index),
      make_engine_(std::move(make_engine)),
      rec_(rec) {
  FP_CHECK_MSG(static_cast<bool>(make_engine_), "Device needs an engine factory");
  FP_CHECK_MSG(arch_.total_sms > 0, "arch must have SMs");
  if (rec_ != nullptr) lane_ = rec_->add_lane(name());
  memory_ = std::make_unique<MemoryPool>(arch_.memory);
  engine_ = make_engine_(EngineEnv{&sim_, rec_, lane_, arch_, arch_.total_sms,
                                   arch_.mem_bw});
  if (auto* fi = sim_.faults()) {
    const std::string key = util::strf("gpu:", index_);
    fault_subs_.push_back(fi->subscribe(
        faults::FaultKind::kDeviceError, key, [this](const faults::FaultEvent&) {
          (void)abort_all_kernels(std::make_exception_ptr(
              util::DeviceError(util::strf(name(), ": injected fatal error, device reset"))));
        }));
    fault_subs_.push_back(fi->subscribe(
        faults::FaultKind::kMpsDaemonDeath, key, [this](const faults::FaultEvent&) {
          (void)abort_device_kernels(std::make_exception_ptr(
              util::DeviceError(util::strf(name(), ": MPS control daemon died"))));
        }));
  }
  if (auto* tel = sim_.telemetry()) {
    // The device partition: SM-weighted busy (MIG instances fold in via
    // busy_time()), engine queue plus non-MIG stream queues, device pool use.
    obs_source_ = tel->sampler().add_source(
        name(),
        obs::UtilizationSampler::Probes{
            [this] { return busy_time(); },
            [this] {
              double q = static_cast<double>(engine_->queued());
              for (const auto& [id, ctx] : contexts_) {
                if (!ctx.opts_.instance.has_value()) {
                  q += static_cast<double>(ctx.queue_.size());
                }
              }
              return q;
            },
            [this] { return memory_->used(); }});
  }
}

Device::~Device() {
  if (auto* fi = sim_.faults()) {
    for (const auto id : fault_subs_) fi->unsubscribe(id);
  }
  for (auto& [id, inst] : instances_) detach_obs(inst.obs_source);
  detach_obs(obs_source_);
}

void Device::detach_obs(std::size_t& source) {
  if (source == static_cast<std::size_t>(-1)) return;
  if (auto* tel = sim_.telemetry()) tel->sampler().detach(source);
  source = static_cast<std::size_t>(-1);
}

std::string Device::name() const { return util::strf("GPU", index_, ":", arch_.name); }

void Device::set_engine_factory(EngineFactory make_engine) {
  FP_CHECK_MSG(static_cast<bool>(make_engine), "null engine factory");
  if (!contexts_.empty()) {
    throw util::StateError(util::strf(
        "cannot change the sharing policy of ", name(), " with ",
        contexts_.size(), " live context(s); clients must restart"));
  }
  make_engine_ = std::move(make_engine);
  engine_ = make_engine_(EngineEnv{&sim_, rec_, lane_, arch_, arch_.total_sms,
                                   arch_.mem_bw});
}

SharingEngine& Device::engine() { return *engine_; }
const SharingEngine& Device::engine() const { return *engine_; }

ContextId Device::create_context(std::string owner, ContextOptions opts) {
  if (opts.active_thread_percentage <= 0.0 || opts.active_thread_percentage > 100.0) {
    throw util::ConfigError(util::strf("active thread percentage ",
                                       opts.active_thread_percentage,
                                       " outside (0, 100]"));
  }
  int envelope_sms = arch_.total_sms;
  if (opts.instance.has_value()) {
    GpuInstance& inst = instance(*opts.instance);
    envelope_sms = inst.profile.sms(arch_);
    ++inst.context_count;
  } else if (mig_enabled_) {
    throw util::StateError(util::strf(
        name(), " is in MIG mode; contexts must target a MIG instance"));
  }

  GpuContext ctx;
  ctx.id_ = next_ctx_id_++;
  ctx.owner_ = std::move(owner);
  ctx.opts_ = opts;
  // NVIDIA rounds the SM grant from the percentage; at least 1 SM.
  ctx.sm_cap_ = std::max(
      1, static_cast<int>(std::lround(envelope_sms * opts.active_thread_percentage / 100.0)));
  const ContextId id = ctx.id_;
  contexts_.emplace(id, std::move(ctx));
  if (auto* tel = sim_.telemetry()) {
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: context creation is the
        // cold-start path, dominated by simulated init cost
        .counter("gpu_contexts_created_total", {{"gpu", name()}})
        .add();
  }
  return id;
}

void Device::destroy_context(ContextId id) {
  GpuContext& ctx = context_mut(id);
  if (ctx.inflight_ || !ctx.queue_.empty()) {
    throw util::StateError(util::strf("context ", id, " ('", ctx.owner_,
                                      "') still has kernels in flight"));
  }
  MemoryPool& pool = pool_for(ctx);
  for (const AllocationId a : ctx.allocations_) {
    if (pool.contains(a)) pool.free(a);
  }
  if (ctx.opts_.instance.has_value()) {
    --instance(*ctx.opts_.instance).context_count;
  }
  contexts_.erase(id);
}

const GpuContext& Device::context(ContextId id) const {
  const auto it = contexts_.find(id);
  if (it == contexts_.end()) throw util::NotFoundError(util::strf("context ", id));
  return it->second;
}

GpuContext& Device::context_mut(ContextId id) {
  const auto it = contexts_.find(id);
  if (it == contexts_.end()) throw util::NotFoundError(util::strf("context ", id));
  return it->second;
}

MemoryPool& Device::pool_for(const GpuContext& ctx) {
  if (ctx.opts_.instance.has_value()) return *instance(*ctx.opts_.instance).memory;
  return *memory_;
}

SharingEngine& Device::engine_for(const GpuContext& ctx) {
  if (ctx.opts_.instance.has_value()) return *instance(*ctx.opts_.instance).engine;
  return *engine_;
}

AllocationId Device::alloc(ContextId id, util::Bytes size, std::string tag) {
  GpuContext& ctx = context_mut(id);
  MemoryPool& pool = pool_for(ctx);
  const AllocationId a = pool.allocate(size, util::strf(ctx.owner_, "/", tag));
  ctx.allocations_.push_back(a);
  ctx.allocated_ += size;
  if (!ctx.mem_gauge_resolved_) {
    if (auto* tel = sim_.telemetry()) {  // don't latch — may install later
      ctx.mem_gauge_resolved_ = true;
      const std::string partition = ctx.opts_.instance.has_value()
                                        ? instance(*ctx.opts_.instance).uuid
                                        : name();
      ctx.mem_gauge_ = &tel->metrics().gauge("gpu_memory_highwater_bytes",
                                             {{"partition", partition}});
    }
  }
  if (ctx.mem_gauge_ != nullptr) {
    ctx.mem_gauge_->set_max(static_cast<double>(pool.used()));
  }
  return a;
}

void Device::free(ContextId id, AllocationId alloc_id) {
  GpuContext& ctx = context_mut(id);
  const auto it = std::find(ctx.allocations_.begin(), ctx.allocations_.end(), alloc_id);
  if (it == ctx.allocations_.end()) {
    throw util::NotFoundError(
        util::strf("allocation ", alloc_id, " not owned by context ", id));
  }
  ctx.allocated_ -= pool_for(ctx).info(alloc_id).size;
  pool_for(ctx).free(alloc_id);
  ctx.allocations_.erase(it);
}

sim::Future<> Device::launch(ContextId id, KernelDesc kernel) {
  GpuContext& ctx = context_mut(id);
  sim::Promise<> done(sim_);
  auto fut = done.future();
  if (ctx.inflight_) {
    ctx.queue_.push_back(GpuContext::PendingLaunch{std::move(kernel), std::move(done)});
  } else {
    dispatch(ctx, std::move(kernel), std::move(done));
  }
  return fut;
}

void Device::dispatch(GpuContext& ctx, KernelDesc kernel, sim::Promise<> done) {
  ctx.inflight_ = true;
  sim::Promise<> engine_done(sim_);
  const ContextId id = ctx.id_;
  // When the engine finishes this kernel: complete the caller's future the
  // same way (success or abort error) and feed the next queued launch (CUDA
  // stream ordering).
  auto engine_result = engine_done.future();
  engine_result.on_ready([this, id, done, engine_result]() {
    const auto it = contexts_.find(id);
    // The context may have been torn down between completion and this
    // callback only if destroy raced a completion — forbidden by the
    // in-flight check, so it must still exist.
    FP_CHECK(it != contexts_.end());
    GpuContext& c = it->second;
    c.inflight_ = false;
    if (auto error = engine_result.error()) {
      done.set_exception(error);
    } else {
      done.set_value();
    }
    if (!c.queue_.empty()) {
      auto next = std::move(c.queue_.front());
      c.queue_.pop_front();
      dispatch(c, std::move(next.kernel), std::move(next.done));
    }
  });
  engine_for(ctx).submit(KernelJob{ctx.id_, ctx.sm_cap_, std::move(kernel),
                                   std::move(engine_done), ctx.owner_});
}

std::size_t Device::fail_stream_queue(GpuContext& ctx,
                                      const std::exception_ptr& error) {
  const std::size_t n = ctx.queue_.size();
  for (auto& pending : ctx.queue_) pending.done.set_exception(error);
  ctx.queue_.clear();
  return n;
}

std::size_t Device::abort_all_kernels(std::exception_ptr error) {
  std::size_t n = 0;
  for (auto& [id, ctx] : contexts_) n += fail_stream_queue(ctx, error);
  n += engine_->abort_all(error);
  for (auto& [id, inst] : instances_) n += inst.engine->abort_all(error);
  return n;
}

std::size_t Device::abort_device_kernels(std::exception_ptr error) {
  std::size_t n = 0;
  for (auto& [id, ctx] : contexts_) {
    if (ctx.opts_.instance.has_value()) continue;
    n += fail_stream_queue(ctx, error);
  }
  n += engine_->abort_all(error);
  return n;
}

std::size_t Device::abort_context_kernels(ContextId id, std::exception_ptr error) {
  GpuContext& ctx = context_mut(id);
  // Stream queue first, then the engine: the engine abort schedules the
  // dispatch callback that would otherwise re-dispatch from the queue.
  std::size_t n = fail_stream_queue(ctx, error);
  n += engine_for(ctx).abort_context(id, error);
  return n;
}

void Device::enable_mig() {
  if (!arch_.mig_capable) {
    throw util::StateError(arch_.name + " does not support MIG");
  }
  if (!contexts_.empty()) {
    throw util::StateError(util::strf(
        "enabling MIG on ", name(), " requires a GPU reset; ",
        contexts_.size(), " context(s) are still alive"));
  }
  mig_enabled_ = true;
}

void Device::disable_mig() {
  if (!contexts_.empty()) {
    throw util::StateError(util::strf(
        "disabling MIG on ", name(), " requires a GPU reset; ",
        contexts_.size(), " context(s) are still alive"));
  }
  for (auto& [id, inst] : instances_) detach_obs(inst.obs_source);
  instances_.clear();
  mig_enabled_ = false;
}

InstanceId Device::create_instance(const MigProfile& profile) {
  if (!mig_enabled_) {
    throw util::StateError(util::strf(name(), " is not in MIG mode"));
  }
  if (used_compute_slices() + profile.compute_slices > arch_.mig_slices) {
    throw util::StateError(util::strf(
        "profile ", profile.name, " needs ", profile.compute_slices,
        " compute slices; only ", arch_.mig_slices - used_compute_slices(),
        " of ", arch_.mig_slices, " free on ", name()));
  }
  if (used_mem_slices() + profile.mem_slices > arch_.mem_slices) {
    throw util::StateError(util::strf(
        "profile ", profile.name, " needs ", profile.mem_slices,
        " memory slices; only ", arch_.mem_slices - used_mem_slices(),
        " of ", arch_.mem_slices, " free on ", name()));
  }
  // Transient creation failure (nvidia-smi mig -cgi erroring out) — only
  // after validation, so it models a valid request failing, not a bad one.
  if (auto* fi = sim_.faults();
      fi != nullptr && fi->take_mig_create_failure(util::strf("gpu:", index_))) {
    throw util::DeviceError(util::strf("injected MIG instance-create failure (",
                                       profile.name, " on ", name(), ")"));
  }

  // Lowest-free-first contiguous slice placement (real MIG's fixed placement
  // trees, simplified): scan occupied runs, take the first gap that fits.
  const auto lowest_free_run = [](int budget, const auto& runs, int need) {
    std::vector<bool> occupied(static_cast<std::size_t>(budget), false);
    for (const auto& [start, len] : runs) {
      for (int i = start; i < start + len && i < budget; ++i) {
        occupied[static_cast<std::size_t>(i)] = true;
      }
    }
    for (int s = 0; s + need <= budget; ++s) {
      bool free = true;
      for (int i = s; i < s + need; ++i) {
        free = free && !occupied[static_cast<std::size_t>(i)];
      }
      if (free) return s;
    }
    return -1;
  };
  std::vector<std::pair<int, int>> compute_runs;
  std::vector<std::pair<int, int>> mem_runs;
  for (const auto& [iid, other] : instances_) {
    if (other.compute_start >= 0) {
      compute_runs.emplace_back(other.compute_start, other.profile.compute_slices);
    }
    if (other.mem_start >= 0) {
      mem_runs.emplace_back(other.mem_start, other.profile.mem_slices);
    }
  }

  GpuInstance inst;
  inst.id = next_instance_id_++;
  inst.profile = profile;
  inst.compute_start =
      lowest_free_run(arch_.mig_slices, compute_runs, profile.compute_slices);
  inst.mem_start =
      lowest_free_run(arch_.mem_slices, mem_runs, profile.mem_slices);
  inst.uuid = util::strf("MIG-GPU", index_, "/", profile.name, "/", inst.id);
  inst.memory = std::make_unique<MemoryPool>(profile.memory(arch_));
  inst.lane = rec_ != nullptr ? rec_->add_lane(inst.uuid) : lane_;
  inst.engine = make_engine_(EngineEnv{&sim_, rec_, inst.lane, arch_,
                                       profile.sms(arch_), profile.bandwidth(arch_)});
  if (auto* tel = sim_.telemetry()) {
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: MIG instance churn is a
        // reconfiguration event costing simulated seconds
        .counter("mig_instance_creates_total", {{"gpu", name()}})
        .add();
    // Probe pointers outlive the move below (unique_ptr targets are stable).
    auto* eng = inst.engine.get();
    auto* mem = inst.memory.get();
    inst.obs_source = tel->sampler().add_source(
        inst.uuid,
        obs::UtilizationSampler::Probes{
            [eng] { return eng->busy_time(); },
            [eng] { return static_cast<double>(eng->queued()); },
            [mem] { return mem->used(); }});
  }
  const InstanceId id = inst.id;
  instances_.emplace(id, std::move(inst));
  return id;
}

InstanceId Device::create_instance(const std::string& profile_name) {
  return create_instance(mig_profile(arch_, profile_name));
}

void Device::destroy_instance(InstanceId id) {
  GpuInstance& inst = instance(id);
  if (inst.context_count > 0) {
    throw util::StateError(util::strf("MIG instance ", inst.uuid, " has ",
                                      inst.context_count, " live context(s)"));
  }
  detach_obs(inst.obs_source);
  if (auto* tel = sim_.telemetry()) {
    tel->metrics()
        // faaspart-lint: allow(O1) -- cold path: see mig_instance_creates
        .counter("mig_instance_destroys_total", {{"gpu", name()}})
        .add();
  }
  instances_.erase(id);
}

const GpuInstance& Device::instance(InstanceId id) const {
  const auto it = instances_.find(id);
  if (it == instances_.end()) {
    throw util::NotFoundError(util::strf("MIG instance ", id));
  }
  return it->second;
}

GpuInstance& Device::instance(InstanceId id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) {
    throw util::NotFoundError(util::strf("MIG instance ", id));
  }
  return it->second;
}

InstanceId Device::instance_by_uuid(const std::string& uuid) const {
  for (const auto& [id, inst] : instances_) {
    if (inst.uuid == uuid) return id;
  }
  throw util::NotFoundError(util::strf("MIG UUID '", uuid, "' on ", arch_.name));
}

std::vector<InstanceId> Device::instance_ids() const {
  std::vector<InstanceId> out;
  out.reserve(instances_.size());
  for (const auto& [id, inst] : instances_) out.push_back(id);
  return out;
}

int Device::used_compute_slices() const {
  int used = 0;
  for (const auto& [id, inst] : instances_) used += inst.profile.compute_slices;
  return used;
}

int Device::used_mem_slices() const {
  int used = 0;
  for (const auto& [id, inst] : instances_) used += inst.profile.mem_slices;
  return used;
}

util::Duration Device::busy_time() const {
  if (!mig_enabled_) return engine_->busy_time();
  util::Duration total{0};
  for (const auto& [id, inst] : instances_) {
    const double share = static_cast<double>(inst.profile.sms(arch_)) /
                         static_cast<double>(arch_.total_sms);
    total += inst.engine->busy_time() * share;
  }
  return total;
}

double Device::measured_utilization(util::TimePoint from, util::TimePoint to) const {
  if (rec_ == nullptr || to <= from) return 0.0;
  // Weight each envelope by its share of the device's SMs.
  double util_sum = rec_->utilization(lane_, from, to) *
                    (mig_enabled_ ? 0.0 : 1.0);
  for (const auto& [id, inst] : instances_) {
    const double share = static_cast<double>(inst.profile.sms(arch_)) /
                         static_cast<double>(arch_.total_sms);
    util_sum += rec_->utilization(inst.lane, from, to) * share;
  }
  return util_sum;
}

}  // namespace faaspart::gpu
