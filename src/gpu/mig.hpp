// MIG profile catalogue and naming (§4.2).
//
// A profile like "3g.40gb" is <compute slices>g.<memory><gb>. Compute slices
// map to SMs (A100: 14 SMs per slice), memory to HBM slices (A100: 8 of
// them). The catalogue mirrors NVIDIA's: 1g, 2g, 3g, 4g, 7g — note 3g takes
// 4 memory slices, which is why only two 3g instances fit.
#pragma once

#include <string>
#include <vector>

#include "gpu/arch.hpp"

namespace faaspart::gpu {

struct MigProfile {
  std::string name;      ///< e.g. "3g.40gb" (memory part depends on the GPU)
  int compute_slices = 0;
  int mem_slices = 0;

  [[nodiscard]] int sms(const GpuArchSpec& arch) const {
    return compute_slices * arch.sms_per_slice;
  }
  [[nodiscard]] util::Bytes memory(const GpuArchSpec& arch) const {
    return arch.memory / arch.mem_slices * mem_slices;
  }
  [[nodiscard]] double bandwidth(const GpuArchSpec& arch) const {
    return arch.mem_bw / arch.mem_slices * mem_slices;
  }
};

/// All profiles supported on `arch` (empty if not MIG-capable), with names
/// rendered for that part's memory size (A100-80GB: 1g.10gb … 7g.80gb).
std::vector<MigProfile> mig_profiles(const GpuArchSpec& arch);

/// Looks a profile up by name ("2g.20gb") or by its compute prefix ("2g").
/// Throws util::NotFoundError if the profile does not exist on this part.
MigProfile mig_profile(const GpuArchSpec& arch, const std::string& name);

}  // namespace faaspart::gpu
