#include "gpu/engine.hpp"

#include "obs/telemetry.hpp"

namespace faaspart::gpu {

void SharingEngine::resolve_metrics() {
  auto* tel = env_.sim->telemetry();
  if (tel == nullptr) return;  // don't latch — telemetry may install later
  metrics_resolved_ = true;
  const obs::Labels labels{{"policy", policy_name()}};
  launches_ = &tel->metrics().counter("kernel_launches_total", labels);
  aborts_ = &tel->metrics().counter("kernel_aborts_total", labels);
}

void SharingEngine::resolve_throttle(int sm_cap) {
  auto* tel = env_.sim->telemetry();
  if (tel == nullptr) return;  // don't latch — telemetry may install later
  auto [it, inserted] = throttle_.try_emplace(sm_cap, nullptr);
  if (inserted) {
    // Recover the configured MPS percentage from the SM cap (the inverse
    // of the percentage → SMs rounding in ContextOptions handling).
    const int pct = env_.sms > 0 && sm_cap > 0
                        ? (100 * sm_cap + env_.sms / 2) / env_.sms
                        : 100;
    it->second = &tel->metrics().counter(
        "mps_throttle_seconds_total", {{"percentage", std::to_string(pct)}});
  }
  throttle_cap_ = sm_cap;
  throttle_counter_ = it->second;
}

}  // namespace faaspart::gpu
