// GPU (and CPU baseline) architecture descriptions.
//
// Numbers mirror the hardware the paper's testbed uses (§5.1: A100-SXM4 with
// 40 GB, CUDA 11.8) plus the 80 GB variant used in the Fig 4/5 experiments
// and two comparison parts mentioned in §3.4 (H100, AMD MI210).
#pragma once

#include <string>

#include "util/units.hpp"

namespace faaspart::gpu {

using util::Bytes;
using util::Duration;
using util::Flops;

/// Static description of one accelerator part.
struct GpuArchSpec {
  std::string name;

  // Compute.
  int total_sms = 0;        ///< streaming multiprocessors (NVIDIA) / CUs (AMD)
  Flops fp32_flops = 0;     ///< peak FP32 FLOP/s across all SMs

  // Memory system.
  Bytes memory = 0;         ///< HBM capacity
  double mem_bw = 0;        ///< peak HBM bandwidth, bytes/s
  double host_link_bw = 0;  ///< PCIe/NVLink host link, bytes/s

  /// Effective model-upload rate including host-side deserialization —
  /// §6 reports ~10 s to load LLaMa-2 13B (52 GB fp32), i.e. ~5 GB/s.
  double model_load_bw = 0;

  // Overheads.
  Duration kernel_launch_overhead{};  ///< per-kernel fixed cost
  Duration context_create{};          ///< CUDA context init (§6 cold start)
  Duration context_switch{};          ///< time-sharing switch between clients
  Duration mig_reset{};               ///< §6: re-configuring MIG, 1–2 s

  // MIG geometry.
  bool mig_capable = false;
  int mig_slices = 0;      ///< compute slices on a full GPU (A100/H100: 7)
  int sms_per_slice = 0;   ///< SMs in a 1g slice (A100: 14)
  int mem_slices = 0;      ///< memory slices (A100: 8)

  /// FP32 throughput of a single SM.
  [[nodiscard]] Flops flops_per_sm() const {
    return total_sms > 0 ? fp32_flops / total_sms : 0.0;
  }
};

/// Host CPU description for the GPU-vs-CPU comparisons in Fig 2.
struct CpuSpec {
  std::string name;
  int cores = 0;
  Flops flops_per_core = 0;  ///< sustained FP32 FLOP/s per core
  double mem_bw = 0;         ///< sustained memory bandwidth, bytes/s
};

namespace arch {

/// NVIDIA A100-SXM4 40 GB — the paper's primary testbed GPU (§5.1).
GpuArchSpec a100_sxm4_40gb();

/// NVIDIA A100 80 GB — used for the 4-way LLaMa-2 multiplexing runs (§5.2).
GpuArchSpec a100_80gb();

/// NVIDIA H100 80 GB — "newer generation" comparison point (§3.4).
GpuArchSpec h100_80gb();

/// AMD MI210 — CU-based comparison part (§3.4): 104 CUs, 22.6 TF fp32.
GpuArchSpec mi210();

/// NVIDIA A30 — a smaller MIG-capable part (4 compute / 4 memory slices);
/// exercises the non-A100 MIG geometry.
GpuArchSpec a30();

/// 24-core Xeon host matching the testbed (§5.1), used for CPU baselines.
CpuSpec xeon_testbed();

}  // namespace arch

}  // namespace faaspart::gpu
