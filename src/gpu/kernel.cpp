#include "gpu/kernel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace faaspart::gpu {

const char* kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::kGemm: return "gemm";
    case KernelKind::kGemv: return "gemv";
    case KernelKind::kConv: return "conv";
    case KernelKind::kElementwise: return "elementwise";
    case KernelKind::kMemcpyH2D: return "memcpy_h2d";
    case KernelKind::kMemcpyD2H: return "memcpy_d2h";
    case KernelKind::kOther: return "other";
  }
  return "?";
}

KernelTiming kernel_timing(const GpuArchSpec& arch, const KernelDesc& k,
                           KernelGrant grant) {
  FP_CHECK_MSG(k.flops >= 0 && k.bytes >= 0, "negative kernel footprint");
  FP_CHECK_MSG(k.width_sms >= 1, "kernel width must be >= 1 SM");
  FP_CHECK_MSG(k.bw_fraction > 0.0 && k.bw_fraction <= 1.0,
               "bw_fraction must be in (0, 1]");
  FP_CHECK_MSG(grant.sms >= 1, "kernel grant must be >= 1 SM");

  KernelTiming t;
  t.sms_effective = std::min(grant.sms, k.width_sms);
  t.bytes = k.bytes;

  // Compute component: perfect strong scaling up to the saturation width.
  const double flops_rate = arch.flops_per_sm() * t.sms_effective;
  t.compute = flops_rate > 0 ? util::from_seconds(k.flops / flops_rate)
                             : util::Duration{0};

  // Memory component: fewer SMs than the width proportionally reduce the
  // load/store issue rate, hence achievable bandwidth.
  const double width_scale =
      static_cast<double>(t.sms_effective) / static_cast<double>(k.width_sms);
  t.solo_bw = std::max(1.0, k.bw_fraction * arch.mem_bw * width_scale);
  return t;
}

util::Duration solo_service_time(const GpuArchSpec& arch, const KernelDesc& k,
                                 KernelGrant grant) {
  const KernelTiming t = kernel_timing(arch, k, grant);
  const util::Duration mem =
      util::from_seconds(static_cast<double>(t.bytes) / t.solo_bw);
  return arch.kernel_launch_overhead + std::max(t.compute, mem);
}

}  // namespace faaspart::gpu
