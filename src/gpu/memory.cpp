#include "gpu/memory.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::gpu {

MemoryPool::MemoryPool(Bytes capacity) : capacity_(capacity) {
  FP_CHECK_MSG(capacity > 0, "memory pool capacity must be positive");
  free_segments_.emplace(0, capacity);
}

AllocationId MemoryPool::allocate(Bytes size, std::string tag) {
  FP_CHECK_MSG(size > 0, "allocation size must be positive");
  for (auto it = free_segments_.begin(); it != free_segments_.end(); ++it) {
    if (it->second < size) continue;
    const Bytes offset = it->first;
    const Bytes seg_size = it->second;
    free_segments_.erase(it);
    if (seg_size > size) {
      free_segments_.emplace(offset + size, seg_size - size);
    }
    const AllocationId id = next_id_++;
    allocs_.emplace(id, AllocationInfo{id, offset, size, std::move(tag)});
    used_ += size;
    return id;
  }
  throw util::OutOfMemoryError(util::strf(
      "requested ", util::format_bytes(size), " '", tag, "', free ",
      util::format_bytes(free_bytes()), ", largest block ",
      util::format_bytes(largest_free_block())));
}

void MemoryPool::free(AllocationId id) {
  const auto it = allocs_.find(id);
  if (it == allocs_.end()) {
    throw util::NotFoundError(util::strf("allocation id ", id));
  }
  const Bytes offset = it->second.offset;
  const Bytes size = it->second.size;
  used_ -= size;
  allocs_.erase(it);
  free_segments_.emplace(offset, size);
  coalesce_around(offset);
}

void MemoryPool::coalesce_around(Bytes offset) {
  auto it = free_segments_.find(offset);
  FP_CHECK(it != free_segments_.end());
  // Merge with successor.
  auto next = std::next(it);
  if (next != free_segments_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_segments_.erase(next);
  }
  // Merge with predecessor.
  if (it != free_segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_segments_.erase(it);
    }
  }
}

bool MemoryPool::contains(AllocationId id) const { return allocs_.count(id) > 0; }

const AllocationInfo& MemoryPool::info(AllocationId id) const {
  const auto it = allocs_.find(id);
  if (it == allocs_.end()) {
    throw util::NotFoundError(util::strf("allocation id ", id));
  }
  return it->second;
}

Bytes MemoryPool::largest_free_block() const {
  Bytes best = 0;
  for (const auto& [off, size] : free_segments_) best = std::max(best, size);
  return best;
}

Bytes MemoryPool::external_fragmentation() const {
  return free_bytes() - largest_free_block();
}

std::vector<AllocationInfo> MemoryPool::allocations() const {
  std::vector<AllocationInfo> out;
  out.reserve(allocs_.size());
  for (const auto& [id, info] : allocs_) out.push_back(info);
  return out;
}

}  // namespace faaspart::gpu
