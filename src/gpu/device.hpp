// Device — one simulated GPU: memory, contexts, MIG instances, and a
// pluggable SharingEngine that decides how concurrent kernels share SMs.
//
// Semantics mirrored from the real stack:
//   * per-context launches execute in order (CUDA stream semantics) — the
//     Device serializes a context's kernels before they reach the engine;
//   * a context's SM cap (CUDA_MPS_ACTIVE_THREAD_PERCENTAGE) is fixed at
//     context creation and cannot change while the context lives (§6);
//   * switching the sharing policy or the MIG layout requires that no
//     contexts exist (application restart / GPU reset, Table 1);
//   * MIG instances have their own memory pool, bandwidth slice and engine
//     (compute AND memory isolation); the plain device pool is shared by all
//     non-MIG contexts (MPS: no memory isolation).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpu/arch.hpp"
#include "gpu/engine.hpp"
#include "gpu/memory.hpp"
#include "gpu/mig.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"

namespace faaspart::gpu {

using InstanceId = std::uint32_t;

/// Options fixed at context creation — exactly the knobs the paper's
/// executor sets through environment variables before a worker starts.
struct ContextOptions {
  /// CUDA_MPS_ACTIVE_THREAD_PERCENTAGE ∈ (0, 100]; 100 = uncapped.
  double active_thread_percentage = 100.0;
  /// Target MIG instance (CUDA_VISIBLE_DEVICES = MIG UUID).
  std::optional<InstanceId> instance;
};

class Device;

/// A client's execution context on a device (or on one MIG instance).
class GpuContext {
 public:
  [[nodiscard]] ContextId id() const { return id_; }
  [[nodiscard]] const std::string& owner() const { return owner_; }
  [[nodiscard]] int sm_cap() const { return sm_cap_; }
  [[nodiscard]] double thread_percentage() const { return opts_.active_thread_percentage; }
  [[nodiscard]] std::optional<InstanceId> instance() const { return opts_.instance; }
  [[nodiscard]] util::Bytes allocated_bytes() const { return allocated_; }
  [[nodiscard]] std::size_t inflight_or_queued() const {
    return queue_.size() + (inflight_ ? 1 : 0);
  }

 private:
  friend class Device;

  struct PendingLaunch {
    KernelDesc kernel;
    sim::Promise<> done;
  };

  ContextId id_ = 0;
  std::string owner_;
  ContextOptions opts_;
  int sm_cap_ = 0;  ///< resolved SM cap within the target envelope
  util::Bytes allocated_ = 0;
  std::vector<AllocationId> allocations_;
  std::deque<PendingLaunch> queue_;
  bool inflight_ = false;
  // Memory high-water gauge, resolved on first alloc and cached — the
  // partition label is fixed for the context's lifetime (see Device::alloc).
  obs::Gauge* mem_gauge_ = nullptr;
  bool mem_gauge_resolved_ = false;
};

/// One MIG instance: a hard slice of SMs, memory and bandwidth.
struct GpuInstance {
  InstanceId id = 0;
  std::string uuid;  ///< e.g. "MIG-GPU0/2g.20gb/1" — used as an accelerator ref
  MigProfile profile;
  std::unique_ptr<MemoryPool> memory;
  std::unique_ptr<SharingEngine> engine;
  trace::LaneId lane = 0;
  std::size_t context_count = 0;
  /// Concrete slice placement, assigned lowest-free-first at creation (the
  /// fixed placement real MIG uses). -1 when fragmentation after destroys
  /// left no contiguous run — capacity validation still holds either way;
  /// the offsets exist so overlap is a checkable invariant (tests/prop).
  int compute_start = -1;
  int mem_start = -1;
  /// Utilization-sampler source keyed by the instance UUID; detached when
  /// the instance is destroyed so the sampler never holds dangling probes.
  std::size_t obs_source = static_cast<std::size_t>(-1);
};

class Device {
 public:
  /// `make_engine` builds the sharing policy for the device envelope and for
  /// each MIG instance created later (the NVIDIA default is time-sharing;
  /// see sched::timeshare_factory()).
  Device(sim::Simulator& sim, GpuArchSpec arch, int index,
         EngineFactory make_engine, trace::Recorder* rec = nullptr);
  /// Unsubscribes from the simulator's fault injector, if one is installed.
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const GpuArchSpec& arch() const { return arch_; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] trace::LaneId lane() const { return lane_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  // -- sharing policy -------------------------------------------------------

  /// Replaces the engine factory and rebuilds the device engine. Requires
  /// zero live contexts (clients must restart to pick up a policy change)
  /// and MIG disabled for the device-level engine swap to matter.
  void set_engine_factory(EngineFactory make_engine);

  [[nodiscard]] SharingEngine& engine();
  [[nodiscard]] const SharingEngine& engine() const;

  // -- contexts -------------------------------------------------------------

  /// Creates a client context. Throws util::ConfigError on a bad percentage,
  /// util::StateError when targeting the bare device while MIG is enabled
  /// (real MIG GPUs refuse non-instance contexts), util::NotFoundError for
  /// an unknown instance.
  ContextId create_context(std::string owner, ContextOptions opts = {});

  /// Destroys a context, freeing all of its allocations. Throws
  /// util::StateError if the context still has kernels in flight.
  void destroy_context(ContextId id);

  [[nodiscard]] const GpuContext& context(ContextId id) const;
  [[nodiscard]] std::size_t context_count() const { return contexts_.size(); }

  // -- memory ---------------------------------------------------------------

  /// Allocates from the context's pool (device pool, or its instance's).
  AllocationId alloc(ContextId ctx, util::Bytes size, std::string tag);
  void free(ContextId ctx, AllocationId id);

  [[nodiscard]] MemoryPool& memory() { return *memory_; }
  [[nodiscard]] const MemoryPool& memory() const { return *memory_; }

  // -- kernel launch --------------------------------------------------------

  /// Enqueues a kernel on the context's stream; the future completes when
  /// the kernel finishes on the engine.
  sim::Future<> launch(ContextId ctx, KernelDesc kernel);

  // -- fault paths ----------------------------------------------------------
  //
  // A device-level error (Xid/ECC → reset) or MPS daemon death does not tear
  // contexts down by itself — it fails every affected launch future with
  // `error`, and client processes react (the executor kills and respawns its
  // workers, which frees their contexts). These also run automatically when
  // a faults::FaultInjector delivers kDeviceError / kMpsDaemonDeath for
  // "gpu:<index>".

  /// Fails all queued and in-flight kernels on the device: every context's
  /// stream queue, the device-level engine, and all MIG instance engines.
  std::size_t abort_all_kernels(std::exception_ptr error);

  /// Fails kernels of non-MIG contexts and the device-level engine only —
  /// MIG instances bypass the MPS control daemon and survive its death.
  std::size_t abort_device_kernels(std::exception_ptr error);

  /// Fails one context's queued and in-flight kernels (process kill /
  /// walltime cancellation); other clients are untouched.
  std::size_t abort_context_kernels(ContextId id, std::exception_ptr error);

  // -- MIG ------------------------------------------------------------------

  [[nodiscard]] bool mig_enabled() const { return mig_enabled_; }

  /// Both require zero live contexts (GPU reset).
  void enable_mig();
  void disable_mig();

  /// Creates an instance; validates slice budgets (7 compute / 8 memory
  /// slices on A100). Requires MIG mode.
  InstanceId create_instance(const MigProfile& profile);
  InstanceId create_instance(const std::string& profile_name);

  /// Destroys an instance; requires zero contexts on it.
  void destroy_instance(InstanceId id);

  [[nodiscard]] const GpuInstance& instance(InstanceId id) const;
  [[nodiscard]] GpuInstance& instance(InstanceId id);
  /// Finds an instance by its UUID string; throws util::NotFoundError.
  [[nodiscard]] InstanceId instance_by_uuid(const std::string& uuid) const;
  [[nodiscard]] std::vector<InstanceId> instance_ids() const;
  [[nodiscard]] int used_compute_slices() const;
  [[nodiscard]] int used_mem_slices() const;

  // -- introspection --------------------------------------------------------

  /// GPU utilization over [from, to] measured from recorded kernel spans
  /// (device lane plus all instance lanes); 0 if no recorder was attached.
  /// Only *completed* kernels appear — for live sampling use busy_time().
  [[nodiscard]] double measured_utilization(util::TimePoint from, util::TimePoint to) const;

  /// Live SM-weighted busy-time integral (includes in-flight kernels):
  /// the engine's any-kernel-active time, with MIG instances weighted by
  /// their share of the device's SMs. Sample twice and divide the delta by
  /// the wall window for instantaneous utilization (nvidia-smi dmon style).
  [[nodiscard]] util::Duration busy_time() const;

 private:
  GpuContext& context_mut(ContextId id);
  SharingEngine& engine_for(const GpuContext& ctx);
  MemoryPool& pool_for(const GpuContext& ctx);
  void dispatch(GpuContext& ctx, KernelDesc kernel, sim::Promise<> done);
  std::size_t fail_stream_queue(GpuContext& ctx, const std::exception_ptr& error);
  /// Detaches a sampler source id (no-op without telemetry / when already
  /// detached) and resets it.
  void detach_obs(std::size_t& source);

  sim::Simulator& sim_;
  GpuArchSpec arch_;
  int index_;
  EngineFactory make_engine_;
  trace::Recorder* rec_;
  trace::LaneId lane_ = 0;

  std::unique_ptr<MemoryPool> memory_;
  std::unique_ptr<SharingEngine> engine_;

  ContextId next_ctx_id_ = 1;
  std::map<ContextId, GpuContext> contexts_;

  bool mig_enabled_ = false;
  InstanceId next_instance_id_ = 1;
  std::map<InstanceId, GpuInstance> instances_;

  std::vector<std::uint64_t> fault_subs_;
  std::size_t obs_source_ = static_cast<std::size_t>(-1);
};

}  // namespace faaspart::gpu
