// Kernel descriptions and the roofline service-time model.
//
// A KernelDesc is a resource footprint, not code: how many FLOPs, how many
// bytes of device-memory traffic, how wide the kernel can spread across SMs
// before extra SMs stop helping (its *saturation width*), and what fraction
// of peak HBM bandwidth it can draw when running alone at full width.
//
// The saturation width is the mechanism behind the paper's Fig 2 knee:
// LLaMa-2 decode is a batch-1 GEMV that "can only properly utilize about
// 20 SMs" — granting more SMs does not reduce its latency.
#pragma once

#include <string>

#include "gpu/arch.hpp"
#include "util/units.hpp"

namespace faaspart::gpu {

enum class KernelKind {
  kGemm,         // dense matrix multiply (prefill, training)
  kGemv,         // matrix-vector (batch-1 decode)
  kConv,         // convolution layers
  kElementwise,  // activations, norms
  kMemcpyH2D,    // host→device transfer
  kMemcpyD2H,    // device→host transfer
  kOther,
};

const char* kernel_kind_name(KernelKind k);

struct KernelDesc {
  std::string name;
  KernelKind kind = KernelKind::kOther;
  util::Flops flops = 0;    ///< floating-point work
  util::Bytes bytes = 0;    ///< device-memory traffic (reads + writes)
  int width_sms = 1;        ///< saturation width: SMs beyond this don't help
  double bw_fraction = 1.0; ///< achievable fraction of peak HBM bw at full width
};

/// Resource grant a sharing engine gives one kernel.
struct KernelGrant {
  int sms = 0;  ///< SMs this kernel may occupy (post-cap, pre-width)
};

/// The two service-time components of a kernel under a grant.
struct KernelTiming {
  util::Duration compute{};    ///< FLOP time on min(grant, width) SMs
  util::Bytes bytes = 0;       ///< memory traffic to drain
  double solo_bw = 0;          ///< drain rate (B/s) with no co-runners
  int sms_effective = 0;       ///< min(grant, width), >= 1
};

/// Computes the fixed compute time and the solo memory-drain rate for a
/// kernel granted `grant.sms` SMs on `arch`-shaped hardware. Engines combine
/// these: a kernel completes when its compute time has elapsed AND its bytes
/// have drained (rate may be reduced by contention).
KernelTiming kernel_timing(const GpuArchSpec& arch, const KernelDesc& k,
                           KernelGrant grant);

/// Service time with no contention: launch overhead + max(compute, bytes/solo_bw).
util::Duration solo_service_time(const GpuArchSpec& arch, const KernelDesc& k,
                                 KernelGrant grant);

}  // namespace faaspart::gpu
