// Device memory pool with offset-based first-fit allocation.
//
// Real allocations matter to the paper twice: MPS offers *no* memory
// isolation (one client can OOM another — Table 1), and capacity is what
// limits co-residency ("only four concurrent LLaMa-2 7B instances fit in an
// 80 GB A100", §5.2). Tracking offsets rather than just a counter also lets
// tests exercise fragmentation behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace faaspart::gpu {

using util::Bytes;

using AllocationId = std::uint64_t;

struct AllocationInfo {
  AllocationId id = 0;
  Bytes offset = 0;
  Bytes size = 0;
  std::string tag;
};

class MemoryPool {
 public:
  explicit MemoryPool(Bytes capacity);

  /// First-fit allocation; throws util::OutOfMemoryError when no free
  /// segment fits (the message reports requested/free/largest to mirror a
  /// helpful CUDA OOM report).
  AllocationId allocate(Bytes size, std::string tag);

  /// Frees an allocation; throws util::NotFoundError for unknown ids
  /// (double-free surfaces as an error, not corruption).
  void free(AllocationId id);

  [[nodiscard]] bool contains(AllocationId id) const;
  [[nodiscard]] const AllocationInfo& info(AllocationId id) const;

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] Bytes largest_free_block() const;
  [[nodiscard]] std::size_t allocation_count() const { return allocs_.size(); }

  /// free_bytes that are unreachable by a single allocation of
  /// largest_free_block size — 0 when the free space is one segment.
  [[nodiscard]] Bytes external_fragmentation() const;

  [[nodiscard]] std::vector<AllocationInfo> allocations() const;

 private:
  void coalesce_around(Bytes offset);

  Bytes capacity_;
  Bytes used_ = 0;
  AllocationId next_id_ = 1;
  std::map<AllocationId, AllocationInfo> allocs_;
  std::map<Bytes, Bytes> free_segments_;  // offset -> size, non-adjacent
};

}  // namespace faaspart::gpu
