#include "gpu/kv_pager.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::gpu {

KvPager::KvPager(KvPagerConfig cfg) : cfg_(cfg) {
  FP_CHECK_MSG(cfg_.page_tokens > 0, "kv pager: page_tokens must be positive");
  FP_CHECK_MSG(cfg_.bytes_per_token > 0,
               "kv pager: bytes_per_token must be positive");
  FP_CHECK_MSG(cfg_.capacity >= 0, "kv pager: negative capacity");
  FP_CHECK_MSG(cfg_.admit_watermark > 0.0 && cfg_.admit_watermark <= 1.0,
               "kv pager: admit_watermark must be in (0, 1]");
  total_pages_ = static_cast<int>(cfg_.capacity / page_bytes());
  watermark_pages_ =
      static_cast<int>(cfg_.admit_watermark * static_cast<double>(total_pages_));
  for (int p = 0; p < total_pages_; ++p) free_.insert(p);
}

util::Bytes KvPager::page_bytes() const {
  return static_cast<util::Bytes>(cfg_.page_tokens) * cfg_.bytes_per_token;
}

util::Bytes KvPager::bytes_in_use() const {
  return static_cast<util::Bytes>(used_pages()) * page_bytes();
}

int KvPager::pages_for_tokens(int tokens) const {
  FP_CHECK_MSG(tokens >= 0, "kv pager: negative token count");
  return (tokens + cfg_.page_tokens - 1) / cfg_.page_tokens;
}

bool KvPager::can_admit(int tokens) const {
  return used_pages() + pages_for_tokens(tokens) <= watermark_pages_;
}

bool KvPager::can_ever_admit(int tokens) const {
  return pages_for_tokens(tokens) <= watermark_pages_;
}

bool KvPager::live(KvSeqId id) const { return seqs_.count(id) != 0; }

const KvPager::Seq& KvPager::seq(KvSeqId id) const {
  const auto it = seqs_.find(id);
  if (it == seqs_.end()) {
    throw util::NotFoundError(util::strf("kv pager: unknown sequence ", id));
  }
  return it->second;
}

KvPager::Seq& KvPager::seq_mut(KvSeqId id) {
  return const_cast<Seq&>(seq(id));
}

int KvPager::tokens_of(KvSeqId id) const { return seq(id).tokens; }

const std::vector<int>& KvPager::page_table(KvSeqId id) const {
  return seq(id).pages;
}

std::vector<KvSeqId> KvPager::sequence_ids() const {
  std::vector<KvSeqId> ids;
  ids.reserve(seqs_.size());
  for (const auto& [id, s] : seqs_) ids.push_back(id);
  return ids;
}

KvSeqId KvPager::create(std::string tag) {
  const KvSeqId id = next_id_++;
  seqs_.emplace(id, Seq{std::move(tag), 0, {}});
  ++stats_.sequences_created;
  return id;
}

bool KvPager::grow(KvSeqId id, int tokens) {
  FP_CHECK_MSG(tokens >= 0, "kv pager: negative token count");
  Seq& s = seq_mut(id);
  const int target = pages_for_tokens(tokens);
  const int have = static_cast<int>(s.pages.size());
  if (target > have) {
    const int need = target - have;
    if (need > free_pages()) {
      ++stats_.grow_failures;
      return false;
    }
    for (int i = 0; i < need; ++i) {
      const auto it = free_.begin();  // lowest index: deterministic layout
      s.pages.push_back(*it);
      free_.erase(it);
    }
    stats_.pages_allocated += static_cast<std::uint64_t>(need);
    stats_.peak_pages_in_use = std::max(stats_.peak_pages_in_use, used_pages());
  }
  s.tokens = std::max(s.tokens, tokens);
  return true;
}

void KvPager::release(KvSeqId id) {
  Seq& s = seq_mut(id);
  for (const int p : s.pages) free_.insert(p);
  seqs_.erase(id);
}

int KvPager::preempt(KvSeqId id) {
  Seq& s = seq_mut(id);
  const int freed = static_cast<int>(s.pages.size());
  for (const int p : s.pages) free_.insert(p);
  s.pages.clear();
  s.tokens = 0;
  ++stats_.preemptions;
  return freed;
}

}  // namespace faaspart::gpu
