// KvPager — paged KV-cache allocation for LLM serving (DESIGN.md §14).
//
// vLLM-style paged attention, reduced to what the cost model needs: the KV
// cache of every live sequence is a page table over a fixed pool of
// fixed-size pages (page_tokens tokens each), carved out of one big HBM
// allocation so capacity limits bite through gpu::MemoryPool. Three
// properties the serving engine depends on, all property-tested
// (tests/prop/prop_kv_pager.cpp):
//   * no page is ever mapped by two live sequences (isolation),
//   * free + used always equals the pool size (conservation — preemption
//     and release cannot leak pages), and
//   * allocation is deterministic: pages are handed out lowest-index-first,
//     so the same op sequence always produces the same page tables.
//
// Preemption is copy-free (the paper-adjacent trick that makes engine
// eviction cheap): preempt() returns every page to the pool but keeps the
// sequence entry alive at zero tokens; the engine re-runs prefill on resume
// (recompute), so no KV bytes ever move.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace faaspart::gpu {

using KvSeqId = std::uint64_t;

struct KvPagerConfig {
  /// Tokens per page. vLLM defaults to 16; smaller pages waste less to
  /// internal fragmentation but grow the page tables.
  int page_tokens = 16;
  /// KV bytes one context token occupies (workloads::llama_kv_bytes_per_token).
  util::Bytes bytes_per_token = 1;
  /// HBM bytes backing the pool (the engine's single "kv-pool" allocation).
  util::Bytes capacity = 0;
  /// New admissions may only fill the pool up to this fraction; the
  /// headroom above it is reserved for in-flight sequences growing by one
  /// token per decode step, which keeps admission from guaranteeing a
  /// preemption storm one iteration later.
  double admit_watermark = 0.90;
};

struct KvPagerStats {
  std::uint64_t sequences_created = 0;
  std::uint64_t pages_allocated = 0;  ///< cumulative grants
  std::uint64_t preemptions = 0;
  std::uint64_t grow_failures = 0;    ///< all-or-nothing grows refused
  int peak_pages_in_use = 0;
};

class KvPager {
 public:
  explicit KvPager(KvPagerConfig cfg);

  [[nodiscard]] const KvPagerConfig& config() const { return cfg_; }
  [[nodiscard]] int total_pages() const { return total_pages_; }
  [[nodiscard]] int free_pages() const { return static_cast<int>(free_.size()); }
  [[nodiscard]] int used_pages() const { return total_pages_ - free_pages(); }
  [[nodiscard]] util::Bytes page_bytes() const;
  [[nodiscard]] util::Bytes bytes_in_use() const;
  [[nodiscard]] std::size_t live_sequences() const { return seqs_.size(); }
  [[nodiscard]] const KvPagerStats& stats() const { return stats_; }

  /// Pages needed to hold `tokens` context tokens (ceiling; 0 for 0).
  [[nodiscard]] int pages_for_tokens(int tokens) const;

  /// Admission check: could a *new* context of `tokens` tokens be grown
  /// without pushing the pool past the watermark? Purely advisory — grow()
  /// itself only requires free pages, so running sequences may use the
  /// reserved headroom.
  [[nodiscard]] bool can_admit(int tokens) const;

  /// Would `tokens` fit under the watermark even with the pool empty? False
  /// means the context can never be admitted — the engine sheds it instead
  /// of letting FCFS head-of-line blocking become a livelock.
  [[nodiscard]] bool can_ever_admit(int tokens) const;

  [[nodiscard]] bool live(KvSeqId id) const;
  /// Logical context length; throws util::NotFoundError for dead ids.
  [[nodiscard]] int tokens_of(KvSeqId id) const;
  /// The sequence's page indices in allocation order.
  [[nodiscard]] const std::vector<int>& page_table(KvSeqId id) const;
  /// Live ids in creation order (deterministic iteration for tests).
  [[nodiscard]] std::vector<KvSeqId> sequence_ids() const;

  /// Registers a sequence with no pages; grow() maps its context.
  KvSeqId create(std::string tag);

  /// Grows `id` to hold at least `tokens` total context tokens, taking the
  /// lowest-index free pages. All-or-nothing: on failure nothing is
  /// allocated and false is returned (the engine then preempts a victim or
  /// defers admission). Growing to fewer tokens than currently mapped is a
  /// no-op that still succeeds (pages are never returned implicitly).
  bool grow(KvSeqId id, int tokens);

  /// Returns every page and retires the sequence. Throws
  /// util::NotFoundError for unknown ids (a double release is a bug, not a
  /// no-op).
  void release(KvSeqId id);

  /// Copy-free preemption: returns every page to the pool but keeps the
  /// sequence live at zero tokens. Returns the number of pages freed.
  int preempt(KvSeqId id);

 private:
  struct Seq {
    std::string tag;
    int tokens = 0;
    std::vector<int> pages;
  };

  Seq& seq_mut(KvSeqId id);
  [[nodiscard]] const Seq& seq(KvSeqId id) const;

  KvPagerConfig cfg_;
  int total_pages_ = 0;
  int watermark_pages_ = 0;
  std::set<int> free_;            // lowest-index-first hand-out
  std::map<KvSeqId, Seq> seqs_;   // ordered: deterministic iteration
  KvSeqId next_id_ = 1;
  KvPagerStats stats_;
};

}  // namespace faaspart::gpu
