#include "gpu/mig.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faaspart::gpu {

std::vector<MigProfile> mig_profiles(const GpuArchSpec& arch) {
  if (!arch.mig_capable) return {};
  // (compute slices, memory slices) pairs per NVIDIA's A100/H100 catalogue.
  // {1, 2} is the double-memory 1g profile (1g.20gb on the 80 GB part),
  // which is what lets four LLaMa-7B tenants each get a 1/7 compute slice
  // with enough memory (§5.2's 4-process MIG configuration).
  static constexpr struct {
    int g;
    int mem;
  } kShapes[] = {{1, 1}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {7, 8}};

  std::vector<MigProfile> out;
  for (const auto& s : kShapes) {
    // Smaller parts (e.g. A30 with 4 compute slices) only expose the shapes
    // that fit their slice counts; the full-GPU shape becomes Ng.<all>.
    const int g = s.g == 7 ? arch.mig_slices : s.g;
    const int mem = s.mem == 8 ? arch.mem_slices : s.mem;
    if (g > arch.mig_slices || mem > arch.mem_slices) continue;
    MigProfile p;
    p.compute_slices = g;
    p.mem_slices = mem;
    const auto gb = (arch.memory / arch.mem_slices * mem) / util::GB;
    p.name = util::strf(g, "g.", gb, "gb");
    // Skip duplicates (a 4-slice part's "4g" shows up once).
    bool dup = false;
    for (const auto& existing : out) dup = dup || existing.name == p.name;
    if (!dup) out.push_back(std::move(p));
  }
  return out;
}

MigProfile mig_profile(const GpuArchSpec& arch, const std::string& name) {
  if (!arch.mig_capable) {
    throw util::NotFoundError(util::strf("MIG profile '", name, "': ", arch.name,
                                         " is not MIG-capable"));
  }
  for (const auto& p : mig_profiles(arch)) {
    if (p.name == name) return p;
    // Accept the compute prefix alone: "2g" matches "2g.20gb".
    if (util::starts_with(p.name, name + ".")) return p;
  }
  throw util::NotFoundError(util::strf("MIG profile '", name, "' on ", arch.name));
}

}  // namespace faaspart::gpu
