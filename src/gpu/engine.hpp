// SharingEngine — the strategy interface for how concurrent kernels share
// one compute envelope (a whole GPU, or one MIG instance).
//
// Concrete policies live in src/sched/: TimeShareEngine (the NVIDIA
// default), MpsEngine (concurrent kernels with per-client SM caps), and the
// vGPU slot engine. A Device owns one engine; each MIG instance owns its
// own engine over its slice of SMs and bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "gpu/arch.hpp"
#include "gpu/kernel.hpp"
#include "obs/metrics.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"

namespace faaspart::gpu {

using ContextId = std::uint64_t;

/// The resource envelope an engine schedules over.
struct EngineEnv {
  sim::Simulator* sim = nullptr;
  trace::Recorder* rec = nullptr;  ///< optional span sink
  trace::LaneId lane = 0;          ///< lane for kernel spans
  GpuArchSpec arch;                ///< part description (per-SM rate, overheads)
  int sms = 0;                     ///< SMs in this envelope (slice for MIG)
  double bw_peak = 0;              ///< memory bandwidth ceiling of this envelope
};

/// One kernel launch handed to an engine.
struct KernelJob {
  ContextId ctx = 0;      ///< submitting client (stream ordering is enforced
                          ///  by the Device before jobs reach the engine)
  int sm_cap = 0;         ///< client's SM cap (MPS percentage → SMs); 0 = uncapped
  KernelDesc kernel;
  sim::Promise<> done;    ///< completed when the kernel finishes
  std::string client;     ///< owner name, used in span labels
};

class SharingEngine {
 public:
  explicit SharingEngine(EngineEnv env) : env_(std::move(env)) {}
  virtual ~SharingEngine() = default;
  SharingEngine(const SharingEngine&) = delete;
  SharingEngine& operator=(const SharingEngine&) = delete;

  [[nodiscard]] virtual const char* policy_name() const = 0;

  /// Accepts a job; the engine decides when it runs and completes job.done.
  virtual void submit(KernelJob job) = 0;

  [[nodiscard]] virtual std::size_t active() const = 0;  ///< kernels executing
  [[nodiscard]] virtual std::size_t queued() const = 0;  ///< kernels waiting

  /// Fails every queued and executing kernel with `error` (device reset,
  /// MPS daemon death). The engine restores its accounting so the envelope
  /// is immediately usable again. Returns the number of kernels failed.
  virtual std::size_t abort_all(std::exception_ptr error) = 0;

  /// Fails only `ctx`'s queued/executing kernels (process kill, walltime
  /// cancellation); other clients keep running and freed capacity is handed
  /// to them. Returns the number of kernels failed.
  virtual std::size_t abort_context(ContextId ctx, std::exception_ptr error) = 0;

  [[nodiscard]] bool idle() const { return active() == 0 && queued() == 0; }

  [[nodiscard]] const EngineEnv& env() const { return env_; }

  /// Cumulative time this envelope had at least one kernel executing,
  /// including the currently-running stretch — live (unlike the recorder,
  /// which only sees completed spans), so samplers like
  /// nvml::UtilizationMonitor read true utilization mid-kernel.
  [[nodiscard]] util::Duration busy_time() const {
    util::Duration busy = busy_integral_;
    if (running_count_ > 0) busy += env_.sim->now() - busy_since_;
    return busy;
  }

 protected:
  /// Engines call this with +1 when a kernel starts executing and -1 when
  /// it finishes; the base integrates the "any kernel active" time.
  void note_running_delta(int delta) {
    const std::size_t before = running_count_;
    running_count_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(running_count_) + delta);
    if (before == 0 && running_count_ > 0) {
      busy_since_ = env_.sim->now();
    } else if (before > 0 && running_count_ == 0) {
      busy_integral_ += env_.sim->now() - busy_since_;
    }
  }
  /// Records a kernel span if a recorder is attached.
  void record_span(const KernelJob& job, util::TimePoint start, util::TimePoint end) const {
    if (env_.rec != nullptr) {
      env_.rec->record(env_.lane, job.client + "/" + job.kernel.name,
                       std::string("kernel:") + kernel_kind_name(job.kernel.kind),
                       start, end);
    }
  }

  // -- telemetry hooks (no-ops without an installed obs::Telemetry) ---------
  // These sit on the per-kernel path, so the common cases are inline: a
  // cached Counter increment with telemetry on, a resolve that finds no
  // telemetry and returns with it off.
  /// Once per submitted kernel → kernel_launches_total{policy}.
  void note_launch() {
    if (!metrics_resolved_) resolve_metrics();
    if (launches_ != nullptr) launches_->add();
  }
  /// On abort paths → kernel_aborts_total{policy}.
  void note_aborts(std::size_t n) {
    if (n == 0) return;
    if (!metrics_resolved_) resolve_metrics();
    if (aborts_ != nullptr) aborts_->add(static_cast<double>(n));
  }
  /// SM-cap admission delay → mps_throttle_seconds_total{percentage}, the
  /// time a kernel sat queued because its client's cap was saturated.
  void note_throttle(util::Duration waited, int sm_cap) {
    if (waited.ns <= 0) return;
    if (sm_cap != throttle_cap_) resolve_throttle(sm_cap);
    if (throttle_counter_ != nullptr) throttle_counter_->add(waited.seconds());
  }

  EngineEnv env_;

 private:
  void resolve_metrics();
  void resolve_throttle(int sm_cap);

  std::size_t running_count_ = 0;
  util::TimePoint busy_since_{};
  util::Duration busy_integral_{};
  // Cached counter handles (stable for the registry's lifetime).
  obs::Counter* launches_ = nullptr;
  obs::Counter* aborts_ = nullptr;
  // Throttle counters per SM cap — a handful of distinct caps per engine,
  // and the int-keyed lookup keeps the admission path off the registry's
  // string-keyed map. The last-cap pair short-circuits even that (and the
  // cap → percentage division) for the common equal-caps case.
  std::map<int, obs::Counter*> throttle_;
  int throttle_cap_ = -1;
  obs::Counter* throttle_counter_ = nullptr;
  bool metrics_resolved_ = false;
};

/// Constructs an engine for a given envelope; injected into Device so the
/// gpu module stays independent of the concrete policies in src/sched/.
using EngineFactory = std::function<std::unique_ptr<SharingEngine>(EngineEnv)>;

}  // namespace faaspart::gpu
