// Table 1 — comparison of GPU multiplexing techniques.
//
// The paper's table is qualitative; this bench backs each row with a
// measurement: the same mixed tenant set (two ResNet-50 serving tenants +
// one LLaMa-2 7B chatbot) runs on one A100-80GB under every technique, and
// we report measured utilization, aggregate throughput and per-tenant
// latency, plus each technique's operational properties (resource
// reconfiguration, isolation) as enforced by the library's state machines.
//
// The five techniques are independent replications (each builds its own
// virtual testbed) and shard across the parallel runner (`--jobs N`); the
// merged table is byte-identical for any worker count.
#include <iostream>

#include "runner/experiments.hpp"
#include "runner/runner.hpp"

using namespace faaspart;

int main(int argc, char** argv) {
  const runner::JobsFlag jobs = runner::parse_jobs_flag(argc, argv);
  if (!jobs.ok || argc > 1) {
    std::cerr << (jobs.ok ? "unknown argument" : jobs.error) << "\nusage: "
              << argv[0] << " [--jobs N]\n";
    return 2;
  }

  const auto techniques = runner::table1_points();
  const auto results = runner::run_points<runner::Table1Result>(
      static_cast<int>(techniques.size()),
      [&](int i) {
        return runner::run_table1_point(techniques[static_cast<std::size_t>(i)]);
      },
      jobs.jobs);
  std::cout << runner::render_table1(results);
  return 0;
}
