// Table 1 — comparison of GPU multiplexing techniques.
//
// The paper's table is qualitative; this bench backs each row with a
// measurement: the same mixed tenant set (two ResNet-50 serving tenants +
// one LLaMa-2 7B chatbot) runs on one A100-80GB under every technique, and
// we report measured utilization, aggregate throughput and per-tenant
// latency, plus each technique's operational properties (resource
// reconfiguration, isolation) as enforced by the library's state machines.
#include <iostream>
#include <map>

#include "core/partitioner.hpp"
#include "faas/dfk.hpp"
#include "faas/provider.hpp"
#include "nvml/manager.hpp"
#include "sched/engines.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"
#include "workloads/dnn.hpp"
#include "workloads/llama.hpp"
#include "workloads/serving.hpp"

using namespace faaspart;
using namespace util::literals;

namespace {

faas::AppDef resnet_app(const std::string& name) {
  faas::AppDef app;
  app.name = name;
  app.function_init = 500_ms;
  app.model_bytes = 2 * util::GB;  // weights + runtime
  app.model_key = "resnet50";
  const auto kernels = workloads::models::resnet50().inference_kernels(8);
  app.body = [kernels](faas::TaskContext& ctx) -> sim::Co<faas::AppValue> {
    for (const auto& k : kernels) co_await ctx.launch(k);
    co_return faas::AppValue{};
  };
  return app;
}

struct TechniqueResult {
  std::string technique;
  double gpu_util = 0;
  double throughput = 0;       // tasks/s over the window
  double resnet_p95_ms = 0;
  double llama_mean_s = 0;
  std::string reconfigure;
  std::string isolation;
};

TechniqueResult run_technique(const std::string& technique) {
  sim::Simulator sim;
  trace::Recorder rec;
  nvml::DeviceManager mgr(sim, &rec);
  const int gpu = mgr.add_device(gpu::arch::a100_80gb());
  faas::LocalProvider provider(sim, 24);
  core::GpuPartitioner part(mgr);
  faas::DataFlowKernel dfk(sim, faas::Config{});

  faas::HtexConfig htex;
  htex.label = "gpu";
  if (technique == "timeshare") {
    htex.available_accelerators = {"0", "0", "0"};
  } else if (technique == "mps-default") {
    part.mps(gpu).start();  // daemon up, no per-client caps
    htex.available_accelerators = {"0", "0", "0"};
  } else if (technique == "mps-percentage") {
    htex.available_accelerators = {"0", "0", "0"};
    htex.gpu_percentages = {30, 30, 40};
  } else if (technique == "mig") {
    gpu::Device& dev = mgr.device(gpu);
    dev.enable_mig();
    for (const char* p : {"2g.20gb", "2g.20gb", "3g.40gb"}) {
      htex.available_accelerators.push_back(
          dev.instance(dev.create_instance(p)).uuid);
    }
  } else if (technique == "vgpu") {
    mgr.device(gpu).set_engine_factory(sched::vgpu_factory({.slots = 3}));
    htex.available_accelerators = {"0", "0", "0"};
  }
  dfk.add_executor(part.build_executor(sim, provider, htex, nullptr, &rec));

  // Mixed tenant set: two ResNet-50 serving tenants (open loop, offered load
  // high enough to saturate a time-shared GPU) and one LLaMa chatbot
  // (closed loop) — saturation is where the techniques' utilization and
  // throughput separate, which is the paper's Table 1 comparison.
  const util::Duration window = util::seconds(60);
  auto r1 = std::make_shared<std::vector<faas::AppHandle>>();
  auto r2 = std::make_shared<std::vector<faas::AppHandle>>();
  workloads::spawn_open_loop(sim, dfk, "gpu", resnet_app("resnet-a"), 12.0,
                             window, 11, r1);
  workloads::spawn_open_loop(sim, dfk, "gpu", resnet_app("resnet-b"), 12.0,
                             window, 13, r2);
  auto llama = std::make_shared<workloads::BatchRunResult>();
  workloads::spawn_closed_loop_batch(
      sim, dfk, "gpu",
      workloads::make_llama_completion_app("llama-chat", workloads::llama2_7b(),
                                           workloads::serving_config(),
                                           {64, 20}),
      1, 8, llama);
  sim.run();

  TechniqueResult out;
  out.technique = technique;
  const auto end = rec.last_end();
  const auto begin = rec.first_start();
  out.gpu_util = mgr.device(gpu).measured_utilization(begin, end);
  std::vector<double> resnet_lat;
  std::size_t tasks = 0;
  for (const auto* handles : {r1.get(), r2.get()}) {
    for (const auto& h : *handles) {
      if (h.record->state != faas::TaskRecord::State::kDone) continue;
      resnet_lat.push_back(h.record->run_time().millis());
      ++tasks;
    }
  }
  tasks += llama->tasks;
  out.throughput = static_cast<double>(tasks) / (end - begin).seconds();
  out.resnet_p95_ms = trace::summarize(std::move(resnet_lat)).p95;
  out.llama_mean_s = llama->latency.mean;

  static const std::map<std::string, std::pair<std::string, std::string>> props{
      {"timeshare", {"none needed", "none"}},
      {"mps-default", {"no caps to change", "none (shared memory)"}},
      {"mps-percentage", {"process restart", "compute only"}},
      {"mig", {"GPU reset + restart", "compute + memory"}},
      {"vgpu", {"VM restart", "slot-level"}},
  };
  out.reconfigure = props.at(technique).first;
  out.isolation = props.at(technique).second;
  return out;
}

}  // namespace

int main() {
  trace::print_banner(std::cout,
                      "Table 1: multiplexing techniques on a mixed tenant set");
  std::cout << "workload: 2x ResNet-50 serving (Poisson 4 req/s each, batch 8)"
               " + 1 LLaMa-2 7B chatbot, one A100-80GB, 120 s window\n\n";

  trace::Table table({"technique", "GPU util", "tasks/s", "ResNet p95 (ms)",
                      "LLaMa mean (s)", "reconfiguration", "isolation"});
  for (const char* technique :
       {"timeshare", "mps-default", "mps-percentage", "mig", "vgpu"}) {
    const auto r = run_technique(technique);
    table.add_row({r.technique, util::fixed(100.0 * r.gpu_util, 1) + "%",
                   util::fixed(r.throughput, 2), util::fixed(r.resnet_p95_ms, 1),
                   util::fixed(r.llama_mean_s, 2), r.reconfigure, r.isolation});
  }
  table.print(std::cout);

  std::cout << "\nHow to read this against the paper's Table 1: under"
               " time-sharing the device reports busy while each narrow kernel"
               " wastes the other ~88 SMs (\"Low\" utilization) -- visible as"
               " the worst tail latency. Spatial partitioning (MPS percentage,"
               " MIG, vGPU) runs tenants concurrently, cutting ResNet p95 by"
               " ~6x. MIG buys full compute+memory isolation at the price of"
               " coarse slices (lower throughput) and reset-based"
               " reconfiguration; vGPU is spatial but locked to homogeneous"
               " slots; only MPS offers fine-grained, per-process splits.\n";
  return 0;
}
