// Cross-architecture study — §3.4 names the parts (A100, H100, AMD MI210);
// this bench checks that the paper's multiplexing argument generalizes:
// on every part, LLaMa-2 decode saturates a small fraction of the compute,
// so right-sized MPS/CU-mask partitions multiply throughput until memory
// capacity caps the tenant count.
#include <iostream>

#include "core/rightsize.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"
#include "workloads/multiplex_experiment.hpp"

using namespace faaspart;

int main() {
  trace::print_banner(std::cout,
                      "Cross-arch: LLaMa-2 7B multiplexing on A100 / H100 / MI210");

  trace::Table table({"part", "SMs/CUs", "HBM", "decode knee", "tenants fit",
                      "1-proc batch (s)", "MPS@max batch (s)",
                      "throughput gain"});

  const auto run_cfg = workloads::serving_config();
  const auto spec = workloads::llama2_7b();
  const auto footprint = workloads::llama_memory_footprint(spec, run_cfg);

  for (const auto& arch :
       {gpu::arch::a100_sxm4_40gb(), gpu::arch::a100_80gb(),
        gpu::arch::h100_80gb(), gpu::arch::mi210()}) {
    const auto knee = core::rightsize_kernels(
        arch, {workloads::llama_decode_kernel(spec, run_cfg)}, 0.05);
    const int fit = std::min<int>(4, static_cast<int>(arch.memory / footprint));

    workloads::MultiplexRunConfig single;
    single.arch = arch;
    single.processes = 1;
    single.mode = workloads::MultiplexMode::kSingle;
    single.total_completions = 40;
    const auto base = run_multiplex_experiment(single);

    workloads::MultiplexRunConfig multi;
    multi.arch = arch;
    multi.processes = fit;
    multi.mode = fit > 1 ? workloads::MultiplexMode::kMps
                         : workloads::MultiplexMode::kSingle;
    multi.total_completions = 40;
    const auto packed = run_multiplex_experiment(multi);

    table.add_row(
        {arch.name, std::to_string(arch.total_sms),
         util::format_bytes(arch.memory),
         util::strf(knee.suggested_sms, " (", knee.suggested_percentage, "%)"),
         std::to_string(fit), util::fixed(base.batch.makespan.seconds(), 1),
         util::fixed(packed.batch.makespan.seconds(), 1),
         util::fixed(packed.batch.throughput() / base.batch.throughput(), 2) +
             "x"});
  }
  table.print(std::cout);

  std::cout << "\nReading: every part leaves most of its compute idle under a"
               " single decode tenant (the knee column), so spatial"
               " partitioning pays everywhere; HBM capacity — not compute —"
               " limits how many tenants fit (2 on 40 GB, 3 on MI210's 64 GB,"
               " 4 on the 80 GB parts). On AMD the same split uses ROCm CU"
               " masking instead of CUDA MPS (Table 1).\n";
  return 0;
}
