// Ablation — demand-driven repartitioning (the §7 control loop) vs a static
// equal split.
//
// Two LLM tenants share one A100-80GB through MPS. Demand shifts midway:
// tenant A is busy in the first half of the run, tenant B in the second.
// The static deployment keeps 50/50; the autoscaled deployment watches
// queue depths and moves GPU percentage to where the demand is, paying the
// §6 restart cost each time (cheap here thanks to the weight cache).
#include <iostream>

#include "core/autoscale.hpp"
#include "core/partitioner.hpp"
#include "core/weightcache.hpp"
#include "faas/dfk.hpp"
#include "faas/provider.hpp"
#include "nvml/manager.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"
#include "workloads/llama.hpp"
#include "workloads/serving.hpp"

using namespace faaspart;
using namespace util::literals;

namespace {

struct Outcome {
  double makespan_s = 0;
  double a_mean_latency = 0;
  double b_mean_latency = 0;
  int reconfigurations = 0;
};

Outcome run(bool autoscaled) {
  sim::Simulator sim;
  nvml::DeviceManager mgr(sim);
  mgr.add_device(gpu::arch::a100_80gb());
  faas::LocalProvider provider(sim, 24);
  core::GpuPartitioner part(mgr);
  core::Reconfigurer recon(mgr);
  core::WeightCache cache;
  faas::DataFlowKernel dfk(sim, faas::Config{});

  const auto make_tenant = [&](const std::string& label) {
    faas::HtexConfig cfg;
    cfg.label = label;
    cfg.available_accelerators = {"0"};
    cfg.gpu_percentages = {50};
    return part.build_executor(sim, provider, cfg, &cache);
  };
  auto a_owned = make_tenant("a");
  auto b_owned = make_tenant("b");
  auto* a = a_owned.get();
  auto* b = b_owned.get();
  dfk.add_executor(std::move(a_owned));
  dfk.add_executor(std::move(b_owned));

  core::Autoscaler scaler(sim, recon,
                          {.interval = 20_s, .min_percentage = 15,
                           .min_delta = 15, .ewma_alpha = 0.7});
  scaler.add_tenant(*a, 50);
  scaler.add_tenant(*b, 50);
  if (autoscaled) {
    sim.spawn(scaler.run(util::TimePoint{} + 3600_s), "autoscaler");
  }

  // Shifting demand: A gets its batch now, B at t = 300 s. The tenants run
  // wide compute-bound jobs (fine-tuning steps) — the workload class where
  // partition size directly sets speed, unlike narrow decode kernels that
  // saturate at ~35 SMs.
  faas::AppDef app;
  app.name = "finetune-step";
  app.model_bytes = 16 * util::GB;
  app.model_key = "llama2-7b-train";
  app.body = [](faas::TaskContext& ctx) -> sim::Co<faas::AppValue> {
    gpu::KernelDesc k{"fwd-bwd", gpu::KernelKind::kGemm, 2.0 * 19.5e12,
                      2 * util::GB, 108, 0.6};
    co_await ctx.launch(std::move(k));
    co_return faas::AppValue{};
  };
  auto a_out = std::make_shared<workloads::BatchRunResult>();
  auto b_out = std::make_shared<workloads::BatchRunResult>();
  workloads::spawn_closed_loop_batch(sim, dfk, "a", app, 1, 40, a_out);
  sim.schedule_at(util::TimePoint{} + 300_s, [&sim, &dfk, app, b_out] {
    workloads::spawn_closed_loop_batch(sim, dfk, "b", app, 1, 40, b_out);
  });
  sim.run_until(util::TimePoint{} + 3600_s);
  sim.run();

  Outcome out;
  out.makespan_s = std::max(a_out->makespan.seconds(), b_out->makespan.seconds());
  out.a_mean_latency = a_out->latency.mean;
  out.b_mean_latency = b_out->latency.mean;
  out.reconfigurations = scaler.reconfigurations();
  return out;
}

}  // namespace

int main() {
  trace::print_banner(std::cout,
                      "Ablation: demand-driven repartitioning vs static 50/50");

  const Outcome fixed = run(/*autoscaled=*/false);
  const Outcome scaled = run(/*autoscaled=*/true);

  trace::Table table({"deployment", "tenant A mean lat (s)",
                      "tenant B mean lat (s)", "reconfigurations"});
  table.add_row({"static 50/50", util::fixed(fixed.a_mean_latency, 2),
                 util::fixed(fixed.b_mean_latency, 2), "0"});
  table.add_row({"autoscaled (20 s loop)", util::fixed(scaled.a_mean_latency, 2),
                 util::fixed(scaled.b_mean_latency, 2),
                 std::to_string(scaled.reconfigurations)});
  table.print(std::cout);

  std::cout << "\nBoth tenants run faster under autoscaling: each holds most"
               " of the GPU during its own busy phase instead of idling at a"
               " fixed half. The restarts that make this possible are cheap"
               " only because the weight cache (§7) absorbs the model"
               " reloads -- the paper's two future-work items compose.\n";
  return 0;
}
