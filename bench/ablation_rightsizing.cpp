// Ablation (§7 "Understanding GPU resource requirement") — the right-sizing
// tool on real workload profiles, with an end-to-end validation: run each
// workload on the simulated device at the suggested partition and check the
// measured latency penalty stays within the epsilon the tool promised.
#include <iostream>

#include "core/rightsize.hpp"
#include "gpu/device.hpp"
#include "sched/engines.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"
#include "workloads/dnn.hpp"
#include "workloads/llama.hpp"

using namespace faaspart;

namespace {

struct Profile {
  std::string name;
  std::vector<gpu::KernelDesc> kernels;
};

/// Measured wall time of the kernel sequence on an MPS device at a cap.
double measured_seconds(const std::vector<gpu::KernelDesc>& kernels, double pct) {
  sim::Simulator sim;
  gpu::Device dev(sim, gpu::arch::a100_80gb(), 0, sched::mps_factory());
  const auto ctx = dev.create_context("probe", {.active_thread_percentage = pct});
  for (const auto& k : kernels) (void)dev.launch(ctx, k);
  sim.run();
  return sim.now().seconds();
}

}  // namespace

int main() {
  trace::print_banner(std::cout,
                      "Ablation: right-sizing GPU partitions per workload");

  const auto arch = gpu::arch::a100_80gb();
  const auto llama7 = workloads::llama2_7b();

  std::vector<Profile> profiles;
  profiles.push_back({"llama2-7b decode (fp16)",
                      {workloads::llama_decode_kernel(
                          llama7, workloads::serving_config())}});
  profiles.push_back({"llama2-7b decode (fp32)",
                      {workloads::llama_decode_kernel(llama7,
                                                      workloads::fig2_config())}});
  profiles.push_back(
      {"resnet50 batch 1", workloads::models::resnet50().inference_kernels(1)});
  profiles.push_back(
      {"resnet50 batch 32", workloads::models::resnet50().inference_kernels(32)});
  profiles.push_back(
      {"vgg16 batch 8", workloads::models::vgg16().inference_kernels(8)});

  const double epsilon = 0.05;
  trace::Table table({"workload", "suggested SMs", "GPU %", "freed for others",
                      "predicted penalty", "measured penalty"});
  for (const auto& p : profiles) {
    const auto r = core::rightsize_kernels(arch, p.kernels, epsilon);
    const double predicted =
        static_cast<double>(r.latency_at_suggested.ns) / r.latency_at_full.ns - 1.0;
    const double at_full = measured_seconds(p.kernels, 100.0);
    const double at_suggested =
        measured_seconds(p.kernels, r.suggested_percentage);
    const double measured = at_suggested / at_full - 1.0;
    table.add_row({p.name, std::to_string(r.suggested_sms),
                   std::to_string(r.suggested_percentage) + "%",
                   util::fixed(100.0 * r.freed_fraction(arch.total_sms), 1) + "%",
                   util::fixed(100.0 * predicted, 1) + "%",
                   util::fixed(100.0 * measured, 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nTakeaway (the §7 tool the paper plans): a static kernel"
               " profile is enough to right-size a partition -- LLaMa decode"
               " needs ~1/5 of an A100 while wide CNN batches want most of it;"
               " the measured penalty at the suggestion stays within epsilon ("
            << util::fixed(100.0 * epsilon, 0) << "%).\n";
  return 0;
}
