// §6 — "Discussion: execution overhead".
//
// Two measurements from the section:
//  (a) GPU cold-start decomposition: (1) function initialization,
//      (2) GPU context initialization, (3) application (model) loading —
//      with the paper's observation that loading LLaMa-2 13B takes ~10 s;
//  (b) partition reallocation: changing an MPS percentage forces a process
//      restart (10–20 s with an LLM because the model reloads); MIG
//      re-layout additionally resets the GPU (1–2 s) and disturbs every
//      tenant on it.
#include <iostream>

#include "core/partitioner.hpp"
#include "core/reconfigure.hpp"
#include "faas/dfk.hpp"
#include "faas/provider.hpp"
#include "nvml/manager.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"
#include "workloads/llama.hpp"

using namespace faaspart;
using namespace util::literals;

namespace {

struct ColdStart {
  double worker_spawn_s = 0;
  double context_init_s = 0;
  double function_init_s = 0;
  double model_load_s = 0;
  double first_task_total_s = 0;
};

ColdStart measure_cold_start(const workloads::LlamaSpec& spec,
                             workloads::LlamaRunConfig run) {
  sim::Simulator sim;
  nvml::DeviceManager mgr(sim);
  mgr.add_device(gpu::arch::a100_80gb());
  faas::LocalProvider provider(sim, 24);
  core::GpuPartitioner part(mgr);

  faas::HtexConfig htex;
  htex.label = "gpu";
  htex.available_accelerators = {"0"};
  auto ex = part.build_executor(sim, provider, htex);

  const auto app = std::make_shared<const faas::AppDef>(
      workloads::make_llama_completion_app(spec.name, spec, run, {16, 1}));
  auto h = ex->submit(app);
  sim.run();

  ColdStart c;
  c.worker_spawn_s = provider.worker_launch_cost().seconds();
  c.context_init_s = mgr.device(0).arch().context_create.seconds();
  c.function_init_s = app->function_init.seconds();
  c.model_load_s = static_cast<double>(app->model_bytes) /
                   mgr.device(0).arch().model_load_bw;
  c.first_task_total_s = (h.record->started - h.record->submitted).seconds();
  return c;
}

struct ReallocCost {
  double restart_only_s = 0;   ///< reconfigure wall time (workers down+up)
  double ready_again_s = 0;    ///< until the model is reloaded and serving
  bool gpu_reset = false;
};

ReallocCost measure_realloc(bool mig) {
  sim::Simulator sim;
  nvml::DeviceManager mgr(sim);
  mgr.add_device(gpu::arch::a100_80gb());
  faas::LocalProvider provider(sim, 24);
  core::GpuPartitioner part(mgr);
  core::Reconfigurer recon(mgr);

  faas::HtexConfig htex;
  htex.label = "gpu";
  if (mig) {
    gpu::Device& dev = mgr.device(0);
    dev.enable_mig();
    for (int i = 0; i < 2; ++i) {
      htex.available_accelerators.push_back(
          dev.instance(dev.create_instance("3g.40gb")).uuid);
    }
  } else {
    htex.available_accelerators = {"0", "0"};
    htex.gpu_percentages = {50, 50};
  }
  auto ex = part.build_executor(sim, provider, htex);

  // Warm both workers (model resident).
  const auto app = std::make_shared<const faas::AppDef>(
      workloads::make_llama_completion_app("chat", workloads::llama2_7b(),
                                           workloads::serving_config(), {16, 1}));
  (void)ex->submit(app);
  (void)ex->submit(app);
  sim.run();

  auto report = std::make_shared<core::ReconfigureReport>();
  const util::TimePoint t0 = sim.now();
  if (mig) {
    sim.spawn([](core::Reconfigurer& r, faas::HighThroughputExecutor& e,
                 std::shared_ptr<core::ReconfigureReport> out) -> sim::Co<void> {
      const std::vector<std::string> layout{"2g.20gb", "2g.20gb"};
      *out = co_await r.change_mig_layout(e, 0, layout);
    }(recon, *ex, report));
  } else {
    sim.spawn([](core::Reconfigurer& r, faas::HighThroughputExecutor& e,
                 std::shared_ptr<core::ReconfigureReport> out) -> sim::Co<void> {
      const std::vector<int> pcts{70, 30};
      *out = co_await r.change_mps_percentages(e, pcts);
    }(recon, *ex, report));
  }
  sim.run();

  // "Ready" = the first post-reconfigure task has its model loaded again.
  auto h = ex->submit(app);
  sim.run();
  ReallocCost out;
  out.restart_only_s = report->total_time.seconds();
  out.ready_again_s = (h.record->started - t0).seconds();
  out.gpu_reset = report->gpu_reset;
  return out;
}

}  // namespace

int main() {
  trace::print_banner(std::cout, "Sec 6: cold start and reallocation overheads");

  std::cout << "(a) GPU cold-start decomposition, first invocation on a fresh"
               " worker:\n\n";
  trace::Table cold({"component", "LLaMa-2 7B fp16 (s)", "LLaMa-2 13B fp32 (s)"});
  auto cfg13 = workloads::fig2_config();  // fp32, as in the paper's 10 s claim
  const auto c7 = measure_cold_start(workloads::llama2_7b(),
                                     workloads::serving_config());
  const auto c13 = measure_cold_start(workloads::llama2_13b(), cfg13);
  cold.add_row({"(0) worker process spawn", util::fixed(c7.worker_spawn_s, 2),
                util::fixed(c13.worker_spawn_s, 2)});
  cold.add_row({"(1) function initialization", util::fixed(c7.function_init_s, 2),
                util::fixed(c13.function_init_s, 2)});
  cold.add_row({"(2) GPU context init", util::fixed(c7.context_init_s, 2),
                util::fixed(c13.context_init_s, 2)});
  cold.add_row({"(3) model load into HBM", util::fixed(c7.model_load_s, 2),
                util::fixed(c13.model_load_s, 2)});
  cold.add_row({"total until body runs", util::fixed(c7.first_task_total_s, 2),
                util::fixed(c13.first_task_total_s, 2)});
  cold.print(std::cout);
  std::cout << "\nPaper: \"the loading time of LLaMa 2 13B can take up to 10"
               " seconds\" -- component (3) above.\n";

  std::cout << "\n(b) partition reallocation (2 workers, LLaMa-2 7B resident):\n\n";
  trace::Table realloc({"technique", "workers back up (s)",
                        "serving again (s)", "GPU reset"});
  const auto mps = measure_realloc(/*mig=*/false);
  const auto mig = measure_realloc(/*mig=*/true);
  realloc.add_row({"MPS percentage change", util::fixed(mps.restart_only_s, 2),
                   util::fixed(mps.ready_again_s, 2), "no"});
  realloc.add_row({"MIG re-layout", util::fixed(mig.restart_only_s, 2),
                   util::fixed(mig.ready_again_s, 2), "yes (1.5 s)"});
  realloc.print(std::cout);
  std::cout << "\nPaper: MPS reallocation costs a process restart and model"
               " reload (10-20 s for LLMs); MIG adds the GPU reset (1-2 s) and"
               " interferes with every other tenant on the GPU.\n";
  return 0;
}
